//! Property-based tests for the BAT store invariants.
#![allow(clippy::unwrap_used)]

use monet::{Bat, Db, Oid, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<u64>().prop_map(|v| Value::Oid(Oid::from_raw(v))),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: NaN is not a legal stored value by contract.
        (-1.0e12f64..1.0e12).prop_map(Value::Flt),
        "[a-z]{0,12}".prop_map(Value::Str),
        any::<bool>().prop_map(Value::Bit),
    ]
}

/// Rows with the same value kind, so they fit a single BAT.
fn arb_rows() -> impl Strategy<Value = Vec<(u64, Value)>> {
    arb_value().prop_flat_map(|proto| {
        let kind = proto.kind();
        prop::collection::vec((0u64..64, arb_value()), 0..64).prop_map(move |rows| {
            rows.into_iter()
                .filter(|(_, v)| v.kind() == kind)
                .collect::<Vec<_>>()
        })
    })
}

fn build_bat(rows: &[(u64, Value)]) -> Option<Bat> {
    let first = rows.first()?;
    let mut bat = Bat::with_kind(first.1.kind());
    for (h, v) in rows {
        bat.append(Oid::from_raw(*h), v.clone()).ok()?;
    }
    Some(bat)
}

proptest! {
    #[test]
    fn append_preserves_every_association(rows in arb_rows()) {
        if let Some(bat) = build_bat(&rows) {
            prop_assert_eq!(bat.len(), rows.len());
            for (i, (h, v)) in rows.iter().enumerate() {
                let (bh, bv) = bat.at(i);
                prop_assert_eq!(bh, Oid::from_raw(*h));
                prop_assert_eq!(&bv, v);
            }
        }
    }

    #[test]
    fn lookup_agrees_with_scan(rows in arb_rows(), probe in 0u64..64) {
        if let Some(bat) = build_bat(&rows) {
            let probe = Oid::from_raw(probe);
            let scanned: Vec<Value> = rows.iter()
                .filter(|(h, _)| Oid::from_raw(*h) == probe)
                .map(|(_, v)| v.clone())
                .collect();
            prop_assert_eq!(bat.tails_of(probe), scanned);
        }
    }

    #[test]
    fn delete_head_removes_exactly_that_head(rows in arb_rows(), victim in 0u64..64) {
        if let Some(mut bat) = build_bat(&rows) {
            let victim = Oid::from_raw(victim);
            let expected_removed = rows.iter()
                .filter(|(h, _)| Oid::from_raw(*h) == victim)
                .count();
            let removed = bat.delete_head(victim);
            prop_assert_eq!(removed, expected_removed);
            prop_assert_eq!(bat.len(), rows.len() - expected_removed);
            prop_assert!(!bat.heads().any(|h| h == victim));
        }
    }

    #[test]
    fn top_n_is_sorted_prefix_of_full_sort(rows in arb_rows(), n in 0usize..16) {
        if let Some(bat) = build_bat(&rows) {
            let top = bat.top_n(n);
            prop_assert!(top.len() <= n.min(rows.len()));
            for w in top.windows(2) {
                // Descending by value, ties ascending by head.
                let ord = w[0].1.total_cmp(&w[1].1);
                prop_assert!(ord != std::cmp::Ordering::Less);
                if ord == std::cmp::Ordering::Equal {
                    prop_assert!(w[0].0 <= w[1].0);
                }
            }
            // Nothing outside the top-N beats anything inside it.
            if let Some(last) = top.last() {
                let inside: std::collections::HashSet<usize> = (0..bat.len())
                    .filter(|&i| top.iter().any(|t| *t == bat.at(i)))
                    .collect();
                for i in 0..bat.len() {
                    if !inside.contains(&i) {
                        let (_, v) = bat.at(i);
                        prop_assert!(v.total_cmp(&last.1) != std::cmp::Ordering::Greater);
                    }
                }
            }
        }
    }

    #[test]
    fn snapshot_restore_is_identity(rows in arb_rows()) {
        let mut db = Db::new();
        if let Some(bat) = build_bat(&rows) {
            db.create("r", bat).unwrap();
        }
        let back = monet::persist::restore(&monet::persist::snapshot(&db).unwrap()).unwrap();
        assert_eq!(back.relation_count(), db.relation_count());
        for name in db.relation_names() {
            prop_assert_eq!(back.get(name).unwrap(), db.get(name).unwrap());
        }
    }

    #[test]
    fn corrupted_snapshot_never_panics_or_lies(
        rows in arb_rows(),
        byte_pick in any::<u64>(),
        bit in 0u8..8,
    ) {
        let mut db = Db::new();
        if let Some(bat) = build_bat(&rows) {
            db.create("r", bat).unwrap();
        }
        let mut bytes = monet::persist::snapshot(&db).unwrap();
        let at = (byte_pick % bytes.len() as u64) as usize;
        bytes[at] ^= 1 << bit;
        // Any single flipped bit must surface as a typed snapshot error
        // (the CRC trailer catches it) or, at the very worst, decode to
        // a catalog identical to the original — never panic, never a
        // silently different catalog.
        match monet::persist::restore(&bytes) {
            Err(monet::Error::Snapshot(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error kind: {:?}", other),
            Ok(back) => {
                prop_assert_eq!(back.relation_count(), db.relation_count());
                for name in db.relation_names() {
                    prop_assert_eq!(back.get(name).unwrap(), db.get(name).unwrap());
                }
            }
        }
    }

    #[test]
    fn join_matches_nested_loop_semantics(
        edges in prop::collection::vec((0u64..16, 16u64..32), 0..32),
        leaves in prop::collection::vec((16u64..32, 0i64..100), 0..32),
    ) {
        let mut e = Bat::new_oid();
        for (h, t) in &edges {
            e.append_oid(Oid::from_raw(*h), Oid::from_raw(*t)).unwrap();
        }
        let mut l = Bat::new_int();
        for (h, v) in &leaves {
            l.append_int(Oid::from_raw(*h), *v).unwrap();
        }
        let joined = e.join(&l).unwrap();
        let mut expected = Vec::new();
        for (h, t) in &edges {
            for (lh, lv) in &leaves {
                if t == lh {
                    expected.push((Oid::from_raw(*h), Value::Int(*lv)));
                }
            }
        }
        let got: Vec<_> = joined.iter().collect();
        // Hash join preserves probe order per edge; sort both for set equality.
        let mut got_sorted = got;
        let mut expected_sorted = expected;
        let key = |p: &(Oid, Value)| (p.0, p.1.as_int().unwrap());
        got_sorted.sort_by_key(key);
        expected_sorted.sort_by_key(key);
        prop_assert_eq!(got_sorted, expected_sorted);
    }
}
