//! CRC-32 (IEEE 802.3, the zlib/gzip polynomial), table-driven.
//!
//! Every durable artefact — WAL records, snapshot files, the manifest —
//! carries a CRC-32 so recovery can tell a valid byte stream from a
//! torn write or a flipped bit. The table is built at compile time; no
//! external crate is needed.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (IEEE polynomial, init `!0`, final xor `!0`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value of CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn any_single_bit_flip_changes_the_checksum() {
        let data = b"MBAT snapshot payload 0123456789";
        let base = crc32(data);
        let mut copy = data.to_vec();
        for i in 0..copy.len() {
            for bit in 0..8 {
                copy[i] ^= 1 << bit;
                assert_ne!(crc32(&copy), base, "flip at byte {i} bit {bit} undetected");
                copy[i] ^= 1 << bit;
            }
        }
    }
}
