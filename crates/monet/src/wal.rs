//! Write-ahead log: append-only, CRC-framed, segment-rotated.
//!
//! Every mutating store operation appends a record *before* touching the
//! in-memory catalog, so a crash after the append can be replayed and a
//! crash before it leaves no trace — the two states the recovery harness
//! accepts. On-disk framing per record:
//!
//! ```text
//! len: u32 LE | crc32(payload): u32 LE | payload: len bytes
//! ```
//!
//! Records live in segments named `wal-<start_lsn:016x>.wal` inside the
//! log directory; a segment rotates once it exceeds
//! [`Wal::max_segment_bytes`]. Appends are buffered and fsynced every
//! [`Wal::sync_every`] records (or on [`Wal::flush`]), batching the
//! dominant durability cost. [`Wal::replay_from`] returns every intact
//! record at or past a watermark and *silently stops* at the first torn
//! or corrupt frame in the final segment — the tail a crash mid-append
//! legitimately leaves behind.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::crc::crc32;
use crate::error::{Error, Result};
use crate::storage::StorageBackend;

const FRAME_HEADER: usize = 8;

/// Reads a little-endian u32 from a 4-byte slice without the
/// `try_into().unwrap()` dance (the crate denies `unwrap_used`).
fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}
/// A sane upper bound on one record; anything larger is corruption.
const MAX_RECORD: usize = 64 << 20;

fn segment_name(start_lsn: u64) -> String {
    format!("wal-{start_lsn:016x}.wal")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("wal-")?.strip_suffix(".wal")?;
    u64::from_str_radix(hex, 16).ok()
}

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Log sequence number: the index of this record since log creation.
    pub lsn: u64,
    /// The opaque payload handed to [`Wal::append`].
    pub payload: Vec<u8>,
}

/// The write-ahead log over a [`StorageBackend`].
#[derive(Debug)]
pub struct Wal {
    backend: Arc<dyn StorageBackend>,
    dir: PathBuf,
    /// Records buffered since the last fsync.
    pending: Vec<u8>,
    pending_records: u64,
    /// LSN of the next record to append.
    next_lsn: u64,
    /// Start LSN of the segment currently appended to.
    current_start: u64,
    /// Bytes already durable in the current segment.
    current_bytes: u64,
    /// Set by the first failed flush. The buffered records were lost
    /// and the segment tail is in an unknown state, so appending more
    /// would leave an undetectable gap in the positional LSN numbering:
    /// the log refuses everything until reopened (which seals or drops
    /// the damaged tail).
    poisoned: bool,
    /// Fsync after this many buffered records.
    pub sync_every: u64,
    /// Rotate to a fresh segment past this many bytes.
    pub max_segment_bytes: u64,
    /// Observability handle (spans around flush); disabled by default.
    obs: obs::Obs,
    metrics: Option<WalMetrics>,
}

/// Pre-registered metric handles for the WAL hot path.
#[derive(Debug, Clone)]
struct WalMetrics {
    appends: obs::Counter,
    append_bytes: obs::Counter,
    flushes: obs::Counter,
    flush_failures: obs::Counter,
    flushed_bytes: obs::Counter,
}

impl WalMetrics {
    fn register(registry: &obs::Registry) -> WalMetrics {
        WalMetrics {
            appends: registry.counter("monet_wal_appends_total", "Records appended to the WAL"),
            append_bytes: registry.counter(
                "monet_wal_append_bytes_total",
                "Payload bytes appended to the WAL (excluding framing)",
            ),
            flushes: registry.counter("monet_wal_flushes_total", "Successful WAL flush+fsync cycles"),
            flush_failures: registry.counter(
                "monet_wal_flush_failures_total",
                "WAL flushes that failed and poisoned the log",
            ),
            flushed_bytes: registry.counter(
                "monet_wal_flushed_bytes_total",
                "Framed bytes made durable by WAL flushes",
            ),
        }
    }
}

impl Wal {
    /// Opens (or creates) the log in `dir`, scanning existing segments
    /// to find the next LSN. Torn bytes at the tail of the last segment
    /// are ignored here and truncated on the next append cycle's terms
    /// (they are simply never read back).
    pub fn open(backend: Arc<dyn StorageBackend>, dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        backend.create_dir_all(&dir)?;
        let mut wal = Wal {
            backend,
            dir,
            pending: Vec::new(),
            pending_records: 0,
            next_lsn: 0,
            current_start: 0,
            current_bytes: 0,
            poisoned: false,
            sync_every: 32,
            max_segment_bytes: 4 << 20,
            obs: obs::Obs::disabled(),
            metrics: None,
        };
        if let Some(last_start) = wal.segment_starts()?.last().copied() {
            let path = wal.dir.join(segment_name(last_start));
            let bytes = wal.backend.read(&path)?;
            let (records, valid_bytes) = decode_frames(&bytes, last_start);
            wal.next_lsn = records.last().map(|r| r.lsn + 1).unwrap_or(last_start);
            if valid_bytes < bytes.len() {
                if records.is_empty() {
                    // The whole segment is one torn tail — no record in
                    // it was ever readable, so it can simply go, and the
                    // name is reused for the next append.
                    wal.backend.remove(&path)?;
                    wal.current_start = last_start;
                } else {
                    // Seal the damaged segment and rotate: appends must
                    // never land *behind* torn bytes, where replay
                    // (which stops at the tear) could not reach them.
                    wal.current_start = wal.next_lsn;
                }
                wal.current_bytes = 0;
            } else {
                wal.current_start = last_start;
                wal.current_bytes = valid_bytes as u64;
            }
        }
        Ok(wal)
    }

    /// The LSN the next appended record will get.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Connects the log to an observability handle: appends and flushes
    /// feed the `monet_wal_*` counters, and each flush runs under a
    /// `monet.wal.flush` span. A disabled handle disconnects.
    pub fn set_obs(&mut self, o: &obs::Obs) {
        self.obs = o.clone();
        self.metrics = o.registry().map(WalMetrics::register);
    }

    fn segment_starts(&self) -> Result<Vec<u64>> {
        let mut starts: Vec<u64> = self
            .backend
            .list(&self.dir)?
            .iter()
            .filter_map(|n| parse_segment_name(n))
            .collect();
        starts.sort_unstable();
        Ok(starts)
    }

    fn current_path(&self) -> PathBuf {
        self.dir.join(segment_name(self.current_start))
    }

    /// Appends one record, returning its LSN. Durable only after the
    /// batched fsync — call [`Wal::flush`] before relying on it.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64> {
        if self.poisoned {
            return Err(Error::Wal(
                "log poisoned by an earlier I/O failure; reopen to recover".into(),
            ));
        }
        if payload.len() > MAX_RECORD {
            return Err(Error::Wal(format!("record of {} bytes exceeds cap", payload.len())));
        }
        let lsn = self.next_lsn;
        self.pending.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.pending.extend_from_slice(&crc32(payload).to_le_bytes());
        self.pending.extend_from_slice(payload);
        self.pending_records += 1;
        self.next_lsn += 1;
        if let Some(m) = &self.metrics {
            m.appends.inc();
            m.append_bytes.add(payload.len() as u64);
        }
        if self.pending_records >= self.sync_every {
            self.flush()?;
        }
        Ok(lsn)
    }

    /// Writes buffered records to the current segment and fsyncs it,
    /// rotating to a fresh segment first if the current one is full.
    pub fn flush(&mut self) -> Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        if self.poisoned {
            return Err(Error::Wal(
                "log poisoned by an earlier I/O failure; reopen to recover".into(),
            ));
        }
        if self.current_bytes >= self.max_segment_bytes {
            // First LSN of the new segment = first buffered record.
            self.current_start = self.next_lsn - self.pending_records;
            self.current_bytes = 0;
        }
        let path = self.current_path();
        let buf = std::mem::take(&mut self.pending);
        self.pending_records = 0;
        let mut span = self.obs.span("monet.wal.flush");
        span.add_work(buf.len() as u64);
        // On failure the buffered records are lost and the segment tail
        // is indeterminate (a torn append may have landed a prefix):
        // poison the log so no later append can ride over the damage.
        if let Err(e) = self
            .backend
            .append(&path, &buf)
            .and_then(|()| self.backend.sync(&path))
        {
            self.poisoned = true;
            span.set_outcome(obs::Outcome::Degraded);
            span.note(|| "poisoned".to_owned());
            if let Some(m) = &self.metrics {
                m.flush_failures.inc();
            }
            return Err(e);
        }
        self.current_bytes += buf.len() as u64;
        if let Some(m) = &self.metrics {
            m.flushes.inc();
            m.flushed_bytes.add(buf.len() as u64);
        }
        Ok(())
    }

    /// Every intact record with `lsn >= watermark`, in order. Stops at
    /// the first torn or corrupt frame (a crashed append's tail).
    pub fn replay_from(&self, watermark: u64) -> Result<Vec<WalRecord>> {
        let mut out = Vec::new();
        for start in self.segment_starts()? {
            let bytes = self.backend.read(&self.dir.join(segment_name(start)))?;
            let (records, _) = decode_frames(&bytes, start);
            out.extend(records.into_iter().filter(|r| r.lsn >= watermark));
        }
        Ok(out)
    }

    /// Deletes segments whose records all fall below `watermark` — the
    /// checkpoint already covers them.
    pub fn gc_below(&mut self, watermark: u64) -> Result<()> {
        let starts = self.segment_starts()?;
        for window in starts.windows(2) {
            // A segment is disposable when the *next* one starts at or
            // below the watermark, i.e. every record in it is covered.
            if window[1] <= watermark {
                self.backend.remove(&self.dir.join(segment_name(window[0])))?;
            }
        }
        Ok(())
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

/// Decodes consecutive frames starting at `start_lsn`; returns the
/// records plus the count of bytes covered by intact frames (the point
/// to which the segment is trustworthy).
fn decode_frames(bytes: &[u8], start_lsn: u64) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut lsn = start_lsn;
    while bytes.len() - pos >= FRAME_HEADER {
        let len = le_u32(&bytes[pos..pos + 4]) as usize;
        let crc = le_u32(&bytes[pos + 4..pos + 8]);
        if len > MAX_RECORD || bytes.len() - pos - FRAME_HEADER < len {
            break; // torn tail: length runs past the file
        }
        let payload = &bytes[pos + FRAME_HEADER..pos + FRAME_HEADER + len];
        if crc32(payload) != crc {
            break; // corrupt frame: stop replay here
        }
        records.push(WalRecord { lsn, payload: payload.to_vec() });
        pos += FRAME_HEADER + len;
        lsn += 1;
    }
    (records, pos)
}

/// A cheap cloneable handle stores hold to log their mutations.
///
/// The handle tags every record with a store id byte so one shared log
/// serialises all stores' operations in a single total order. Payload
/// layout produced by [`WalHandle::log`]:
///
/// ```text
/// store: u8 | op: u8 | nfields: u8 | (len: u32 LE | bytes)*
/// ```
#[derive(Debug, Clone)]
pub struct WalHandle {
    wal: Arc<Mutex<Wal>>,
    store: u8,
}

impl WalHandle {
    /// Wraps `wal` for records tagged with `store`.
    pub fn new(wal: Arc<Mutex<Wal>>, store: u8) -> Self {
        WalHandle { wal, store }
    }

    /// A handle over the same log for a different store tag.
    pub fn for_store(&self, store: u8) -> Self {
        WalHandle { wal: Arc::clone(&self.wal), store }
    }

    fn encode(&self, op: u8, fields: &[&[u8]]) -> Vec<u8> {
        let mut payload = Vec::with_capacity(3 + fields.iter().map(|f| 4 + f.len()).sum::<usize>());
        payload.push(self.store);
        payload.push(op);
        payload.push(fields.len() as u8);
        for f in fields {
            payload.extend_from_slice(&(f.len() as u32).to_le_bytes());
            payload.extend_from_slice(f);
        }
        payload
    }

    /// Appends one record; the store must only mutate if this returns
    /// `Ok`.
    pub fn log(&self, op: u8, fields: &[&[u8]]) -> Result<u64> {
        let payload = self.encode(op, fields);
        self.wal
            .lock()
            .map_err(|_| Error::Wal("log mutex poisoned".into()))?
            .append(&payload)
    }

    /// Appends one record per field group under a **single** log lock
    /// acquisition — the bulk-ingestion path. [`WalHandle::log`] locks
    /// the shared mutex once per record, which at 10^5 documents makes
    /// the log the ingest bottleneck; batching amortizes the lock and
    /// lets the records ride one buffered-fsync cycle. Returns the LSN
    /// of the first record, or `None` for an empty batch. Stores must
    /// only mutate if this returns `Ok` (all-or-nothing: a failed
    /// append mid-batch poisons nothing extra — earlier records of the
    /// batch are already in the buffer and replay idempotently).
    pub fn log_batch(&self, op: u8, groups: &[Vec<&[u8]>]) -> Result<Option<u64>> {
        if groups.is_empty() {
            return Ok(None);
        }
        let payloads: Vec<Vec<u8>> = groups.iter().map(|g| self.encode(op, g)).collect();
        let mut wal = self
            .wal
            .lock()
            .map_err(|_| Error::Wal("log mutex poisoned".into()))?;
        let mut first = None;
        for p in &payloads {
            let lsn = wal.append(p)?;
            first.get_or_insert(lsn);
        }
        Ok(first)
    }

    /// Forces everything appended so far to disk.
    pub fn flush(&self) -> Result<()> {
        self.wal
            .lock()
            .map_err(|_| Error::Wal("log mutex poisoned".into()))?
            .flush()
    }

    /// Appends one record and synchronously flushes it — for records
    /// that *are* the commit point of an operation (a distribution
    /// layout cutover, say), where losing the record would silently
    /// roll the operation back even though the caller saw it succeed.
    pub fn log_sync(&self, op: u8, fields: &[&[u8]]) -> Result<u64> {
        let lsn = self.log(op, fields)?;
        self.flush()?;
        Ok(lsn)
    }
}

/// Splits a payload produced by [`WalHandle::log`] back into
/// `(store, op, fields)`.
pub fn decode_payload(payload: &[u8]) -> Result<(u8, u8, Vec<Vec<u8>>)> {
    if payload.len() < 3 {
        return Err(Error::Wal("record shorter than header".into()));
    }
    let (store, op, nfields) = (payload[0], payload[1], payload[2] as usize);
    let mut fields = Vec::with_capacity(nfields);
    let mut pos = 3usize;
    for _ in 0..nfields {
        if payload.len() - pos < 4 {
            return Err(Error::Wal("truncated field length".into()));
        }
        let len = le_u32(&payload[pos..pos + 4]) as usize;
        pos += 4;
        if payload.len() - pos < len {
            return Err(Error::Wal("field runs past record".into()));
        }
        fields.push(payload[pos..pos + len].to_vec());
        pos += len;
    }
    Ok((store, op, fields))
}

/// Convenience: open a log and wrap it in handles for sharing.
pub fn open_shared(backend: Arc<dyn StorageBackend>, dir: impl AsRef<Path>) -> Result<Arc<Mutex<Wal>>> {
    Ok(Arc::new(Mutex::new(Wal::open(backend, dir.as_ref().to_path_buf())?)))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::storage::FsBackend;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("monet_wal_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn append_flush_replay_round_trips() {
        let dir = tmp_dir("roundtrip");
        let mut wal = Wal::open(FsBackend::shared(), dir.clone()).unwrap();
        for i in 0..5u8 {
            wal.append(&[i; 3]).unwrap();
        }
        wal.flush().unwrap();
        let records = wal.replay_from(0).unwrap();
        assert_eq!(records.len(), 5);
        assert_eq!(records[3].payload, vec![3u8; 3]);
        assert_eq!(records[3].lsn, 3);
        // Watermark skips the prefix.
        assert_eq!(wal.replay_from(4).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_resumes_lsns() {
        let dir = tmp_dir("reopen");
        {
            let mut wal = Wal::open(FsBackend::shared(), dir.clone()).unwrap();
            wal.append(b"a").unwrap();
            wal.append(b"b").unwrap();
            wal.flush().unwrap();
        }
        let mut wal = Wal::open(FsBackend::shared(), dir.clone()).unwrap();
        assert_eq!(wal.next_lsn(), 2);
        wal.append(b"c").unwrap();
        wal.flush().unwrap();
        assert_eq!(wal.replay_from(0).unwrap().len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_skipped() {
        let dir = tmp_dir("torn");
        {
            let mut wal = Wal::open(FsBackend::shared(), dir.clone()).unwrap();
            wal.append(b"intact-one").unwrap();
            wal.append(b"intact-two").unwrap();
            wal.flush().unwrap();
        }
        // Simulate a crash mid-append: write a frame header promising
        // more bytes than exist.
        let seg = dir.join(segment_name(0));
        let mut bytes = std::fs::read(&seg).unwrap();
        bytes.extend_from_slice(&100u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(b"only-a-few");
        std::fs::write(&seg, &bytes).unwrap();
        let wal = Wal::open(FsBackend::shared(), dir.clone()).unwrap();
        assert_eq!(wal.next_lsn(), 2, "torn record must not count");
        assert_eq!(wal.replay_from(0).unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_flush_poisons_the_log() {
        use crate::storage::FaultyBackend;
        use faults::{FaultPlan, IoFault};
        let dir = tmp_dir("poison");
        let plan = FaultPlan::seeded(6)
            .with_io_script("disk:wal", vec![IoFault::NoSpace])
            .shared();
        let backend: Arc<dyn StorageBackend> =
            Arc::new(FaultyBackend::new(FsBackend::shared(), plan));
        let mut wal = Wal::open(backend, dir.clone()).unwrap();
        wal.append(b"doomed").unwrap();
        assert!(wal.flush().is_err());
        // The script is exhausted — the disk would now accept writes —
        // but the log must refuse: its lost buffer means any further
        // append would be misnumbered on replay.
        assert!(matches!(wal.append(b"after"), Err(Error::Wal(_))));
        drop(wal); // the drop-time flush must not sneak bytes in either
        let wal = Wal::open(FsBackend::shared(), dir.clone()).unwrap();
        assert_eq!(wal.replay_from(0).unwrap().len(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn appends_after_a_torn_tail_stay_replayable() {
        let dir = tmp_dir("torn_append");
        {
            let mut wal = Wal::open(FsBackend::shared(), dir.clone()).unwrap();
            wal.append(b"survivor").unwrap();
            wal.flush().unwrap();
        }
        // Crash mid-append: torn bytes at the segment tail.
        let seg = dir.join(segment_name(0));
        let mut bytes = std::fs::read(&seg).unwrap();
        bytes.extend_from_slice(&[0xFF; 13]);
        std::fs::write(&seg, &bytes).unwrap();
        {
            let mut wal = Wal::open(FsBackend::shared(), dir.clone()).unwrap();
            assert_eq!(wal.next_lsn(), 1);
            wal.append(b"after-recovery").unwrap();
            wal.flush().unwrap();
        }
        // The new record must not hide behind the torn bytes.
        let wal = Wal::open(FsBackend::shared(), dir.clone()).unwrap();
        let records = wal.replay_from(0).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].payload, b"after-recovery");
        assert_eq!(records[1].lsn, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fully_torn_segment_is_discarded_on_open() {
        let dir = tmp_dir("torn_whole");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(segment_name(0)), [0xAB; 7]).unwrap();
        let mut wal = Wal::open(FsBackend::shared(), dir.clone()).unwrap();
        assert_eq!(wal.next_lsn(), 0);
        wal.append(b"fresh").unwrap();
        wal.flush().unwrap();
        let records = wal.replay_from(0).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].payload, b"fresh");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let dir = tmp_dir("crc");
        {
            let mut wal = Wal::open(FsBackend::shared(), dir.clone()).unwrap();
            wal.append(b"first").unwrap();
            wal.append(b"second").unwrap();
            wal.append(b"third").unwrap();
            wal.flush().unwrap();
        }
        let seg = dir.join(segment_name(0));
        let mut bytes = std::fs::read(&seg).unwrap();
        // Flip a bit inside the second record's payload.
        let off = FRAME_HEADER + 5 + FRAME_HEADER + 2;
        bytes[off] ^= 1;
        std::fs::write(&seg, &bytes).unwrap();
        let wal = Wal::open(FsBackend::shared(), dir.clone()).unwrap();
        let records = wal.replay_from(0).unwrap();
        assert_eq!(records.len(), 1, "replay stops at the corrupt frame");
        assert_eq!(records[0].payload, b"first");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segments_rotate_and_gc() {
        let dir = tmp_dir("rotate");
        let mut wal = Wal::open(FsBackend::shared(), dir.clone()).unwrap();
        wal.max_segment_bytes = 64;
        wal.sync_every = 1; // flush (and so maybe rotate) every record
        for i in 0..20u64 {
            wal.append(&i.to_le_bytes()).unwrap();
        }
        wal.flush().unwrap();
        let segments = wal.segment_starts().unwrap();
        assert!(segments.len() > 1, "log should have rotated: {segments:?}");
        assert_eq!(wal.replay_from(0).unwrap().len(), 20);
        // GC below a watermark keeps every record >= watermark readable.
        wal.gc_below(10).unwrap();
        let replayed = wal.replay_from(10).unwrap();
        assert_eq!(replayed.len(), 10);
        assert_eq!(replayed[0].lsn, 10);
        assert!(wal.segment_starts().unwrap().len() < segments.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn log_batch_matches_per_record_log() {
        let dir_a = tmp_dir("batch_a");
        let dir_b = tmp_dir("batch_b");
        let docs: Vec<(Vec<u8>, Vec<u8>)> = (0..10u8)
            .map(|i| (vec![b'u', i], vec![b'x', i, i]))
            .collect();
        {
            let wal = open_shared(FsBackend::shared(), &dir_a).unwrap();
            let h = WalHandle::new(Arc::clone(&wal), 0);
            for (url, xml) in &docs {
                h.log(0, &[url, xml]).unwrap();
            }
            h.flush().unwrap();
        }
        {
            let wal = open_shared(FsBackend::shared(), &dir_b).unwrap();
            let h = WalHandle::new(Arc::clone(&wal), 0);
            let groups: Vec<Vec<&[u8]>> = docs
                .iter()
                .map(|(url, xml)| vec![url.as_slice(), xml.as_slice()])
                .collect();
            let first = h.log_batch(0, &groups).unwrap();
            assert_eq!(first, Some(0));
            h.flush().unwrap();
        }
        let read = |dir: &PathBuf| {
            let wal = Wal::open(FsBackend::shared(), dir.clone()).unwrap();
            wal.replay_from(0).unwrap()
        };
        assert_eq!(read(&dir_a), read(&dir_b), "identical records either way");
        assert!(WalHandle::new(open_shared(FsBackend::shared(), &dir_a).unwrap(), 0)
            .log_batch(0, &[])
            .unwrap()
            .is_none());
        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }

    #[test]
    fn handle_payloads_round_trip() {
        let dir = tmp_dir("handle");
        let wal = open_shared(FsBackend::shared(), &dir).unwrap();
        let views = WalHandle::new(Arc::clone(&wal), 0);
        let text = views.for_store(2);
        views.log(0, &[b"doc.xml", b"<a/>"]).unwrap();
        text.log(0, &[b"doc.xml#cdata", b"some words"]).unwrap();
        views.flush().unwrap();
        let records = wal.lock().unwrap().replay_from(0).unwrap();
        assert_eq!(records.len(), 2);
        let (store, op, fields) = decode_payload(&records[0].payload).unwrap();
        assert_eq!((store, op), (0, 0));
        assert_eq!(fields, vec![b"doc.xml".to_vec(), b"<a/>".to_vec()]);
        let (store, _, fields) = decode_payload(&records[1].payload).unwrap();
        assert_eq!(store, 2);
        assert_eq!(fields[1], b"some words");
        std::fs::remove_dir_all(&dir).ok();
    }
}
