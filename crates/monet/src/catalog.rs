//! The catalog: a named collection of BATs plus the oid generator.
//!
//! The Monet XML mapping names relations after root-to-node paths
//! (`R(image/colors/histogram)`), so the catalog is keyed by arbitrary
//! strings. The paper warns that document-dependent mappings can grow the
//! schema; [`Db::relation_count`] exposes that size so the experiments can
//! observe it.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::bat::Bat;
use crate::error::{Error, Result};
use crate::oid::{Oid, OidGen};
use crate::value::ColumnKind;

/// A named catalog of BATs with an embedded oid generator.
///
/// `Db` uses `&mut self` for mutation; callers that need sharing across
/// threads wrap it (the IR level gives each logical server its own `Db`,
/// which is exactly the shared-nothing layout the paper advocates).
#[derive(Debug, Serialize, Deserialize)]
pub struct Db {
    bats: BTreeMap<String, Bat>,
    next_oid: u64,
    #[serde(skip, default = "OidGen::new")]
    gen: OidGen,
}

impl Db {
    /// An empty catalog.
    pub fn new() -> Self {
        Db {
            bats: BTreeMap::new(),
            next_oid: 1,
            gen: OidGen::new(),
        }
    }

    /// Mints a fresh oid unique within this database.
    pub fn mint(&mut self) -> Oid {
        let o = self.gen.mint();
        self.next_oid = o.raw() + 1;
        o
    }

    /// Registers `bat` under `name`; fails if the name is taken.
    pub fn create(&mut self, name: impl Into<String>, bat: Bat) -> Result<()> {
        let name = name.into();
        if self.bats.contains_key(&name) {
            return Err(Error::BatExists(name));
        }
        self.bats.insert(name, bat);
        Ok(())
    }

    /// Removes and returns the BAT under `name`.
    pub fn drop_bat(&mut self, name: &str) -> Result<Bat> {
        self.bats
            .remove(name)
            .ok_or_else(|| Error::NoSuchBat(name.to_owned()))
    }

    /// Immutable access to a BAT.
    pub fn get(&self, name: &str) -> Result<&Bat> {
        self.bats
            .get(name)
            .ok_or_else(|| Error::NoSuchBat(name.to_owned()))
    }

    /// Mutable access to a BAT.
    pub fn get_mut(&mut self, name: &str) -> Result<&mut Bat> {
        self.bats
            .get_mut(name)
            .ok_or_else(|| Error::NoSuchBat(name.to_owned()))
    }

    /// Returns the BAT under `name`, creating an empty one of `kind` first
    /// if it does not exist. The bulkloader's workhorse.
    pub fn get_or_create(&mut self, name: &str, kind: ColumnKind) -> &mut Bat {
        self.bats
            .entry(name.to_owned())
            .or_insert_with(|| Bat::with_kind(kind))
    }

    /// Whether a BAT named `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.bats.contains_key(name)
    }

    /// Names of all relations, sorted.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.bats.keys().map(String::as_str)
    }

    /// Number of relations — the "database schema size" the paper's
    /// document-dependent mapping discussion is concerned with.
    pub fn relation_count(&self) -> usize {
        self.bats.len()
    }

    /// Total number of stored associations across all relations.
    pub fn association_count(&self) -> usize {
        self.bats.values().map(Bat::len).sum()
    }

    pub(crate) fn next_oid_raw(&self) -> u64 {
        self.next_oid.max(self.gen.peek().raw())
    }

    /// Resets the oid generator to continue after `next - 1` and rebuilds
    /// all lookup indexes. Used by snapshot restore.
    pub(crate) fn restore_state(&mut self, next: u64) {
        self.next_oid = next;
        self.gen = OidGen::resume_after(Oid::from_raw(next.saturating_sub(1)));
        for bat in self.bats.values_mut() {
            bat.refresh_index();
        }
    }
}

impl Default for Db {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_get_drop() {
        let mut db = Db::new();
        db.create("r", Bat::new_int()).unwrap();
        assert!(db.contains("r"));
        assert!(matches!(
            db.create("r", Bat::new_int()),
            Err(Error::BatExists(_))
        ));
        db.drop_bat("r").unwrap();
        assert!(matches!(db.get("r"), Err(Error::NoSuchBat(_))));
    }

    #[test]
    fn get_or_create_is_idempotent() {
        let mut db = Db::new();
        let o = db.mint();
        db.get_or_create("x", ColumnKind::Int)
            .append_int(o, 1)
            .unwrap();
        db.get_or_create("x", ColumnKind::Int)
            .append_int(o, 2)
            .unwrap();
        assert_eq!(db.get("x").unwrap().len(), 2);
        assert_eq!(db.relation_count(), 1);
    }

    #[test]
    fn counters_track_contents() {
        let mut db = Db::new();
        let o = db.mint();
        db.get_or_create("a", ColumnKind::Str)
            .append_str(o, "v")
            .unwrap();
        db.get_or_create("b", ColumnKind::Int)
            .append_int(o, 3)
            .unwrap();
        assert_eq!(db.relation_count(), 2);
        assert_eq!(db.association_count(), 2);
        assert_eq!(
            db.relation_names().collect::<Vec<_>>(),
            vec!["a", "b"]
        );
    }

    #[test]
    fn minted_oids_are_unique() {
        let mut db = Db::new();
        let a = db.mint();
        let b = db.mint();
        assert_ne!(a, b);
    }
}
