//! The catalog: a named collection of BATs plus the oid generator.
//!
//! The Monet XML mapping names relations after root-to-node paths
//! (`R(image/colors/histogram)`), so the catalog is keyed by arbitrary
//! strings. The paper warns that document-dependent mappings can grow the
//! schema; [`Db::relation_count`] exposes that size so the experiments can
//! observe it.
//!
//! Two scale features live here:
//!
//! * every relation's string tails intern into one catalog-wide
//!   [`StrPool`] — the dictionary is stored once per store, not once per
//!   column;
//! * relations restored from a v3 snapshot occupy **lazy slots**: the
//!   catalog knows each relation's name, kind and row count from the
//!   snapshot directory, but decodes the columns only on first access,
//!   so opening a 10^5-document store does not deserialize every BAT.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use serde::{Deserialize, Serialize};

use crate::bat::Bat;
use crate::error::{Error, Result};
use crate::oid::{Oid, OidGen};
use crate::persist::LazyRelation;
use crate::value::{ColumnKind, DictStats, StrPool};

/// One catalog entry: either a materialized [`Bat`] or a pending lazy
/// decode from a snapshot.
///
/// `cell` is write-once; `pending` holds the undecoded snapshot slice
/// until the first access materializes it. The `kind`/`rows` hints let
/// schema-level queries ([`Db::relation_count`],
/// [`Db::association_count`]) answer without decoding anything.
#[derive(Debug)]
struct Slot {
    cell: OnceLock<Bat>,
    pending: Mutex<Option<LazyRelation>>,
    kind: ColumnKind,
    rows: u64,
}

fn lock_pending(slot: &Slot) -> std::sync::MutexGuard<'_, Option<LazyRelation>> {
    slot.pending
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Slot {
    fn eager(bat: Bat) -> Slot {
        let kind = bat.kind();
        let rows = bat.len() as u64;
        let cell = OnceLock::new();
        let _ = cell.set(bat);
        Slot {
            cell,
            pending: Mutex::new(None),
            kind,
            rows,
        }
    }

    fn lazy(rel: LazyRelation) -> Slot {
        let kind = rel.kind();
        let rows = rel.rows();
        Slot {
            cell: OnceLock::new(),
            pending: Mutex::new(Some(rel)),
            kind,
            rows,
        }
    }

    /// The materialized BAT, decoding the pending snapshot slice on
    /// first access. Decode errors leave the slot pending so a retry
    /// reports the same error instead of "missing relation".
    fn materialize(&self, name: &str) -> Result<&Bat> {
        if let Some(b) = self.cell.get() {
            return Ok(b);
        }
        let mut pending = lock_pending(self);
        // Double-checked: another thread may have won the race while we
        // waited for the lock.
        if self.cell.get().is_none() {
            let Some(rel) = pending.take() else {
                return Err(Error::Snapshot(format!(
                    "relation {name:?}: lazy payload missing"
                )));
            };
            match rel.decode() {
                Ok(bat) => {
                    let _ = self.cell.set(bat);
                }
                Err(e) => {
                    *pending = Some(rel);
                    return Err(e);
                }
            }
        }
        drop(pending);
        self.cell
            .get()
            .ok_or_else(|| Error::Snapshot(format!("relation {name:?}: not materialized")))
    }

    fn materialized(&self) -> Option<&Bat> {
        self.cell.get()
    }

    /// Row count without forcing a decode.
    fn rows(&self) -> usize {
        match self.cell.get() {
            Some(b) => b.len(),
            None => self.rows as usize,
        }
    }
}

/// A named catalog of BATs with an embedded oid generator.
///
/// `Db` uses `&mut self` for mutation; callers that need sharing across
/// threads wrap it (the IR level gives each logical server its own `Db`,
/// which is exactly the shared-nothing layout the paper advocates).
#[derive(Debug, Serialize, Deserialize)]
pub struct Db {
    bats: BTreeMap<String, Slot>,
    next_oid: u64,
    #[serde(skip, default = "OidGen::new")]
    gen: OidGen,
    #[serde(skip)]
    pool: StrPool,
}

impl Db {
    /// An empty catalog.
    pub fn new() -> Self {
        Db {
            bats: BTreeMap::new(),
            next_oid: 1,
            gen: OidGen::new(),
            pool: StrPool::new(),
        }
    }

    /// The catalog-wide string dictionary shared by every relation.
    pub fn pool(&self) -> &StrPool {
        &self.pool
    }

    /// Mints a fresh oid unique within this database.
    pub fn mint(&mut self) -> Oid {
        let o = self.gen.mint();
        self.next_oid = o.raw() + 1;
        o
    }

    /// Registers `bat` under `name`; fails if the name is taken. The
    /// BAT's string tails (if any) are re-interned into the catalog
    /// pool so the whole store shares one dictionary.
    pub fn create(&mut self, name: impl Into<String>, mut bat: Bat) -> Result<()> {
        let name = name.into();
        if self.bats.contains_key(&name) {
            return Err(Error::BatExists(name));
        }
        bat.adopt_pool(&self.pool);
        self.bats.insert(name, Slot::eager(bat));
        Ok(())
    }

    /// Removes and returns the BAT under `name` (materializing it if it
    /// was still a lazy snapshot slot).
    pub fn drop_bat(&mut self, name: &str) -> Result<Bat> {
        {
            let slot = self
                .bats
                .get(name)
                .ok_or_else(|| Error::NoSuchBat(name.to_owned()))?;
            slot.materialize(name)?;
        }
        let slot = self
            .bats
            .remove(name)
            .ok_or_else(|| Error::NoSuchBat(name.to_owned()))?;
        slot.cell
            .into_inner()
            .ok_or_else(|| Error::Snapshot(format!("relation {name:?}: not materialized")))
    }

    /// Immutable access to a BAT. First access to a lazily restored
    /// relation decodes it here; decode failures surface as
    /// [`Error::Snapshot`].
    pub fn get(&self, name: &str) -> Result<&Bat> {
        match self.bats.get(name) {
            Some(slot) => slot.materialize(name),
            None => Err(Error::NoSuchBat(name.to_owned())),
        }
    }

    /// Mutable access to a BAT (materializing a lazy slot first).
    pub fn get_mut(&mut self, name: &str) -> Result<&mut Bat> {
        let slot = self
            .bats
            .get_mut(name)
            .ok_or_else(|| Error::NoSuchBat(name.to_owned()))?;
        slot.materialize(name)?;
        slot.cell
            .get_mut()
            .ok_or_else(|| Error::Snapshot(format!("relation {name:?}: not materialized")))
    }

    /// Returns the BAT under `name`, creating an empty one of `kind`
    /// first if it does not exist. The bulkloader's workhorse.
    ///
    /// # Panics
    /// Panics if `name` is a lazily restored relation whose snapshot
    /// slice fails to decode — impossible for snapshots that passed the
    /// open-time CRC check, and the bulkload path only ever touches
    /// relations it created.
    pub fn get_or_create(&mut self, name: &str, kind: ColumnKind) -> &mut Bat {
        let pool = self.pool.clone();
        let slot = self
            .bats
            .entry(name.to_owned())
            .or_insert_with(|| Slot::eager(Bat::with_kind_in(kind, &pool)));
        slot.materialize(name)
            .unwrap_or_else(|e| panic!("relation {name:?}: lazy decode failed: {e}"));
        slot.cell
            .get_mut()
            .unwrap_or_else(|| panic!("relation {name:?}: not materialized"))
    }

    /// Whether a BAT named `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.bats.contains_key(name)
    }

    /// The tail kind of relation `name`, if it exists. Answered from
    /// the snapshot directory for lazy slots — no decode needed.
    pub fn relation_kind(&self, name: &str) -> Option<ColumnKind> {
        self.bats.get(name).map(|s| s.kind)
    }

    /// Names of all relations, sorted. Does not materialize lazy slots.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.bats.keys().map(String::as_str)
    }

    /// Number of relations — the "database schema size" the paper's
    /// document-dependent mapping discussion is concerned with.
    pub fn relation_count(&self) -> usize {
        self.bats.len()
    }

    /// Total number of stored associations across all relations. Uses
    /// the snapshot directory's row counts for relations not yet
    /// materialized — no decode needed.
    pub fn association_count(&self) -> usize {
        self.bats.values().map(Slot::rows).sum()
    }

    /// Number of relations whose columns are actually decoded in
    /// memory (the rest are lazy snapshot slots).
    pub fn materialized_count(&self) -> usize {
        self.bats
            .values()
            .filter(|s| s.materialized().is_some())
            .count()
    }

    /// Estimated heap bytes held by materialized relations plus the
    /// shared dictionary payload. Lazy slots cost only their directory
    /// entry.
    pub fn resident_bytes(&self) -> usize {
        let bats: usize = self
            .bats
            .values()
            .filter_map(Slot::materialized)
            .map(Bat::resident_bytes)
            .sum();
        // Dictionary: payload bytes + map/vec entry overhead estimate.
        let stats = self.pool.stats();
        bats + 2 * stats.bytes + stats.entries * 56
    }

    /// Statistics of the shared string dictionary.
    pub fn dict_stats(&self) -> DictStats {
        self.pool.stats()
    }

    pub(crate) fn next_oid_raw(&self) -> u64 {
        self.next_oid.max(self.gen.peek().raw())
    }

    /// Assembles a catalog from a snapshot: oid watermark, shared
    /// dictionary, and per-relation slots (lazy or already decoded).
    pub(crate) fn from_snapshot_parts(
        next: u64,
        pool: StrPool,
        lazy: Vec<(String, LazyRelation)>,
        eager: Vec<(String, Bat)>,
    ) -> Db {
        let mut bats = BTreeMap::new();
        for (name, rel) in lazy {
            bats.insert(name, Slot::lazy(rel));
        }
        for (name, bat) in eager {
            bats.insert(name, Slot::eager(bat));
        }
        Db {
            bats,
            next_oid: next,
            gen: OidGen::resume_after(Oid::from_raw(next.saturating_sub(1))),
            pool,
        }
    }

    /// Resets the oid generator to continue after `next - 1` and rebuilds
    /// the lookup indexes of materialized relations (lazy slots build
    /// theirs at decode time). Used by snapshot restore.
    pub(crate) fn restore_state(&mut self, next: u64) {
        self.next_oid = next;
        self.gen = OidGen::resume_after(Oid::from_raw(next.saturating_sub(1)));
        for slot in self.bats.values_mut() {
            if let Some(bat) = slot.cell.get_mut() {
                bat.refresh_index();
            }
        }
    }
}

impl Default for Db {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn create_get_drop() {
        let mut db = Db::new();
        db.create("r", Bat::new_int()).unwrap();
        assert!(db.contains("r"));
        assert!(matches!(
            db.create("r", Bat::new_int()),
            Err(Error::BatExists(_))
        ));
        db.drop_bat("r").unwrap();
        assert!(matches!(db.get("r"), Err(Error::NoSuchBat(_))));
    }

    #[test]
    fn get_or_create_is_idempotent() {
        let mut db = Db::new();
        let o = db.mint();
        db.get_or_create("x", ColumnKind::Int)
            .append_int(o, 1)
            .unwrap();
        db.get_or_create("x", ColumnKind::Int)
            .append_int(o, 2)
            .unwrap();
        assert_eq!(db.get("x").unwrap().len(), 2);
        assert_eq!(db.relation_count(), 1);
    }

    #[test]
    fn counters_track_contents() {
        let mut db = Db::new();
        let o = db.mint();
        db.get_or_create("a", ColumnKind::Str)
            .append_str(o, "v")
            .unwrap();
        db.get_or_create("b", ColumnKind::Int)
            .append_int(o, 3)
            .unwrap();
        assert_eq!(db.relation_count(), 2);
        assert_eq!(db.association_count(), 2);
        assert_eq!(
            db.relation_names().collect::<Vec<_>>(),
            vec!["a", "b"]
        );
    }

    #[test]
    fn minted_oids_are_unique() {
        let mut db = Db::new();
        let a = db.mint();
        let b = db.mint();
        assert_ne!(a, b);
    }

    #[test]
    fn relations_share_the_catalog_dictionary() {
        let mut db = Db::new();
        let o = db.mint();
        db.get_or_create("a", ColumnKind::Str)
            .append_str(o, "shared")
            .unwrap();
        db.get_or_create("b", ColumnKind::Str)
            .append_str(o, "shared")
            .unwrap();
        let stats = db.dict_stats();
        assert_eq!(stats.entries, 1, "one dictionary entry across relations");
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn created_bat_is_rehomed_into_catalog_pool() {
        let mut standalone = Bat::new_str();
        standalone.append_str(Oid::from_raw(1), "moved").unwrap();
        let mut db = Db::new();
        db.pool().intern("pre-existing");
        db.create("r", standalone).unwrap();
        assert_eq!(db.get("r").unwrap().select_str_eq("moved").len(), 1);
        assert_eq!(db.dict_stats().entries, 2);
    }
}
