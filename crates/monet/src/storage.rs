//! Pluggable storage backends for the durability layer.
//!
//! Every byte the WAL and the checkpointer touch goes through a
//! [`StorageBackend`], so the whole durability path can run against the
//! real filesystem ([`FsBackend`]) or a deterministic fault-injecting
//! wrapper ([`FaultyBackend`]) driven by a [`faults::FaultPlan`]. The
//! wrapper consults the `disk:*` label namespace: operations on WAL
//! segments (`*.wal`) decide under `disk:wal`, everything else
//! (snapshots, manifests) under `disk:snapshot`.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use faults::{FaultPlan, IoFault};

use crate::error::{Error, Result};

/// The operations the durability layer needs from a disk.
///
/// Implementations must be shareable across threads; the engine keeps
/// one backend behind an `Arc` for the WAL, the checkpointer and
/// recovery alike.
pub trait StorageBackend: Send + Sync + std::fmt::Debug {
    /// Reads a whole file.
    fn read(&self, path: &Path) -> Result<Vec<u8>>;
    /// Creates (or truncates) `path` with `bytes`. Not atomic — pair
    /// with [`StorageBackend::rename`] for atomic replacement.
    fn write(&self, path: &Path, bytes: &[u8]) -> Result<()>;
    /// Appends `bytes` to `path`, creating it if missing.
    fn append(&self, path: &Path, bytes: &[u8]) -> Result<()>;
    /// Forces `path` (a file or a directory) to stable storage.
    fn sync(&self, path: &Path) -> Result<()>;
    /// Atomically replaces `to` with `from`.
    fn rename(&self, from: &Path, to: &Path) -> Result<()>;
    /// Removes a file; removing a missing file is an error.
    fn remove(&self, path: &Path) -> Result<()>;
    /// File names (not full paths) inside `dir`, sorted.
    fn list(&self, dir: &Path) -> Result<Vec<String>>;
    /// Creates `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> Result<()>;
    /// Whether `path` exists.
    fn exists(&self, path: &Path) -> bool;
}

fn io_err(path: &Path, op: &str, e: impl std::fmt::Display) -> Error {
    Error::Io(format!("{op} {}: {e}", path.display()))
}

/// The real filesystem.
#[derive(Debug, Default, Clone, Copy)]
pub struct FsBackend;

impl FsBackend {
    /// A shareable filesystem backend.
    pub fn shared() -> Arc<dyn StorageBackend> {
        Arc::new(FsBackend)
    }
}

impl StorageBackend for FsBackend {
    fn read(&self, path: &Path) -> Result<Vec<u8>> {
        std::fs::read(path).map_err(|e| io_err(path, "read", e))
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> Result<()> {
        std::fs::write(path, bytes).map_err(|e| io_err(path, "write", e))
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> Result<()> {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| io_err(path, "open-append", e))?;
        f.write_all(bytes).map_err(|e| io_err(path, "append", e))
    }

    fn sync(&self, path: &Path) -> Result<()> {
        let f = std::fs::File::open(path).map_err(|e| io_err(path, "open-sync", e))?;
        f.sync_all().map_err(|e| io_err(path, "fsync", e))
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        std::fs::rename(from, to).map_err(|e| io_err(from, "rename", e))
    }

    fn remove(&self, path: &Path) -> Result<()> {
        std::fs::remove_file(path).map_err(|e| io_err(path, "remove", e))
    }

    fn list(&self, dir: &Path) -> Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir).map_err(|e| io_err(dir, "list", e))? {
            let entry = entry.map_err(|e| io_err(dir, "list", e))?;
            names.push(entry.file_name().to_string_lossy().into_owned());
        }
        names.sort();
        Ok(names)
    }

    fn create_dir_all(&self, dir: &Path) -> Result<()> {
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, "mkdir", e))
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// The fault-plan label a path decides under: WAL segments are
/// `disk:wal`, snapshot/manifest files `disk:snapshot`.
pub fn site_label(path: &Path) -> &'static str {
    match path.extension().and_then(|e| e.to_str()) {
        Some("wal") => "disk:wal",
        _ => "disk:snapshot",
    }
}

/// A backend wrapper that injects deterministic disk faults.
///
/// Write-shaped faults: [`IoFault::TornWrite`] persists a prefix then
/// fails, [`IoFault::BitFlip`] silently corrupts one bit,
/// [`IoFault::NoSpace`] fails before any byte lands. Read-shaped
/// faults: [`IoFault::ShortRead`] truncates the returned buffer,
/// [`IoFault::BitFlip`] flips a bit of it. [`IoFault::FsyncFail`] fails
/// `sync`; `rename` fails on [`IoFault::NoSpace`]. Kinds that make no
/// sense for an operation (e.g. a torn write during a read) proceed
/// normally, so one probabilistic spec can drive every site. Metadata
/// operations (`list`, `exists`, `create_dir_all`) are never faulted.
#[derive(Debug)]
pub struct FaultyBackend {
    inner: Arc<dyn StorageBackend>,
    plan: Arc<FaultPlan>,
}

impl FaultyBackend {
    /// Wraps `inner`, deciding every data operation through `plan`.
    pub fn new(inner: Arc<dyn StorageBackend>, plan: Arc<FaultPlan>) -> Self {
        FaultyBackend { inner, plan }
    }

    /// A shareable fault-injecting filesystem backend.
    pub fn shared(plan: Arc<FaultPlan>) -> Arc<dyn StorageBackend> {
        Arc::new(FaultyBackend::new(FsBackend::shared(), plan))
    }

    fn decide(&self, path: &Path, len: usize) -> IoFault {
        self.plan.decide_io(site_label(path), len)
    }
}

fn flip_bit(bytes: &[u8], at: usize) -> Vec<u8> {
    let mut out = bytes.to_vec();
    if !out.is_empty() {
        let i = at.min(out.len() - 1);
        out[i] ^= 1;
    }
    out
}

impl StorageBackend for FaultyBackend {
    fn read(&self, path: &Path) -> Result<Vec<u8>> {
        let bytes = self.inner.read(path)?;
        match self.decide(path, bytes.len()) {
            IoFault::ShortRead => {
                let keep = bytes.len() / 2;
                Ok(bytes[..keep].to_vec())
            }
            IoFault::BitFlip { at } => Ok(flip_bit(&bytes, at)),
            IoFault::NoSpace => Err(io_err(path, "read", "injected I/O error")),
            _ => Ok(bytes),
        }
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> Result<()> {
        match self.decide(path, bytes.len()) {
            IoFault::TornWrite { at } => {
                let keep = at.min(bytes.len());
                self.inner.write(path, &bytes[..keep])?;
                Err(io_err(path, "write", "injected torn write"))
            }
            IoFault::BitFlip { at } => self.inner.write(path, &flip_bit(bytes, at)),
            IoFault::NoSpace => Err(io_err(path, "write", "injected ENOSPC")),
            _ => self.inner.write(path, bytes),
        }
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> Result<()> {
        match self.decide(path, bytes.len()) {
            IoFault::TornWrite { at } => {
                let keep = at.min(bytes.len());
                self.inner.append(path, &bytes[..keep])?;
                Err(io_err(path, "append", "injected torn write"))
            }
            IoFault::BitFlip { at } => self.inner.append(path, &flip_bit(bytes, at)),
            IoFault::NoSpace => Err(io_err(path, "append", "injected ENOSPC")),
            _ => self.inner.append(path, bytes),
        }
    }

    fn sync(&self, path: &Path) -> Result<()> {
        match self.decide(path, 0) {
            IoFault::FsyncFail => Err(io_err(path, "fsync", "injected fsync failure")),
            _ => self.inner.sync(path),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        match self.decide(to, 0) {
            IoFault::NoSpace => Err(io_err(to, "rename", "injected I/O error")),
            _ => self.inner.rename(from, to),
        }
    }

    fn remove(&self, path: &Path) -> Result<()> {
        self.inner.remove(path)
    }

    fn list(&self, dir: &Path) -> Result<Vec<String>> {
        self.inner.list(dir)
    }

    fn create_dir_all(&self, dir: &Path) -> Result<()> {
        self.inner.create_dir_all(dir)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

/// Writes `bytes` to `path` atomically: write to `<path>.tmp`, fsync,
/// rename over `path`, fsync the parent directory. A crash at any point
/// leaves either the old file or the new one — never a mix.
pub fn write_atomic(backend: &dyn StorageBackend, path: &Path, bytes: &[u8]) -> Result<()> {
    let mut tmp: PathBuf = path.to_path_buf();
    let mut name = tmp
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .ok_or_else(|| Error::Io(format!("no file name in {}", path.display())))?;
    name.push_str(".tmp");
    tmp.set_file_name(name);
    backend.write(&tmp, bytes)?;
    backend.sync(&tmp)?;
    backend.rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        backend.sync(parent)?;
    }
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("monet_storage_{name}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn fs_backend_round_trips() {
        let dir = tmp_dir("fs");
        let b = FsBackend;
        let p = dir.join("a.snap");
        b.write(&p, b"hello").unwrap();
        b.append(&p, b" world").unwrap();
        b.sync(&p).unwrap();
        assert_eq!(b.read(&p).unwrap(), b"hello world");
        assert!(b.exists(&p));
        assert!(b.list(&dir).unwrap().contains(&"a.snap".to_owned()));
        b.remove(&p).unwrap();
        assert!(!b.exists(&p));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn labels_split_wal_from_snapshot() {
        assert_eq!(site_label(Path::new("/x/wal-000.wal")), "disk:wal");
        assert_eq!(site_label(Path::new("/x/views-1.snap")), "disk:snapshot");
        assert_eq!(site_label(Path::new("/x/MANIFEST")), "disk:snapshot");
    }

    #[test]
    fn torn_write_persists_a_prefix_then_fails() {
        let dir = tmp_dir("torn");
        let plan = FaultPlan::seeded(1)
            .with_io_script("disk:snapshot", vec![IoFault::TornWrite { at: 3 }])
            .shared();
        let b = FaultyBackend::new(FsBackend::shared(), plan);
        let p = dir.join("x.snap");
        assert!(matches!(b.write(&p, b"abcdef"), Err(Error::Io(_))));
        assert_eq!(std::fs::read(&p).unwrap(), b"abc");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flip_corrupts_silently() {
        let dir = tmp_dir("flip");
        let plan = FaultPlan::seeded(2)
            .with_io_script("disk:snapshot", vec![IoFault::BitFlip { at: 1 }])
            .shared();
        let b = FaultyBackend::new(FsBackend::shared(), plan);
        let p = dir.join("x.snap");
        b.write(&p, b"abc").unwrap();
        let got = std::fs::read(&p).unwrap();
        assert_ne!(got, b"abc");
        assert_eq!(got.len(), 3);
        assert_eq!(got[1] ^ 1, b'b');
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn short_read_and_fsync_failures() {
        let dir = tmp_dir("short");
        let p = dir.join("x.snap");
        std::fs::write(&p, b"0123456789").unwrap();
        let plan = FaultPlan::seeded(3)
            .with_io_script("disk:snapshot", vec![IoFault::ShortRead, IoFault::FsyncFail])
            .shared();
        let b = FaultyBackend::new(FsBackend::shared(), plan);
        assert_eq!(b.read(&p).unwrap(), b"01234");
        assert!(matches!(b.sync(&p), Err(Error::Io(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_atomic_replaces_or_leaves_the_old_file() {
        let dir = tmp_dir("atomic");
        let p = dir.join("MANIFEST");
        let fs: Arc<dyn StorageBackend> = FsBackend::shared();
        write_atomic(fs.as_ref(), &p, b"v1").unwrap();
        assert_eq!(fs.read(&p).unwrap(), b"v1");
        // Crash during the tmp write: the old file survives untouched.
        let plan = FaultPlan::seeded(4)
            .with_io_script("disk:snapshot", vec![IoFault::TornWrite { at: 1 }])
            .shared();
        let faulty = FaultyBackend::new(Arc::clone(&fs), plan);
        assert!(write_atomic(&faulty, &p, b"v2-longer").is_err());
        assert_eq!(fs.read(&p).unwrap(), b"v1");
        std::fs::remove_dir_all(&dir).ok();
    }
}
