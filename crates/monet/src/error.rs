//! Error type for the store.

use std::fmt;

use crate::value::ColumnKind;

/// Errors raised by the BAT store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A value of the wrong kind was pushed into a typed column, or an
    /// operation required a specific tail kind.
    TypeMismatch {
        /// The kind the column holds / the operation requires.
        expected: ColumnKind,
        /// The kind that was supplied.
        got: ColumnKind,
    },
    /// A named BAT does not exist in the catalog.
    NoSuchBat(String),
    /// A BAT with this name already exists.
    BatExists(String),
    /// A snapshot could not be encoded or decoded.
    Snapshot(String),
    /// A write-ahead-log operation failed (append, flush, replay).
    Wal(String),
    /// A storage-backend operation failed (the durable analogue of
    /// `std::io::Error`; carries the backend's message).
    Io(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: column holds {expected}, got {got}")
            }
            Error::NoSuchBat(name) => write!(f, "no such BAT: {name}"),
            Error::BatExists(name) => write!(f, "BAT already exists: {name}"),
            Error::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
            Error::Wal(msg) => write!(f, "WAL error: {msg}"),
            Error::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias for store operations.
pub type Result<T> = std::result::Result<T, Error>;
