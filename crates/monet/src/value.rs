//! Tail value domains.
//!
//! The paper's feature grammar language declares atoms of type `url`, `str`,
//! `int`, `flt` and `bit` (Figures 6 and 7); the Monet transform needs
//! `oid`, `string` and `int` tails. [`Value`] is the union of those
//! domains (`url` is stored as a string — its ADT behaviour lives in the
//! grammar layer, not in the store).

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::oid::Oid;

/// A dynamically typed tail value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// An object identifier (parent→child associations).
    Oid(Oid),
    /// A 64-bit integer (ranks, frame numbers, counts).
    Int(i64),
    /// A 64-bit float (features, scores). NaN is not a legal stored value;
    /// comparisons use IEEE total order so accidental NaNs stay total.
    Flt(f64),
    /// A string (labels, CDATA, terms, URLs).
    Str(String),
    /// A boolean (whitebox detector outcomes such as `netplay`).
    Bit(bool),
}

impl Value {
    /// The kind tag of this value.
    pub fn kind(&self) -> ColumnKind {
        match self {
            Value::Oid(_) => ColumnKind::Oid,
            Value::Int(_) => ColumnKind::Int,
            Value::Flt(_) => ColumnKind::Flt,
            Value::Str(_) => ColumnKind::Str,
            Value::Bit(_) => ColumnKind::Bit,
        }
    }

    /// Returns the contained oid, if any.
    pub fn as_oid(&self) -> Option<Oid> {
        match self {
            Value::Oid(o) => Some(*o),
            _ => None,
        }
    }

    /// Returns the contained integer, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the contained float; integers widen losslessly enough for
    /// predicate evaluation (`frameNo <= 170.0` in the paper's netplay
    /// detector compares an int against a float literal).
    pub fn as_flt(&self) -> Option<f64> {
        match self {
            Value::Flt(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the contained string slice, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the contained boolean, if any.
    pub fn as_bit(&self) -> Option<bool> {
        match self {
            Value::Bit(b) => Some(*b),
            _ => None,
        }
    }

    /// A total order across same-kind values (floats via IEEE total order).
    /// Cross-kind comparisons order by kind tag, which keeps sorting total
    /// without claiming cross-kind semantics.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Oid(a), Oid(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Flt(a), Flt(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Bit(a), Bit(b)) => a.cmp(b),
            _ => self.kind().rank().cmp(&other.kind().rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Oid(o) => write!(f, "{o}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Flt(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bit(b) => write!(f, "{b}"),
        }
    }
}

impl From<Oid> for Value {
    fn from(o: Oid) -> Self {
        Value::Oid(o)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Flt(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bit(b)
    }
}

/// The static type of a BAT tail column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnKind {
    /// `oid × oid` — parent/child associations.
    Oid,
    /// `oid × int` — ranks, counts, frame numbers.
    Int,
    /// `oid × float` — features and scores.
    Flt,
    /// `oid × string` — labels, CDATA, terms.
    Str,
    /// `oid × bool` — predicate outcomes.
    Bit,
}

impl ColumnKind {
    fn rank(self) -> u8 {
        match self {
            ColumnKind::Oid => 0,
            ColumnKind::Int => 1,
            ColumnKind::Flt => 2,
            ColumnKind::Str => 3,
            ColumnKind::Bit => 4,
        }
    }
}

impl fmt::Display for ColumnKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColumnKind::Oid => "oid",
            ColumnKind::Int => "int",
            ColumnKind::Flt => "flt",
            ColumnKind::Str => "str",
            ColumnKind::Bit => "bit",
        };
        f.write_str(s)
    }
}

/// A typed tail column: one variant per [`ColumnKind`], stored densely.
///
/// Keeping tails in homogeneous vectors (instead of `Vec<Value>`) is what
/// makes scans over a path relation cache-friendly — the property the
/// paper's "semantic clustering" argument rests on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Column {
    /// Oid tails.
    Oid(Vec<Oid>),
    /// Integer tails.
    Int(Vec<i64>),
    /// Float tails.
    Flt(Vec<f64>),
    /// String tails.
    Str(Vec<String>),
    /// Boolean tails.
    Bit(Vec<bool>),
}

impl Column {
    /// An empty column of the given kind.
    pub fn empty(kind: ColumnKind) -> Self {
        match kind {
            ColumnKind::Oid => Column::Oid(Vec::new()),
            ColumnKind::Int => Column::Int(Vec::new()),
            ColumnKind::Flt => Column::Flt(Vec::new()),
            ColumnKind::Str => Column::Str(Vec::new()),
            ColumnKind::Bit => Column::Bit(Vec::new()),
        }
    }

    /// The kind of this column.
    pub fn kind(&self) -> ColumnKind {
        match self {
            Column::Oid(_) => ColumnKind::Oid,
            Column::Int(_) => ColumnKind::Int,
            Column::Flt(_) => ColumnKind::Flt,
            Column::Str(_) => ColumnKind::Str,
            Column::Bit(_) => ColumnKind::Bit,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            Column::Oid(v) => v.len(),
            Column::Int(v) => v.len(),
            Column::Flt(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::Bit(v) => v.len(),
        }
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at `idx` (boxed into the dynamic [`Value`]).
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds, like slice indexing.
    pub fn get(&self, idx: usize) -> Value {
        match self {
            Column::Oid(v) => Value::Oid(v[idx]),
            Column::Int(v) => Value::Int(v[idx]),
            Column::Flt(v) => Value::Flt(v[idx]),
            Column::Str(v) => Value::Str(v[idx].clone()),
            Column::Bit(v) => Value::Bit(v[idx]),
        }
    }

    /// Appends a dynamic value; fails on kind mismatch.
    pub fn push(&mut self, value: Value) -> Result<(), (ColumnKind, ColumnKind)> {
        match (self, value) {
            (Column::Oid(v), Value::Oid(x)) => v.push(x),
            (Column::Int(v), Value::Int(x)) => v.push(x),
            (Column::Flt(v), Value::Flt(x)) => v.push(x),
            (Column::Str(v), Value::Str(x)) => v.push(x),
            (Column::Bit(v), Value::Bit(x)) => v.push(x),
            (col, value) => return Err((col.kind(), value.kind())),
        }
        Ok(())
    }

    /// Removes the entry at `idx` by swapping with the last entry.
    pub(crate) fn swap_remove(&mut self, idx: usize) {
        match self {
            Column::Oid(v) => {
                v.swap_remove(idx);
            }
            Column::Int(v) => {
                v.swap_remove(idx);
            }
            Column::Flt(v) => {
                v.swap_remove(idx);
            }
            Column::Str(v) => {
                v.swap_remove(idx);
            }
            Column::Bit(v) => {
                v.swap_remove(idx);
            }
        }
    }

    /// Overwrites the entry at `idx`; fails on kind mismatch.
    pub(crate) fn set(&mut self, idx: usize, value: Value) -> Result<(), (ColumnKind, ColumnKind)> {
        match (self, value) {
            (Column::Oid(v), Value::Oid(x)) => v[idx] = x,
            (Column::Int(v), Value::Int(x)) => v[idx] = x,
            (Column::Flt(v), Value::Flt(x)) => v[idx] = x,
            (Column::Str(v), Value::Str(x)) => v[idx] = x,
            (Column::Bit(v), Value::Bit(x)) => v[idx] = x,
            (col, value) => return Err((col.kind(), value.kind())),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors_round_trip() {
        assert_eq!(Value::from(7i64).as_int(), Some(7));
        assert_eq!(Value::from(1.5f64).as_flt(), Some(1.5));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from(true).as_bit(), Some(true));
        assert_eq!(
            Value::from(Oid::from_raw(3)).as_oid(),
            Some(Oid::from_raw(3))
        );
    }

    #[test]
    fn int_widens_to_float_for_predicates() {
        // Paper, Fig. 7: `player.yPos <= 170.0` mixes int/float domains.
        assert_eq!(Value::Int(170).as_flt(), Some(170.0));
    }

    #[test]
    fn total_cmp_is_total_on_floats() {
        let a = Value::Flt(f64::NAN);
        let b = Value::Flt(1.0);
        // No panic, some consistent order.
        let ord1 = a.total_cmp(&b);
        let ord2 = b.total_cmp(&a);
        assert_eq!(ord1, ord2.reverse());
    }

    #[test]
    fn column_push_rejects_kind_mismatch() {
        let mut c = Column::empty(ColumnKind::Int);
        assert!(c.push(Value::Int(1)).is_ok());
        let err = c.push(Value::Str("no".into())).unwrap_err();
        assert_eq!(err, (ColumnKind::Int, ColumnKind::Str));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn column_get_returns_stored_value() {
        let mut c = Column::empty(ColumnKind::Str);
        c.push(Value::from("alpha")).unwrap();
        c.push(Value::from("beta")).unwrap();
        assert_eq!(c.get(1), Value::from("beta"));
    }
}
