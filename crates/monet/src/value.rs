//! Tail value domains.
//!
//! The paper's feature grammar language declares atoms of type `url`, `str`,
//! `int`, `flt` and `bit` (Figures 6 and 7); the Monet transform needs
//! `oid`, `string` and `int` tails. [`Value`] is the union of those
//! domains (`url` is stored as a string — its ADT behaviour lives in the
//! grammar layer, not in the store).

use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use serde::{Deserialize, Serialize};

use crate::oid::Oid;

/// A dynamically typed tail value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// An object identifier (parent→child associations).
    Oid(Oid),
    /// A 64-bit integer (ranks, frame numbers, counts).
    Int(i64),
    /// A 64-bit float (features, scores). NaN is not a legal stored value;
    /// comparisons use IEEE total order so accidental NaNs stay total.
    Flt(f64),
    /// A string (labels, CDATA, terms, URLs).
    Str(String),
    /// A boolean (whitebox detector outcomes such as `netplay`).
    Bit(bool),
}

impl Value {
    /// The kind tag of this value.
    pub fn kind(&self) -> ColumnKind {
        match self {
            Value::Oid(_) => ColumnKind::Oid,
            Value::Int(_) => ColumnKind::Int,
            Value::Flt(_) => ColumnKind::Flt,
            Value::Str(_) => ColumnKind::Str,
            Value::Bit(_) => ColumnKind::Bit,
        }
    }

    /// Returns the contained oid, if any.
    pub fn as_oid(&self) -> Option<Oid> {
        match self {
            Value::Oid(o) => Some(*o),
            _ => None,
        }
    }

    /// Returns the contained integer, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the contained float; integers widen losslessly enough for
    /// predicate evaluation (`frameNo <= 170.0` in the paper's netplay
    /// detector compares an int against a float literal).
    pub fn as_flt(&self) -> Option<f64> {
        match self {
            Value::Flt(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the contained string slice, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the contained boolean, if any.
    pub fn as_bit(&self) -> Option<bool> {
        match self {
            Value::Bit(b) => Some(*b),
            _ => None,
        }
    }

    /// A total order across same-kind values (floats via IEEE total order).
    /// Cross-kind comparisons order by kind tag, which keeps sorting total
    /// without claiming cross-kind semantics.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Oid(a), Oid(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Flt(a), Flt(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Bit(a), Bit(b)) => a.cmp(b),
            _ => self.kind().rank().cmp(&other.kind().rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Oid(o) => write!(f, "{o}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Flt(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bit(b) => write!(f, "{b}"),
        }
    }
}

impl From<Oid> for Value {
    fn from(o: Oid) -> Self {
        Value::Oid(o)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Flt(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bit(b)
    }
}

/// The static type of a BAT tail column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnKind {
    /// `oid × oid` — parent/child associations.
    Oid,
    /// `oid × int` — ranks, counts, frame numbers.
    Int,
    /// `oid × float` — features and scores.
    Flt,
    /// `oid × string` — labels, CDATA, terms.
    Str,
    /// `oid × bool` — predicate outcomes.
    Bit,
}

impl ColumnKind {
    fn rank(self) -> u8 {
        match self {
            ColumnKind::Oid => 0,
            ColumnKind::Int => 1,
            ColumnKind::Flt => 2,
            ColumnKind::Str => 3,
            ColumnKind::Bit => 4,
        }
    }
}

impl fmt::Display for ColumnKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColumnKind::Oid => "oid",
            ColumnKind::Int => "int",
            ColumnKind::Flt => "flt",
            ColumnKind::Str => "str",
            ColumnKind::Bit => "bit",
        };
        f.write_str(s)
    }
}

/// Aggregate statistics of a [`StrPool`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DictStats {
    /// Distinct strings interned.
    pub entries: usize,
    /// Total bytes of the interned string payloads.
    pub bytes: usize,
    /// Interning calls that found an existing entry.
    pub hits: u64,
    /// Interning calls that created a new entry.
    pub misses: u64,
}

impl DictStats {
    /// Fraction of interning calls served by an existing entry, in
    /// `[0, 1]`; `0` before any interning happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Merges another pool's stats into this one (for whole-engine
    /// gauges spanning several catalogs).
    pub fn merge(&mut self, other: &DictStats) {
        self.entries += other.entries;
        self.bytes += other.bytes;
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

#[derive(Debug, Default)]
struct PoolInner {
    /// code → string, append-only.
    strings: Vec<String>,
    /// string → code.
    map: HashMap<String, u32>,
    bytes: usize,
    hits: u64,
    misses: u64,
}

/// A shared string interner: the dictionary behind every `oid × str`
/// column of one catalog.
///
/// Codes are dense `u32`s assigned in first-appearance order, so a
/// catalog built by a deterministic sequence of inserts always assigns
/// the same codes — the property the snapshot byte-identity tests rely
/// on. The pool is append-only: codes stay valid for the lifetime of
/// the pool, even across clones (clones share the same `Arc`).
#[derive(Debug, Clone, Default)]
pub struct StrPool {
    inner: Arc<RwLock<PoolInner>>,
}

/// Read the pool even if a writer panicked mid-update: the inner state
/// is only ever extended (push + insert), so a poisoned lock still
/// guards structurally valid data.
fn read_pool(inner: &RwLock<PoolInner>) -> RwLockReadGuard<'_, PoolInner> {
    inner.read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn write_pool(inner: &RwLock<PoolInner>) -> RwLockWriteGuard<'_, PoolInner> {
    inner.write().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl StrPool {
    /// An empty pool.
    pub fn new() -> Self {
        StrPool::default()
    }

    /// Whether two handles view the same underlying dictionary.
    pub fn same_pool(&self, other: &StrPool) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Interns `s`, returning its dictionary code (existing or fresh).
    pub fn intern(&self, s: &str) -> u32 {
        let mut inner = write_pool(&self.inner);
        if let Some(&code) = inner.map.get(s) {
            inner.hits += 1;
            return code;
        }
        let code = inner.strings.len() as u32;
        inner.strings.push(s.to_owned());
        inner.map.insert(s.to_owned(), code);
        inner.bytes += s.len();
        inner.misses += 1;
        code
    }

    /// The code of `s`, if already interned. Never inserts — safe to
    /// call on query probes without perturbing the dictionary.
    pub fn lookup(&self, s: &str) -> Option<u32> {
        read_pool(&self.inner).map.get(s).copied()
    }

    /// The string behind `code`, if in range.
    pub fn get(&self, code: u32) -> Option<String> {
        read_pool(&self.inner).strings.get(code as usize).cloned()
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        read_pool(&self.inner).strings.len()
    }

    /// Whether the pool holds no strings.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregate statistics (entries, payload bytes, hit/miss counts).
    pub fn stats(&self) -> DictStats {
        let inner = read_pool(&self.inner);
        DictStats {
            entries: inner.strings.len(),
            bytes: inner.bytes,
            hits: inner.hits,
            misses: inner.misses,
        }
    }

    /// Every interned string in code order (the snapshot dictionary
    /// section).
    pub fn dump(&self) -> Vec<String> {
        read_pool(&self.inner).strings.clone()
    }

    /// Runs `f` over the string behind each code in `codes`, in order —
    /// one lock acquisition for the whole batch. Out-of-range codes
    /// (impossible for codes produced by this pool) yield `""`.
    pub fn with_decoded<F: FnMut(&str)>(&self, codes: &[u32], mut f: F) {
        let inner = read_pool(&self.inner);
        for &c in codes {
            f(inner.strings.get(c as usize).map(String::as_str).unwrap_or(""));
        }
    }

    /// Rebuilds a pool from a snapshot dictionary: strings in code
    /// order. Duplicate entries are rejected (a forged dictionary must
    /// not alias two codes to one string).
    pub fn from_dump(strings: Vec<String>) -> Result<StrPool, String> {
        let mut inner = PoolInner::default();
        for (code, s) in strings.into_iter().enumerate() {
            inner.bytes += s.len();
            if inner.map.insert(s.clone(), code as u32).is_some() {
                return Err(format!("duplicate dictionary entry {s:?}"));
            }
            inner.strings.push(s);
        }
        Ok(StrPool {
            inner: Arc::new(RwLock::new(inner)),
        })
    }
}

/// A dictionary-encoded string column: `u32` codes into a [`StrPool`].
///
/// The typed accessor pair ([`StrColumn::push`] / [`StrColumn::get`])
/// round-trips byte-identically: interning stores the exact bytes, so
/// decode returns exactly what was appended. Columns registered in a
/// [`crate::Db`] share the catalog's pool; standalone columns (join
/// results, scratch BATs) carry a private one.
#[derive(Debug, Clone)]
pub struct StrColumn {
    codes: Vec<u32>,
    pool: StrPool,
}

impl StrColumn {
    /// An empty column over a fresh private pool.
    pub fn new() -> Self {
        StrColumn {
            codes: Vec::new(),
            pool: StrPool::new(),
        }
    }

    /// An empty column interning into `pool`.
    pub fn with_pool(pool: StrPool) -> Self {
        StrColumn {
            codes: Vec::new(),
            pool,
        }
    }

    /// Reassembles a column from snapshot parts. Fails if any code
    /// falls outside the pool (hostile snapshot payload).
    pub fn from_codes(codes: Vec<u32>, pool: StrPool) -> Result<Self, String> {
        let n = pool.len() as u32;
        if let Some(bad) = codes.iter().find(|&&c| c >= n) {
            return Err(format!("dictionary code {bad} out of range (pool has {n})"));
        }
        Ok(StrColumn { codes, pool })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Appends a string (interning it), returning its code.
    pub fn push(&mut self, s: &str) -> u32 {
        let code = self.pool.intern(s);
        self.codes.push(code);
        code
    }

    /// Decodes the entry at `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds, like slice indexing.
    pub fn get(&self, idx: usize) -> String {
        self.pool
            .get(self.codes[idx])
            .unwrap_or_default()
    }

    /// The dictionary code at `idx` (no decode).
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds, like slice indexing.
    pub fn code(&self, idx: usize) -> u32 {
        self.codes[idx]
    }

    /// The raw code vector — the physical representation scans run on.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// The dictionary this column encodes against.
    pub fn pool(&self) -> &StrPool {
        &self.pool
    }

    /// The code `s` would decode from, if `s` is in the dictionary.
    /// Never inserts.
    pub fn find_code(&self, s: &str) -> Option<u32> {
        self.pool.lookup(s)
    }

    /// Decodes the whole column in one lock acquisition.
    pub fn decode_all(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.codes.len());
        self.pool.with_decoded(&self.codes, |s| out.push(s.to_owned()));
        out
    }

    /// Re-interns every entry into `pool` (used when a standalone BAT
    /// is registered in a catalog, adopting the shared dictionary).
    pub fn rehome(&mut self, pool: &StrPool) {
        if self.pool.same_pool(pool) {
            return;
        }
        let decoded = self.decode_all();
        self.codes.clear();
        for s in &decoded {
            self.codes.push(pool.intern(s));
        }
        self.pool = pool.clone();
    }

    fn swap_remove(&mut self, idx: usize) {
        self.codes.swap_remove(idx);
    }

    fn set(&mut self, idx: usize, s: &str) {
        self.codes[idx] = self.pool.intern(s);
    }

    /// Heap bytes attributable to this column (codes only — the pool is
    /// shared and accounted once per catalog).
    pub fn resident_bytes(&self) -> usize {
        self.codes.capacity() * std::mem::size_of::<u32>()
    }
}

impl Default for StrColumn {
    fn default() -> Self {
        Self::new()
    }
}

impl PartialEq for StrColumn {
    fn eq(&self, other: &Self) -> bool {
        if self.codes.len() != other.codes.len() {
            return false;
        }
        if self.pool.same_pool(&other.pool) {
            return self.codes == other.codes;
        }
        // Different dictionaries: codes are incomparable, the decoded
        // strings are the ground truth.
        self.decode_all() == other.decode_all()
    }
}

/// A typed tail column: one variant per [`ColumnKind`], stored densely.
///
/// Keeping tails in homogeneous vectors (instead of `Vec<Value>`) is what
/// makes scans over a path relation cache-friendly — the property the
/// paper's "semantic clustering" argument rests on. String tails are
/// dictionary-encoded ([`StrColumn`]): the column holds `u32` codes and
/// the strings live once in a (usually catalog-shared) [`StrPool`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Column {
    /// Oid tails.
    Oid(Vec<Oid>),
    /// Integer tails.
    Int(Vec<i64>),
    /// Float tails.
    Flt(Vec<f64>),
    /// String tails (dictionary codes).
    Str(StrColumn),
    /// Boolean tails.
    Bit(Vec<bool>),
}

impl Column {
    /// An empty column of the given kind. String columns get a fresh
    /// private pool; use [`Column::empty_with_pool`] to share a
    /// catalog dictionary.
    pub fn empty(kind: ColumnKind) -> Self {
        match kind {
            ColumnKind::Oid => Column::Oid(Vec::new()),
            ColumnKind::Int => Column::Int(Vec::new()),
            ColumnKind::Flt => Column::Flt(Vec::new()),
            ColumnKind::Str => Column::Str(StrColumn::new()),
            ColumnKind::Bit => Column::Bit(Vec::new()),
        }
    }

    /// An empty column of the given kind whose strings (if any) intern
    /// into `pool`.
    pub fn empty_with_pool(kind: ColumnKind, pool: &StrPool) -> Self {
        match kind {
            ColumnKind::Str => Column::Str(StrColumn::with_pool(pool.clone())),
            other => Column::empty(other),
        }
    }

    /// The kind of this column.
    pub fn kind(&self) -> ColumnKind {
        match self {
            Column::Oid(_) => ColumnKind::Oid,
            Column::Int(_) => ColumnKind::Int,
            Column::Flt(_) => ColumnKind::Flt,
            Column::Str(_) => ColumnKind::Str,
            Column::Bit(_) => ColumnKind::Bit,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            Column::Oid(v) => v.len(),
            Column::Int(v) => v.len(),
            Column::Flt(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::Bit(v) => v.len(),
        }
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at `idx` (boxed into the dynamic [`Value`]).
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds, like slice indexing.
    pub fn get(&self, idx: usize) -> Value {
        match self {
            Column::Oid(v) => Value::Oid(v[idx]),
            Column::Int(v) => Value::Int(v[idx]),
            Column::Flt(v) => Value::Flt(v[idx]),
            Column::Str(v) => Value::Str(v.get(idx)),
            Column::Bit(v) => Value::Bit(v[idx]),
        }
    }

    /// Appends a dynamic value; fails on kind mismatch.
    pub fn push(&mut self, value: Value) -> Result<(), (ColumnKind, ColumnKind)> {
        match (self, value) {
            (Column::Oid(v), Value::Oid(x)) => v.push(x),
            (Column::Int(v), Value::Int(x)) => v.push(x),
            (Column::Flt(v), Value::Flt(x)) => v.push(x),
            (Column::Str(v), Value::Str(x)) => {
                v.push(&x);
            }
            (Column::Bit(v), Value::Bit(x)) => v.push(x),
            (col, value) => return Err((col.kind(), value.kind())),
        }
        Ok(())
    }

    /// Removes the entry at `idx` by swapping with the last entry.
    pub(crate) fn swap_remove(&mut self, idx: usize) {
        match self {
            Column::Oid(v) => {
                v.swap_remove(idx);
            }
            Column::Int(v) => {
                v.swap_remove(idx);
            }
            Column::Flt(v) => {
                v.swap_remove(idx);
            }
            Column::Str(v) => {
                v.swap_remove(idx);
            }
            Column::Bit(v) => {
                v.swap_remove(idx);
            }
        }
    }

    /// Estimated heap bytes held by this column. String columns count
    /// their codes only — the dictionary payload is shared and
    /// accounted once per catalog pool.
    pub fn resident_bytes(&self) -> usize {
        match self {
            Column::Oid(v) => v.capacity() * std::mem::size_of::<Oid>(),
            Column::Int(v) => v.capacity() * 8,
            Column::Flt(v) => v.capacity() * 8,
            Column::Str(v) => v.resident_bytes(),
            Column::Bit(v) => v.capacity(),
        }
    }

    /// Overwrites the entry at `idx`; fails on kind mismatch.
    pub(crate) fn set(&mut self, idx: usize, value: Value) -> Result<(), (ColumnKind, ColumnKind)> {
        match (self, value) {
            (Column::Oid(v), Value::Oid(x)) => v[idx] = x,
            (Column::Int(v), Value::Int(x)) => v[idx] = x,
            (Column::Flt(v), Value::Flt(x)) => v[idx] = x,
            (Column::Str(v), Value::Str(x)) => v.set(idx, &x),
            (Column::Bit(v), Value::Bit(x)) => v[idx] = x,
            (col, value) => return Err((col.kind(), value.kind())),
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors_round_trip() {
        assert_eq!(Value::from(7i64).as_int(), Some(7));
        assert_eq!(Value::from(1.5f64).as_flt(), Some(1.5));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from(true).as_bit(), Some(true));
        assert_eq!(
            Value::from(Oid::from_raw(3)).as_oid(),
            Some(Oid::from_raw(3))
        );
    }

    #[test]
    fn int_widens_to_float_for_predicates() {
        // Paper, Fig. 7: `player.yPos <= 170.0` mixes int/float domains.
        assert_eq!(Value::Int(170).as_flt(), Some(170.0));
    }

    #[test]
    fn total_cmp_is_total_on_floats() {
        let a = Value::Flt(f64::NAN);
        let b = Value::Flt(1.0);
        // No panic, some consistent order.
        let ord1 = a.total_cmp(&b);
        let ord2 = b.total_cmp(&a);
        assert_eq!(ord1, ord2.reverse());
    }

    #[test]
    fn column_push_rejects_kind_mismatch() {
        let mut c = Column::empty(ColumnKind::Int);
        assert!(c.push(Value::Int(1)).is_ok());
        let err = c.push(Value::Str("no".into())).unwrap_err();
        assert_eq!(err, (ColumnKind::Int, ColumnKind::Str));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn column_get_returns_stored_value() {
        let mut c = Column::empty(ColumnKind::Str);
        c.push(Value::from("alpha")).unwrap();
        c.push(Value::from("beta")).unwrap();
        assert_eq!(c.get(1), Value::from("beta"));
    }

    #[test]
    fn interning_dedups_and_round_trips() {
        let pool = StrPool::new();
        let mut col = StrColumn::with_pool(pool.clone());
        let a = col.push("tennis");
        let b = col.push("grass");
        let c = col.push("tennis");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(pool.len(), 2);
        assert_eq!(col.get(0), "tennis");
        assert_eq!(col.get(1), "grass");
        assert_eq!(col.get(2), "tennis");
        let stats = pool.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn lookup_never_inserts() {
        let pool = StrPool::new();
        pool.intern("present");
        assert_eq!(pool.lookup("absent"), None);
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.stats().misses, 1);
    }

    #[test]
    fn columns_over_different_pools_compare_by_content() {
        let mut a = StrColumn::new();
        let mut b = StrColumn::new();
        // Different interleavings → different codes, same content.
        a.push("x");
        a.push("y");
        b.pool().intern("y");
        b.push("x");
        b.push("y");
        assert_eq!(a, b);
        b.push("z");
        assert_ne!(a, b);
    }

    #[test]
    fn rehome_preserves_content_and_shares_pool() {
        let shared = StrPool::new();
        shared.intern("pre-existing");
        let mut col = StrColumn::new();
        col.push("alpha");
        col.push("beta");
        let before = col.decode_all();
        col.rehome(&shared);
        assert!(col.pool().same_pool(&shared));
        assert_eq!(col.decode_all(), before);
    }

    #[test]
    fn from_dump_rejects_duplicates_and_round_trips() {
        let pool = StrPool::new();
        pool.intern("a");
        pool.intern("b");
        let dump = pool.dump();
        let restored = StrPool::from_dump(dump.clone()).unwrap();
        assert_eq!(restored.dump(), dump);
        assert_eq!(restored.lookup("b"), pool.lookup("b"));
        assert!(StrPool::from_dump(vec!["dup".into(), "dup".into()]).is_err());
    }

    #[test]
    fn from_codes_rejects_out_of_range() {
        let pool = StrPool::new();
        pool.intern("only");
        assert!(StrColumn::from_codes(vec![0, 1], pool.clone()).is_err());
        let ok = StrColumn::from_codes(vec![0, 0], pool).unwrap();
        assert_eq!(ok.decode_all(), vec!["only", "only"]);
    }
}
