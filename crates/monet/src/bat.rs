//! Binary association tables and their relational operations.
//!
//! A [`Bat`] is the unit of storage: a sequence of associations
//! `(head: Oid, tail: Value)` with a homogeneous tail type. The upper
//! levels use a small relational algebra over BATs:
//!
//! * **selections** — find heads whose tail satisfies a predicate,
//! * **lookups** — find tails for a head (hash-indexed),
//! * **joins** — `self.tail ⋈ other.head`, the backbone of path-expression
//!   evaluation in Monet XML,
//! * **semijoins** — restrict to a set of heads,
//! * **grouping / aggregation** — counts and sums per head (used by the IR
//!   level for `tf` and score accumulation),
//! * **ordering / slicing** — sort by tail, take top-N.
//!
//! Mutation is append-mostly; deletion by head exists to support the FDS's
//! incremental invalidation of stored parse trees.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::oid::Oid;
use crate::value::{Column, ColumnKind, Value};

/// A binary association table: `head: Vec<Oid>` aligned with a typed tail
/// [`Column`], plus a head-index for O(1) expected lookups.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Bat {
    head: Vec<Oid>,
    tail: Column,
    /// head oid → positions. Rebuilt on deserialisation, maintained on
    /// every mutation otherwise.
    #[serde(skip)]
    index: HashMap<Oid, Vec<u32>>,
    #[serde(skip)]
    index_valid: bool,
}

impl PartialEq for Bat {
    fn eq(&self, other: &Self) -> bool {
        self.head == other.head && self.tail == other.tail
    }
}

impl Bat {
    /// Creates an empty BAT with the given tail kind.
    pub fn with_kind(kind: ColumnKind) -> Self {
        Bat {
            head: Vec::new(),
            tail: Column::empty(kind),
            index: HashMap::new(),
            index_valid: true,
        }
    }

    /// Empty `oid × oid` BAT.
    pub fn new_oid() -> Self {
        Self::with_kind(ColumnKind::Oid)
    }
    /// Empty `oid × int` BAT.
    pub fn new_int() -> Self {
        Self::with_kind(ColumnKind::Int)
    }
    /// Empty `oid × flt` BAT.
    pub fn new_flt() -> Self {
        Self::with_kind(ColumnKind::Flt)
    }
    /// Empty `oid × str` BAT.
    pub fn new_str() -> Self {
        Self::with_kind(ColumnKind::Str)
    }
    /// Empty `oid × bit` BAT.
    pub fn new_bit() -> Self {
        Self::with_kind(ColumnKind::Bit)
    }

    /// The tail type.
    pub fn kind(&self) -> ColumnKind {
        self.tail.kind()
    }

    /// Number of associations.
    pub fn len(&self) -> usize {
        self.head.len()
    }

    /// Whether the BAT holds no associations.
    pub fn is_empty(&self) -> bool {
        self.head.is_empty()
    }

    fn ensure_index(&mut self) {
        if self.index_valid {
            return;
        }
        self.index.clear();
        for (pos, h) in self.head.iter().enumerate() {
            self.index.entry(*h).or_default().push(pos as u32);
        }
        self.index_valid = true;
    }

    /// Rebuilds the head index if needed (e.g. after deserialisation).
    /// All lookup methods call this implicitly through [`Self::positions`].
    pub fn refresh_index(&mut self) {
        self.index_valid = false;
        self.ensure_index();
    }

    /// Appends an association; fails if the value kind does not match the
    /// tail column kind.
    pub fn append(&mut self, head: Oid, value: Value) -> Result<()> {
        let pos = self.head.len() as u32;
        self.tail
            .push(value)
            .map_err(|(expected, got)| Error::TypeMismatch { expected, got })?;
        self.head.push(head);
        if self.index_valid {
            self.index.entry(head).or_default().push(pos);
        }
        Ok(())
    }

    /// Appends an `oid` tail.
    pub fn append_oid(&mut self, head: Oid, tail: Oid) -> Result<()> {
        self.append(head, Value::Oid(tail))
    }
    /// Appends an `int` tail.
    pub fn append_int(&mut self, head: Oid, tail: i64) -> Result<()> {
        self.append(head, Value::Int(tail))
    }
    /// Appends a `flt` tail.
    pub fn append_flt(&mut self, head: Oid, tail: f64) -> Result<()> {
        self.append(head, Value::Flt(tail))
    }
    /// Appends a `str` tail.
    pub fn append_str(&mut self, head: Oid, tail: impl Into<String>) -> Result<()> {
        self.append(head, Value::Str(tail.into()))
    }
    /// Appends a `bit` tail.
    pub fn append_bit(&mut self, head: Oid, tail: bool) -> Result<()> {
        self.append(head, Value::Bit(tail))
    }

    /// The association at `pos`.
    ///
    /// # Panics
    /// Panics if `pos >= self.len()`.
    pub fn at(&self, pos: usize) -> (Oid, Value) {
        (self.head[pos], self.tail.get(pos))
    }

    /// Iterates over all associations in insertion order (subject to
    /// reordering by [`Self::delete_head`], which swap-removes).
    pub fn iter(&self) -> impl Iterator<Item = (Oid, Value)> + '_ {
        (0..self.len()).map(move |i| self.at(i))
    }

    /// Iterates over the head column.
    pub fn heads(&self) -> impl Iterator<Item = Oid> + '_ {
        self.head.iter().copied()
    }

    /// Borrows the tail column.
    pub fn tail(&self) -> &Column {
        &self.tail
    }

    /// Positions of associations whose head equals `head`.
    pub fn positions(&mut self, head: Oid) -> &[u32] {
        self.ensure_index();
        self.index.get(&head).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All tails associated with `head`.
    pub fn tails_of(&mut self, head: Oid) -> Vec<Value> {
        self.ensure_index();
        match self.index.get(&head) {
            Some(ps) => ps.iter().map(|&p| self.tail.get(p as usize)).collect(),
            None => Vec::new(),
        }
    }

    /// The first tail associated with `head`, if any.
    pub fn first_tail_of(&mut self, head: Oid) -> Option<Value> {
        self.ensure_index();
        let p = *self.index.get(&head)?.first()?;
        Some(self.tail.get(p as usize))
    }

    /// Whether any association has head `head`.
    pub fn contains_head(&mut self, head: Oid) -> bool {
        self.ensure_index();
        self.index.contains_key(&head)
    }

    /// Heads whose tail satisfies `pred`. Order follows storage order;
    /// duplicates are kept (one per matching association).
    pub fn select_by(&self, mut pred: impl FnMut(&Value) -> bool) -> Vec<Oid> {
        let mut out = Vec::new();
        for i in 0..self.len() {
            let v = self.tail.get(i);
            if pred(&v) {
                out.push(self.head[i]);
            }
        }
        out
    }

    /// Heads with string tail equal to `s` (fast path, no boxing).
    pub fn select_str_eq(&self, s: &str) -> Vec<Oid> {
        match &self.tail {
            Column::Str(vs) => self
                .head
                .iter()
                .zip(vs)
                .filter(|(_, v)| v.as_str() == s)
                .map(|(h, _)| *h)
                .collect(),
            _ => Vec::new(),
        }
    }

    /// [`Self::select_str_eq`] under a caller budget: one work unit
    /// per tuple scanned, so even a physical-level relation scan is
    /// cancellable at loop granularity. Returns the typed cause when
    /// the budget runs out mid-scan.
    pub fn select_str_eq_budgeted(
        &self,
        s: &str,
        budget: &faults::Budget,
    ) -> std::result::Result<Vec<Oid>, faults::BudgetExceeded> {
        let Column::Str(vs) = &self.tail else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        for (h, v) in self.head.iter().zip(vs) {
            budget.consume(1)?;
            if v.as_str() == s {
                out.push(*h);
            }
        }
        Ok(out)
    }

    /// Heads with integer tail equal to `i`.
    pub fn select_int_eq(&self, i: i64) -> Vec<Oid> {
        match &self.tail {
            Column::Int(vs) => self
                .head
                .iter()
                .zip(vs)
                .filter(|(_, v)| **v == i)
                .map(|(h, _)| *h)
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Heads with boolean tail equal to `b`.
    pub fn select_bit_eq(&self, b: bool) -> Vec<Oid> {
        match &self.tail {
            Column::Bit(vs) => self
                .head
                .iter()
                .zip(vs)
                .filter(|(_, v)| **v == b)
                .map(|(h, _)| *h)
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Heads with oid tail equal to `o` — i.e. "find parents of `o`" when
    /// the BAT stores parent→child edges.
    pub fn select_oid_eq(&self, o: Oid) -> Vec<Oid> {
        match &self.tail {
            Column::Oid(vs) => self
                .head
                .iter()
                .zip(vs)
                .filter(|(_, v)| **v == o)
                .map(|(h, _)| *h)
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Heads with float tail in `[lo, hi]` (integers widen).
    pub fn select_flt_range(&self, lo: f64, hi: f64) -> Vec<Oid> {
        self.select_by(|v| v.as_flt().is_some_and(|f| f >= lo && f <= hi))
    }

    /// Reverses an `oid × oid` BAT: tails become heads and vice versa.
    pub fn reverse(&self) -> Result<Bat> {
        let Column::Oid(tails) = &self.tail else {
            return Err(Error::TypeMismatch {
                expected: ColumnKind::Oid,
                got: self.tail.kind(),
            });
        };
        let mut out = Bat::new_oid();
        for (h, t) in self.head.iter().zip(tails) {
            out.append_oid(*t, *h)?;
        }
        Ok(out)
    }

    /// Hash join on `self.tail = other.head`; produces
    /// `(self.head, other.tail)` associations. `self` must have oid tails.
    ///
    /// This is the kernel of path-expression evaluation: joining
    /// `R(a/b)` with `R(a/b/c)` walks one step down the document tree for
    /// a whole set of nodes at once.
    pub fn join(&self, other: &mut Bat) -> Result<Bat> {
        let Column::Oid(tails) = &self.tail else {
            return Err(Error::TypeMismatch {
                expected: ColumnKind::Oid,
                got: self.tail.kind(),
            });
        };
        other.ensure_index();
        let mut out = Bat::with_kind(other.kind());
        for (h, t) in self.head.iter().zip(tails) {
            if let Some(ps) = other.index.get(t) {
                for &p in ps {
                    out.append(*h, other.tail.get(p as usize))?;
                }
            }
        }
        Ok(out)
    }

    /// Restricts to associations whose head is in `keep`.
    pub fn semijoin(&self, keep: &std::collections::HashSet<Oid>) -> Bat {
        let mut out = Bat::with_kind(self.kind());
        for i in 0..self.len() {
            if keep.contains(&self.head[i]) {
                out.append(self.head[i], self.tail.get(i))
                    .expect("same-kind append cannot fail");
            }
        }
        out
    }

    /// Counts associations per head: an `oid × int` BAT. The IR level uses
    /// this to derive `tf` from the document/term pair relation.
    pub fn group_count(&self) -> Bat {
        let mut counts: HashMap<Oid, i64> = HashMap::new();
        for h in &self.head {
            *counts.entry(*h).or_insert(0) += 1;
        }
        let mut out = Bat::new_int();
        let mut keys: Vec<_> = counts.into_iter().collect();
        keys.sort_unstable_by_key(|(h, _)| *h);
        for (h, c) in keys {
            out.append_int(h, c).expect("int append");
        }
        out
    }

    /// Sums float tails per head: an `oid × flt` BAT (score accumulation).
    pub fn group_sum_flt(&self) -> Result<Bat> {
        let Column::Flt(tails) = &self.tail else {
            return Err(Error::TypeMismatch {
                expected: ColumnKind::Flt,
                got: self.tail.kind(),
            });
        };
        let mut sums: HashMap<Oid, f64> = HashMap::new();
        for (h, v) in self.head.iter().zip(tails) {
            *sums.entry(*h).or_insert(0.0) += v;
        }
        let mut keys: Vec<_> = sums.into_iter().collect();
        keys.sort_unstable_by_key(|(h, _)| *h);
        let mut out = Bat::new_flt();
        for (h, s) in keys {
            out.append_flt(h, s)?;
        }
        Ok(out)
    }

    /// The `n` associations with the largest tails (descending tail order,
    /// ties by head for determinism). The top-N operator of the paper's
    /// query optimiser.
    pub fn top_n(&self, n: usize) -> Vec<(Oid, Value)> {
        let mut rows: Vec<(Oid, Value)> = self.iter().collect();
        rows.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        rows.truncate(n);
        rows
    }

    /// Deletes every association with head `head`; returns how many were
    /// removed. Uses swap-removal, so storage order is not preserved.
    pub fn delete_head(&mut self, head: Oid) -> usize {
        let mut removed = 0;
        let mut i = 0;
        while i < self.head.len() {
            if self.head[i] == head {
                self.head.swap_remove(i);
                self.tail.swap_remove(i);
                removed += 1;
            } else {
                i += 1;
            }
        }
        if removed > 0 {
            self.index_valid = false;
            self.index.clear();
        }
        removed
    }

    /// Deletes every association whose head is in `heads`, in one pass —
    /// the bulk form the storage layer uses when removing whole
    /// documents (per-head deletion would invalidate and rebuild the
    /// lookup index once per node, which is quadratic in document size).
    /// Returns how many associations were removed.
    pub fn delete_heads(&mut self, heads: &std::collections::HashSet<Oid>) -> usize {
        let before = self.head.len();
        let mut i = 0;
        while i < self.head.len() {
            if heads.contains(&self.head[i]) {
                self.head.swap_remove(i);
                self.tail.swap_remove(i);
            } else {
                i += 1;
            }
        }
        let removed = before - self.head.len();
        if removed > 0 {
            self.index_valid = false;
            self.index.clear();
        }
        removed
    }

    /// Replaces the tail of the *first* association with head `head`, or
    /// appends a fresh association if none exists. Returns whether an
    /// existing association was updated.
    pub fn upsert(&mut self, head: Oid, value: Value) -> Result<bool> {
        self.ensure_index();
        if let Some(&pos) = self.index.get(&head).and_then(|ps| ps.first()) {
            self.tail
                .set(pos as usize, value)
                .map_err(|(expected, got)| Error::TypeMismatch { expected, got })?;
            Ok(true)
        } else {
            self.append(head, value)?;
            Ok(false)
        }
    }

    /// Distinct heads, in first-appearance order.
    pub fn distinct_heads(&self) -> Vec<Oid> {
        let mut seen = std::collections::HashSet::new();
        self.head.iter().copied().filter(|h| seen.insert(*h)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn oid(n: u64) -> Oid {
        Oid::from_raw(n)
    }

    #[test]
    fn append_and_lookup() {
        let mut b = Bat::new_str();
        b.append_str(oid(1), "a").unwrap();
        b.append_str(oid(1), "b").unwrap();
        b.append_str(oid(2), "c").unwrap();
        assert_eq!(b.len(), 3);
        assert_eq!(
            b.tails_of(oid(1)),
            vec![Value::from("a"), Value::from("b")]
        );
        assert_eq!(b.first_tail_of(oid(3)), None);
    }

    #[test]
    fn append_kind_mismatch_errors() {
        let mut b = Bat::new_int();
        let err = b.append(oid(1), Value::from("nope")).unwrap_err();
        assert!(matches!(err, Error::TypeMismatch { .. }));
        assert!(b.is_empty());
    }

    #[test]
    fn select_variants() {
        let mut b = Bat::new_int();
        for (h, v) in [(1, 10), (2, 20), (3, 10)] {
            b.append_int(oid(h), v).unwrap();
        }
        assert_eq!(b.select_int_eq(10), vec![oid(1), oid(3)]);
        assert_eq!(b.select_flt_range(15.0, 25.0), vec![oid(2)]);
        assert!(b.select_str_eq("x").is_empty());
    }

    #[test]
    fn reverse_swaps_columns() {
        let mut b = Bat::new_oid();
        b.append_oid(oid(1), oid(10)).unwrap();
        let r = b.reverse().unwrap();
        assert_eq!(r.at(0), (oid(10), Value::Oid(oid(1))));
    }

    #[test]
    fn reverse_requires_oid_tail() {
        let b = Bat::new_str();
        assert!(b.reverse().is_err());
    }

    #[test]
    fn join_walks_one_step() {
        // parent -> child, child -> name
        let mut edges = Bat::new_oid();
        edges.append_oid(oid(1), oid(10)).unwrap();
        edges.append_oid(oid(1), oid(11)).unwrap();
        edges.append_oid(oid(2), oid(12)).unwrap();
        let mut names = Bat::new_str();
        names.append_str(oid(10), "x").unwrap();
        names.append_str(oid(12), "y").unwrap();
        let joined = edges.join(&mut names).unwrap();
        let rows: Vec<_> = joined.iter().collect();
        assert_eq!(
            rows,
            vec![(oid(1), Value::from("x")), (oid(2), Value::from("y"))]
        );
    }

    #[test]
    fn semijoin_filters_heads() {
        let mut b = Bat::new_int();
        b.append_int(oid(1), 1).unwrap();
        b.append_int(oid(2), 2).unwrap();
        let keep: HashSet<_> = [oid(2)].into();
        let s = b.semijoin(&keep);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(oid(2), Value::Int(2))]);
    }

    #[test]
    fn group_count_counts_per_head() {
        let mut b = Bat::new_str();
        for (h, s) in [(1, "a"), (1, "b"), (2, "c"), (1, "d")] {
            b.append_str(oid(h), s).unwrap();
        }
        let g = b.group_count();
        let rows: Vec<_> = g.iter().collect();
        assert_eq!(
            rows,
            vec![(oid(1), Value::Int(3)), (oid(2), Value::Int(1))]
        );
    }

    #[test]
    fn group_sum_accumulates() {
        let mut b = Bat::new_flt();
        b.append_flt(oid(1), 0.5).unwrap();
        b.append_flt(oid(1), 0.25).unwrap();
        b.append_flt(oid(2), 1.0).unwrap();
        let mut g = b.group_sum_flt().unwrap();
        assert_eq!(g.first_tail_of(oid(1)), Some(Value::Flt(0.75)));
    }

    #[test]
    fn top_n_orders_descending_with_deterministic_ties() {
        let mut b = Bat::new_flt();
        b.append_flt(oid(3), 0.5).unwrap();
        b.append_flt(oid(1), 0.9).unwrap();
        b.append_flt(oid(2), 0.5).unwrap();
        let top = b.top_n(2);
        assert_eq!(top[0].0, oid(1));
        assert_eq!(top[1].0, oid(2)); // tie broken by smaller head
    }

    #[test]
    fn delete_head_removes_all_and_invalidates_index() {
        let mut b = Bat::new_int();
        b.append_int(oid(1), 1).unwrap();
        b.append_int(oid(2), 2).unwrap();
        b.append_int(oid(1), 3).unwrap();
        assert_eq!(b.delete_head(oid(1)), 2);
        assert_eq!(b.len(), 1);
        assert!(!b.contains_head(oid(1)));
        assert!(b.contains_head(oid(2)));
    }

    #[test]
    fn delete_heads_bulk_matches_per_head_semantics() {
        let build = || {
            let mut b = Bat::new_int();
            for (h, v) in [(1, 1), (2, 2), (1, 3), (3, 4), (2, 5)] {
                b.append_int(oid(h), v).unwrap();
            }
            b
        };
        let victims: HashSet<Oid> = [oid(1), oid(3)].into();
        let mut bulk = build();
        let removed = bulk.delete_heads(&victims);
        assert_eq!(removed, 3);
        let mut one_by_one = build();
        let mut removed2 = 0;
        for v in &victims {
            removed2 += one_by_one.delete_head(*v);
        }
        assert_eq!(removed, removed2);
        let key = |b: &Bat| {
            let mut v: Vec<_> = b.iter().collect();
            v.sort_by_key(|(h, _)| *h);
            v
        };
        assert_eq!(key(&bulk), key(&one_by_one));
        assert!(bulk.contains_head(oid(2)));
        assert!(!bulk.contains_head(oid(1)));
    }

    #[test]
    fn upsert_updates_then_inserts() {
        let mut b = Bat::new_str();
        assert!(!b.upsert(oid(1), Value::from("a")).unwrap());
        assert!(b.upsert(oid(1), Value::from("b")).unwrap());
        assert_eq!(b.len(), 1);
        assert_eq!(b.first_tail_of(oid(1)), Some(Value::from("b")));
    }

    #[test]
    fn distinct_heads_preserves_first_appearance() {
        let mut b = Bat::new_int();
        for h in [2, 1, 2, 3, 1] {
            b.append_int(oid(h), 0).unwrap();
        }
        assert_eq!(b.distinct_heads(), vec![oid(2), oid(1), oid(3)]);
    }
}
