//! Binary association tables and their relational operations.
//!
//! A [`Bat`] is the unit of storage: a sequence of associations
//! `(head: Oid, tail: Value)` with a homogeneous tail type. The upper
//! levels use a small relational algebra over BATs:
//!
//! * **selections** — find heads whose tail satisfies a predicate,
//! * **lookups** — find tails for a head (hash-indexed),
//! * **joins** — `self.tail ⋈ other.head`, the backbone of path-expression
//!   evaluation in Monet XML,
//! * **semijoins** — restrict to a set of heads,
//! * **grouping / aggregation** — counts and sums per head (used by the IR
//!   level for `tf` and score accumulation),
//! * **ordering / slicing** — sort by tail, take top-N.
//!
//! Mutation is append-mostly; deletion by head exists to support the FDS's
//! incremental invalidation of stored parse trees.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::oid::Oid;
use crate::value::{Column, ColumnKind, StrPool, Value};

/// Head-lookup index: a sorted-run base over a loaded prefix plus a hash
/// overlay for rows appended since.
///
/// The base is three flat vectors — `runs` (distinct heads, ascending),
/// `offsets` (`runs.len() + 1` cumulative counts) and `slots` (row
/// positions grouped by head, ascending within a head). Unlike the old
/// per-head `HashMap<Oid, Vec<u32>>` it allocates nothing per head, is
/// rebuilt from a freshly decoded head column in one sort pass, and
/// lookups are a binary search — so it stays cheap at snapshot-load time
/// even for relations with hundreds of thousands of distinct heads.
///
/// Appends land in `overlay` (covering rows `base_rows..`), keeping the
/// index live without touching the base; [`Bat::ensure_index`] folds the
/// overlay back into the base.
#[derive(Debug, Clone, Default)]
struct HeadIndex {
    runs: Vec<Oid>,
    offsets: Vec<u32>,
    slots: Vec<u32>,
    /// Rows `[0, base_rows)` are covered by the sorted-run base.
    base_rows: u32,
    /// Rows `[base_rows, base_rows + overlaid)` are covered here.
    overlay: HashMap<Oid, Vec<u32>>,
    overlaid: u32,
}

impl HeadIndex {
    /// Rebuilds the base over the whole head column; clears the overlay.
    fn rebuild(&mut self, head: &[Oid]) {
        self.overlay.clear();
        self.overlaid = 0;
        self.runs.clear();
        self.offsets.clear();
        let mut slots: Vec<u32> = (0..head.len() as u32).collect();
        slots.sort_unstable_by_key(|&p| (head[p as usize], p));
        self.offsets.push(0);
        for (i, &p) in slots.iter().enumerate() {
            let h = head[p as usize];
            if self.runs.last() != Some(&h) {
                if i > 0 {
                    self.offsets.push(i as u32);
                }
                self.runs.push(h);
            }
        }
        self.offsets.push(slots.len() as u32);
        if self.runs.is_empty() {
            // offsets must always be runs.len() + 1 entries.
            self.offsets.truncate(1);
        }
        self.slots = slots;
        self.base_rows = head.len() as u32;
    }

    /// Positions in the base with head `h` (ascending), or `&[]`.
    fn base_positions(&self, h: Oid) -> &[u32] {
        match self.runs.binary_search(&h) {
            Ok(i) => &self.slots[self.offsets[i] as usize..self.offsets[i + 1] as usize],
            Err(_) => &[],
        }
    }

    /// Positions in the overlay with head `h` (ascending), or `&[]`.
    fn overlay_positions(&self, h: Oid) -> &[u32] {
        self.overlay.get(&h).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Records an append at row `pos` (which must equal the current
    /// total row count).
    fn note_append(&mut self, h: Oid, pos: u32) {
        self.overlay.entry(h).or_default().push(pos);
        self.overlaid += 1;
    }

    /// Whether the overlay is worth folding into the base.
    fn overlay_is_heavy(&self) -> bool {
        self.overlaid as usize > (self.base_rows as usize / 2).max(4096)
    }

    fn resident_bytes(&self) -> usize {
        self.runs.capacity() * std::mem::size_of::<Oid>()
            + self.offsets.capacity() * 4
            + self.slots.capacity() * 4
            // Rough overlay estimate: key + one slot + map overhead.
            + self.overlay.len() * 48
            + self.overlaid as usize * 4
    }
}

/// A binary association table: `head: Vec<Oid>` aligned with a typed tail
/// [`Column`], plus a sorted-run head index for cheap lookups that works
/// through `&self` (see [`HeadIndex`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Bat {
    head: Vec<Oid>,
    tail: Column,
    #[serde(skip)]
    index: HeadIndex,
}

impl PartialEq for Bat {
    fn eq(&self, other: &Self) -> bool {
        self.head == other.head && self.tail == other.tail
    }
}

impl Bat {
    /// Creates an empty BAT with the given tail kind. String tails get a
    /// private dictionary; use [`Bat::with_kind_in`] to share a catalog
    /// pool.
    pub fn with_kind(kind: ColumnKind) -> Self {
        Bat {
            head: Vec::new(),
            tail: Column::empty(kind),
            index: HeadIndex::default(),
        }
    }

    /// Creates an empty BAT whose string tails (if any) intern into
    /// `pool`.
    pub fn with_kind_in(kind: ColumnKind, pool: &StrPool) -> Self {
        Bat {
            head: Vec::new(),
            tail: Column::empty_with_pool(kind, pool),
            index: HeadIndex::default(),
        }
    }

    /// Reassembles a BAT from decoded snapshot columns, building the
    /// head index in one pass. Fails if the columns disagree on length.
    pub fn from_parts(head: Vec<Oid>, tail: Column) -> Result<Bat> {
        if head.len() != tail.len() {
            return Err(Error::Snapshot(format!(
                "head/tail length mismatch: {} vs {}",
                head.len(),
                tail.len()
            )));
        }
        let mut index = HeadIndex::default();
        index.rebuild(&head);
        Ok(Bat { head, tail, index })
    }

    /// Re-interns string tails into `pool` (no-op for other kinds or if
    /// already homed there). Called when a BAT is registered in a
    /// catalog so every relation shares one dictionary.
    pub(crate) fn adopt_pool(&mut self, pool: &StrPool) {
        if let Column::Str(col) = &mut self.tail {
            col.rehome(pool);
        }
    }

    /// Estimated heap bytes held by this BAT (head + tail + index; the
    /// shared string pool is accounted once per catalog, not here).
    pub fn resident_bytes(&self) -> usize {
        self.head.capacity() * std::mem::size_of::<Oid>()
            + self.tail.resident_bytes()
            + self.index.resident_bytes()
    }

    /// Empty `oid × oid` BAT.
    pub fn new_oid() -> Self {
        Self::with_kind(ColumnKind::Oid)
    }
    /// Empty `oid × int` BAT.
    pub fn new_int() -> Self {
        Self::with_kind(ColumnKind::Int)
    }
    /// Empty `oid × flt` BAT.
    pub fn new_flt() -> Self {
        Self::with_kind(ColumnKind::Flt)
    }
    /// Empty `oid × str` BAT.
    pub fn new_str() -> Self {
        Self::with_kind(ColumnKind::Str)
    }
    /// Empty `oid × bit` BAT.
    pub fn new_bit() -> Self {
        Self::with_kind(ColumnKind::Bit)
    }

    /// The tail type.
    pub fn kind(&self) -> ColumnKind {
        self.tail.kind()
    }

    /// Number of associations.
    pub fn len(&self) -> usize {
        self.head.len()
    }

    /// Whether the BAT holds no associations.
    pub fn is_empty(&self) -> bool {
        self.head.is_empty()
    }

    /// Folds the append overlay into the sorted-run base if it has grown
    /// heavy. Lookups are correct without calling this — it is a
    /// compaction hint for callers that just finished a bulk load.
    pub fn ensure_index(&mut self) {
        if self.index.overlay_is_heavy() {
            self.index.rebuild(&self.head);
        }
    }

    /// Rebuilds the head index from scratch (e.g. after deserialisation
    /// through the no-op serde path).
    pub fn refresh_index(&mut self) {
        self.index.rebuild(&self.head);
    }

    /// Appends an association; fails if the value kind does not match the
    /// tail column kind.
    pub fn append(&mut self, head: Oid, value: Value) -> Result<()> {
        let pos = self.head.len() as u32;
        self.tail
            .push(value)
            .map_err(|(expected, got)| Error::TypeMismatch { expected, got })?;
        self.head.push(head);
        self.index.note_append(head, pos);
        Ok(())
    }

    /// Appends an `oid` tail.
    pub fn append_oid(&mut self, head: Oid, tail: Oid) -> Result<()> {
        self.append(head, Value::Oid(tail))
    }
    /// Appends an `int` tail.
    pub fn append_int(&mut self, head: Oid, tail: i64) -> Result<()> {
        self.append(head, Value::Int(tail))
    }
    /// Appends a `flt` tail.
    pub fn append_flt(&mut self, head: Oid, tail: f64) -> Result<()> {
        self.append(head, Value::Flt(tail))
    }
    /// Appends a `str` tail.
    pub fn append_str(&mut self, head: Oid, tail: impl Into<String>) -> Result<()> {
        self.append(head, Value::Str(tail.into()))
    }
    /// Appends a `bit` tail.
    pub fn append_bit(&mut self, head: Oid, tail: bool) -> Result<()> {
        self.append(head, Value::Bit(tail))
    }

    /// The association at `pos`.
    ///
    /// # Panics
    /// Panics if `pos >= self.len()`.
    pub fn at(&self, pos: usize) -> (Oid, Value) {
        (self.head[pos], self.tail.get(pos))
    }

    /// Iterates over all associations in insertion order (subject to
    /// reordering by [`Self::delete_head`], which swap-removes).
    pub fn iter(&self) -> impl Iterator<Item = (Oid, Value)> + '_ {
        (0..self.len()).map(move |i| self.at(i))
    }

    /// Iterates over the head column.
    pub fn heads(&self) -> impl Iterator<Item = Oid> + '_ {
        self.head.iter().copied()
    }

    /// Borrows the tail column.
    pub fn tail(&self) -> &Column {
        &self.tail
    }

    /// Borrows the head column as a slice (snapshot encoding path).
    pub(crate) fn head_slice(&self) -> &[Oid] {
        &self.head
    }

    /// Positions of associations whose head equals `head`, ascending.
    /// Purely a read: the index stays live across appends (overlay) and
    /// is rebuilt on delete, so no `&mut` access is needed.
    pub fn positions(&self, head: Oid) -> impl Iterator<Item = u32> + '_ {
        self.index
            .base_positions(head)
            .iter()
            .chain(self.index.overlay_positions(head))
            .copied()
    }

    /// All tails associated with `head`.
    pub fn tails_of(&self, head: Oid) -> Vec<Value> {
        self.positions(head)
            .map(|p| self.tail.get(p as usize))
            .collect()
    }

    /// The first tail associated with `head`, if any.
    pub fn first_tail_of(&self, head: Oid) -> Option<Value> {
        let p = self.positions(head).next()?;
        Some(self.tail.get(p as usize))
    }

    /// Whether any association has head `head`.
    pub fn contains_head(&self, head: Oid) -> bool {
        self.positions(head).next().is_some()
    }

    /// Heads whose tail satisfies `pred`. Order follows storage order;
    /// duplicates are kept (one per matching association).
    pub fn select_by(&self, mut pred: impl FnMut(&Value) -> bool) -> Vec<Oid> {
        let mut out = Vec::new();
        for i in 0..self.len() {
            let v = self.tail.get(i);
            if pred(&v) {
                out.push(self.head[i]);
            }
        }
        out
    }

    /// Heads with string tail equal to `s`. With dictionary encoding
    /// this is one non-inserting pool probe plus a `u32` scan — no
    /// per-row string comparison, and a probe absent from the
    /// dictionary short-circuits to empty.
    pub fn select_str_eq(&self, s: &str) -> Vec<Oid> {
        let Column::Str(vs) = &self.tail else {
            return Vec::new();
        };
        let Some(code) = vs.find_code(s) else {
            return Vec::new();
        };
        self.head
            .iter()
            .zip(vs.codes())
            .filter(|(_, &c)| c == code)
            .map(|(h, _)| *h)
            .collect()
    }

    /// [`Self::select_str_eq`] under a caller budget: one work unit
    /// per tuple scanned, so even a physical-level relation scan is
    /// cancellable at loop granularity. Returns the typed cause when
    /// the budget runs out mid-scan. Work accounting is row-exact and
    /// independent of the dictionary fast path: every row costs one
    /// unit even when the probe string is not in the dictionary, so
    /// budgeted behaviour is identical to the uncompressed scan.
    pub fn select_str_eq_budgeted(
        &self,
        s: &str,
        budget: &faults::Budget,
    ) -> std::result::Result<Vec<Oid>, faults::BudgetExceeded> {
        let Column::Str(vs) = &self.tail else {
            return Ok(Vec::new());
        };
        let code = vs.find_code(s);
        let mut out = Vec::new();
        for (h, &c) in self.head.iter().zip(vs.codes()) {
            budget.consume(1)?;
            if Some(c) == code {
                out.push(*h);
            }
        }
        Ok(out)
    }

    /// Heads with integer tail equal to `i`.
    pub fn select_int_eq(&self, i: i64) -> Vec<Oid> {
        match &self.tail {
            Column::Int(vs) => self
                .head
                .iter()
                .zip(vs)
                .filter(|(_, v)| **v == i)
                .map(|(h, _)| *h)
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Heads with boolean tail equal to `b`.
    pub fn select_bit_eq(&self, b: bool) -> Vec<Oid> {
        match &self.tail {
            Column::Bit(vs) => self
                .head
                .iter()
                .zip(vs)
                .filter(|(_, v)| **v == b)
                .map(|(h, _)| *h)
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Heads with oid tail equal to `o` — i.e. "find parents of `o`" when
    /// the BAT stores parent→child edges.
    pub fn select_oid_eq(&self, o: Oid) -> Vec<Oid> {
        match &self.tail {
            Column::Oid(vs) => self
                .head
                .iter()
                .zip(vs)
                .filter(|(_, v)| **v == o)
                .map(|(h, _)| *h)
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Heads with float tail in `[lo, hi]` (integers widen).
    pub fn select_flt_range(&self, lo: f64, hi: f64) -> Vec<Oid> {
        self.select_by(|v| v.as_flt().is_some_and(|f| f >= lo && f <= hi))
    }

    /// Reverses an `oid × oid` BAT: tails become heads and vice versa.
    pub fn reverse(&self) -> Result<Bat> {
        let Column::Oid(tails) = &self.tail else {
            return Err(Error::TypeMismatch {
                expected: ColumnKind::Oid,
                got: self.tail.kind(),
            });
        };
        let mut out = Bat::new_oid();
        for (h, t) in self.head.iter().zip(tails) {
            out.append_oid(*t, *h)?;
        }
        Ok(out)
    }

    /// Hash join on `self.tail = other.head`; produces
    /// `(self.head, other.tail)` associations. `self` must have oid tails.
    ///
    /// This is the kernel of path-expression evaluation: joining
    /// `R(a/b)` with `R(a/b/c)` walks one step down the document tree for
    /// a whole set of nodes at once. Both sides are borrowed shared —
    /// the head index serves lookups without exclusive access.
    pub fn join(&self, other: &Bat) -> Result<Bat> {
        let Column::Oid(tails) = &self.tail else {
            return Err(Error::TypeMismatch {
                expected: ColumnKind::Oid,
                got: self.tail.kind(),
            });
        };
        let mut out = Bat::with_kind(other.kind());
        for (h, t) in self.head.iter().zip(tails) {
            for p in other.positions(*t) {
                out.append(*h, other.tail.get(p as usize))?;
            }
        }
        Ok(out)
    }

    /// Restricts to associations whose head is in `keep`.
    pub fn semijoin(&self, keep: &std::collections::HashSet<Oid>) -> Bat {
        let mut out = Bat::with_kind(self.kind());
        for i in 0..self.len() {
            if keep.contains(&self.head[i]) {
                out.append(self.head[i], self.tail.get(i))
                    .expect("same-kind append cannot fail");
            }
        }
        out
    }

    /// Counts associations per head: an `oid × int` BAT. The IR level uses
    /// this to derive `tf` from the document/term pair relation.
    pub fn group_count(&self) -> Bat {
        let mut counts: HashMap<Oid, i64> = HashMap::new();
        for h in &self.head {
            *counts.entry(*h).or_insert(0) += 1;
        }
        let mut out = Bat::new_int();
        let mut keys: Vec<_> = counts.into_iter().collect();
        keys.sort_unstable_by_key(|(h, _)| *h);
        for (h, c) in keys {
            out.append_int(h, c).expect("int append");
        }
        out
    }

    /// Sums float tails per head: an `oid × flt` BAT (score accumulation).
    pub fn group_sum_flt(&self) -> Result<Bat> {
        let Column::Flt(tails) = &self.tail else {
            return Err(Error::TypeMismatch {
                expected: ColumnKind::Flt,
                got: self.tail.kind(),
            });
        };
        let mut sums: HashMap<Oid, f64> = HashMap::new();
        for (h, v) in self.head.iter().zip(tails) {
            *sums.entry(*h).or_insert(0.0) += v;
        }
        let mut keys: Vec<_> = sums.into_iter().collect();
        keys.sort_unstable_by_key(|(h, _)| *h);
        let mut out = Bat::new_flt();
        for (h, s) in keys {
            out.append_flt(h, s)?;
        }
        Ok(out)
    }

    /// The `n` associations with the largest tails (descending tail order,
    /// ties by head for determinism). The top-N operator of the paper's
    /// query optimiser.
    pub fn top_n(&self, n: usize) -> Vec<(Oid, Value)> {
        let mut rows: Vec<(Oid, Value)> = self.iter().collect();
        rows.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        rows.truncate(n);
        rows
    }

    /// Deletes every association with head `head`; returns how many were
    /// removed. Uses swap-removal, so storage order is not preserved.
    pub fn delete_head(&mut self, head: Oid) -> usize {
        let mut removed = 0;
        let mut i = 0;
        while i < self.head.len() {
            if self.head[i] == head {
                self.head.swap_remove(i);
                self.tail.swap_remove(i);
                removed += 1;
            } else {
                i += 1;
            }
        }
        if removed > 0 {
            // Swap-removal scrambled positions: rebuild once so the
            // index stays live for shared (&self) readers.
            self.index.rebuild(&self.head);
        }
        removed
    }

    /// Deletes every association whose head is in `heads`, in one pass —
    /// the bulk form the storage layer uses when removing whole
    /// documents (per-head deletion would invalidate and rebuild the
    /// lookup index once per node, which is quadratic in document size).
    /// Returns how many associations were removed.
    pub fn delete_heads(&mut self, heads: &std::collections::HashSet<Oid>) -> usize {
        let before = self.head.len();
        let mut i = 0;
        while i < self.head.len() {
            if heads.contains(&self.head[i]) {
                self.head.swap_remove(i);
                self.tail.swap_remove(i);
            } else {
                i += 1;
            }
        }
        let removed = before - self.head.len();
        if removed > 0 {
            self.index.rebuild(&self.head);
        }
        removed
    }

    /// Replaces the tail of the *first* association with head `head`, or
    /// appends a fresh association if none exists. Returns whether an
    /// existing association was updated.
    pub fn upsert(&mut self, head: Oid, value: Value) -> Result<bool> {
        let first = self.positions(head).next();
        if let Some(pos) = first {
            self.tail
                .set(pos as usize, value)
                .map_err(|(expected, got)| Error::TypeMismatch { expected, got })?;
            Ok(true)
        } else {
            self.append(head, value)?;
            Ok(false)
        }
    }

    /// Distinct heads, in first-appearance order.
    pub fn distinct_heads(&self) -> Vec<Oid> {
        let mut seen = std::collections::HashSet::new();
        self.head.iter().copied().filter(|h| seen.insert(*h)).collect()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn oid(n: u64) -> Oid {
        Oid::from_raw(n)
    }

    #[test]
    fn append_and_lookup() {
        let mut b = Bat::new_str();
        b.append_str(oid(1), "a").unwrap();
        b.append_str(oid(1), "b").unwrap();
        b.append_str(oid(2), "c").unwrap();
        assert_eq!(b.len(), 3);
        assert_eq!(
            b.tails_of(oid(1)),
            vec![Value::from("a"), Value::from("b")]
        );
        assert_eq!(b.first_tail_of(oid(3)), None);
    }

    #[test]
    fn append_kind_mismatch_errors() {
        let mut b = Bat::new_int();
        let err = b.append(oid(1), Value::from("nope")).unwrap_err();
        assert!(matches!(err, Error::TypeMismatch { .. }));
        assert!(b.is_empty());
    }

    #[test]
    fn select_variants() {
        let mut b = Bat::new_int();
        for (h, v) in [(1, 10), (2, 20), (3, 10)] {
            b.append_int(oid(h), v).unwrap();
        }
        assert_eq!(b.select_int_eq(10), vec![oid(1), oid(3)]);
        assert_eq!(b.select_flt_range(15.0, 25.0), vec![oid(2)]);
        assert!(b.select_str_eq("x").is_empty());
    }

    #[test]
    fn reverse_swaps_columns() {
        let mut b = Bat::new_oid();
        b.append_oid(oid(1), oid(10)).unwrap();
        let r = b.reverse().unwrap();
        assert_eq!(r.at(0), (oid(10), Value::Oid(oid(1))));
    }

    #[test]
    fn reverse_requires_oid_tail() {
        let b = Bat::new_str();
        assert!(b.reverse().is_err());
    }

    #[test]
    fn join_walks_one_step() {
        // parent -> child, child -> name
        let mut edges = Bat::new_oid();
        edges.append_oid(oid(1), oid(10)).unwrap();
        edges.append_oid(oid(1), oid(11)).unwrap();
        edges.append_oid(oid(2), oid(12)).unwrap();
        let mut names = Bat::new_str();
        names.append_str(oid(10), "x").unwrap();
        names.append_str(oid(12), "y").unwrap();
        let joined = edges.join(&names).unwrap();
        let rows: Vec<_> = joined.iter().collect();
        assert_eq!(
            rows,
            vec![(oid(1), Value::from("x")), (oid(2), Value::from("y"))]
        );
    }

    #[test]
    fn semijoin_filters_heads() {
        let mut b = Bat::new_int();
        b.append_int(oid(1), 1).unwrap();
        b.append_int(oid(2), 2).unwrap();
        let keep: HashSet<_> = [oid(2)].into();
        let s = b.semijoin(&keep);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(oid(2), Value::Int(2))]);
    }

    #[test]
    fn group_count_counts_per_head() {
        let mut b = Bat::new_str();
        for (h, s) in [(1, "a"), (1, "b"), (2, "c"), (1, "d")] {
            b.append_str(oid(h), s).unwrap();
        }
        let g = b.group_count();
        let rows: Vec<_> = g.iter().collect();
        assert_eq!(
            rows,
            vec![(oid(1), Value::Int(3)), (oid(2), Value::Int(1))]
        );
    }

    #[test]
    fn group_sum_accumulates() {
        let mut b = Bat::new_flt();
        b.append_flt(oid(1), 0.5).unwrap();
        b.append_flt(oid(1), 0.25).unwrap();
        b.append_flt(oid(2), 1.0).unwrap();
        let g = b.group_sum_flt().unwrap();
        assert_eq!(g.first_tail_of(oid(1)), Some(Value::Flt(0.75)));
    }

    #[test]
    fn top_n_orders_descending_with_deterministic_ties() {
        let mut b = Bat::new_flt();
        b.append_flt(oid(3), 0.5).unwrap();
        b.append_flt(oid(1), 0.9).unwrap();
        b.append_flt(oid(2), 0.5).unwrap();
        let top = b.top_n(2);
        assert_eq!(top[0].0, oid(1));
        assert_eq!(top[1].0, oid(2)); // tie broken by smaller head
    }

    #[test]
    fn delete_head_removes_all_and_invalidates_index() {
        let mut b = Bat::new_int();
        b.append_int(oid(1), 1).unwrap();
        b.append_int(oid(2), 2).unwrap();
        b.append_int(oid(1), 3).unwrap();
        assert_eq!(b.delete_head(oid(1)), 2);
        assert_eq!(b.len(), 1);
        assert!(!b.contains_head(oid(1)));
        assert!(b.contains_head(oid(2)));
    }

    #[test]
    fn delete_heads_bulk_matches_per_head_semantics() {
        let build = || {
            let mut b = Bat::new_int();
            for (h, v) in [(1, 1), (2, 2), (1, 3), (3, 4), (2, 5)] {
                b.append_int(oid(h), v).unwrap();
            }
            b
        };
        let victims: HashSet<Oid> = [oid(1), oid(3)].into();
        let mut bulk = build();
        let removed = bulk.delete_heads(&victims);
        assert_eq!(removed, 3);
        let mut one_by_one = build();
        let mut removed2 = 0;
        for v in &victims {
            removed2 += one_by_one.delete_head(*v);
        }
        assert_eq!(removed, removed2);
        let key = |b: &Bat| {
            let mut v: Vec<_> = b.iter().collect();
            v.sort_by_key(|(h, _)| *h);
            v
        };
        assert_eq!(key(&bulk), key(&one_by_one));
        assert!(bulk.contains_head(oid(2)));
        assert!(!bulk.contains_head(oid(1)));
    }

    #[test]
    fn upsert_updates_then_inserts() {
        let mut b = Bat::new_str();
        assert!(!b.upsert(oid(1), Value::from("a")).unwrap());
        assert!(b.upsert(oid(1), Value::from("b")).unwrap());
        assert_eq!(b.len(), 1);
        assert_eq!(b.first_tail_of(oid(1)), Some(Value::from("b")));
    }

    #[test]
    fn lookups_work_through_shared_borrow() {
        let mut b = Bat::new_str();
        b.append_str(oid(2), "x").unwrap();
        b.append_str(oid(1), "y").unwrap();
        b.append_str(oid(2), "z").unwrap();
        let shared: &Bat = &b;
        assert_eq!(
            shared.tails_of(oid(2)),
            vec![Value::from("x"), Value::from("z")]
        );
        assert!(shared.contains_head(oid(1)));
        assert_eq!(shared.positions(oid(2)).collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn overlay_and_base_agree_after_compaction() {
        let mut b = Bat::new_int();
        for i in 0..50 {
            b.append_int(oid(i % 7), i as i64).unwrap();
        }
        // Force a full rebuild (base only), then append more (overlay).
        b.refresh_index();
        for i in 50..100 {
            b.append_int(oid(i % 7), i as i64).unwrap();
        }
        let before: Vec<Vec<Value>> = (0..7).map(|h| b.tails_of(oid(h))).collect();
        b.index.rebuild(&b.head); // compact everything into the base
        let after: Vec<Vec<Value>> = (0..7).map(|h| b.tails_of(oid(h))).collect();
        assert_eq!(before, after);
        for h in 0..7 {
            let ps: Vec<u32> = b.positions(oid(h)).collect();
            assert!(ps.windows(2).all(|w| w[0] < w[1]), "ascending positions");
        }
    }

    #[test]
    fn from_parts_round_trips_and_indexes() {
        let head = vec![oid(3), oid(1), oid(3)];
        let mut col = Column::empty(ColumnKind::Int);
        for v in [30, 10, 31] {
            col.push(Value::Int(v)).unwrap();
        }
        let b = Bat::from_parts(head, col).unwrap();
        assert_eq!(b.tails_of(oid(3)), vec![Value::Int(30), Value::Int(31)]);
        assert_eq!(b.first_tail_of(oid(1)), Some(Value::Int(10)));
        let bad = Bat::from_parts(vec![oid(1)], Column::empty(ColumnKind::Int));
        assert!(bad.is_err());
    }

    #[test]
    fn select_str_eq_uses_dictionary_codes() {
        let mut b = Bat::new_str();
        b.append_str(oid(1), "seles").unwrap();
        b.append_str(oid(2), "graf").unwrap();
        b.append_str(oid(3), "seles").unwrap();
        assert_eq!(b.select_str_eq("seles"), vec![oid(1), oid(3)]);
        // Probe absent from the dictionary: still empty, and the
        // dictionary must not grow from a read.
        let entries_before = match b.tail() {
            Column::Str(c) => c.pool().len(),
            _ => unreachable!(),
        };
        assert!(b.select_str_eq("absent").is_empty());
        let entries_after = match b.tail() {
            Column::Str(c) => c.pool().len(),
            _ => unreachable!(),
        };
        assert_eq!(entries_before, entries_after);
    }

    #[test]
    fn budgeted_select_charges_every_row_even_on_miss() {
        let mut b = Bat::new_str();
        for i in 0..5 {
            b.append_str(oid(i), "present").unwrap();
        }
        // Budget smaller than the row count: must run out mid-scan even
        // though "absent" could short-circuit via the dictionary.
        let budget = faults::Budget::with_work(3);
        assert!(b.select_str_eq_budgeted("absent", &budget).is_err());
        let budget = faults::Budget::with_work(5);
        assert!(b.select_str_eq_budgeted("absent", &budget).is_ok());
    }

    #[test]
    fn distinct_heads_preserves_first_appearance() {
        let mut b = Bat::new_int();
        for h in [2, 1, 2, 3, 1] {
            b.append_int(oid(h), 0).unwrap();
        }
        assert_eq!(b.distinct_heads(), vec![oid(2), oid(1), oid(3)]);
    }
}
