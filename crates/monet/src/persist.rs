//! Catalog snapshots.
//!
//! The paper's physical level "takes care of scalable and efficient
//! persistent data storage"; this module provides the checkpoint half of
//! that promise: a whole-catalog binary snapshot with a CRC-32 trailer
//! so recovery can tell an intact checkpoint from a torn or bit-flipped
//! one. The format is a small hand-rolled binary encoding built on
//! cursors over `Vec<u8>`/`&[u8]` so no serialisation format crate is
//! needed.
//!
//! Layout (version 2):
//!
//! ```text
//! magic "MBAT" | version u8 | next_oid u64 | relation count u32
//! per relation: name (u32 len + utf8) | kind u8 | row count u64
//!               heads: row count × u64
//!               tails: kind-specific encoding
//! crc32 of everything above: u32 LE
//! ```
//!
//! Version 1 (no trailer) snapshots are still readable. Decoding is
//! hardened against hostile input: every length-prefixed allocation is
//! capped by the bytes actually remaining in the buffer, so a corrupt
//! row count cannot trigger a multi-gigabyte allocation.

use crate::bat::Bat;
use crate::catalog::Db;
use crate::crc::crc32;
use crate::error::{Error, Result};
use crate::oid::Oid;
use crate::storage::{write_atomic, StorageBackend};
use crate::value::{Column, ColumnKind, Value};

const MAGIC: &[u8; 4] = b"MBAT";
const VERSION: u8 = 2;

/// Encodes the catalog into a byte buffer with a CRC-32 trailer.
pub fn snapshot(db: &Db) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(1024);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    put_u64(&mut out, db.next_oid_raw());
    let names: Vec<&str> = db.relation_names().collect();
    put_u32(&mut out, names.len() as u32);
    for name in names {
        let bat = db
            .get(name)
            .map_err(|_| Error::Snapshot(format!("catalog lists missing relation {name}")))?;
        put_str(&mut out, name);
        out.push(kind_tag(bat.kind()));
        put_u64(&mut out, bat.len() as u64);
        for h in bat.heads() {
            put_u64(&mut out, h.raw());
        }
        encode_tail(&mut out, bat);
    }
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    Ok(out)
}

/// Decodes a snapshot produced by [`snapshot`] (v2 with CRC trailer, or
/// a legacy v1 buffer without one).
pub fn restore(bytes: &[u8]) -> Result<Db> {
    if bytes.len() < 5 {
        return Err(Error::Snapshot("truncated snapshot".into()));
    }
    if &bytes[..4] != MAGIC {
        return Err(Error::Snapshot("bad magic".into()));
    }
    let version = bytes[4];
    let body = match version {
        1 => bytes,
        2 => {
            if bytes.len() < 4 {
                return Err(Error::Snapshot("snapshot shorter than trailer".into()));
            }
            let (body, trailer) = bytes.split_at(bytes.len() - 4);
            let stored = u32::from_le_bytes(trailer.try_into().expect("4 bytes"));
            let actual = crc32(body);
            if stored != actual {
                return Err(Error::Snapshot(format!(
                    "checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
                )));
            }
            body
        }
        other => return Err(Error::Snapshot(format!("unsupported version {other}"))),
    };
    let mut cur = Cursor { buf: body, pos: 5 };
    let next_oid = cur.u64()?;
    let nrel = cur.u32()? as usize;
    // Each relation costs at least a name length + kind + row count.
    if nrel > cur.remaining() / 9 {
        return Err(Error::Snapshot(format!("relation count {nrel} exceeds buffer")));
    }
    let mut db = Db::new();
    for _ in 0..nrel {
        let name = cur.string()?;
        let kind = tag_kind(cur.u8()?)?;
        let rows = cur.u64()? as usize;
        // Heads alone take 8 bytes per row; a corrupt row count cannot
        // be honoured past what the buffer still holds.
        if rows > cur.remaining() / 8 {
            return Err(Error::Snapshot(format!(
                "row count {rows} for {name} exceeds remaining buffer"
            )));
        }
        let mut heads = Vec::with_capacity(rows);
        for _ in 0..rows {
            heads.push(Oid::from_raw(cur.u64()?));
        }
        let mut bat = Bat::with_kind(kind);
        decode_tail(&mut cur, &mut bat, &heads, kind, rows)?;
        db.create(name, bat)?;
    }
    // Restore the oid generator to continue after the snapshot's high
    // watermark, then rebuild lookup indexes.
    db.restore_state(next_oid);
    Ok(db)
}

/// Writes a snapshot atomically (temp file + rename) through `backend`.
pub fn save_atomic(db: &Db, backend: &dyn StorageBackend, path: &std::path::Path) -> Result<()> {
    write_atomic(backend, path, &snapshot(db)?)
}

/// Reads a snapshot through `backend`.
pub fn load_via(backend: &dyn StorageBackend, path: &std::path::Path) -> Result<Db> {
    restore(&backend.read(path)?)
}

/// Writes a snapshot to a file (non-atomic; prefer [`save_atomic`]).
pub fn save_to_file(db: &Db, path: &std::path::Path) -> Result<()> {
    std::fs::write(path, snapshot(db)?).map_err(|e| Error::Snapshot(e.to_string()))
}

/// Reads a snapshot from a file.
pub fn load_from_file(path: &std::path::Path) -> Result<Db> {
    let bytes = std::fs::read(path).map_err(|e| Error::Snapshot(e.to_string()))?;
    restore(&bytes)
}

fn kind_tag(kind: ColumnKind) -> u8 {
    match kind {
        ColumnKind::Oid => 0,
        ColumnKind::Int => 1,
        ColumnKind::Flt => 2,
        ColumnKind::Str => 3,
        ColumnKind::Bit => 4,
    }
}

fn tag_kind(tag: u8) -> Result<ColumnKind> {
    Ok(match tag {
        0 => ColumnKind::Oid,
        1 => ColumnKind::Int,
        2 => ColumnKind::Flt,
        3 => ColumnKind::Str,
        4 => ColumnKind::Bit,
        other => return Err(Error::Snapshot(format!("bad kind tag {other}"))),
    })
}

fn encode_tail(out: &mut Vec<u8>, bat: &Bat) {
    match bat.tail() {
        Column::Oid(vs) => {
            for v in vs {
                put_u64(out, v.raw());
            }
        }
        Column::Int(vs) => {
            for v in vs {
                put_u64(out, *v as u64);
            }
        }
        Column::Flt(vs) => {
            for v in vs {
                put_u64(out, v.to_bits());
            }
        }
        Column::Str(vs) => {
            for v in vs {
                put_str(out, v);
            }
        }
        Column::Bit(vs) => {
            for v in vs {
                out.push(u8::from(*v));
            }
        }
    }
}

fn decode_tail(
    cur: &mut Cursor<'_>,
    bat: &mut Bat,
    heads: &[Oid],
    kind: ColumnKind,
    rows: usize,
) -> Result<()> {
    for &head in heads.iter().take(rows) {
        let value = match kind {
            ColumnKind::Oid => Value::Oid(Oid::from_raw(cur.u64()?)),
            ColumnKind::Int => Value::Int(cur.u64()? as i64),
            ColumnKind::Flt => Value::Flt(f64::from_bits(cur.u64()?)),
            ColumnKind::Str => Value::Str(cur.string()?),
            ColumnKind::Bit => Value::Bit(cur.u8()? != 0),
        };
        bat.append(head, value)?;
    }
    Ok(())
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if n > self.remaining() {
            return Err(Error::Snapshot("truncated snapshot".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn string(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        // `take` re-checks, but failing here avoids the allocation for
        // a hostile length in `from_utf8`'s input.
        if len > self.remaining() {
            return Err(Error::Snapshot(format!("string length {len} exceeds buffer")));
        }
        let b = self.take(len)?;
        String::from_utf8(b.to_vec()).map_err(|e| Error::Snapshot(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Db {
        let mut db = Db::new();
        let a = db.mint();
        let b = db.mint();
        db.get_or_create("edges", ColumnKind::Oid)
            .append_oid(a, b)
            .unwrap();
        db.get_or_create("names", ColumnKind::Str)
            .append_str(a, "seles")
            .unwrap();
        db.get_or_create("ranks", ColumnKind::Int)
            .append_int(b, 1)
            .unwrap();
        db.get_or_create("scores", ColumnKind::Flt)
            .append_flt(b, 0.75)
            .unwrap();
        db.get_or_create("flags", ColumnKind::Bit)
            .append_bit(a, true)
            .unwrap();
        db
    }

    #[test]
    fn snapshot_round_trips_all_kinds() {
        let db = sample_db();
        let bytes = snapshot(&db).unwrap();
        let back = restore(&bytes).unwrap();
        assert_eq!(back.relation_count(), db.relation_count());
        for name in db.relation_names() {
            assert_eq!(back.get(name).unwrap(), db.get(name).unwrap(), "{name}");
        }
    }

    #[test]
    fn restored_db_mints_fresh_oids() {
        let db = sample_db();
        let max_existing = db
            .get("edges")
            .unwrap()
            .iter()
            .map(|(h, _)| h)
            .max()
            .unwrap();
        let mut back = restore(&snapshot(&db).unwrap()).unwrap();
        let fresh = back.mint();
        assert!(fresh > max_existing, "{fresh} vs {max_existing}");
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(restore(b"XXXX\x01").is_err());
    }

    #[test]
    fn truncated_snapshot_is_rejected() {
        let bytes = snapshot(&sample_db()).unwrap();
        assert!(restore(&bytes[..bytes.len() / 2]).is_err());
    }

    #[test]
    fn every_single_byte_corruption_is_detected() {
        let db = sample_db();
        let bytes = snapshot(&db).unwrap();
        let mut copy = bytes.clone();
        for i in 0..copy.len() {
            copy[i] ^= 0x40;
            match restore(&copy) {
                Err(Error::Snapshot(_)) => {}
                Err(other) => panic!("byte {i}: unexpected error kind {other:?}"),
                Ok(_) => panic!("byte {i}: corruption slipped past the checksum"),
            }
            copy[i] ^= 0x40;
        }
    }

    #[test]
    fn hostile_row_count_cannot_explode_allocation() {
        let db = sample_db();
        let mut bytes = snapshot(&db).unwrap();
        // Forge a v1 snapshot (no trailer to fail first) with a huge
        // relation count: the cap must reject it without allocating.
        bytes[4] = 1;
        let body_len = bytes.len() - 4;
        bytes.truncate(body_len);
        let nrel_off = 4 + 1 + 8;
        bytes[nrel_off..nrel_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        match restore(&bytes) {
            Err(Error::Snapshot(msg)) => assert!(msg.contains("exceeds"), "{msg}"),
            other => panic!("expected Snapshot error, got {other:?}"),
        }
    }

    #[test]
    fn legacy_v1_snapshot_still_loads() {
        let db = sample_db();
        let mut bytes = snapshot(&db).unwrap();
        bytes[4] = 1;
        let body_len = bytes.len() - 4;
        bytes.truncate(body_len); // drop the CRC trailer
        let back = restore(&bytes).unwrap();
        assert_eq!(back.relation_count(), db.relation_count());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("monet_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.mbat");
        let db = sample_db();
        save_to_file(&db, &path).unwrap();
        let back = load_from_file(&path).unwrap();
        assert_eq!(back.association_count(), db.association_count());
        std::fs::remove_file(&path).ok();
    }
}
