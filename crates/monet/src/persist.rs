//! Catalog snapshots.
//!
//! The paper's physical level "takes care of scalable and efficient
//! persistent data storage"; for this reproduction a whole-catalog binary
//! snapshot is sufficient (no buffer manager or WAL is described in the
//! paper). The format is a small hand-rolled binary encoding built on
//! [`bytes`]-style cursors over `Vec<u8>`/`&[u8]` so no serialisation
//! format crate is needed.
//!
//! Layout:
//!
//! ```text
//! magic "MBAT" | version u8 | next_oid u64 | relation count u32
//! per relation: name (u32 len + utf8) | kind u8 | row count u64
//!               heads: row count × u64
//!               tails: kind-specific encoding
//! ```

use crate::bat::Bat;
use crate::catalog::Db;
use crate::error::{Error, Result};
use crate::oid::Oid;
use crate::value::{Column, ColumnKind, Value};

const MAGIC: &[u8; 4] = b"MBAT";
const VERSION: u8 = 1;

/// Encodes the catalog into a byte buffer.
pub fn snapshot(db: &Db) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    put_u64(&mut out, db.next_oid_raw());
    let names: Vec<&str> = db.relation_names().collect();
    put_u32(&mut out, names.len() as u32);
    for name in names {
        let bat = db.get(name).expect("name from relation_names");
        put_str(&mut out, name);
        out.push(kind_tag(bat.kind()));
        put_u64(&mut out, bat.len() as u64);
        for h in bat.heads() {
            put_u64(&mut out, h.raw());
        }
        encode_tail(&mut out, bat);
    }
    out
}

/// Decodes a snapshot produced by [`snapshot`].
pub fn restore(bytes: &[u8]) -> Result<Db> {
    let mut cur = Cursor { buf: bytes, pos: 0 };
    let magic = cur.take(4)?;
    if magic != MAGIC {
        return Err(Error::Snapshot("bad magic".into()));
    }
    let version = cur.u8()?;
    if version != VERSION {
        return Err(Error::Snapshot(format!("unsupported version {version}")));
    }
    let next_oid = cur.u64()?;
    let nrel = cur.u32()? as usize;
    let mut db = Db::new();
    for _ in 0..nrel {
        let name = cur.string()?;
        let kind = tag_kind(cur.u8()?)?;
        let rows = cur.u64()? as usize;
        let mut heads = Vec::with_capacity(rows);
        for _ in 0..rows {
            heads.push(Oid::from_raw(cur.u64()?));
        }
        let mut bat = Bat::with_kind(kind);
        decode_tail(&mut cur, &mut bat, &heads, kind, rows)?;
        db.create(name, bat)?;
    }
    // Restore the oid generator to continue after the snapshot's high
    // watermark, then rebuild lookup indexes.
    db.restore_state(next_oid);
    Ok(db)
}

/// Writes a snapshot to a file.
pub fn save_to_file(db: &Db, path: &std::path::Path) -> Result<()> {
    std::fs::write(path, snapshot(db)).map_err(|e| Error::Snapshot(e.to_string()))
}

/// Reads a snapshot from a file.
pub fn load_from_file(path: &std::path::Path) -> Result<Db> {
    let bytes = std::fs::read(path).map_err(|e| Error::Snapshot(e.to_string()))?;
    restore(&bytes)
}

fn kind_tag(kind: ColumnKind) -> u8 {
    match kind {
        ColumnKind::Oid => 0,
        ColumnKind::Int => 1,
        ColumnKind::Flt => 2,
        ColumnKind::Str => 3,
        ColumnKind::Bit => 4,
    }
}

fn tag_kind(tag: u8) -> Result<ColumnKind> {
    Ok(match tag {
        0 => ColumnKind::Oid,
        1 => ColumnKind::Int,
        2 => ColumnKind::Flt,
        3 => ColumnKind::Str,
        4 => ColumnKind::Bit,
        other => return Err(Error::Snapshot(format!("bad kind tag {other}"))),
    })
}

fn encode_tail(out: &mut Vec<u8>, bat: &Bat) {
    match bat.tail() {
        Column::Oid(vs) => {
            for v in vs {
                put_u64(out, v.raw());
            }
        }
        Column::Int(vs) => {
            for v in vs {
                put_u64(out, *v as u64);
            }
        }
        Column::Flt(vs) => {
            for v in vs {
                put_u64(out, v.to_bits());
            }
        }
        Column::Str(vs) => {
            for v in vs {
                put_str(out, v);
            }
        }
        Column::Bit(vs) => {
            for v in vs {
                out.push(u8::from(*v));
            }
        }
    }
}

fn decode_tail(
    cur: &mut Cursor<'_>,
    bat: &mut Bat,
    heads: &[Oid],
    kind: ColumnKind,
    rows: usize,
) -> Result<()> {
    for &head in heads.iter().take(rows) {
        let value = match kind {
            ColumnKind::Oid => Value::Oid(Oid::from_raw(cur.u64()?)),
            ColumnKind::Int => Value::Int(cur.u64()? as i64),
            ColumnKind::Flt => Value::Flt(f64::from_bits(cur.u64()?)),
            ColumnKind::Str => Value::Str(cur.string()?),
            ColumnKind::Bit => Value::Bit(cur.u8()? != 0),
        };
        bat.append(head, value)?;
    }
    Ok(())
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(Error::Snapshot("truncated snapshot".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn string(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let b = self.take(len)?;
        String::from_utf8(b.to_vec()).map_err(|e| Error::Snapshot(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Db {
        let mut db = Db::new();
        let a = db.mint();
        let b = db.mint();
        db.get_or_create("edges", ColumnKind::Oid)
            .append_oid(a, b)
            .unwrap();
        db.get_or_create("names", ColumnKind::Str)
            .append_str(a, "seles")
            .unwrap();
        db.get_or_create("ranks", ColumnKind::Int)
            .append_int(b, 1)
            .unwrap();
        db.get_or_create("scores", ColumnKind::Flt)
            .append_flt(b, 0.75)
            .unwrap();
        db.get_or_create("flags", ColumnKind::Bit)
            .append_bit(a, true)
            .unwrap();
        db
    }

    #[test]
    fn snapshot_round_trips_all_kinds() {
        let db = sample_db();
        let bytes = snapshot(&db);
        let back = restore(&bytes).unwrap();
        assert_eq!(back.relation_count(), db.relation_count());
        for name in db.relation_names() {
            assert_eq!(back.get(name).unwrap(), db.get(name).unwrap(), "{name}");
        }
    }

    #[test]
    fn restored_db_mints_fresh_oids() {
        let db = sample_db();
        let max_existing = db
            .get("edges")
            .unwrap()
            .iter()
            .map(|(h, _)| h)
            .max()
            .unwrap();
        let mut back = restore(&snapshot(&db)).unwrap();
        let fresh = back.mint();
        assert!(fresh > max_existing, "{fresh} vs {max_existing}");
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(restore(b"XXXX\x01").is_err());
    }

    #[test]
    fn truncated_snapshot_is_rejected() {
        let bytes = snapshot(&sample_db());
        assert!(restore(&bytes[..bytes.len() / 2]).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("monet_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.mbat");
        let db = sample_db();
        save_to_file(&db, &path).unwrap();
        let back = load_from_file(&path).unwrap();
        assert_eq!(back.association_count(), db.association_count());
        std::fs::remove_file(&path).ok();
    }
}
