//! Catalog snapshots.
//!
//! The paper's physical level "takes care of scalable and efficient
//! persistent data storage"; this module provides the checkpoint half of
//! that promise: a whole-catalog binary snapshot with a CRC-32 trailer
//! so recovery can tell an intact checkpoint from a torn or bit-flipped
//! one. The format is a small hand-rolled binary encoding built on
//! cursors over `Vec<u8>`/`&[u8]` so no serialisation format crate is
//! needed.
//!
//! Layout (version 3, compressed):
//!
//! ```text
//! magic "MBAT" | version u8 | next_oid u64
//! dictionary: count u32 | count × (u32 len + utf8)    — shared pool, code order
//! relation count u32
//! directory, per relation: name (u32 len + utf8) | kind u8
//!                          | rows varint | payload_len varint
//! payloads, concatenated in directory order:
//!   heads:  zigzag-varint deltas (monotone oid runs collapse to 1 byte/row)
//!   tails:  oid → zigzag-varint deltas · int → zigzag varint
//!           flt → raw 8-byte bits      · str → varint dictionary code
//!           bit → packed 8 rows/byte
//! crc32 of everything above: u32 LE
//! ```
//!
//! The directory-plus-payload split is what makes lazy opening possible:
//! [`SnapshotReader::open`] checks the CRC and parses only the header,
//! dictionary and directory; each relation's payload is decoded on first
//! catalog access (see `catalog::Slot`).
//!
//! Version 2 (uncompressed per-relation encoding, no dictionary) is
//! still written by [`snapshot_v2`] for comparison benchmarks, and both
//! v2 and legacy v1 (no trailer) snapshots remain readable. Decoding is
//! hardened against hostile input: every length-prefixed allocation is
//! capped by the bytes actually remaining in the buffer, so a corrupt
//! row count cannot trigger a multi-gigabyte allocation.

use std::sync::Arc;

use crate::bat::Bat;
use crate::catalog::Db;
use crate::crc::crc32;
use crate::error::{Error, Result};
use crate::oid::Oid;
use crate::storage::{write_atomic, StorageBackend};
use crate::value::{Column, ColumnKind, StrColumn, StrPool, Value};

const MAGIC: &[u8; 4] = b"MBAT";
const VERSION_V2: u8 = 2;
const VERSION: u8 = 3;

/// Encodes the catalog into a compressed (v3) snapshot with a CRC-32
/// trailer.
pub fn snapshot(db: &Db) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(1024);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    put_u64(&mut out, db.next_oid_raw());
    let dict = db.pool().dump();
    put_u32(&mut out, dict.len() as u32);
    for s in &dict {
        put_str(&mut out, s);
    }
    let names: Vec<&str> = db.relation_names().collect();
    put_u32(&mut out, names.len() as u32);
    // Encode payloads first so the directory can carry their lengths.
    let mut payloads: Vec<Vec<u8>> = Vec::with_capacity(names.len());
    for name in &names {
        let bat = db
            .get(name)
            .map_err(|_| Error::Snapshot(format!("catalog lists missing relation {name}")))?;
        let mut p = Vec::new();
        encode_heads_delta(&mut p, bat.head_slice());
        encode_tail_v3(&mut p, bat, db.pool())?;
        payloads.push(p);
    }
    for (name, payload) in names.iter().zip(&payloads) {
        let bat = db.get(name).map_err(|_| {
            Error::Snapshot(format!("catalog lists missing relation {name}"))
        })?;
        put_str(&mut out, name);
        out.push(kind_tag(bat.kind()));
        put_varint(&mut out, bat.len() as u64);
        put_varint(&mut out, payload.len() as u64);
    }
    for payload in &payloads {
        out.extend_from_slice(payload);
    }
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    Ok(out)
}

/// Encodes the catalog in the uncompressed v2 format. Kept for
/// compression-ratio benchmarks and byte-identity comparisons against
/// the compressed path.
pub fn snapshot_v2(db: &Db) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(1024);
    out.extend_from_slice(MAGIC);
    out.push(VERSION_V2);
    put_u64(&mut out, db.next_oid_raw());
    let names: Vec<&str> = db.relation_names().collect();
    put_u32(&mut out, names.len() as u32);
    for name in names {
        let bat = db
            .get(name)
            .map_err(|_| Error::Snapshot(format!("catalog lists missing relation {name}")))?;
        put_str(&mut out, name);
        out.push(kind_tag(bat.kind()));
        put_u64(&mut out, bat.len() as u64);
        for h in bat.heads() {
            put_u64(&mut out, h.raw());
        }
        encode_tail_v2(&mut out, bat);
    }
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    Ok(out)
}

/// Decodes a snapshot produced by [`snapshot`] or [`snapshot_v2`] (or a
/// legacy v1 buffer without a trailer), materializing every relation.
pub fn restore(bytes: &[u8]) -> Result<Db> {
    if bytes.len() < 5 {
        return Err(Error::Snapshot("truncated snapshot".into()));
    }
    if &bytes[..4] != MAGIC {
        return Err(Error::Snapshot("bad magic".into()));
    }
    match bytes[4] {
        1 | 2 => restore_v12(bytes),
        3 => SnapshotReader::open(bytes.to_vec())?.into_db(),
        other => Err(Error::Snapshot(format!("unsupported version {other}"))),
    }
}

/// Decodes a snapshot without materializing relation payloads: a v3
/// snapshot opens in time proportional to its directory, and each BAT
/// is decoded on first catalog access. Older versions fall back to the
/// eager [`restore`].
pub fn restore_lazy(bytes: Vec<u8>) -> Result<Db> {
    if bytes.len() >= 5 && &bytes[..4] == MAGIC && bytes[4] == VERSION {
        Ok(SnapshotReader::open(bytes)?.into_db_lazy())
    } else {
        restore(&bytes)
    }
}

fn restore_v12(bytes: &[u8]) -> Result<Db> {
    let version = bytes[4];
    let body = match version {
        1 => bytes,
        _ => {
            if bytes.len() < 9 {
                return Err(Error::Snapshot("snapshot shorter than trailer".into()));
            }
            let (body, trailer) = bytes.split_at(bytes.len() - 4);
            let stored = u32::from_le_bytes(trailer.try_into().expect("4 bytes"));
            let actual = crc32(body);
            if stored != actual {
                return Err(Error::Snapshot(format!(
                    "checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
                )));
            }
            body
        }
    };
    let mut cur = Cursor { buf: body, pos: 5 };
    let next_oid = cur.u64()?;
    let nrel = cur.u32()? as usize;
    // Each relation costs at least a name length + kind + row count.
    if nrel > cur.remaining() / 9 {
        return Err(Error::Snapshot(format!("relation count {nrel} exceeds buffer")));
    }
    let mut db = Db::new();
    for _ in 0..nrel {
        let name = cur.string()?;
        let kind = tag_kind(cur.u8()?)?;
        let rows = cur.u64()? as usize;
        // Heads alone take 8 bytes per row; a corrupt row count cannot
        // be honoured past what the buffer still holds.
        if rows > cur.remaining() / 8 {
            return Err(Error::Snapshot(format!(
                "row count {rows} for {name} exceeds remaining buffer"
            )));
        }
        let mut heads = Vec::with_capacity(rows);
        for _ in 0..rows {
            heads.push(Oid::from_raw(cur.u64()?));
        }
        let mut bat = Bat::with_kind(kind);
        decode_tail_v2(&mut cur, &mut bat, &heads, kind, rows)?;
        db.create(name, bat)?;
    }
    // Restore the oid generator to continue after the snapshot's high
    // watermark, then rebuild lookup indexes.
    db.restore_state(next_oid);
    Ok(db)
}

/// An undecoded relation inside an opened v3 snapshot: a payload slice
/// plus the directory facts needed to decode it on demand.
#[derive(Debug, Clone)]
pub(crate) struct LazyRelation {
    bytes: Arc<Vec<u8>>,
    start: usize,
    len: usize,
    kind: ColumnKind,
    rows: u64,
    pool: StrPool,
}

impl LazyRelation {
    pub(crate) fn kind(&self) -> ColumnKind {
        self.kind
    }

    pub(crate) fn rows(&self) -> u64 {
        self.rows
    }

    /// Decodes the payload into a [`Bat`] (head index built in the same
    /// pass). The payload must be consumed exactly.
    pub(crate) fn decode(&self) -> Result<Bat> {
        let buf = &self.bytes[self.start..self.start + self.len];
        let mut cur = Cursor { buf, pos: 0 };
        let rows = self.rows as usize;
        let heads = decode_heads_delta(&mut cur, rows)?;
        let tail = decode_tail_v3(&mut cur, self.kind, rows, &self.pool)?;
        if cur.remaining() != 0 {
            return Err(Error::Snapshot(format!(
                "relation payload has {} trailing bytes",
                cur.remaining()
            )));
        }
        Bat::from_parts(heads, tail)
    }
}

/// An opened v3 snapshot: CRC verified, header + dictionary + directory
/// parsed, relation payloads untouched.
#[derive(Debug)]
pub struct SnapshotReader {
    bytes: Arc<Vec<u8>>,
    next_oid: u64,
    pool: StrPool,
    entries: Vec<(String, LazyRelation)>,
}

impl SnapshotReader {
    /// Validates the trailer CRC and parses everything except relation
    /// payloads.
    pub fn open(bytes: Vec<u8>) -> Result<SnapshotReader> {
        if bytes.len() < 9 {
            return Err(Error::Snapshot("truncated snapshot".into()));
        }
        if &bytes[..4] != MAGIC {
            return Err(Error::Snapshot("bad magic".into()));
        }
        if bytes[4] != VERSION {
            return Err(Error::Snapshot(format!(
                "SnapshotReader requires version {VERSION}, got {}",
                bytes[4]
            )));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(trailer.try_into().expect("4 bytes"));
        let actual = crc32(body);
        if stored != actual {
            return Err(Error::Snapshot(format!(
                "checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
            )));
        }
        let body_len = body.len();
        let mut cur = Cursor { buf: body, pos: 5 };
        let next_oid = cur.u64()?;
        let dict_count = cur.u32()? as usize;
        // Each dictionary entry costs at least its 4-byte length prefix.
        if dict_count > cur.remaining() / 4 {
            return Err(Error::Snapshot(format!(
                "dictionary count {dict_count} exceeds buffer"
            )));
        }
        let mut dict = Vec::with_capacity(dict_count);
        for _ in 0..dict_count {
            dict.push(cur.string()?);
        }
        let pool = StrPool::from_dump(dict).map_err(Error::Snapshot)?;
        let nrel = cur.u32()? as usize;
        // Name length prefix (4) + kind (1) + rows (≥1) + len (≥1).
        if nrel > cur.remaining() / 7 {
            return Err(Error::Snapshot(format!("relation count {nrel} exceeds buffer")));
        }
        let mut dir = Vec::with_capacity(nrel);
        for _ in 0..nrel {
            let name = cur.string()?;
            let kind = tag_kind(cur.u8()?)?;
            let rows = cur.varint()?;
            let len = cur.varint()? as usize;
            dir.push((name, kind, rows, len));
        }
        // Payloads sit back to back and must end exactly at the trailer.
        let mut offset = cur.pos;
        let bytes = Arc::new(bytes);
        let mut entries = Vec::with_capacity(dir.len());
        for (name, kind, rows, len) in dir {
            if len > body_len.saturating_sub(offset) {
                return Err(Error::Snapshot(format!(
                    "payload for {name} overruns the snapshot"
                )));
            }
            // Every head costs at least one varint byte, so a payload
            // cannot describe more rows than it has bytes.
            if rows > len as u64 && rows > 0 {
                return Err(Error::Snapshot(format!(
                    "row count {rows} for {name} exceeds payload"
                )));
            }
            entries.push((
                name,
                LazyRelation {
                    bytes: Arc::clone(&bytes),
                    start: offset,
                    len,
                    kind,
                    rows,
                    pool: pool.clone(),
                },
            ));
            offset += len;
        }
        if offset != body_len {
            return Err(Error::Snapshot(format!(
                "{} unaccounted payload bytes",
                body_len - offset
            )));
        }
        Ok(SnapshotReader {
            bytes,
            next_oid,
            pool,
            entries,
        })
    }

    /// The oid high watermark recorded in the snapshot.
    pub fn next_oid(&self) -> u64 {
        self.next_oid
    }

    /// Relation names in snapshot order, without decoding anything.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(n, _)| n.as_str())
    }

    /// Total snapshot size in bytes.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Builds a catalog whose relations decode on first access.
    pub fn into_db_lazy(self) -> Db {
        Db::from_snapshot_parts(self.next_oid, self.pool, self.entries, Vec::new())
    }

    /// Builds a fully materialized catalog (decodes every relation now).
    pub fn into_db(self) -> Result<Db> {
        let mut eager = Vec::with_capacity(self.entries.len());
        for (name, rel) in self.entries {
            eager.push((name, rel.decode()?));
        }
        Ok(Db::from_snapshot_parts(
            self.next_oid,
            self.pool,
            Vec::new(),
            eager,
        ))
    }
}

/// Writes a snapshot atomically (temp file + rename) through `backend`.
pub fn save_atomic(db: &Db, backend: &dyn StorageBackend, path: &std::path::Path) -> Result<()> {
    write_atomic(backend, path, &snapshot(db)?)
}

/// Reads a snapshot through `backend`.
pub fn load_via(backend: &dyn StorageBackend, path: &std::path::Path) -> Result<Db> {
    restore(&backend.read(path)?)
}

/// Writes a snapshot to a file (non-atomic; prefer [`save_atomic`]).
pub fn save_to_file(db: &Db, path: &std::path::Path) -> Result<()> {
    std::fs::write(path, snapshot(db)?).map_err(|e| Error::Snapshot(e.to_string()))
}

/// Reads a snapshot from a file.
pub fn load_from_file(path: &std::path::Path) -> Result<Db> {
    let bytes = std::fs::read(path).map_err(|e| Error::Snapshot(e.to_string()))?;
    restore(&bytes)
}

fn kind_tag(kind: ColumnKind) -> u8 {
    match kind {
        ColumnKind::Oid => 0,
        ColumnKind::Int => 1,
        ColumnKind::Flt => 2,
        ColumnKind::Str => 3,
        ColumnKind::Bit => 4,
    }
}

fn tag_kind(tag: u8) -> Result<ColumnKind> {
    Ok(match tag {
        0 => ColumnKind::Oid,
        1 => ColumnKind::Int,
        2 => ColumnKind::Flt,
        3 => ColumnKind::Str,
        4 => ColumnKind::Bit,
        other => return Err(Error::Snapshot(format!("bad kind tag {other}"))),
    })
}

// ---- v3 column codecs -------------------------------------------------

/// Oid sequences as zigzag-varint deltas: the head column of a
/// bulk-loaded relation is monotone (often with long +0/+1 runs), so
/// most rows cost one byte instead of eight. Wrapping arithmetic keeps
/// the transform lossless for arbitrary (e.g. swap-removed) orders.
fn encode_heads_delta(out: &mut Vec<u8>, heads: &[Oid]) {
    let mut prev = 0u64;
    for h in heads {
        let d = h.raw().wrapping_sub(prev) as i64;
        put_varint(out, zigzag(d));
        prev = h.raw();
    }
}

fn decode_heads_delta(cur: &mut Cursor<'_>, rows: usize) -> Result<Vec<Oid>> {
    if rows > cur.remaining() {
        return Err(Error::Snapshot(format!(
            "row count {rows} exceeds remaining buffer"
        )));
    }
    let mut out = Vec::with_capacity(rows);
    let mut prev = 0u64;
    for _ in 0..rows {
        let d = unzigzag(cur.varint()?);
        prev = prev.wrapping_add(d as u64);
        out.push(Oid::from_raw(prev));
    }
    Ok(out)
}

fn encode_tail_v3(out: &mut Vec<u8>, bat: &Bat, pool: &StrPool) -> Result<()> {
    match bat.tail() {
        Column::Oid(vs) => {
            let mut prev = 0u64;
            for v in vs {
                let d = v.raw().wrapping_sub(prev) as i64;
                put_varint(out, zigzag(d));
                prev = v.raw();
            }
        }
        Column::Int(vs) => {
            for v in vs {
                put_varint(out, zigzag(*v));
            }
        }
        Column::Flt(vs) => {
            for v in vs {
                put_u64(out, v.to_bits());
            }
        }
        Column::Str(col) => {
            if col.pool().same_pool(pool) {
                for &c in col.codes() {
                    put_varint(out, c as u64);
                }
            } else {
                // A column not homed in the catalog pool (shouldn't
                // happen through the public API): encode via strings.
                for s in col.decode_all() {
                    put_varint(out, pool.intern(&s) as u64);
                }
            }
        }
        Column::Bit(vs) => {
            let mut byte = 0u8;
            for (i, v) in vs.iter().enumerate() {
                if *v {
                    byte |= 1 << (i % 8);
                }
                if i % 8 == 7 {
                    out.push(byte);
                    byte = 0;
                }
            }
            if vs.len() % 8 != 0 {
                out.push(byte);
            }
        }
    }
    Ok(())
}

fn decode_tail_v3(
    cur: &mut Cursor<'_>,
    kind: ColumnKind,
    rows: usize,
    pool: &StrPool,
) -> Result<Column> {
    // Bit columns pack 8 rows/byte; everything else is ≥1 byte/row.
    let floor = if kind == ColumnKind::Bit { rows / 8 } else { rows };
    if floor > cur.remaining() {
        return Err(Error::Snapshot(format!(
            "tail rows {rows} exceed remaining buffer"
        )));
    }
    Ok(match kind {
        ColumnKind::Oid => {
            let mut vs = Vec::with_capacity(rows);
            let mut prev = 0u64;
            for _ in 0..rows {
                let d = unzigzag(cur.varint()?);
                prev = prev.wrapping_add(d as u64);
                vs.push(Oid::from_raw(prev));
            }
            Column::Oid(vs)
        }
        ColumnKind::Int => {
            let mut vs = Vec::with_capacity(rows);
            for _ in 0..rows {
                vs.push(unzigzag(cur.varint()?));
            }
            Column::Int(vs)
        }
        ColumnKind::Flt => {
            let mut vs = Vec::with_capacity(rows);
            for _ in 0..rows {
                vs.push(f64::from_bits(cur.u64()?));
            }
            Column::Flt(vs)
        }
        ColumnKind::Str => {
            let mut codes = Vec::with_capacity(rows);
            for _ in 0..rows {
                let c = cur.varint()?;
                if c > u32::MAX as u64 {
                    return Err(Error::Snapshot(format!("dictionary code {c} overflows")));
                }
                codes.push(c as u32);
            }
            Column::Str(StrColumn::from_codes(codes, pool.clone()).map_err(Error::Snapshot)?)
        }
        ColumnKind::Bit => {
            let nbytes = rows.div_ceil(8);
            let packed = cur.take(nbytes)?;
            let mut vs = Vec::with_capacity(rows);
            for i in 0..rows {
                vs.push(packed[i / 8] & (1 << (i % 8)) != 0);
            }
            Column::Bit(vs)
        }
    })
}

// ---- v2 column codecs -------------------------------------------------

fn encode_tail_v2(out: &mut Vec<u8>, bat: &Bat) {
    match bat.tail() {
        Column::Oid(vs) => {
            for v in vs {
                put_u64(out, v.raw());
            }
        }
        Column::Int(vs) => {
            for v in vs {
                put_u64(out, *v as u64);
            }
        }
        Column::Flt(vs) => {
            for v in vs {
                put_u64(out, v.to_bits());
            }
        }
        Column::Str(col) => {
            for s in col.decode_all() {
                put_str(out, &s);
            }
        }
        Column::Bit(vs) => {
            for v in vs {
                out.push(u8::from(*v));
            }
        }
    }
}

fn decode_tail_v2(
    cur: &mut Cursor<'_>,
    bat: &mut Bat,
    heads: &[Oid],
    kind: ColumnKind,
    rows: usize,
) -> Result<()> {
    for &head in heads.iter().take(rows) {
        let value = match kind {
            ColumnKind::Oid => Value::Oid(Oid::from_raw(cur.u64()?)),
            ColumnKind::Int => Value::Int(cur.u64()? as i64),
            ColumnKind::Flt => Value::Flt(f64::from_bits(cur.u64()?)),
            ColumnKind::Str => Value::Str(cur.string()?),
            ColumnKind::Bit => Value::Bit(cur.u8()? != 0),
        };
        bat.append(head, value)?;
    }
    Ok(())
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// LEB128 unsigned varint.
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Zigzag maps signed to unsigned so small-magnitude deltas stay short.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if n > self.remaining() {
            return Err(Error::Snapshot("truncated snapshot".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// LEB128 unsigned varint, at most 10 bytes.
    fn varint(&mut self) -> Result<u64> {
        let mut v = 0u64;
        for shift in 0..10 {
            let byte = self.u8()?;
            v |= u64::from(byte & 0x7f) << (7 * shift);
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(Error::Snapshot("varint longer than 10 bytes".into()))
    }

    fn string(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        // `take` re-checks, but failing here avoids the allocation for
        // a hostile length in `from_utf8`'s input.
        if len > self.remaining() {
            return Err(Error::Snapshot(format!("string length {len} exceeds buffer")));
        }
        let b = self.take(len)?;
        String::from_utf8(b.to_vec()).map_err(|e| Error::Snapshot(e.to_string()))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn sample_db() -> Db {
        let mut db = Db::new();
        let a = db.mint();
        let b = db.mint();
        db.get_or_create("edges", ColumnKind::Oid)
            .append_oid(a, b)
            .unwrap();
        db.get_or_create("names", ColumnKind::Str)
            .append_str(a, "seles")
            .unwrap();
        db.get_or_create("ranks", ColumnKind::Int)
            .append_int(b, 1)
            .unwrap();
        db.get_or_create("scores", ColumnKind::Flt)
            .append_flt(b, 0.75)
            .unwrap();
        db.get_or_create("flags", ColumnKind::Bit)
            .append_bit(a, true)
            .unwrap();
        db
    }

    /// A db with enough repetitive data that compression must bite.
    fn bulky_db() -> Db {
        let mut db = Db::new();
        for i in 0..500 {
            let o = db.mint();
            db.get_or_create("country", ColumnKind::Str)
                .append_str(o, ["australia", "germany", "usa"][i % 3])
                .unwrap();
            db.get_or_create("rank", ColumnKind::Int)
                .append_int(o, (i % 10) as i64)
                .unwrap();
            db.get_or_create("active", ColumnKind::Bit)
                .append_bit(o, i % 2 == 0)
                .unwrap();
        }
        db
    }

    #[test]
    fn snapshot_round_trips_all_kinds() {
        let db = sample_db();
        let bytes = snapshot(&db).unwrap();
        let back = restore(&bytes).unwrap();
        assert_eq!(back.relation_count(), db.relation_count());
        for name in db.relation_names() {
            assert_eq!(back.get(name).unwrap(), db.get(name).unwrap(), "{name}");
        }
    }

    #[test]
    fn v2_snapshot_round_trips_and_matches_v3_content() {
        let db = bulky_db();
        let via_v2 = restore(&snapshot_v2(&db).unwrap()).unwrap();
        let via_v3 = restore(&snapshot(&db).unwrap()).unwrap();
        assert_eq!(via_v2.relation_count(), via_v3.relation_count());
        for name in db.relation_names() {
            assert_eq!(via_v2.get(name).unwrap(), via_v3.get(name).unwrap(), "{name}");
            assert_eq!(via_v3.get(name).unwrap(), db.get(name).unwrap(), "{name}");
        }
    }

    #[test]
    fn v3_is_smaller_than_v2_on_repetitive_data() {
        let db = bulky_db();
        let v2 = snapshot_v2(&db).unwrap().len();
        let v3 = snapshot(&db).unwrap().len();
        assert!(
            v3 * 2 <= v2,
            "expected ≥2x compression, got v2={v2} v3={v3}"
        );
    }

    #[test]
    fn snapshot_is_stable_across_restore_cycles() {
        // snapshot(restore(snapshot(db))) must be byte-identical: the
        // dictionary section reproduces pool codes exactly.
        let db = bulky_db();
        let first = snapshot(&db).unwrap();
        let second = snapshot(&restore(&first).unwrap()).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn lazy_open_defers_decoding() {
        let db = bulky_db();
        let bytes = snapshot(&db).unwrap();
        let lazy = restore_lazy(bytes).unwrap();
        assert_eq!(lazy.materialized_count(), 0, "nothing decoded at open");
        assert_eq!(lazy.relation_count(), db.relation_count());
        assert_eq!(lazy.association_count(), db.association_count());
        // First access materializes exactly that relation.
        assert_eq!(
            lazy.get("country").unwrap(),
            db.get("country").unwrap()
        );
        assert_eq!(lazy.materialized_count(), 1);
        assert_eq!(lazy.get("rank").unwrap(), db.get("rank").unwrap());
        assert_eq!(lazy.materialized_count(), 2);
    }

    #[test]
    fn lazy_catalog_mints_past_watermark_without_decoding() {
        let db = sample_db();
        let max_existing = db.get("edges").unwrap().iter().map(|(h, _)| h).max().unwrap();
        let mut lazy = restore_lazy(snapshot(&db).unwrap()).unwrap();
        let fresh = lazy.mint();
        assert!(fresh > max_existing);
        assert_eq!(lazy.materialized_count(), 0);
    }

    #[test]
    fn restored_db_mints_fresh_oids() {
        let db = sample_db();
        let max_existing = db
            .get("edges")
            .unwrap()
            .iter()
            .map(|(h, _)| h)
            .max()
            .unwrap();
        let mut back = restore(&snapshot(&db).unwrap()).unwrap();
        let fresh = back.mint();
        assert!(fresh > max_existing, "{fresh} vs {max_existing}");
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(restore(b"XXXX\x01").is_err());
    }

    #[test]
    fn truncated_snapshot_is_rejected() {
        let bytes = snapshot(&sample_db()).unwrap();
        assert!(restore(&bytes[..bytes.len() / 2]).is_err());
    }

    #[test]
    fn every_single_byte_corruption_is_detected() {
        let db = sample_db();
        let bytes = snapshot(&db).unwrap();
        let mut copy = bytes.clone();
        for i in 0..copy.len() {
            copy[i] ^= 0x40;
            match restore(&copy) {
                Err(Error::Snapshot(_)) => {}
                Err(other) => panic!("byte {i}: unexpected error kind {other:?}"),
                Ok(_) => panic!("byte {i}: corruption slipped past the checksum"),
            }
            copy[i] ^= 0x40;
        }
    }

    #[test]
    fn forged_crc_never_panics() {
        // Flip each body byte AND fix up the trailer so the CRC passes:
        // decoding must then either fail with a typed error or produce
        // some catalog — never panic or over-allocate.
        let db = sample_db();
        let bytes = snapshot(&db).unwrap();
        let mut copy = bytes.clone();
        let body_len = copy.len() - 4;
        for i in 5..body_len {
            copy[i] ^= 0x40;
            let crc = crc32(&copy[..body_len]);
            copy[body_len..].copy_from_slice(&crc.to_le_bytes());
            let _ = restore(&copy);
            copy[i] ^= 0x40;
        }
    }

    #[test]
    fn hostile_row_count_cannot_explode_allocation() {
        let db = sample_db();
        let mut bytes = snapshot_v2(&db).unwrap();
        // Forge a v1 snapshot (no trailer to fail first) with a huge
        // relation count: the cap must reject it without allocating.
        bytes[4] = 1;
        let body_len = bytes.len() - 4;
        bytes.truncate(body_len);
        let nrel_off = 4 + 1 + 8;
        bytes[nrel_off..nrel_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        match restore(&bytes) {
            Err(Error::Snapshot(msg)) => assert!(msg.contains("exceeds"), "{msg}"),
            other => panic!("expected Snapshot error, got {other:?}"),
        }
    }

    #[test]
    fn legacy_v1_snapshot_still_loads() {
        let db = sample_db();
        let mut bytes = snapshot_v2(&db).unwrap();
        bytes[4] = 1;
        let body_len = bytes.len() - 4;
        bytes.truncate(body_len); // drop the CRC trailer
        let back = restore(&bytes).unwrap();
        assert_eq!(back.relation_count(), db.relation_count());
    }

    #[test]
    fn varint_and_zigzag_round_trip() {
        for v in [0i64, 1, -1, 63, -64, 64, 1 << 20, -(1 << 40), i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v, "{v}");
        }
        let mut buf = Vec::new();
        let samples = [0u64, 1, 127, 128, 300, 1 << 21, u64::MAX];
        for &v in &samples {
            put_varint(&mut buf, v);
        }
        let mut cur = Cursor { buf: &buf, pos: 0 };
        for &v in &samples {
            assert_eq!(cur.varint().unwrap(), v);
        }
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("monet_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.mbat");
        let db = sample_db();
        save_to_file(&db, &path).unwrap();
        let back = load_from_file(&path).unwrap();
        assert_eq!(back.association_count(), db.association_count());
        std::fs::remove_file(&path).ok();
    }
}
