//! Object identifiers and their generator.
//!
//! Every node the Monet transform creates — XML elements, documents, terms,
//! document/term pairs — is identified by an [`Oid`]. Oids are opaque: the
//! only guarantees are equality, a total order (used for sort-merge
//! operations) and uniqueness per [`OidGen`].

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// An object identifier, the head domain of every BAT.
///
/// `Oid` is a transparent `u64` newtype; construction normally goes through
/// [`OidGen::mint`] so identifiers stay unique within one database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Oid(u64);

impl Oid {
    /// Builds an oid from a raw value.
    ///
    /// Exposed for tests and for deserialising snapshots; regular code
    /// should mint fresh oids via [`OidGen`].
    pub const fn from_raw(raw: u64) -> Self {
        Oid(raw)
    }

    /// Returns the raw numeric value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// A thread-safe monotonic oid generator.
///
/// One generator belongs to one logical database; sharing it across threads
/// is safe and lock-free.
#[derive(Debug)]
pub struct OidGen {
    next: AtomicU64,
}

impl OidGen {
    /// Creates a generator starting at oid 1 (oid 0 is reserved as "nil"
    /// by convention in dumps, though the store never interprets it).
    pub fn new() -> Self {
        OidGen {
            next: AtomicU64::new(1),
        }
    }

    /// Creates a generator that resumes after `last`, for snapshot restore.
    pub fn resume_after(last: Oid) -> Self {
        OidGen {
            next: AtomicU64::new(last.0 + 1),
        }
    }

    /// Mints a fresh, unique oid.
    pub fn mint(&self) -> Oid {
        Oid(self.next.fetch_add(1, Ordering::Relaxed))
    }

    /// Returns the value the next [`mint`](Self::mint) call would produce,
    /// without consuming it. Used when snapshotting a catalog.
    pub fn peek(&self) -> Oid {
        Oid(self.next.load(Ordering::Relaxed))
    }
}

impl Default for OidGen {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn mint_is_monotonic_and_unique() {
        let g = OidGen::new();
        let a = g.mint();
        let b = g.mint();
        assert!(a < b);
        assert_ne!(a, b);
    }

    #[test]
    fn resume_after_continues_sequence() {
        let g = OidGen::new();
        let last = (0..10).map(|_| g.mint()).last().unwrap();
        let g2 = OidGen::resume_after(last);
        assert!(g2.mint() > last);
    }

    #[test]
    fn concurrent_minting_never_collides() {
        let g = Arc::new(OidGen::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let g = Arc::clone(&g);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| g.mint()).collect::<Vec<_>>()
            }));
        }
        let mut seen = HashSet::new();
        for h in handles {
            for oid in h.join().unwrap() {
                assert!(seen.insert(oid), "duplicate oid {oid}");
            }
        }
        assert_eq!(seen.len(), 4000);
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(Oid::from_raw(42).to_string(), "o42");
    }
}
