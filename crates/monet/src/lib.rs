//! A miniature re-implementation of the storage substrate the paper runs on:
//! the Monet database kernel's *binary association tables* (BATs).
//!
//! The paper's physical level ("Monet XML") decomposes XML documents into
//! binary relations of three shapes — `oid × oid`, `oid × string` and
//! `oid × int` — and the IR level adds `oid × float` score relations. This
//! crate provides exactly that model:
//!
//! * [`Oid`] — the object identifier domain, minted by an [`OidGen`],
//! * [`Value`] / [`Column`] — the typed tail domains (oid, int, float,
//!   string, bool),
//! * [`Bat`] — an append-friendly binary table `head: oid → tail: value`
//!   with the relational operations the upper levels consume (selections,
//!   joins, semijoins, grouping, aggregation, top-N slicing),
//! * [`Db`] — a named catalog of BATs with a shared string dictionary
//!   ([`StrPool`]) and lazy per-relation snapshot loading,
//! * [`persist`] — compressed binary snapshots of a catalog
//!   (dictionary-encoded strings, delta-compressed oid columns) with a
//!   lazy [`persist::SnapshotReader`].
//!
//! The store is deliberately in-memory and single-version: the paper never
//! discusses buffer management or transactions, and every experiment in
//! `EXPERIMENTS.md` only needs fast scans and joins over binary relations.
//!
//! # Example
//!
//! ```
//! use monet::{Bat, Db, OidGen};
//!
//! let mut db = Db::new();
//! let gen = OidGen::new();
//! let (a, b) = (gen.mint(), gen.mint());
//!
//! let mut names = Bat::new_str();
//! names.append_str(a, "Seles").unwrap();
//! names.append_str(b, "Hingis").unwrap();
//! db.create("player/name", names).unwrap();
//!
//! let hits = db.get("player/name").unwrap().select_str_eq("Seles");
//! assert_eq!(hits, vec![a]);
//! ```

#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

pub mod bat;
pub mod catalog;
pub mod crc;
pub mod error;
pub mod oid;
pub mod persist;
pub mod storage;
pub mod value;
pub mod wal;

pub use bat::Bat;
pub use catalog::Db;
pub use error::{Error, Result};
pub use oid::{Oid, OidGen};
pub use persist::SnapshotReader;
pub use value::{Column, ColumnKind, DictStats, StrColumn, StrPool, Value};
