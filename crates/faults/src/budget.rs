//! End-to-end query budgets: wall-clock deadline, work allowance and
//! cooperative cancellation in one `Sync` token.
//!
//! A [`Budget`] is created at the edge of the system (the admission
//! gate) and threaded as `&Budget` through every layer a query
//! touches — conceptual joins, distributed text scatter-gather,
//! path-expression scans, parse-tree reconstruction. Each layer calls
//! [`Budget::consume`] at loop granularity (one unit per row, shard,
//! node, candidate) and bails out with the typed [`BudgetExceeded`]
//! it receives, so a query can never run past its deadline by more
//! than one loop iteration anywhere in the stack.
//!
//! Budgets live in this crate for the same reason [`crate::FaultPlan`]
//! does: `faults` is the one leaf crate every storage and query layer
//! already shares, so the token can cross crate boundaries without new
//! dependency edges.
//!
//! Three independent limits, each optional:
//!
//! * **deadline** — a wall-clock instant; checked against
//!   `Instant::now()`.
//! * **work** — an abstract operation allowance, decremented by
//!   [`Budget::consume`]. Deterministic: a query cancelled at work
//!   unit *k* is cancelled at the same point on every run, which is
//!   what the budget-expiry property test sweeps.
//! * **cancellation** — an externally flipped flag ([`Budget::cancel`])
//!   for callers that change their mind (client disconnect, shed).
//!
//! [`Budget::unlimited`] has none of the three: every check is a
//! cheap always-`Ok` fast path, so fully threading budgets through the
//! query stack costs nothing when no limit is set.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::time::{Duration, Instant};

/// Why a budget check failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetExceeded {
    /// The wall-clock deadline passed.
    Deadline,
    /// The work allowance ran out.
    Work,
    /// The caller cancelled the query.
    Cancelled,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetExceeded::Deadline => write!(f, "deadline exceeded"),
            BudgetExceeded::Work => write!(f, "work budget exhausted"),
            BudgetExceeded::Cancelled => write!(f, "cancelled by caller"),
        }
    }
}

impl std::error::Error for BudgetExceeded {}

/// A shareable deadline + work budget + cancellation token.
///
/// `&Budget` is `Sync`: shard threads and pipeline workers may consume
/// from the same budget concurrently.
#[derive(Debug)]
pub struct Budget {
    deadline: Option<Instant>,
    /// Remaining work units; negative once exhausted. `None` = no
    /// work limit.
    work: Option<AtomicI64>,
    cancelled: AtomicBool,
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

impl Budget {
    /// A budget with no limits: every check passes, forever.
    pub fn unlimited() -> Self {
        Budget {
            deadline: None,
            work: None,
            cancelled: AtomicBool::new(false),
        }
    }

    /// A budget that expires `timeout` from now (builder style:
    /// `Budget::unlimited().with_deadline(..)` also works).
    pub fn with_deadline(timeout: Duration) -> Self {
        Budget {
            deadline: Some(Instant::now() + timeout),
            ..Budget::unlimited()
        }
    }

    /// A budget allowing `units` work consumptions before expiring.
    pub fn with_work(units: u64) -> Self {
        Budget {
            work: Some(AtomicI64::new(i64::try_from(units).unwrap_or(i64::MAX))),
            ..Budget::unlimited()
        }
    }

    /// Adds (or replaces) a wall-clock deadline `timeout` from now.
    pub fn and_deadline(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Adds (or replaces) a work allowance of `units`.
    pub fn and_work(mut self, units: u64) -> Self {
        self.work = Some(AtomicI64::new(i64::try_from(units).unwrap_or(i64::MAX)));
        self
    }

    /// True when no limit of any kind is set (the production default).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.work.is_none() && !self.cancelled.load(Ordering::Relaxed)
    }

    /// Flips the cancellation flag; every subsequent check fails with
    /// [`BudgetExceeded::Cancelled`].
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Checks the budget without consuming work: cancellation first,
    /// then the deadline, then whether the work allowance is already
    /// negative.
    pub fn check(&self) -> Result<(), BudgetExceeded> {
        if self.cancelled.load(Ordering::Relaxed) {
            return Err(BudgetExceeded::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(BudgetExceeded::Deadline);
            }
        }
        if let Some(work) = &self.work {
            if work.load(Ordering::Relaxed) < 0 {
                return Err(BudgetExceeded::Work);
            }
        }
        Ok(())
    }

    /// Consumes `units` of work and checks every limit. The loop body
    /// that already ran is paid for: consuming the last unit succeeds,
    /// the next consumption fails.
    pub fn consume(&self, units: u64) -> Result<(), BudgetExceeded> {
        if let Some(work) = &self.work {
            let units = i64::try_from(units).unwrap_or(i64::MAX);
            if work.fetch_sub(units, Ordering::Relaxed) < units {
                return Err(BudgetExceeded::Work);
            }
        }
        if self.cancelled.load(Ordering::Relaxed) {
            return Err(BudgetExceeded::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(BudgetExceeded::Deadline);
            }
        }
        Ok(())
    }

    /// Wall-clock time left, if a deadline is set. Zero once past it.
    pub fn remaining_time(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Work units left, if a work limit is set. Zero once exhausted.
    pub fn remaining_work(&self) -> Option<u64> {
        self.work
            .as_ref()
            .map(|w| u64::try_from(w.load(Ordering::Relaxed)).unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_always_passes() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        for _ in 0..1000 {
            b.check().unwrap();
            b.consume(10).unwrap();
        }
        assert_eq!(b.remaining_time(), None);
        assert_eq!(b.remaining_work(), None);
    }

    #[test]
    fn work_budget_expires_after_exactly_n_units() {
        let b = Budget::with_work(3);
        assert!(!b.is_unlimited());
        b.consume(1).unwrap();
        b.consume(1).unwrap();
        b.consume(1).unwrap();
        assert_eq!(b.consume(1), Err(BudgetExceeded::Work));
        assert_eq!(b.check(), Err(BudgetExceeded::Work));
        assert_eq!(b.remaining_work(), Some(0));
    }

    #[test]
    fn zero_work_budget_fails_the_first_consumption() {
        let b = Budget::with_work(0);
        b.check().unwrap();
        assert_eq!(b.consume(1), Err(BudgetExceeded::Work));
    }

    #[test]
    fn deadline_budget_expires() {
        let b = Budget::with_deadline(Duration::from_millis(5));
        b.check().unwrap();
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(b.check(), Err(BudgetExceeded::Deadline));
        assert_eq!(b.consume(1), Err(BudgetExceeded::Deadline));
        assert_eq!(b.remaining_time(), Some(Duration::ZERO));
    }

    #[test]
    fn cancellation_wins_immediately() {
        let b = Budget::with_work(1000).and_deadline(Duration::from_secs(60));
        b.check().unwrap();
        b.cancel();
        assert_eq!(b.check(), Err(BudgetExceeded::Cancelled));
        assert!(!b.is_unlimited());
    }

    #[test]
    fn remaining_time_counts_down() {
        let b = Budget::with_deadline(Duration::from_secs(60));
        let left = b.remaining_time().unwrap();
        assert!(left <= Duration::from_secs(60));
        assert!(left > Duration::from_secs(59));
    }

    #[test]
    fn budgets_are_shareable_across_threads() {
        let b = Budget::with_work(100);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let _ = b.consume(10);
                });
            }
        });
        assert!(b.remaining_work().unwrap() <= 60);
    }
}
