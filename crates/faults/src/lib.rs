//! Deterministic, seedable fault injection.
//!
//! The paper's architecture spans components that fail in practice:
//! blackbox detectors reached over XML-RPC ("possible failure" is part
//! of the detector contract) and full-text relations distributed over
//! shared-nothing servers. A [`FaultPlan`] decides, per call-site
//! *label* (e.g. `rpc:tennis`, `shard:2`), whether a call should fail
//! with a transport error, hang past its deadline, or return garbage —
//! so every failure mode is testable without a real network.
//!
//! Decisions are a pure function of `(seed, label, per-label call
//! count)`: two runs with the same plan observe the same faults, which
//! keeps degraded-mode runs reproducible and zero-fault runs
//! byte-identical to fault-free builds.
//!
//! # The `disk:*` label namespace
//!
//! The durability layer injects *I/O* faults through the same plan,
//! decided by [`FaultPlan::decide_io`] (kinds in [`IoFault`]: torn
//! writes, bit flips, short reads, `ENOSPC`, fsync failures). The
//! storage backend consults two well-known labels:
//!
//! * `disk:wal` — every operation on a write-ahead-log segment
//!   (`*.wal` files),
//! * `disk:snapshot` — every operation on snapshot and manifest files
//!   (everything else under the durability directory).
//!
//! I/O decisions keep their own per-label call counter (`io_calls`),
//! independent of [`FaultPlan::decide`]'s, with the same replay-exactly
//! determinism: a pure function of `(seed, label, per-label I/O call
//! count)`. Scripted I/O schedules ([`FaultPlan::set_io_script`]) run
//! before the probabilistic spec, one action per call — the crash-point
//! recovery harness scripts `k` clean operations followed by a failure
//! to "crash" persistence at exactly the `k`-th disk touch.
//!
//! # The control-plane label namespaces
//!
//! The self-healing distribution control plane consults the plan at
//! two further families of labels:
//!
//! * `control:<action>` (`control:split`, `control:merge`,
//!   `control:rereplicate`) — before a policy decision is executed,
//!   so a chaos schedule can kill it at the policy/mechanism
//!   boundary with the cluster untouched,
//! * `rereplicate:<lost>:<group>` — each chunk of a background
//!   re-replication rebuild, so an interrupted repair can be proven
//!   to abort byte-identically.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

pub mod budget;

pub use budget::{Budget, BudgetExceeded};

/// What the injection point should do for one call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultAction {
    /// Proceed normally.
    None,
    /// Fail immediately with a transport-style error.
    Error,
    /// Stall the call until past its deadline.
    Hang,
    /// Deliver a corrupted (undecodable) response.
    Garbage,
}

/// Per-label fault probabilities (the three kinds are disjoint; their
/// sum must stay ≤ 1).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultSpec {
    /// Probability of a transport error.
    pub error: f64,
    /// Probability of a hang.
    pub hang: f64,
    /// Probability of a garbage response.
    pub garbage: f64,
}

impl FaultSpec {
    /// No faults ever.
    pub fn none() -> Self {
        FaultSpec::default()
    }

    /// Transport errors with probability `p`.
    pub fn errors(p: f64) -> Self {
        FaultSpec {
            error: p,
            ..FaultSpec::default()
        }
    }

    /// Hangs on every call.
    pub fn always_hang() -> Self {
        FaultSpec {
            hang: 1.0,
            ..FaultSpec::default()
        }
    }

    /// Transport errors on every call.
    pub fn always_error() -> Self {
        FaultSpec {
            error: 1.0,
            ..FaultSpec::default()
        }
    }

    fn validate(&self) {
        let sum = self.error + self.hang + self.garbage;
        assert!(
            (0.0..=1.0 + 1e-12).contains(&sum),
            "fault probabilities sum to {sum}, must be within [0, 1]"
        );
    }
}

/// What one disk operation should do.
///
/// Offsets are in bytes into the buffer being written; the backend
/// clamps them to the buffer length, so scripted offsets never panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoFault {
    /// Proceed normally.
    None,
    /// Persist only the first `at` bytes of the write, then fail — the
    /// on-disk file ends mid-record, as after a power cut.
    TornWrite {
        /// Byte offset at which the write is cut.
        at: usize,
    },
    /// Flip one bit of the written buffer at byte `at` and report
    /// success — silent media corruption, detectable only by checksum.
    BitFlip {
        /// Byte offset of the flipped bit.
        at: usize,
    },
    /// Return only a prefix of the file's contents from a read.
    ShortRead,
    /// Fail the operation up front with an `ENOSPC`-style error; no
    /// bytes reach the disk.
    NoSpace,
    /// Report failure from `fsync` — the data may or may not be
    /// durable, and the caller must assume it is not.
    FsyncFail,
}

/// Per-label I/O fault probabilities (disjoint kinds; their sum must
/// stay ≤ 1).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IoFaultSpec {
    /// Probability of a torn write (random cut offset).
    pub torn_write: f64,
    /// Probability of a single flipped bit (random offset).
    pub bit_flip: f64,
    /// Probability of a short read.
    pub short_read: f64,
    /// Probability of an `ENOSPC` failure.
    pub no_space: f64,
    /// Probability of an fsync failure.
    pub fsync_fail: f64,
}

impl IoFaultSpec {
    /// No I/O faults ever.
    pub fn none() -> Self {
        IoFaultSpec::default()
    }

    /// `ENOSPC` on every operation.
    pub fn always_no_space() -> Self {
        IoFaultSpec {
            no_space: 1.0,
            ..IoFaultSpec::default()
        }
    }

    fn validate(&self) {
        let sum = self.torn_write + self.bit_flip + self.short_read + self.no_space
            + self.fsync_fail;
        assert!(
            (0.0..=1.0 + 1e-12).contains(&sum),
            "I/O fault probabilities sum to {sum}, must be within [0, 1]"
        );
    }
}

/// Per-label latency injection: how slow a site should be, without
/// being *dead*. Overload is mostly a latency phenomenon — a shard
/// that answers in 80 ms instead of 2 ms backs queues up long before
/// anything reports an error — so the load harness injects delays,
/// not faults, to push the engine into its degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DelaySpec {
    /// Probability that a call is delayed at all (0 = never, 1 = every
    /// call).
    pub probability: f64,
    /// How long a delayed call stalls before proceeding normally.
    pub delay: Duration,
}

impl DelaySpec {
    /// Delays every call by `delay`.
    pub fn always(delay: Duration) -> Self {
        DelaySpec {
            probability: 1.0,
            delay,
        }
    }

    fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.probability),
            "delay probability {} must be within [0, 1]",
            self.probability
        );
    }
}

#[derive(Debug, Default)]
struct SiteState {
    spec: Option<FaultSpec>,
    /// Scripted prefix, consumed one action per call before `spec` (or
    /// the default spec) takes over.
    script: Vec<FaultAction>,
    consumed: usize,
    calls: u64,
    /// I/O half of the site: its own spec, script and call counter, so
    /// disk decisions never perturb the RPC/shard streams.
    io_spec: Option<IoFaultSpec>,
    io_script: Vec<IoFault>,
    io_consumed: usize,
    io_calls: u64,
    /// Latency half of the site: again its own spec, schedule and
    /// counter, so making a label slow never shifts its fault stream.
    delay_spec: Option<DelaySpec>,
    delay_schedule: Vec<Duration>,
    delay_consumed: usize,
    delay_calls: u64,
}

/// Pre-registered metric handles for fault-injection accounting.
/// Cloned atomic handles: recording a decision is one atomic add.
#[derive(Debug, Clone)]
struct FaultMetrics {
    decisions: obs::Counter,
    injected_error: obs::Counter,
    injected_hang: obs::Counter,
    injected_garbage: obs::Counter,
    io_decisions: obs::Counter,
    io_injected: obs::Counter,
    delays_injected: obs::Counter,
}

impl FaultMetrics {
    fn register(registry: &obs::Registry) -> FaultMetrics {
        FaultMetrics {
            decisions: registry.counter(
                "faults_decisions_total",
                "Fault-injection decisions taken (all labels)",
            ),
            injected_error: registry.labeled_counter(
                "faults_injected_total",
                "Faults actually injected, by kind",
                "kind",
                "error",
            ),
            injected_hang: registry.labeled_counter(
                "faults_injected_total",
                "Faults actually injected, by kind",
                "kind",
                "hang",
            ),
            injected_garbage: registry.labeled_counter(
                "faults_injected_total",
                "Faults actually injected, by kind",
                "kind",
                "garbage",
            ),
            io_decisions: registry.counter(
                "faults_io_decisions_total",
                "Disk I/O fault decisions taken",
            ),
            io_injected: registry.counter(
                "faults_io_injected_total",
                "Disk I/O faults actually injected",
            ),
            delays_injected: registry.counter(
                "faults_delays_injected_total",
                "Latency injections that stalled a call",
            ),
        }
    }

    fn record_action(&self, action: FaultAction) {
        self.decisions.inc();
        match action {
            FaultAction::None => {}
            FaultAction::Error => self.injected_error.inc(),
            FaultAction::Hang => self.injected_hang.inc(),
            FaultAction::Garbage => self.injected_garbage.inc(),
        }
    }
}

/// A deterministic fault schedule shared by every injection point.
///
/// Interior mutability makes the plan `Arc`-shareable across the RPC
/// clients, supervisors and shard threads that consult it.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    default: FaultSpec,
    sites: Mutex<HashMap<String, SiteState>>,
    metrics: Mutex<Option<FaultMetrics>>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn label_hash(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl FaultPlan {
    /// A plan that never injects anything (the production default).
    pub fn none() -> Self {
        FaultPlan::seeded(0)
    }

    /// An empty plan with deterministic randomness derived from `seed`.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            default: FaultSpec::none(),
            sites: Mutex::new(HashMap::new()),
            metrics: Mutex::new(None),
        }
    }

    /// Connects the plan to an observability handle: every subsequent
    /// decision feeds the `faults_*` counters. A disabled handle
    /// disconnects (decisions go back to costing nothing extra).
    pub fn set_obs(&self, o: &obs::Obs) {
        let mut metrics = self.metrics.lock().expect("fault plan poisoned");
        *metrics = o.registry().map(FaultMetrics::register);
    }

    fn metrics(&self) -> Option<FaultMetrics> {
        self.metrics.lock().expect("fault plan poisoned").clone()
    }

    /// Sets the spec applied to every label without its own entry
    /// (builder style).
    pub fn with_default(mut self, spec: FaultSpec) -> Self {
        spec.validate();
        self.default = spec;
        self
    }

    /// Sets the probabilistic spec for one label (builder style).
    pub fn with_site(self, label: impl Into<String>, spec: FaultSpec) -> Self {
        self.set_site(label, spec);
        self
    }

    /// Prepends a scripted schedule for one label: the listed actions
    /// are consumed one per call, after which the label falls back to
    /// its spec (builder style).
    pub fn with_script(self, label: impl Into<String>, script: Vec<FaultAction>) -> Self {
        self.set_script(label, script);
        self
    }

    /// Replaces the probabilistic spec for `label` at runtime — e.g. to
    /// simulate a detector recovering mid-run.
    pub fn set_site(&self, label: impl Into<String>, spec: FaultSpec) {
        spec.validate();
        let mut sites = self.sites.lock().expect("fault plan poisoned");
        sites.entry(label.into()).or_default().spec = Some(spec);
    }

    /// Applies one spec to a whole batch of labels at runtime — the
    /// chaos-test idiom for killing a *machine* rather than a site
    /// (e.g. every `shard:`/`replica:` label a virtual server hosts).
    pub fn set_sites<I, S>(&self, labels: I, spec: FaultSpec)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        for label in labels {
            self.set_site(label, spec);
        }
    }

    /// Replaces the scripted schedule for `label` at runtime.
    pub fn set_script(&self, label: impl Into<String>, script: Vec<FaultAction>) {
        let mut sites = self.sites.lock().expect("fault plan poisoned");
        let site = sites.entry(label.into()).or_default();
        site.script = script;
        site.consumed = 0;
    }

    /// Decides what the next call at `label` should do, advancing the
    /// per-label call counter.
    pub fn decide(&self, label: &str) -> FaultAction {
        let action = self.decide_inner(label);
        if let Some(m) = self.metrics() {
            m.record_action(action);
        }
        action
    }

    fn decide_inner(&self, label: &str) -> FaultAction {
        let mut sites = self.sites.lock().expect("fault plan poisoned");
        let site = sites.entry(label.to_owned()).or_default();
        let call = site.calls;
        site.calls += 1;
        if site.consumed < site.script.len() {
            let action = site.script[site.consumed];
            site.consumed += 1;
            return action;
        }
        let spec = site.spec.unwrap_or(self.default);
        let word = splitmix(self.seed ^ label_hash(label) ^ call.wrapping_mul(0x9E37_79B9));
        let draw = (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if draw < spec.error {
            FaultAction::Error
        } else if draw < spec.error + spec.hang {
            FaultAction::Hang
        } else if draw < spec.error + spec.hang + spec.garbage {
            FaultAction::Garbage
        } else {
            FaultAction::None
        }
    }

    /// Decides what a call at `label` identified by `key` should do.
    ///
    /// Unlike [`FaultPlan::decide`], the outcome is a pure function of
    /// `(seed, label, key)` — independent of call *order* — so parallel
    /// ingestion workers observe the same faults on the same documents
    /// no matter how the scheduler interleaves them. The per-label call
    /// counter still advances (for [`FaultPlan::calls`] accounting), but
    /// scripted schedules are ignored: a script is inherently
    /// order-based and belongs with [`FaultPlan::decide`].
    pub fn decide_keyed(&self, label: &str, key: &str) -> FaultAction {
        let action = self.decide_keyed_inner(label, key);
        if let Some(m) = self.metrics() {
            m.record_action(action);
        }
        action
    }

    fn decide_keyed_inner(&self, label: &str, key: &str) -> FaultAction {
        let spec = {
            let mut sites = self.sites.lock().expect("fault plan poisoned");
            let site = sites.entry(label.to_owned()).or_default();
            site.calls += 1;
            site.spec.unwrap_or(self.default)
        };
        let word = splitmix(self.seed ^ label_hash(label) ^ label_hash(key).rotate_left(17));
        let draw = (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if draw < spec.error {
            FaultAction::Error
        } else if draw < spec.error + spec.hang {
            FaultAction::Hang
        } else if draw < spec.error + spec.hang + spec.garbage {
            FaultAction::Garbage
        } else {
            FaultAction::None
        }
    }

    /// Sets the probabilistic I/O spec for one label (builder style).
    pub fn with_io_site(self, label: impl Into<String>, spec: IoFaultSpec) -> Self {
        self.set_io_site(label, spec);
        self
    }

    /// Prepends a scripted I/O schedule for one label (builder style).
    pub fn with_io_script(self, label: impl Into<String>, script: Vec<IoFault>) -> Self {
        self.set_io_script(label, script);
        self
    }

    /// Replaces the probabilistic I/O spec for `label` at runtime.
    pub fn set_io_site(&self, label: impl Into<String>, spec: IoFaultSpec) {
        spec.validate();
        let mut sites = self.sites.lock().expect("fault plan poisoned");
        sites.entry(label.into()).or_default().io_spec = Some(spec);
    }

    /// Replaces the scripted I/O schedule for `label` at runtime. The
    /// listed faults are consumed one per operation, after which the
    /// label falls back to its probabilistic spec.
    pub fn set_io_script(&self, label: impl Into<String>, script: Vec<IoFault>) {
        let mut sites = self.sites.lock().expect("fault plan poisoned");
        let site = sites.entry(label.into()).or_default();
        site.io_script = script;
        site.io_consumed = 0;
    }

    /// Decides what the next disk operation at `label` should do,
    /// advancing the per-label I/O call counter. `len` is the size of
    /// the buffer involved; randomly drawn cut/flip offsets stay within
    /// it (an empty buffer yields offset 0).
    ///
    /// Like [`FaultPlan::decide`], the outcome is a pure function of
    /// `(seed, label, per-label I/O call count)` — replaying a run with
    /// the same plan observes byte-identical fault schedules.
    pub fn decide_io(&self, label: &str, len: usize) -> IoFault {
        let fault = self.decide_io_inner(label, len);
        if let Some(m) = self.metrics() {
            m.io_decisions.inc();
            if fault != IoFault::None {
                m.io_injected.inc();
            }
        }
        fault
    }

    fn decide_io_inner(&self, label: &str, len: usize) -> IoFault {
        let mut sites = self.sites.lock().expect("fault plan poisoned");
        let site = sites.entry(label.to_owned()).or_default();
        let call = site.io_calls;
        site.io_calls += 1;
        if site.io_consumed < site.io_script.len() {
            let fault = site.io_script[site.io_consumed];
            site.io_consumed += 1;
            return fault;
        }
        let spec = site.io_spec.unwrap_or_default();
        let word = splitmix(
            self.seed ^ label_hash(label).rotate_left(31) ^ call.wrapping_mul(0xA24B_AED5),
        );
        let draw = (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let at = if len == 0 {
            0
        } else {
            (splitmix(word ^ 0xD6E8_FEB8_6659_FD93) % len as u64) as usize
        };
        let mut edge = spec.torn_write;
        if draw < edge {
            return IoFault::TornWrite { at };
        }
        edge += spec.bit_flip;
        if draw < edge {
            return IoFault::BitFlip { at };
        }
        edge += spec.short_read;
        if draw < edge {
            return IoFault::ShortRead;
        }
        edge += spec.no_space;
        if draw < edge {
            return IoFault::NoSpace;
        }
        edge += spec.fsync_fail;
        if draw < edge {
            return IoFault::FsyncFail;
        }
        IoFault::None
    }

    /// Sets the probabilistic latency spec for one label (builder
    /// style).
    pub fn with_delay_site(self, label: impl Into<String>, spec: DelaySpec) -> Self {
        self.set_delay_site(label, spec);
        self
    }

    /// Prepends a scripted per-call delay schedule for one label
    /// (builder style): call *k* stalls for `schedule[k]`, after which
    /// the label falls back to its probabilistic delay spec.
    pub fn with_delay_schedule(self, label: impl Into<String>, schedule: Vec<Duration>) -> Self {
        self.set_delay_schedule(label, schedule);
        self
    }

    /// Replaces the probabilistic latency spec for `label` at runtime —
    /// e.g. to let a slow shard recover mid-run.
    pub fn set_delay_site(&self, label: impl Into<String>, spec: DelaySpec) {
        spec.validate();
        let mut sites = self.sites.lock().expect("fault plan poisoned");
        sites.entry(label.into()).or_default().delay_spec = Some(spec);
    }

    /// Replaces the scripted delay schedule for `label` at runtime.
    pub fn set_delay_schedule(&self, label: impl Into<String>, schedule: Vec<Duration>) {
        let mut sites = self.sites.lock().expect("fault plan poisoned");
        let site = sites.entry(label.into()).or_default();
        site.delay_schedule = schedule;
        site.delay_consumed = 0;
    }

    /// Decides how long the next call at `label` should stall before
    /// proceeding, advancing the per-label delay counter. Returns
    /// [`Duration::ZERO`] for an undelayed call. The injection point is
    /// responsible for actually sleeping — the plan only decides.
    ///
    /// Like every other decision, the outcome is a pure function of
    /// `(seed, label, per-label delay call count)`, on a stream
    /// independent of [`FaultPlan::decide`] and [`FaultPlan::decide_io`].
    pub fn decide_delay(&self, label: &str) -> Duration {
        let delay = self.decide_delay_inner(label);
        if delay > Duration::ZERO {
            if let Some(m) = self.metrics() {
                m.delays_injected.inc();
            }
        }
        delay
    }

    fn decide_delay_inner(&self, label: &str) -> Duration {
        let mut sites = self.sites.lock().expect("fault plan poisoned");
        let site = sites.entry(label.to_owned()).or_default();
        let call = site.delay_calls;
        site.delay_calls += 1;
        if site.delay_consumed < site.delay_schedule.len() {
            let delay = site.delay_schedule[site.delay_consumed];
            site.delay_consumed += 1;
            return delay;
        }
        let Some(spec) = site.delay_spec else {
            return Duration::ZERO;
        };
        let word = splitmix(
            self.seed ^ label_hash(label).rotate_left(13) ^ call.wrapping_mul(0xC2B2_AE3D),
        );
        let draw = (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if draw < spec.probability {
            spec.delay
        } else {
            Duration::ZERO
        }
    }

    /// Total delay decisions made for `label` so far.
    pub fn delay_calls(&self, label: &str) -> u64 {
        self.sites
            .lock()
            .expect("fault plan poisoned")
            .get(label)
            .map_or(0, |s| s.delay_calls)
    }

    /// Total I/O operations decided for `label` so far.
    pub fn io_calls(&self, label: &str) -> u64 {
        self.sites
            .lock()
            .expect("fault plan poisoned")
            .get(label)
            .map_or(0, |s| s.io_calls)
    }

    /// Total calls decided for `label` so far.
    pub fn calls(&self, label: &str) -> u64 {
        self.sites
            .lock()
            .expect("fault plan poisoned")
            .get(label)
            .map_or(0, |s| s.calls)
    }

    /// Wraps the plan for sharing across threads.
    pub fn shared(self) -> Arc<FaultPlan> {
        Arc::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_plan_never_faults() {
        let plan = FaultPlan::none();
        for i in 0..1000 {
            assert_eq!(plan.decide(&format!("site:{}", i % 7)), FaultAction::None);
        }
    }

    #[test]
    fn decisions_are_deterministic_per_seed_and_label() {
        let observe = |seed| {
            let plan = FaultPlan::seeded(seed).with_default(FaultSpec {
                error: 0.3,
                hang: 0.2,
                garbage: 0.1,
            });
            (0..200)
                .map(|_| plan.decide("rpc:tennis"))
                .collect::<Vec<_>>()
        };
        assert_eq!(observe(42), observe(42));
        assert_ne!(observe(42), observe(43), "different seeds, same schedule");
    }

    #[test]
    fn labels_have_independent_streams() {
        let plan = FaultPlan::seeded(7).with_default(FaultSpec::errors(0.5));
        let a: Vec<_> = (0..100).map(|_| plan.decide("a")).collect();
        let plan = FaultPlan::seeded(7).with_default(FaultSpec::errors(0.5));
        let b: Vec<_> = (0..100).map(|_| plan.decide("b")).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn error_rate_tracks_the_spec() {
        let plan = FaultPlan::seeded(1).with_site("s", FaultSpec::errors(0.2));
        let errors = (0..10_000)
            .filter(|_| plan.decide("s") == FaultAction::Error)
            .count();
        assert!((1700..2300).contains(&errors), "errors {errors}");
    }

    #[test]
    fn scripts_run_before_probabilities() {
        let plan = FaultPlan::seeded(9)
            .with_script(
                "d",
                vec![FaultAction::Error, FaultAction::Hang, FaultAction::Garbage],
            )
            .with_site("d", FaultSpec::none());
        assert_eq!(plan.decide("d"), FaultAction::Error);
        assert_eq!(plan.decide("d"), FaultAction::Hang);
        assert_eq!(plan.decide("d"), FaultAction::Garbage);
        for _ in 0..50 {
            assert_eq!(plan.decide("d"), FaultAction::None);
        }
        assert_eq!(plan.calls("d"), 53);
    }

    #[test]
    fn keyed_decisions_ignore_call_order() {
        let spec = FaultSpec {
            error: 0.4,
            hang: 0.1,
            garbage: 0.1,
        };
        let keys: Vec<String> = (0..50).map(|i| format!("http://x/v{i}.mpg")).collect();
        let forward: Vec<_> = {
            let plan = FaultPlan::seeded(5).with_site("det:tennis", spec);
            keys.iter()
                .map(|k| plan.decide_keyed("det:tennis", k))
                .collect()
        };
        let backward: Vec<_> = {
            let plan = FaultPlan::seeded(5).with_site("det:tennis", spec);
            let mut v: Vec<_> = keys
                .iter()
                .rev()
                .map(|k| plan.decide_keyed("det:tennis", k))
                .collect();
            v.reverse();
            v
        };
        assert_eq!(forward, backward);
        assert!(forward.iter().any(|a| *a != FaultAction::None));
        assert!(forward.contains(&FaultAction::None));
    }

    #[test]
    fn keyed_decisions_vary_by_key_and_count_calls() {
        let plan = FaultPlan::seeded(2).with_site("d", FaultSpec::errors(0.5));
        let distinct: std::collections::HashSet<_> = (0..100)
            .map(|i| plan.decide_keyed("d", &format!("k{i}")))
            .collect();
        assert!(distinct.len() > 1, "all keys drew the same action");
        assert_eq!(plan.calls("d"), 100);
        // Same key, same answer, regardless of how often it is asked.
        assert_eq!(plan.decide_keyed("d", "k0"), plan.decide_keyed("d", "k0"));
    }

    #[test]
    fn sites_can_recover_at_runtime() {
        let plan = FaultPlan::seeded(3).with_site("d", FaultSpec::always_error());
        assert_eq!(plan.decide("d"), FaultAction::Error);
        plan.set_site("d", FaultSpec::none());
        assert_eq!(plan.decide("d"), FaultAction::None);
    }

    #[test]
    fn io_decisions_are_deterministic_and_independent_of_rpc_stream() {
        let observe = |seed| {
            let plan = FaultPlan::seeded(seed).with_io_site(
                "disk:wal",
                IoFaultSpec {
                    torn_write: 0.2,
                    bit_flip: 0.2,
                    short_read: 0.1,
                    no_space: 0.1,
                    fsync_fail: 0.1,
                },
            );
            (0..200)
                .map(|_| plan.decide_io("disk:wal", 4096))
                .collect::<Vec<_>>()
        };
        assert_eq!(observe(42), observe(42));
        assert_ne!(observe(42), observe(43));
        // Interleaving RPC decisions on the same label must not shift
        // the I/O stream: the counters are separate.
        let plan = FaultPlan::seeded(42).with_io_site(
            "disk:wal",
            IoFaultSpec {
                torn_write: 0.2,
                bit_flip: 0.2,
                short_read: 0.1,
                no_space: 0.1,
                fsync_fail: 0.1,
            },
        );
        let interleaved: Vec<_> = (0..200)
            .map(|_| {
                let _ = plan.decide("disk:wal");
                plan.decide_io("disk:wal", 4096)
            })
            .collect();
        assert_eq!(interleaved, observe(42));
    }

    #[test]
    fn io_offsets_stay_within_the_buffer() {
        let plan = FaultPlan::seeded(7).with_io_site(
            "disk:snapshot",
            IoFaultSpec {
                torn_write: 0.5,
                bit_flip: 0.5,
                ..IoFaultSpec::default()
            },
        );
        for len in [0usize, 1, 17, 4096] {
            for _ in 0..100 {
                match plan.decide_io("disk:snapshot", len) {
                    IoFault::TornWrite { at } | IoFault::BitFlip { at } => {
                        if len == 0 {
                            assert_eq!(at, 0);
                        } else {
                            assert!(at < len, "offset {at} out of {len}");
                        }
                    }
                    other => panic!("unexpected kind {other:?}"),
                }
            }
        }
    }

    #[test]
    fn io_scripts_run_before_io_probabilities() {
        let plan = FaultPlan::seeded(1)
            .with_io_script(
                "disk:wal",
                vec![IoFault::None, IoFault::TornWrite { at: 3 }, IoFault::NoSpace],
            )
            .with_io_site("disk:wal", IoFaultSpec::none());
        assert_eq!(plan.decide_io("disk:wal", 100), IoFault::None);
        assert_eq!(plan.decide_io("disk:wal", 100), IoFault::TornWrite { at: 3 });
        assert_eq!(plan.decide_io("disk:wal", 100), IoFault::NoSpace);
        for _ in 0..20 {
            assert_eq!(plan.decide_io("disk:wal", 100), IoFault::None);
        }
        assert_eq!(plan.io_calls("disk:wal"), 23);
        // Exhausted script + always-failing spec: the crash-harness
        // shape "k clean ops, then the disk dies".
        let plan = FaultPlan::seeded(2)
            .with_io_script("disk:snapshot", vec![IoFault::None; 2])
            .with_io_site("disk:snapshot", IoFaultSpec::always_no_space());
        assert_eq!(plan.decide_io("disk:snapshot", 10), IoFault::None);
        assert_eq!(plan.decide_io("disk:snapshot", 10), IoFault::None);
        assert_eq!(plan.decide_io("disk:snapshot", 10), IoFault::NoSpace);
        assert_eq!(plan.decide_io("disk:snapshot", 10), IoFault::NoSpace);
    }

    #[test]
    fn zero_plan_never_injects_io_faults() {
        let plan = FaultPlan::none();
        for i in 0..500 {
            assert_eq!(
                plan.decide_io(if i % 2 == 0 { "disk:wal" } else { "disk:snapshot" }, 64),
                IoFault::None
            );
        }
    }

    #[test]
    fn zero_plan_never_delays() {
        let plan = FaultPlan::none();
        for _ in 0..200 {
            assert_eq!(plan.decide_delay("shard:0"), Duration::ZERO);
        }
    }

    #[test]
    fn delay_decisions_are_deterministic_and_leave_fault_streams_alone() {
        let spec = DelaySpec {
            probability: 0.5,
            delay: Duration::from_millis(40),
        };
        let observe = |seed| {
            let plan = FaultPlan::seeded(seed).with_delay_site("shard:1", spec);
            (0..200)
                .map(|_| plan.decide_delay("shard:1"))
                .collect::<Vec<_>>()
        };
        let a = observe(42);
        assert_eq!(a, observe(42));
        assert_ne!(a, observe(43));
        assert!(a.contains(&Duration::ZERO));
        assert!(a.contains(&Duration::from_millis(40)));
        // Interleaving delay decisions must not shift the fault stream.
        let faults_alone = |seed| {
            let plan = FaultPlan::seeded(seed).with_site("shard:1", FaultSpec::errors(0.5));
            (0..100).map(|_| plan.decide("shard:1")).collect::<Vec<_>>()
        };
        let plan = FaultPlan::seeded(9)
            .with_site("shard:1", FaultSpec::errors(0.5))
            .with_delay_site("shard:1", spec);
        let interleaved: Vec<_> = (0..100)
            .map(|_| {
                let _ = plan.decide_delay("shard:1");
                plan.decide("shard:1")
            })
            .collect();
        assert_eq!(interleaved, faults_alone(9));
    }

    #[test]
    fn delay_schedules_run_before_delay_probabilities() {
        let plan = FaultPlan::seeded(3)
            .with_delay_schedule(
                "rpc:tennis",
                vec![Duration::from_millis(5), Duration::from_millis(10)],
            )
            .with_delay_site("rpc:tennis", DelaySpec::default());
        assert_eq!(plan.decide_delay("rpc:tennis"), Duration::from_millis(5));
        assert_eq!(plan.decide_delay("rpc:tennis"), Duration::from_millis(10));
        for _ in 0..20 {
            assert_eq!(plan.decide_delay("rpc:tennis"), Duration::ZERO);
        }
        assert_eq!(plan.delay_calls("rpc:tennis"), 22);
        // A site can recover (or degrade) at runtime.
        plan.set_delay_site("rpc:tennis", DelaySpec::always(Duration::from_millis(1)));
        assert_eq!(plan.decide_delay("rpc:tennis"), Duration::from_millis(1));
    }

    #[test]
    #[should_panic(expected = "delay probability")]
    fn out_of_range_delay_probabilities_are_rejected() {
        let _ = FaultPlan::none().with_delay_site(
            "s",
            DelaySpec {
                probability: 1.5,
                delay: Duration::from_millis(1),
            },
        );
    }

    #[test]
    #[should_panic(expected = "I/O fault probabilities")]
    fn overfull_io_specs_are_rejected() {
        let _ = FaultPlan::none().with_io_site(
            "disk:wal",
            IoFaultSpec {
                torn_write: 0.8,
                no_space: 0.5,
                ..IoFaultSpec::default()
            },
        );
    }

    #[test]
    fn metrics_count_decisions_when_connected() {
        let o = obs::Obs::enabled();
        let plan = FaultPlan::seeded(3).with_site("d", FaultSpec::always_error());
        plan.set_obs(&o);
        assert_eq!(plan.decide("d"), FaultAction::Error);
        let _ = plan.decide_keyed("d", "k");
        let _ = plan.decide_io("disk:wal", 8);
        let _ = plan.decide_delay("d");
        let text = o.registry().expect("enabled").render_text();
        assert!(text.contains("faults_decisions_total 2"), "{text}");
        assert!(text.contains("faults_injected_total{kind=\"error\"} "), "{text}");
        assert!(text.contains("faults_io_decisions_total 1"), "{text}");
        // Disconnecting stops the counting without touching decisions.
        plan.set_obs(&obs::Obs::disabled());
        assert_eq!(plan.decide("d"), FaultAction::Error);
        let text2 = o.registry().expect("enabled").render_text();
        assert!(text2.contains("faults_decisions_total 2"), "{text2}");
    }

    #[test]
    #[should_panic(expected = "fault probabilities")]
    fn overfull_specs_are_rejected() {
        let _ = FaultPlan::none().with_default(FaultSpec {
            error: 0.8,
            hang: 0.5,
            garbage: 0.0,
        });
    }
}
