//! Deterministic, seedable fault injection.
//!
//! The paper's architecture spans components that fail in practice:
//! blackbox detectors reached over XML-RPC ("possible failure" is part
//! of the detector contract) and full-text relations distributed over
//! shared-nothing servers. A [`FaultPlan`] decides, per call-site
//! *label* (e.g. `rpc:tennis`, `shard:2`), whether a call should fail
//! with a transport error, hang past its deadline, or return garbage —
//! so every failure mode is testable without a real network.
//!
//! Decisions are a pure function of `(seed, label, per-label call
//! count)`: two runs with the same plan observe the same faults, which
//! keeps degraded-mode runs reproducible and zero-fault runs
//! byte-identical to fault-free builds.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// What the injection point should do for one call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultAction {
    /// Proceed normally.
    None,
    /// Fail immediately with a transport-style error.
    Error,
    /// Stall the call until past its deadline.
    Hang,
    /// Deliver a corrupted (undecodable) response.
    Garbage,
}

/// Per-label fault probabilities (the three kinds are disjoint; their
/// sum must stay ≤ 1).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultSpec {
    /// Probability of a transport error.
    pub error: f64,
    /// Probability of a hang.
    pub hang: f64,
    /// Probability of a garbage response.
    pub garbage: f64,
}

impl FaultSpec {
    /// No faults ever.
    pub fn none() -> Self {
        FaultSpec::default()
    }

    /// Transport errors with probability `p`.
    pub fn errors(p: f64) -> Self {
        FaultSpec {
            error: p,
            ..FaultSpec::default()
        }
    }

    /// Hangs on every call.
    pub fn always_hang() -> Self {
        FaultSpec {
            hang: 1.0,
            ..FaultSpec::default()
        }
    }

    /// Transport errors on every call.
    pub fn always_error() -> Self {
        FaultSpec {
            error: 1.0,
            ..FaultSpec::default()
        }
    }

    fn validate(&self) {
        let sum = self.error + self.hang + self.garbage;
        assert!(
            (0.0..=1.0 + 1e-12).contains(&sum),
            "fault probabilities sum to {sum}, must be within [0, 1]"
        );
    }
}

#[derive(Debug, Default)]
struct SiteState {
    spec: Option<FaultSpec>,
    /// Scripted prefix, consumed one action per call before `spec` (or
    /// the default spec) takes over.
    script: Vec<FaultAction>,
    consumed: usize,
    calls: u64,
}

/// A deterministic fault schedule shared by every injection point.
///
/// Interior mutability makes the plan `Arc`-shareable across the RPC
/// clients, supervisors and shard threads that consult it.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    default: FaultSpec,
    sites: Mutex<HashMap<String, SiteState>>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn label_hash(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl FaultPlan {
    /// A plan that never injects anything (the production default).
    pub fn none() -> Self {
        FaultPlan::seeded(0)
    }

    /// An empty plan with deterministic randomness derived from `seed`.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            default: FaultSpec::none(),
            sites: Mutex::new(HashMap::new()),
        }
    }

    /// Sets the spec applied to every label without its own entry
    /// (builder style).
    pub fn with_default(mut self, spec: FaultSpec) -> Self {
        spec.validate();
        self.default = spec;
        self
    }

    /// Sets the probabilistic spec for one label (builder style).
    pub fn with_site(self, label: impl Into<String>, spec: FaultSpec) -> Self {
        self.set_site(label, spec);
        self
    }

    /// Prepends a scripted schedule for one label: the listed actions
    /// are consumed one per call, after which the label falls back to
    /// its spec (builder style).
    pub fn with_script(self, label: impl Into<String>, script: Vec<FaultAction>) -> Self {
        self.set_script(label, script);
        self
    }

    /// Replaces the probabilistic spec for `label` at runtime — e.g. to
    /// simulate a detector recovering mid-run.
    pub fn set_site(&self, label: impl Into<String>, spec: FaultSpec) {
        spec.validate();
        let mut sites = self.sites.lock().expect("fault plan poisoned");
        sites.entry(label.into()).or_default().spec = Some(spec);
    }

    /// Replaces the scripted schedule for `label` at runtime.
    pub fn set_script(&self, label: impl Into<String>, script: Vec<FaultAction>) {
        let mut sites = self.sites.lock().expect("fault plan poisoned");
        let site = sites.entry(label.into()).or_default();
        site.script = script;
        site.consumed = 0;
    }

    /// Decides what the next call at `label` should do, advancing the
    /// per-label call counter.
    pub fn decide(&self, label: &str) -> FaultAction {
        let mut sites = self.sites.lock().expect("fault plan poisoned");
        let site = sites.entry(label.to_owned()).or_default();
        let call = site.calls;
        site.calls += 1;
        if site.consumed < site.script.len() {
            let action = site.script[site.consumed];
            site.consumed += 1;
            return action;
        }
        let spec = site.spec.unwrap_or(self.default);
        let word = splitmix(self.seed ^ label_hash(label) ^ call.wrapping_mul(0x9E37_79B9));
        let draw = (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if draw < spec.error {
            FaultAction::Error
        } else if draw < spec.error + spec.hang {
            FaultAction::Hang
        } else if draw < spec.error + spec.hang + spec.garbage {
            FaultAction::Garbage
        } else {
            FaultAction::None
        }
    }

    /// Decides what a call at `label` identified by `key` should do.
    ///
    /// Unlike [`FaultPlan::decide`], the outcome is a pure function of
    /// `(seed, label, key)` — independent of call *order* — so parallel
    /// ingestion workers observe the same faults on the same documents
    /// no matter how the scheduler interleaves them. The per-label call
    /// counter still advances (for [`FaultPlan::calls`] accounting), but
    /// scripted schedules are ignored: a script is inherently
    /// order-based and belongs with [`FaultPlan::decide`].
    pub fn decide_keyed(&self, label: &str, key: &str) -> FaultAction {
        let spec = {
            let mut sites = self.sites.lock().expect("fault plan poisoned");
            let site = sites.entry(label.to_owned()).or_default();
            site.calls += 1;
            site.spec.unwrap_or(self.default)
        };
        let word = splitmix(self.seed ^ label_hash(label) ^ label_hash(key).rotate_left(17));
        let draw = (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if draw < spec.error {
            FaultAction::Error
        } else if draw < spec.error + spec.hang {
            FaultAction::Hang
        } else if draw < spec.error + spec.hang + spec.garbage {
            FaultAction::Garbage
        } else {
            FaultAction::None
        }
    }

    /// Total calls decided for `label` so far.
    pub fn calls(&self, label: &str) -> u64 {
        self.sites
            .lock()
            .expect("fault plan poisoned")
            .get(label)
            .map_or(0, |s| s.calls)
    }

    /// Wraps the plan for sharing across threads.
    pub fn shared(self) -> Arc<FaultPlan> {
        Arc::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_plan_never_faults() {
        let plan = FaultPlan::none();
        for i in 0..1000 {
            assert_eq!(plan.decide(&format!("site:{}", i % 7)), FaultAction::None);
        }
    }

    #[test]
    fn decisions_are_deterministic_per_seed_and_label() {
        let observe = |seed| {
            let plan = FaultPlan::seeded(seed).with_default(FaultSpec {
                error: 0.3,
                hang: 0.2,
                garbage: 0.1,
            });
            (0..200)
                .map(|_| plan.decide("rpc:tennis"))
                .collect::<Vec<_>>()
        };
        assert_eq!(observe(42), observe(42));
        assert_ne!(observe(42), observe(43), "different seeds, same schedule");
    }

    #[test]
    fn labels_have_independent_streams() {
        let plan = FaultPlan::seeded(7).with_default(FaultSpec::errors(0.5));
        let a: Vec<_> = (0..100).map(|_| plan.decide("a")).collect();
        let plan = FaultPlan::seeded(7).with_default(FaultSpec::errors(0.5));
        let b: Vec<_> = (0..100).map(|_| plan.decide("b")).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn error_rate_tracks_the_spec() {
        let plan = FaultPlan::seeded(1).with_site("s", FaultSpec::errors(0.2));
        let errors = (0..10_000)
            .filter(|_| plan.decide("s") == FaultAction::Error)
            .count();
        assert!((1700..2300).contains(&errors), "errors {errors}");
    }

    #[test]
    fn scripts_run_before_probabilities() {
        let plan = FaultPlan::seeded(9)
            .with_script(
                "d",
                vec![FaultAction::Error, FaultAction::Hang, FaultAction::Garbage],
            )
            .with_site("d", FaultSpec::none());
        assert_eq!(plan.decide("d"), FaultAction::Error);
        assert_eq!(plan.decide("d"), FaultAction::Hang);
        assert_eq!(plan.decide("d"), FaultAction::Garbage);
        for _ in 0..50 {
            assert_eq!(plan.decide("d"), FaultAction::None);
        }
        assert_eq!(plan.calls("d"), 53);
    }

    #[test]
    fn keyed_decisions_ignore_call_order() {
        let spec = FaultSpec {
            error: 0.4,
            hang: 0.1,
            garbage: 0.1,
        };
        let keys: Vec<String> = (0..50).map(|i| format!("http://x/v{i}.mpg")).collect();
        let forward: Vec<_> = {
            let plan = FaultPlan::seeded(5).with_site("det:tennis", spec);
            keys.iter()
                .map(|k| plan.decide_keyed("det:tennis", k))
                .collect()
        };
        let backward: Vec<_> = {
            let plan = FaultPlan::seeded(5).with_site("det:tennis", spec);
            let mut v: Vec<_> = keys
                .iter()
                .rev()
                .map(|k| plan.decide_keyed("det:tennis", k))
                .collect();
            v.reverse();
            v
        };
        assert_eq!(forward, backward);
        assert!(forward.iter().any(|a| *a != FaultAction::None));
        assert!(forward.contains(&FaultAction::None));
    }

    #[test]
    fn keyed_decisions_vary_by_key_and_count_calls() {
        let plan = FaultPlan::seeded(2).with_site("d", FaultSpec::errors(0.5));
        let distinct: std::collections::HashSet<_> = (0..100)
            .map(|i| plan.decide_keyed("d", &format!("k{i}")))
            .collect();
        assert!(distinct.len() > 1, "all keys drew the same action");
        assert_eq!(plan.calls("d"), 100);
        // Same key, same answer, regardless of how often it is asked.
        assert_eq!(plan.decide_keyed("d", "k0"), plan.decide_keyed("d", "k0"));
    }

    #[test]
    fn sites_can_recover_at_runtime() {
        let plan = FaultPlan::seeded(3).with_site("d", FaultSpec::always_error());
        assert_eq!(plan.decide("d"), FaultAction::Error);
        plan.set_site("d", FaultSpec::none());
        assert_eq!(plan.decide("d"), FaultAction::None);
    }

    #[test]
    #[should_panic(expected = "fault probabilities")]
    fn overfull_specs_are_rejected() {
        let _ = FaultPlan::none().with_default(FaultSpec {
            error: 0.8,
            hang: 0.5,
            garbage: 0.0,
        });
    }
}
