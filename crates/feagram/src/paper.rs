//! The paper's grammar fragments, verbatim (modulo the typography of the
//! report: line numbers removed, and the fragments of Figures 6 and 7
//! concatenated into the one video feature grammar they describe).
//!
//! Downstream crates (the Feature Detector Engine, examples, benches)
//! parse these constants rather than re-typing the grammars, so the repo
//! stays honest about reproducing the published artefacts.

/// Figures 6 + 7: the tennis video feature grammar.
///
/// Section "Tennis video feature grammar" explains each construct; the
/// grammar retrieves a multimedia object, checks its MIME type, segments
/// a video into shots, classifies them, tracks the player in tennis
/// shots, and derives the `netplay` event.
pub const VIDEO_GRAMMAR: &str = r#"
%start MMO(location);

%detector header(location);
%detector header.init();
%detector header.final();

%detector video_type primary == "video";

%atom url;

%atom url location;
%atom str primary;
%atom str secondary;

MMO : location header mm_type?;
header : MIME_type;
MIME_type : primary secondary;
mm_type : video_type video;

%detector xml-rpc::segment(location);
%detector xml-rpc::tennis(location,begin.frameNo,end.frameNo);

%detector netplay some[tennis.frame](
    player.yPos <= 170.0
);

%atom flt xPos,yPos,Ecc,Orient;
%atom int frameNo,Area;
%atom bit netplay;

video : segment;
segment : shot*;
shot : begin end type;
begin : frameNo;
end : frameNo;
type : "tennis" tennis;
type : "other";
tennis : frame* event;
frame : frameNo player;
player : xPos yPos Area Ecc Orient;
event : netplay;
"#;

/// Figure 14: the fragment of the Internet feature grammar, embedded in
/// enough declarations to stand alone (the paper shows only the four
/// production rules; the declarations follow the text's description of
/// an HTML page as titles, keywords and anchors linking to multimedia
/// objects via the `MMO` start symbol of the video grammar).
pub const INTERNET_GRAMMAR: &str = r#"
%start html(location);

%atom url;
%atom url location;
%atom str word;
%atom str title;
%atom str embedded;
%atom str link;
%atom str alternative;
%atom str primary;
%atom str secondary;

%detector html(location);
%detector header(location);

html : title? body? anchor* ;
body : &keyword+;
anchor : &MMO embedded link? alternative?;
keyword : word;

MMO : location header;
header : MIME_type;
MIME_type : primary secondary;
"#;

/// The video grammar extended with the audio branch the grammar was
/// designed to absorb: "this grammar is easily extensible. New
/// multimedia types can be (and indeed are) added by providing
/// alternative rules for the `mm_type` symbol." Interviews (the
/// motivating example's "audio files of interviews") are segmented into
/// speech/music/silence; `isInterview` is an atom-paired whitebox over
/// the speech ratio and speaker-turn count, exactly the netplay pattern.
pub const MEDIA_GRAMMAR: &str = r#"
%start MMO(location);

%detector header(location);
%detector header.init();
%detector header.final();

%detector video_type primary == "video";
%detector audio_type primary == "audio";

%atom url;

%atom url location;
%atom str primary;
%atom str secondary;

MMO : location header mm_type?;
header : MIME_type;
MIME_type : primary secondary;
mm_type : video_type video;
mm_type : audio_type audio;

%detector xml-rpc::segment(location);
%detector xml-rpc::tennis(location,begin.frameNo,end.frameNo);
%detector xml-rpc::interview(location);

%detector netplay some[tennis.frame](
    player.yPos <= 170.0
);
%detector isInterview speechRatio >= 0.5 && turnCount >= 2;

%atom flt xPos,yPos,Ecc,Orient;
%atom int frameNo,Area;
%atom bit netplay;
%atom flt speechRatio;
%atom int turnCount;
%atom bit isInterview;

video : segment;
segment : shot*;
shot : begin end type;
begin : frameNo;
end : frameNo;
type : "tennis" tennis;
type : "other";
tennis : frame* event;
frame : frameNo player;
player : xPos yPos Area Ecc Orient;
event : netplay;

audio : interview;
interview : speechRatio turnCount isInterview;
"#;

/// The Figure 14 rules alone, without any `MMO` definition — the form
/// meant for *composition*: merged with [`VIDEO_GRAMMAR`], its `&MMO`
/// references resolve against the video grammar's rules, so "when the
/// content of a webpage is classified as a sports topic, rules in the
/// grammar can be used to steer the processing of videos embedded in
/// the page, towards sport specific detectors (e.g. the discussed
/// tennis video analysis)".
pub const INTERNET_CORE: &str = r#"
%start html(location);

%atom str word;
%atom str title;
%atom str embedded;
%atom str link;
%atom str alternative;

%detector html(location);

html : title? body? anchor* ;
body : &keyword+;
anchor : &MMO embedded link? alternative?;
keyword : word;
"#;

/// The composed Internet + tennis-video grammar (future-work section).
pub fn internet_video_grammar() -> crate::error::Result<crate::ast::Grammar> {
    let core = crate::parser::parse_grammar_raw(INTERNET_CORE)?;
    let video = crate::parser::parse_grammar_raw(VIDEO_GRAMMAR)?;
    let merged = core.merge(&video)?;
    crate::validate::check(&merged)?;
    Ok(merged)
}

/// The Internet grammar extended with the generic image pipeline the
/// future-work section lists: "a photo/graphic classifier for images
/// [ASF97] … face detection [LH96]. This would allow queries like:
/// 'show me all portraits embedded in pages containing keywords
/// semantically related to the word champion'."
///
/// `photo` is a blackbox detector (classification + face counting);
/// `portrait` is an atom-paired whitebox over its output.
pub const INTERNET_IMAGE_GRAMMAR: &str = r#"
%start html(location);

%atom url;
%atom url location;
%atom str word;
%atom str title;
%atom str embedded;
%atom str link;
%atom str alternative;
%atom str primary;
%atom str secondary;
%atom str kind;
%atom int faces;
%atom bit portrait;

%detector html(location);
%detector header(location);
%detector image_type primary == "image";
%detector photo(location);
%detector portrait faces >= 1 && kind == "photo";

html : title? body? anchor* ;
body : &keyword+;
anchor : &MMO embedded link? alternative?;
keyword : word;

MMO : location header mm_type?;
header : MIME_type;
MIME_type : primary secondary;
mm_type : image_type image;
image : photo;
photo : kind faces portrait;
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_grammar;

    #[test]
    fn video_grammar_parses_and_validates() {
        let g = parse_grammar(VIDEO_GRAMMAR).unwrap();
        assert_eq!(g.start().symbol, "MMO");
        // All five detectors of Figures 6-7.
        for d in ["header", "video_type", "segment", "tennis", "netplay"] {
            assert!(g.detector(d).is_some(), "missing detector {d}");
        }
        // 18 rules total (type has two alternatives).
        assert_eq!(g.rules_for("type").len(), 2);
    }

    #[test]
    fn internet_grammar_parses_and_validates() {
        let g = parse_grammar(INTERNET_GRAMMAR).unwrap();
        assert_eq!(g.start().symbol, "html");
        assert!(g
            .rules_for("anchor")[0]
            .rhs_symbols()
            .contains(&"MMO"));
    }

    #[test]
    fn media_grammar_extends_mm_type_with_audio() {
        let g = parse_grammar(MEDIA_GRAMMAR).unwrap();
        assert_eq!(g.rules_for("mm_type").len(), 2);
        assert!(g.detector("interview").is_some());
        assert!(g.detector("isInterview").is_some());
        assert_eq!(g.symbols().terminal_type("isInterview"), Some("bit"));
        // The video half is untouched.
        assert!(g.detector("tennis").is_some());
    }

    #[test]
    fn internet_image_grammar_parses_and_validates() {
        let g = parse_grammar(INTERNET_IMAGE_GRAMMAR).unwrap();
        assert!(g.detector("photo").is_some());
        assert!(g.detector("portrait").is_some());
        // `portrait` pairs a whitebox detector with a bit atom, like
        // Figure 7's netplay.
        assert_eq!(g.symbols().terminal_type("portrait"), Some("bit"));
    }

    #[test]
    fn internet_and_video_grammars_compose() {
        let g = internet_video_grammar().unwrap();
        // The composed grammar starts at html but contains the full
        // tennis pipeline for embedded objects.
        assert_eq!(g.start().symbol, "html");
        for d in ["html", "header", "segment", "tennis", "netplay"] {
            assert!(g.detector(d).is_some(), "missing {d}");
        }
        // The anchor rule's &MMO now resolves to the video grammar's
        // MMO rule with the optional video branch.
        assert_eq!(g.rules_for("MMO").len(), 1);
        assert!(g
            .rules_for("MMO")[0]
            .rhs_symbols()
            .contains(&"mm_type"));
    }

    #[test]
    fn merge_rejects_conflicting_detectors() {
        let a = crate::parser::parse_grammar_raw(
            "%start a(x); %atom str x; %detector d(x); a : x d; d : x;",
        )
        .unwrap();
        let b = crate::parser::parse_grammar_raw(
            "%start b(x); %atom str x; %detector d(x, x); b : x d; d : x;",
        )
        .unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn merge_rejects_conflicting_atom_types() {
        let a = crate::parser::parse_grammar_raw("%start a(x); %atom str x; a : x;").unwrap();
        let b = crate::parser::parse_grammar_raw("%start b(x); %atom int x; b : x;").unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn merge_deduplicates_identical_declarations() {
        let a = crate::parser::parse_grammar_raw(VIDEO_GRAMMAR).unwrap();
        let merged = a.merge(&a).unwrap();
        crate::validate::check(&merged).unwrap();
        assert_eq!(merged.rules().len(), a.rules().len());
    }

    #[test]
    fn video_grammar_dependency_graph_is_nonempty() {
        let g = parse_grammar(VIDEO_GRAMMAR).unwrap();
        let d = crate::depgraph::DepGraph::build(&g);
        // The netplay whitebox depends on the player features.
        let changed: std::collections::BTreeSet<String> =
            ["yPos".to_owned()].into_iter().collect();
        assert!(d.parameter_dependents(&changed).contains("netplay"));
    }
}
