//! The dependency graph (Figure 8) and the traversals the Feature
//! Detector Scheduler performs on it.
//!
//! Node types are the basic symbol types (atom / variable / detector);
//! edge types are:
//!
//! 1. **sibling** — symbols appearing together in one right-hand side
//!    "influence the validity of each other" (undirected),
//! 2. **rule** — the left-hand symbol depends on the validity of the
//!    *last obligatory* right-hand symbol (directed),
//! 3. **parameter** — a detector depends on the symbols its input paths
//!    (or whitebox predicate paths) mention (directed).
//!
//! The three FDS invalidation steps map to three traversals here:
//! [`DepGraph::downward_closure`] (step 1), [`DepGraph::parameter_dependents`]
//! (step 2) and [`DepGraph::upward_to_detector`] (step 3).

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::ast::{DetectorKind, Grammar};

/// Edge classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Undirected co-occurrence in a right-hand side.
    Sibling,
    /// Directed lhs → last-obligatory-rhs-symbol.
    Rule,
    /// Directed detector → input symbol.
    Parameter,
}

/// One dependency edge.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DepEdge {
    /// Source symbol.
    pub from: String,
    /// Target symbol.
    pub to: String,
    /// Edge kind.
    pub kind: EdgeKind,
}

/// The dependency graph of one grammar.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DepGraph {
    nodes: BTreeSet<String>,
    edges: BTreeSet<DepEdge>,
    /// rule edges indexed by source.
    rule_out: BTreeMap<String, BTreeSet<String>>,
    /// sibling adjacency (undirected, stored both ways).
    sibling: BTreeMap<String, BTreeSet<String>>,
    /// parameter edges indexed by *target* (for dependent lookups).
    param_in: BTreeMap<String, BTreeSet<String>>,
}

impl DepGraph {
    /// Derives the dependency graph from a grammar.
    pub fn build(grammar: &Grammar) -> Self {
        let mut g = DepGraph {
            nodes: BTreeSet::new(),
            edges: BTreeSet::new(),
            rule_out: BTreeMap::new(),
            sibling: BTreeMap::new(),
            param_in: BTreeMap::new(),
        };

        for (name, _) in grammar.symbols().iter() {
            g.nodes.insert(name.to_owned());
        }
        for rule in grammar.rules() {
            g.nodes.insert(rule.lhs.clone());
        }

        // Sibling + rule edges, per rule.
        for rule in grammar.rules() {
            let symbols: Vec<&str> = {
                let mut seen = BTreeSet::new();
                rule.rhs_symbols()
                    .into_iter()
                    .filter(|s| seen.insert(*s))
                    .collect()
            };
            for (i, a) in symbols.iter().enumerate() {
                for b in &symbols[i + 1..] {
                    g.add_sibling(a, b);
                }
            }
            if let Some(last) = rule.last_obligatory_symbol() {
                if last != rule.lhs {
                    g.add_rule(&rule.lhs, last);
                }
            }
        }

        // Parameter edges, per detector.
        for det in grammar.detectors() {
            let paths: Vec<&crate::ast::PathExpr> = match &det.kind {
                DetectorKind::Blackbox { inputs, .. } => inputs.iter().collect(),
                DetectorKind::Whitebox { predicate, .. } => predicate.paths(),
                DetectorKind::Special { .. } => continue,
            };
            for path in paths {
                for seg in path.segments() {
                    if seg != &det.name {
                        g.add_param(&det.name, seg);
                    }
                }
            }
        }

        // The start declaration's argument paths behave like parameters of
        // the start symbol (changing the minimum token set invalidates it).
        for arg in &grammar.start().args {
            for seg in arg.segments() {
                if seg != &grammar.start().symbol {
                    g.add_param(&grammar.start().symbol, seg);
                }
            }
        }

        g
    }

    fn add_sibling(&mut self, a: &str, b: &str) {
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        self.edges.insert(DepEdge {
            from: x.to_owned(),
            to: y.to_owned(),
            kind: EdgeKind::Sibling,
        });
        self.sibling
            .entry(a.to_owned())
            .or_default()
            .insert(b.to_owned());
        self.sibling
            .entry(b.to_owned())
            .or_default()
            .insert(a.to_owned());
        self.nodes.insert(a.to_owned());
        self.nodes.insert(b.to_owned());
    }

    fn add_rule(&mut self, from: &str, to: &str) {
        self.edges.insert(DepEdge {
            from: from.to_owned(),
            to: to.to_owned(),
            kind: EdgeKind::Rule,
        });
        self.rule_out
            .entry(from.to_owned())
            .or_default()
            .insert(to.to_owned());
        self.nodes.insert(from.to_owned());
        self.nodes.insert(to.to_owned());
    }

    fn add_param(&mut self, detector: &str, input: &str) {
        self.edges.insert(DepEdge {
            from: detector.to_owned(),
            to: input.to_owned(),
            kind: EdgeKind::Parameter,
        });
        self.param_in
            .entry(input.to_owned())
            .or_default()
            .insert(detector.to_owned());
        self.nodes.insert(detector.to_owned());
        self.nodes.insert(input.to_owned());
    }

    /// All nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &str> {
        self.nodes.iter().map(String::as_str)
    }

    /// All edges, sorted.
    pub fn edges(&self) -> impl Iterator<Item = &DepEdge> {
        self.edges.iter()
    }

    /// **FDS step 1** — the symbols making up the partial parse trees
    /// rooted at `start`: follow rule edges from anywhere in the closure
    /// and sibling edges from every node *below* the start. For the
    /// Figure 6 grammar, `downward_closure("header")` is exactly
    /// `{header, MIME_type, secondary, primary}` — the node set the
    /// paper's example invalidates.
    pub fn downward_closure(&self, start: &str) -> BTreeSet<String> {
        let mut seen = BTreeSet::new();
        let mut queue = vec![start.to_owned()];
        seen.insert(start.to_owned());
        while let Some(cur) = queue.pop() {
            if let Some(nexts) = self.rule_out.get(&cur) {
                for n in nexts {
                    if seen.insert(n.clone()) {
                        queue.push(n.clone());
                    }
                }
            }
            if cur != start {
                if let Some(sibs) = self.sibling.get(&cur) {
                    for n in sibs {
                        if seen.insert(n.clone()) {
                            queue.push(n.clone());
                        }
                    }
                }
            }
        }
        seen
    }

    /// **FDS step 2** — detectors whose parameters mention any symbol in
    /// `changed`: their inputs may have been modified, so they need
    /// revalidation even if the subtree itself stayed valid.
    pub fn parameter_dependents(&self, changed: &BTreeSet<String>) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for sym in changed {
            if let Some(dets) = self.param_in.get(sym) {
                for d in dets {
                    if !changed.contains(d) {
                        out.insert(d.clone());
                    }
                }
            }
        }
        out
    }

    /// **FDS step 3** — walk rule/sibling containment *upward* from an
    /// invalid symbol to the nearest enclosing detectors (or the start
    /// symbol): the symbols whose stored results must be revalidated when
    /// the subtree below them turned invalid.
    pub fn upward_to_detector(&self, grammar: &Grammar, from: &str) -> BTreeSet<String> {
        let mut result = BTreeSet::new();
        let mut seen = BTreeSet::new();
        let mut queue = vec![from.to_owned()];
        seen.insert(from.to_owned());
        while let Some(cur) = queue.pop() {
            for parent in grammar.parents_of(&cur) {
                if !seen.insert(parent.to_owned()) {
                    continue;
                }
                if grammar.detector(parent).is_some() || parent == grammar.start().symbol {
                    result.insert(parent.to_owned());
                } else {
                    queue.push(parent.to_owned());
                }
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_grammar_raw;

    /// The exact Figure 6 fragment — the source of Figure 8.
    const FIGURE6_ONLY: &str = r#"
%start MMO(location);

%detector header(location);
%detector header.init();
%detector header.final();

%detector video_type primary == "video";

%atom url;

%atom url location;
%atom str primary;
%atom str secondary;

MMO : location header mm_type?;
header : MIME_type;
MIME_type : primary secondary;
mm_type : video_type video;
"#;

    fn figure8() -> (crate::ast::Grammar, DepGraph) {
        let g = parse_grammar_raw(FIGURE6_ONLY).unwrap();
        let d = DepGraph::build(&g);
        (g, d)
    }

    #[test]
    fn figure8_edge_set_matches_paper() {
        let (_, d) = figure8();
        let mut expected = BTreeSet::new();
        let sib = |a: &str, b: &str| {
            let (x, y) = if a <= b { (a, b) } else { (b, a) };
            DepEdge {
                from: x.into(),
                to: y.into(),
                kind: EdgeKind::Sibling,
            }
        };
        let rule = |a: &str, b: &str| DepEdge {
            from: a.into(),
            to: b.into(),
            kind: EdgeKind::Rule,
        };
        let param = |a: &str, b: &str| DepEdge {
            from: a.into(),
            to: b.into(),
            kind: EdgeKind::Parameter,
        };
        // Sibling edges (Figure 8, dashed):
        expected.insert(sib("location", "header"));
        expected.insert(sib("location", "mm_type"));
        expected.insert(sib("header", "mm_type"));
        expected.insert(sib("primary", "secondary"));
        expected.insert(sib("video_type", "video"));
        // Rule edges (solid):
        expected.insert(rule("MMO", "header"));
        expected.insert(rule("header", "MIME_type"));
        expected.insert(rule("MIME_type", "secondary"));
        expected.insert(rule("mm_type", "video"));
        // Parameter edges (dotted):
        expected.insert(param("header", "location"));
        expected.insert(param("video_type", "primary"));
        expected.insert(param("MMO", "location")); // start minimum token set

        let actual: BTreeSet<DepEdge> = d.edges().cloned().collect();
        assert_eq!(actual, expected);
    }

    #[test]
    fn fds_step1_downward_closure_matches_paper_example() {
        // "The FDS will invalidate all partial parse trees which have an
        // instantiation of a header symbol as root. This will involve
        // header, MIME_type, secondary and primary nodes."
        let (_, d) = figure8();
        let closure = d.downward_closure("header");
        let expected: BTreeSet<String> = ["header", "MIME_type", "secondary", "primary"]
            .into_iter()
            .map(String::from)
            .collect();
        assert_eq!(closure, expected);
    }

    #[test]
    fn fds_step2_parameter_dependents_matches_paper_example() {
        // "If, for example, the primary MIME type has changed the
        // video_type detector will become invalid."
        let (_, d) = figure8();
        let changed: BTreeSet<String> = ["primary".to_owned()].into();
        let deps = d.parameter_dependents(&changed);
        assert_eq!(
            deps,
            ["video_type".to_owned()].into_iter().collect::<BTreeSet<_>>()
        );
    }

    #[test]
    fn fds_step3_upward_reaches_enclosing_detector_or_start() {
        let (g, d) = figure8();
        // From an invalid `primary`, the first invalid enclosing detector
        // is `header` (primary → MIME_type → header).
        let up = d.upward_to_detector(&g, "primary");
        assert_eq!(
            up,
            ["header".to_owned()].into_iter().collect::<BTreeSet<_>>()
        );
        // From `header` itself, the walk reaches the start symbol MMO.
        let up = d.upward_to_detector(&g, "header");
        assert_eq!(up, ["MMO".to_owned()].into_iter().collect::<BTreeSet<_>>());
    }

    #[test]
    fn whitebox_predicate_paths_become_parameter_edges() {
        let src = r#"
%start a(x);
%atom flt x;
%atom bit w;
%detector w some[a.i]( v <= 1.0 );
a : x i* w;
i : v;
%atom flt v;
"#;
        let g = parse_grammar_raw(src).unwrap();
        let d = DepGraph::build(&g);
        let changed: BTreeSet<String> = ["v".to_owned()].into();
        assert!(d.parameter_dependents(&changed).contains("w"));
    }

    #[test]
    fn downward_closure_of_leaf_is_singleton() {
        let (_, d) = figure8();
        assert_eq!(d.downward_closure("secondary").len(), 1);
    }
}
