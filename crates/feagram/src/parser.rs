//! Recursive-descent parser for the feature grammar language.
//!
//! The accepted syntax is exactly what the paper's figures use:
//!
//! ```text
//! %start MMO(location);
//! %detector header(location);            // linked blackbox
//! %detector header.init();               // special hook
//! %detector xml-rpc::segment(location);  // external blackbox
//! %detector video_type primary == "video";            // whitebox
//! %detector netplay some[tennis.frame](player.yPos <= 170.0);
//! %atom url;                             // new ADT
//! %atom url location;                    // terminals with an ADT
//! MMO : location header mm_type?;        // rules, ?,*,+ and (…|…)
//! type : "tennis" tennis;                // literals select alternatives
//! anchor : &MMO embedded link?;          // references
//! ```

use crate::ast::{
    AtomDecl, DetectorDecl, DetectorKind, Grammar, PathExpr, Rep, Rule, SpecialEvent, StartDecl,
    Term, TermRep, Transport,
};
use crate::error::{Error, Result};
use crate::expr::{BinOp, Expr, Quantifier};
use crate::lex::{tokenize, Token, TokenKind};
use crate::symbols::SymbolTable;
use crate::validate;
use crate::value::FeatureValue;

/// Parses and validates a feature grammar.
pub fn parse_grammar(source: &str) -> Result<Grammar> {
    let grammar = parse_grammar_raw(source)?;
    validate::check(&grammar)?;
    Ok(grammar)
}

/// Parses without the well-formedness pass (used by tests that exercise
/// [`validate`] on deliberately broken grammars).
pub fn parse_grammar_raw(source: &str) -> Result<Grammar> {
    let tokens = tokenize(source)?;
    Parser {
        tokens,
        pos: 0,
    }
    .run()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn peek2(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos + 1).map(|t| &t.kind)
    }

    fn here(&self) -> (usize, usize) {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|t| (t.line, t.col))
            .unwrap_or((1, 1))
    }

    fn err(&self, message: impl Into<String>) -> Error {
        let (line, col) = self.here();
        Error::syntax(line, col, message)
    }

    fn bump(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos)?.kind.clone();
        self.pos += 1;
        Some(t)
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<()> {
        if self.peek() == Some(kind) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String> {
        match self.peek() {
            Some(TokenKind::Ident(_)) => match self.bump() {
                Some(TokenKind::Ident(s)) => Ok(s),
                _ => unreachable!(),
            },
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn run(mut self) -> Result<Grammar> {
        let mut start: Option<StartDecl> = None;
        let mut detectors = Vec::new();
        let mut atoms = Vec::new();
        let mut rules = Vec::new();

        while let Some(kind) = self.peek() {
            match kind {
                TokenKind::Percent(kw) => {
                    let kw = kw.clone();
                    self.pos += 1;
                    match kw.as_str() {
                        "start" => {
                            if start.is_some() {
                                return Err(self.err("duplicate %start declaration"));
                            }
                            start = Some(self.parse_start()?);
                        }
                        "detector" => detectors.push(self.parse_detector()?),
                        "atom" => atoms.push(self.parse_atom()?),
                        other => {
                            return Err(self.err(format!("unknown declaration %{other}")))
                        }
                    }
                }
                TokenKind::Ident(_) => {
                    rules.extend(self.parse_rule()?);
                }
                other => return Err(self.err(format!("unexpected token {other:?}"))),
            }
        }

        let start = start.ok_or_else(|| self.err("missing %start declaration"))?;
        let symbols = build_symbols(&detectors, &atoms, &rules);
        Ok(Grammar::assemble(start, detectors, atoms, rules, symbols))
    }

    fn parse_start(&mut self) -> Result<StartDecl> {
        let symbol = self.expect_ident("start symbol")?;
        let mut args = Vec::new();
        if self.peek() == Some(&TokenKind::LParen) {
            self.pos += 1;
            if self.peek() != Some(&TokenKind::RParen) {
                loop {
                    args.push(self.parse_path()?);
                    if self.peek() == Some(&TokenKind::Comma) {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen, "`)`")?;
        }
        self.expect(&TokenKind::Semi, "`;`")?;
        Ok(StartDecl { symbol, args })
    }

    fn parse_detector(&mut self) -> Result<DetectorDecl> {
        let first = self.expect_ident("detector name")?;

        // Transport prefix: `xml-rpc::segment(...)`.
        if self.peek() == Some(&TokenKind::ColonColon) {
            let transport = Transport::from_prefix(&first)
                .ok_or_else(|| self.err(format!("unknown detector transport `{first}`")))?;
            self.pos += 1;
            let name = self.expect_ident("detector name after `::`")?;
            let inputs = self.parse_input_list()?;
            self.expect(&TokenKind::Semi, "`;`")?;
            return Ok(DetectorDecl {
                name,
                kind: DetectorKind::Blackbox { transport, inputs },
            });
        }

        // Special hook: `header.init();`.
        if self.peek() == Some(&TokenKind::Dot) {
            self.pos += 1;
            let event_name = self.expect_ident("lifecycle event")?;
            let event = SpecialEvent::from_name(&event_name).ok_or_else(|| {
                self.err(format!(
                    "unknown lifecycle event `{event_name}` (expected init/final/begin/end)"
                ))
            })?;
            self.expect(&TokenKind::LParen, "`(`")?;
            self.expect(&TokenKind::RParen, "`)`")?;
            self.expect(&TokenKind::Semi, "`;`")?;
            return Ok(DetectorDecl {
                name: format!("{first}.{event_name}"),
                kind: DetectorKind::Special {
                    target: first,
                    event,
                },
            });
        }

        // Linked blackbox: `header(location);`.
        if self.peek() == Some(&TokenKind::LParen) {
            let inputs = self.parse_input_list()?;
            self.expect(&TokenKind::Semi, "`;`")?;
            return Ok(DetectorDecl {
                name: first,
                kind: DetectorKind::Blackbox {
                    transport: Transport::Linked,
                    inputs,
                },
            });
        }

        // Whitebox. Quantified form: `netplay some[path]( expr )`.
        if let Some(TokenKind::Ident(q)) = self.peek() {
            if let Some(quant) = Quantifier::from_name(q) {
                if self.peek2() == Some(&TokenKind::LBracket) {
                    self.pos += 2; // quantifier ident + '['
                    let qpath = self.parse_path()?;
                    self.expect(&TokenKind::RBracket, "`]`")?;
                    self.expect(&TokenKind::LParen, "`(`")?;
                    let body = self.parse_expr()?;
                    self.expect(&TokenKind::RParen, "`)`")?;
                    self.expect(&TokenKind::Semi, "`;`")?;
                    return Ok(DetectorDecl {
                        name: first,
                        kind: DetectorKind::Whitebox {
                            quantifier: Some((quant, qpath.clone())),
                            predicate: Expr::Quantified {
                                q: quant,
                                path: qpath,
                                body: Box::new(body),
                            },
                        },
                    });
                }
            }
        }

        // Plain whitebox: `video_type primary == "video";`.
        let predicate = self.parse_expr()?;
        self.expect(&TokenKind::Semi, "`;`")?;
        Ok(DetectorDecl {
            name: first,
            kind: DetectorKind::Whitebox {
                quantifier: None,
                predicate,
            },
        })
    }

    fn parse_input_list(&mut self) -> Result<Vec<PathExpr>> {
        self.expect(&TokenKind::LParen, "`(`")?;
        let mut inputs = Vec::new();
        if self.peek() != Some(&TokenKind::RParen) {
            loop {
                inputs.push(self.parse_path()?);
                if self.peek() == Some(&TokenKind::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen, "`)`")?;
        Ok(inputs)
    }

    fn parse_path(&mut self) -> Result<PathExpr> {
        let mut segs = vec![self.expect_ident("path segment")?];
        while self.peek() == Some(&TokenKind::Dot) {
            self.pos += 1;
            segs.push(self.expect_ident("path segment after `.`")?);
        }
        Ok(PathExpr(segs))
    }

    fn parse_atom(&mut self) -> Result<AtomDecl> {
        let ty = self.expect_ident("atom type")?;
        if self.peek() == Some(&TokenKind::Semi) {
            self.pos += 1;
            return Ok(AtomDecl::Type(ty));
        }
        let mut names = vec![self.expect_ident("atom name")?];
        while self.peek() == Some(&TokenKind::Comma) {
            self.pos += 1;
            names.push(self.expect_ident("atom name after `,`")?);
        }
        self.expect(&TokenKind::Semi, "`;`")?;
        Ok(AtomDecl::Terminals { ty, names })
    }

    /// Parses one rule; top-level `|` yields several [`Rule`]s sharing
    /// the lhs (alternatives).
    fn parse_rule(&mut self) -> Result<Vec<Rule>> {
        let lhs = self.expect_ident("rule left-hand side")?;
        self.expect(&TokenKind::Colon, "`:`")?;
        let mut rules = Vec::new();
        loop {
            let rhs = self.parse_sequence()?;
            rules.push(Rule {
                lhs: lhs.clone(),
                rhs,
            });
            match self.peek() {
                Some(TokenKind::Pipe) => {
                    self.pos += 1;
                }
                Some(TokenKind::Semi) => {
                    self.pos += 1;
                    break;
                }
                other => return Err(self.err(format!("expected `|` or `;`, found {other:?}"))),
            }
        }
        Ok(rules)
    }

    /// Parses a sequence of terms (stops at `|`, `;` or `)`).
    fn parse_sequence(&mut self) -> Result<Vec<TermRep>> {
        let mut seq = Vec::new();
        loop {
            let term = match self.peek() {
                Some(TokenKind::Ident(_)) => {
                    let name = self.expect_ident("symbol")?;
                    Term::Symbol(name)
                }
                Some(TokenKind::Str(_)) => match self.bump() {
                    Some(TokenKind::Str(s)) => Term::Literal(s),
                    _ => unreachable!(),
                },
                Some(TokenKind::Amp) => {
                    self.pos += 1;
                    Term::Reference(self.expect_ident("symbol after `&`")?)
                }
                Some(TokenKind::LParen) => {
                    self.pos += 1;
                    let mut alts = vec![self.parse_sequence()?];
                    while self.peek() == Some(&TokenKind::Pipe) {
                        self.pos += 1;
                        alts.push(self.parse_sequence()?);
                    }
                    self.expect(&TokenKind::RParen, "`)`")?;
                    Term::Group(alts)
                }
                _ => break,
            };
            let rep = match self.peek() {
                Some(TokenKind::Question) => {
                    self.pos += 1;
                    Rep::Opt
                }
                Some(TokenKind::Star) => {
                    self.pos += 1;
                    Rep::Star
                }
                Some(TokenKind::Plus) => {
                    self.pos += 1;
                    Rep::Plus
                }
                _ => Rep::One,
            };
            seq.push(TermRep { term, rep });
        }
        Ok(seq)
    }

    // ---- predicate expressions (Pratt parser) ----

    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_and()?;
        while self.peek() == Some(&TokenKind::OrOr) {
            self.pos += 1;
            let rhs = self.parse_and()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_cmp()?;
        while self.peek() == Some(&TokenKind::AndAnd) {
            self.pos += 1;
            let rhs = self.parse_cmp()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Expr> {
        let lhs = self.parse_add()?;
        let op = match self.peek() {
            Some(TokenKind::EqEq) => BinOp::Eq,
            Some(TokenKind::NotEq) => BinOp::Ne,
            Some(TokenKind::Le) => BinOp::Le,
            Some(TokenKind::Ge) => BinOp::Ge,
            Some(TokenKind::Lt) => BinOp::Lt,
            Some(TokenKind::Gt) => BinOp::Gt,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.parse_add()?;
        Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)))
    }

    fn parse_add(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Plus) => BinOp::Add,
                Some(TokenKind::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_mul()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_mul(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Star) => BinOp::Mul,
                Some(TokenKind::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        match self.peek() {
            Some(TokenKind::Not) => {
                self.pos += 1;
                Ok(Expr::Not(Box::new(self.parse_unary()?)))
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek().cloned() {
            Some(TokenKind::Int(i)) => {
                self.pos += 1;
                Ok(Expr::Lit(FeatureValue::Int(i)))
            }
            Some(TokenKind::Flt(f)) => {
                self.pos += 1;
                Ok(Expr::Lit(FeatureValue::Flt(f)))
            }
            Some(TokenKind::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Lit(FeatureValue::Str(s)))
            }
            Some(TokenKind::LParen) => {
                self.pos += 1;
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            Some(TokenKind::Ident(name)) => {
                // Boolean literals.
                if name == "true" || name == "false" {
                    self.pos += 1;
                    return Ok(Expr::Lit(FeatureValue::Bit(name == "true")));
                }
                // Nested quantifier: `some[path]( expr )`.
                if let Some(q) = Quantifier::from_name(&name) {
                    if self.peek2() == Some(&TokenKind::LBracket) {
                        self.pos += 2;
                        let path = self.parse_path()?;
                        self.expect(&TokenKind::RBracket, "`]`")?;
                        self.expect(&TokenKind::LParen, "`(`")?;
                        let body = self.parse_expr()?;
                        self.expect(&TokenKind::RParen, "`)`")?;
                        return Ok(Expr::Quantified {
                            q,
                            path,
                            body: Box::new(body),
                        });
                    }
                }
                let path = self.parse_path()?;
                Ok(Expr::Path(path))
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

fn build_symbols(
    detectors: &[DetectorDecl],
    atoms: &[AtomDecl],
    rules: &[Rule],
) -> SymbolTable {
    crate::symbols::build_table(detectors, atoms, rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{DetectorKind, Rep, Term};

    /// The verbatim Figure 6 fragment (minus line numbers).
    pub const FIGURE6: &str = r#"
%start MMO(location);

%detector header(location);
%detector header.init();
%detector header.final();

%detector video_type primary == "video";

%atom url;

%atom url location;
%atom str primary;
%atom str secondary;

MMO : location header mm_type?;
header : MIME_type;
MIME_type : primary secondary;
mm_type : video_type video;
video : segment;
segment : shot*;
shot : begin end type;
begin : frameNo;
end : frameNo;
type : "tennis" tennis;
type : "other";
tennis : frame* event;
frame : frameNo player;
player : xPos yPos Area Ecc Orient;
event : netplay;

%detector xml-rpc::segment(location);
%detector xml-rpc::tennis(location,begin.frameNo,end.frameNo);

%detector netplay some[tennis.frame](
    player.yPos <= 170.0
);

%atom flt xPos,yPos,Ecc,Orient;
%atom int frameNo,Area;
%atom bit netplay;
"#;

    #[test]
    fn figure6_and_7_parse_verbatim() {
        let g = parse_grammar(FIGURE6).unwrap();
        assert_eq!(g.start().symbol, "MMO");
        assert_eq!(g.start().args.len(), 1);
        assert_eq!(g.start().args[0].to_string(), "location");
        assert!(g.detector("header").is_some());
        assert!(g.detector("segment").is_some());
        assert!(g.detector("tennis").is_some());
        assert!(g.detector("netplay").is_some());
        assert!(g.detector("video_type").is_some());
        assert_eq!(g.special_hooks("header").len(), 2);
        assert_eq!(g.rules_for("type").len(), 2);
    }

    #[test]
    fn figure14_internet_grammar_parses() {
        let src = r#"
%start html(location);
%atom url;
%atom url location;
%atom str word, title, embedded, link, alternative;
html : title? body? anchor* ;
body : &keyword+;
anchor : &MMO embedded link? alternative?;
keyword : word;
MMO : location;
"#;
        let g = parse_grammar(src).unwrap();
        let body = &g.rules_for("body")[0];
        assert_eq!(body.rhs.len(), 1);
        assert!(matches!(&body.rhs[0].term, Term::Reference(s) if s == "keyword"));
        assert_eq!(body.rhs[0].rep, Rep::Plus);
        let anchor = &g.rules_for("anchor")[0];
        assert!(matches!(&anchor.rhs[0].term, Term::Reference(s) if s == "MMO"));
    }

    #[test]
    fn transports_parse() {
        let src = r#"
%start a(x);
%atom str x;
%detector xml-rpc::p(x);
%detector corba::q(x);
%detector exec::r(x);
a : x p q r;
p : x; q : x; r : x;
"#;
        let g = parse_grammar(src).unwrap();
        for (name, transport) in [
            ("p", Transport::XmlRpc),
            ("q", Transport::Corba),
            ("r", Transport::Exec),
        ] {
            match &g.detector(name).unwrap().kind {
                DetectorKind::Blackbox { transport: t, .. } => assert_eq!(*t, transport),
                other => panic!("{name}: {other:?}"),
            }
        }
    }

    #[test]
    fn whitebox_quantifier_shapes() {
        let src = r#"
%start a(x);
%atom flt x;
%detector w all[a.b]( c.d > 1.0 && !(e == "s") );
a : x w;
"#;
        let g = parse_grammar_raw(src).unwrap();
        match &g.detector("w").unwrap().kind {
            DetectorKind::Whitebox {
                quantifier: Some((q, p)),
                ..
            } => {
                assert_eq!(*q, Quantifier::All);
                assert_eq!(p.to_string(), "a.b");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn group_alternatives_parse() {
        let src = r#"
%start a(x);
%atom str x, y, z;
a : ( x y | z )+ ;
"#;
        let g = parse_grammar(src).unwrap();
        let rule = &g.rules_for("a")[0];
        match &rule.rhs[0].term {
            Term::Group(alts) => {
                assert_eq!(alts.len(), 2);
                assert_eq!(alts[0].len(), 2);
                assert_eq!(alts[1].len(), 1);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(rule.rhs[0].rep, Rep::Plus);
    }

    #[test]
    fn top_level_pipe_splits_alternatives() {
        let src = r#"
%start a(x);
%atom str x, y;
a : x | y ;
"#;
        let g = parse_grammar(src).unwrap();
        assert_eq!(g.rules_for("a").len(), 2);
    }

    #[test]
    fn missing_start_is_an_error() {
        let err = parse_grammar("%atom str x; a : x;").unwrap_err();
        assert!(err.to_string().contains("%start"));
    }

    #[test]
    fn duplicate_start_is_an_error() {
        let err = parse_grammar("%start a(x); %start b(x); %atom str x; a : x;").unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn unknown_transport_is_an_error() {
        let err =
            parse_grammar("%start a(x); %atom str x; %detector soap::d(x); a : x d; d : x;")
                .unwrap_err();
        assert!(err.to_string().contains("transport"));
    }

    #[test]
    fn unknown_lifecycle_event_is_an_error() {
        let err = parse_grammar("%start a(x); %atom str x; %detector a.reset(); a : x;")
            .unwrap_err();
        assert!(err.to_string().contains("lifecycle"));
    }

    #[test]
    fn empty_alternative_is_allowed() {
        let src = "%start a(x); %atom str x; a : x b; b : ;";
        let g = parse_grammar(src).unwrap();
        assert_eq!(g.rules_for("b")[0].rhs.len(), 0);
    }

    #[test]
    fn last_obligatory_symbol_skips_optionals_and_literals() {
        let src = r#"
%start a(x);
%atom str x, y, z;
a : x y? "lit" z* ;
"#;
        let g = parse_grammar(src).unwrap();
        assert_eq!(g.rules_for("a")[0].last_obligatory_symbol(), Some("x"));
    }
}
