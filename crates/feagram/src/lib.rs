//! The feature grammar language — the core of the paper's logical level.
//!
//! A *feature grammar* is a context-free grammar `G = (V, D, T, S, P)`
//! extended with a set `D` of **detectors**: grammar variables bound to
//! feature-extraction algorithms. Production rules describe a detector's
//! output; its declaration names the input tokens as *paths into the
//! parse tree*. Parsing a multimedia object therefore *is* analysing it:
//! the parser (the Feature Detector Engine, in the `acoi` crate) runs
//! detectors on demand while proving the start symbol.
//!
//! This crate implements the language itself:
//!
//! * [`lex`] / [`parser`] — concrete syntax, faithful to the paper's
//!   Figures 6, 7 and 14 (those fragments parse verbatim; see the tests),
//! * [`ast`] — declarations, rules with regular right parts
//!   (`?`, `*`, `+`, groups, literals, `&references`),
//! * [`expr`] — the whitebox-detector predicate language with the
//!   `some` / `all` / `one` quantifiers,
//! * [`symbols`] — the symbol table: variables, detectors, atoms
//!   (terminals with ADTs) and their classification,
//! * [`validate`] — well-formedness checks,
//! * [`depgraph`] — the dependency graph (sibling / rule / parameter
//!   edges, Figure 8) that the Feature Detector Scheduler analyses.
//!
//! # Example
//!
//! ```
//! let source = r#"
//! %start MMO(location);
//! %detector header(location);
//! %atom url;
//! %atom url location;
//! %atom str primary;
//! %atom str secondary;
//! MMO : location header;
//! header : MIME_type;
//! MIME_type : primary secondary;
//! "#;
//! let grammar = feagram::parse_grammar(source).unwrap();
//! assert_eq!(grammar.start().symbol, "MMO");
//! assert!(grammar.detector("header").is_some());
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod depgraph;
pub mod error;
pub mod expr;
pub mod lex;
pub mod paper;
pub mod parser;
pub mod symbols;
pub mod validate;
pub mod value;

pub use ast::{DetectorDecl, DetectorKind, Grammar, Rep, Rule, Term, TermRep, Transport};
pub use depgraph::{DepEdge, DepGraph, EdgeKind};
pub use error::{Error, Result};
pub use expr::{Expr, Quantifier};
pub use parser::parse_grammar;
pub use symbols::{SymbolClass, SymbolTable};
pub use value::FeatureValue;
