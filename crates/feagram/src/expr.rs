//! The whitebox-detector predicate language.
//!
//! A whitebox detector's "complete specification is part of the feature
//! grammar … a boolean predicate over the information in the parse tree"
//! (Figure 6 line 7: `video_type primary == "video"`). Predicates may be
//! quantified over parse-tree instances with `some`, `all` or `one`
//! (Figure 7 lines 23–25: `netplay some[tennis.frame](player.yPos <=
//! 170.0)` — "to determine if the player approaches the net in at least
//! one frame of this shot").
//!
//! Evaluation is abstracted over an [`EvalContext`], so the same
//! expressions work against the FDE's in-flight parse trees (the `acoi`
//! crate) and against stored trees during query processing.

use serde::{Deserialize, Serialize};

use crate::ast::PathExpr;
use crate::error::{Error, Result};
use crate::value::FeatureValue;

/// Quantifiers over parse-tree instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Quantifier {
    /// At least one instance satisfies the body.
    Some,
    /// Every instance satisfies the body (vacuously true when none).
    All,
    /// Exactly one instance satisfies the body.
    One,
}

impl Quantifier {
    /// Parses `some` / `all` / `one`.
    pub fn from_name(name: &str) -> Option<Quantifier> {
        match name {
            "some" => Some(Quantifier::Some),
            "all" => Some(Quantifier::All),
            "one" => Some(Quantifier::One),
            _ => None,
        }
    }
}

/// Binary operators, loosest first in the precedence table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    /// `||`
    Or,
    /// `&&`
    And,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// A predicate/arithmetic expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A literal value.
    Lit(FeatureValue),
    /// A dotted path into the parse tree; evaluates to the *most recent*
    /// matching token's value.
    Path(PathExpr),
    /// Logical negation.
    Not(Box<Expr>),
    /// A binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// A quantified sub-predicate: iterate instances of `path` and
    /// evaluate `body` in each instance's context.
    Quantified {
        /// The quantifier.
        q: Quantifier,
        /// The instance path (e.g. `tennis.frame`).
        path: PathExpr,
        /// The per-instance predicate.
        body: Box<Expr>,
    },
}

/// Resolution of paths against a concrete parse tree.
///
/// `values` returns the values of all tokens matching a path from this
/// context, in document order; `contexts` returns one sub-context per
/// *instance* of a path (for quantifier iteration).
pub trait EvalContext {
    /// All token values at `path`, in document order.
    fn values(&self, path: &[String]) -> Vec<FeatureValue>;
    /// Sub-contexts rooted at each instance of `path`, in document order.
    fn contexts(&self, path: &[String]) -> Vec<Box<dyn EvalContext + '_>>;
}

impl Expr {
    /// Evaluates to a value in `ctx`. Path expressions take the most
    /// recent (last in document order) matching token.
    pub fn eval(&self, ctx: &dyn EvalContext) -> Result<FeatureValue> {
        match self {
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Path(p) => ctx
                .values(&p.0)
                .pop()
                .ok_or_else(|| Error::Validation(format!("path `{p}` matched no token"))),
            Expr::Not(inner) => {
                let v = inner.eval(ctx)?;
                let b = v.as_bool().ok_or_else(|| {
                    Error::Validation(format!("`!` applied to non-boolean {v:?}"))
                })?;
                Ok(FeatureValue::Bit(!b))
            }
            Expr::Binary(op, lhs, rhs) => eval_binary(*op, lhs, rhs, ctx),
            Expr::Quantified { q, path, body } => {
                let instances = ctx.contexts(&path.0);
                let mut hits = 0usize;
                for inst in &instances {
                    let v = body.eval(inst.as_ref())?;
                    if v.as_bool().ok_or_else(|| {
                        Error::Validation("quantifier body is not boolean".into())
                    })? {
                        hits += 1;
                        // `some` can short-circuit.
                        if *q == Quantifier::Some {
                            return Ok(FeatureValue::Bit(true));
                        }
                    } else if *q == Quantifier::All {
                        return Ok(FeatureValue::Bit(false));
                    }
                }
                Ok(FeatureValue::Bit(match q {
                    Quantifier::Some => false, // no hit found above
                    Quantifier::All => true,
                    Quantifier::One => hits == 1,
                }))
            }
        }
    }

    /// Evaluates and coerces to boolean.
    pub fn eval_bool(&self, ctx: &dyn EvalContext) -> Result<bool> {
        let v = self.eval(ctx)?;
        v.as_bool()
            .ok_or_else(|| Error::Validation(format!("predicate evaluated to non-boolean {v:?}")))
    }

    /// All paths mentioned anywhere in the expression (for dependency
    /// analysis), including quantifier instance paths.
    pub fn paths(&self) -> Vec<&PathExpr> {
        let mut out = Vec::new();
        self.collect_paths(&mut out);
        out
    }

    fn collect_paths<'a>(&'a self, out: &mut Vec<&'a PathExpr>) {
        match self {
            Expr::Lit(_) => {}
            Expr::Path(p) => out.push(p),
            Expr::Not(e) => e.collect_paths(out),
            Expr::Binary(_, l, r) => {
                l.collect_paths(out);
                r.collect_paths(out);
            }
            Expr::Quantified { path, body, .. } => {
                out.push(path);
                body.collect_paths(out);
            }
        }
    }
}

fn eval_binary(op: BinOp, lhs: &Expr, rhs: &Expr, ctx: &dyn EvalContext) -> Result<FeatureValue> {
    use BinOp::*;
    // Short-circuit logic first.
    if matches!(op, And | Or) {
        let l = lhs.eval(ctx)?.as_bool().ok_or_else(|| {
            Error::Validation("left operand of logical operator is not boolean".into())
        })?;
        return match (op, l) {
            (And, false) => Ok(FeatureValue::Bit(false)),
            (Or, true) => Ok(FeatureValue::Bit(true)),
            _ => {
                let r = rhs.eval(ctx)?.as_bool().ok_or_else(|| {
                    Error::Validation("right operand of logical operator is not boolean".into())
                })?;
                Ok(FeatureValue::Bit(r))
            }
        };
    }

    let l = lhs.eval(ctx)?;
    let r = rhs.eval(ctx)?;
    match op {
        Eq | Ne => {
            let equal = match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => a == b,
                _ => match (l.as_str(), r.as_str()) {
                    (Some(a), Some(b)) => a == b,
                    _ => l == r,
                },
            };
            Ok(FeatureValue::Bit(if op == Eq { equal } else { !equal }))
        }
        Lt | Le | Gt | Ge => {
            let ord = match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => a.partial_cmp(&b),
                _ => match (l.as_str(), r.as_str()) {
                    (Some(a), Some(b)) => Some(a.cmp(b)),
                    _ => None,
                },
            }
            .ok_or_else(|| {
                Error::Validation(format!("cannot order {l:?} against {r:?}"))
            })?;
            use std::cmp::Ordering::*;
            Ok(FeatureValue::Bit(match op {
                Lt => ord == Less,
                Le => ord != Greater,
                Gt => ord == Greater,
                Ge => ord != Less,
                _ => unreachable!(),
            }))
        }
        Add | Sub | Mul | Div => {
            let (a, b) = (
                l.as_f64().ok_or_else(|| {
                    Error::Validation("arithmetic on non-numeric value".into())
                })?,
                r.as_f64().ok_or_else(|| {
                    Error::Validation("arithmetic on non-numeric value".into())
                })?,
            );
            let result = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => {
                    if b == 0.0 {
                        return Err(Error::Validation("division by zero".into()));
                    }
                    a / b
                }
                _ => unreachable!(),
            };
            // Keep integer arithmetic integral when both sides were ints.
            if matches!(l, FeatureValue::Int(_))
                && matches!(r, FeatureValue::Int(_))
                && result.fract() == 0.0
            {
                Ok(FeatureValue::Int(result as i64))
            } else {
                Ok(FeatureValue::Flt(result))
            }
        }
        And | Or => unreachable!("handled above"),
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use std::collections::HashMap;

    /// A flat map-backed context for unit tests: path → values; nested
    /// contexts are keyed by the instance path joined with '#index'.
    #[derive(Default)]
    pub struct MapCtx {
        pub values: HashMap<String, Vec<FeatureValue>>,
        pub instances: HashMap<String, Vec<MapCtx>>,
    }

    impl EvalContext for MapCtx {
        fn values(&self, path: &[String]) -> Vec<FeatureValue> {
            self.values.get(&path.join(".")).cloned().unwrap_or_default()
        }
        fn contexts(&self, path: &[String]) -> Vec<Box<dyn EvalContext + '_>> {
            self.instances
                .get(&path.join("."))
                .map(|v| {
                    v.iter()
                        .map(|c| Box::new(CtxRef(c)) as Box<dyn EvalContext>)
                        .collect()
                })
                .unwrap_or_default()
        }
    }

    struct CtxRef<'a>(&'a MapCtx);
    impl EvalContext for CtxRef<'_> {
        fn values(&self, path: &[String]) -> Vec<FeatureValue> {
            self.0.values(path)
        }
        fn contexts(&self, path: &[String]) -> Vec<Box<dyn EvalContext + '_>> {
            self.0.contexts(path)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::MapCtx;
    use super::*;

    fn path(p: &str) -> Expr {
        Expr::Path(PathExpr(p.split('.').map(str::to_owned).collect()))
    }

    fn lit(v: impl Into<FeatureValue>) -> Expr {
        Expr::Lit(v.into())
    }

    #[test]
    fn figure6_video_type_predicate() {
        // primary == "video"
        let e = Expr::Binary(
            BinOp::Eq,
            Box::new(path("primary")),
            Box::new(lit("video")),
        );
        let mut ctx = MapCtx::default();
        ctx.values
            .insert("primary".into(), vec![FeatureValue::from("video")]);
        assert!(e.eval_bool(&ctx).unwrap());
        ctx.values
            .insert("primary".into(), vec![FeatureValue::from("image")]);
        assert!(!e.eval_bool(&ctx).unwrap());
    }

    #[test]
    fn figure7_netplay_quantifier() {
        // some[tennis.frame]( player.yPos <= 170.0 )
        let body = Expr::Binary(
            BinOp::Le,
            Box::new(path("player.yPos")),
            Box::new(lit(170.0)),
        );
        let e = Expr::Quantified {
            q: Quantifier::Some,
            path: PathExpr(vec!["tennis".into(), "frame".into()]),
            body: Box::new(body),
        };

        let frame = |y: f64| {
            let mut c = MapCtx::default();
            c.values
                .insert("player.yPos".into(), vec![FeatureValue::Flt(y)]);
            c
        };
        let mut ctx = MapCtx::default();
        ctx.instances.insert(
            "tennis.frame".into(),
            vec![frame(300.0), frame(150.0), frame(400.0)],
        );
        assert!(e.eval_bool(&ctx).unwrap());

        let mut far = MapCtx::default();
        far.instances
            .insert("tennis.frame".into(), vec![frame(300.0), frame(400.0)]);
        assert!(!e.eval_bool(&far).unwrap());
    }

    #[test]
    fn all_quantifier_is_vacuously_true() {
        let e = Expr::Quantified {
            q: Quantifier::All,
            path: PathExpr(vec!["x".into()]),
            body: Box::new(lit(false)),
        };
        let ctx = MapCtx::default();
        assert!(e.eval_bool(&ctx).unwrap());
    }

    #[test]
    fn one_quantifier_counts_exactly() {
        let body = Expr::Binary(BinOp::Gt, Box::new(path("v")), Box::new(lit(0i64)));
        let make = |vals: Vec<i64>| {
            let mut ctx = MapCtx::default();
            ctx.instances.insert(
                "i".into(),
                vals.into_iter()
                    .map(|v| {
                        let mut c = MapCtx::default();
                        c.values.insert("v".into(), vec![FeatureValue::Int(v)]);
                        c
                    })
                    .collect(),
            );
            ctx
        };
        let e = Expr::Quantified {
            q: Quantifier::One,
            path: PathExpr(vec!["i".into()]),
            body: Box::new(body),
        };
        assert!(e.eval_bool(&make(vec![-1, 5, -2])).unwrap());
        assert!(!e.eval_bool(&make(vec![1, 5])).unwrap());
        assert!(!e.eval_bool(&make(vec![-1, -5])).unwrap());
    }

    #[test]
    fn logic_short_circuits_missing_paths() {
        // false && <missing path> must not error.
        let e = Expr::Binary(
            BinOp::And,
            Box::new(lit(false)),
            Box::new(path("missing")),
        );
        assert!(!e.eval_bool(&MapCtx::default()).unwrap());
        let e = Expr::Binary(BinOp::Or, Box::new(lit(true)), Box::new(path("missing")));
        assert!(e.eval_bool(&MapCtx::default()).unwrap());
    }

    #[test]
    fn missing_path_errors_when_needed() {
        assert!(path("missing").eval(&MapCtx::default()).is_err());
    }

    #[test]
    fn mixed_int_float_comparison() {
        let e = Expr::Binary(BinOp::Le, Box::new(lit(170i64)), Box::new(lit(170.0)));
        assert!(e.eval_bool(&MapCtx::default()).unwrap());
    }

    #[test]
    fn arithmetic_keeps_ints_integral() {
        let e = Expr::Binary(BinOp::Add, Box::new(lit(2i64)), Box::new(lit(3i64)));
        assert_eq!(e.eval(&MapCtx::default()).unwrap(), FeatureValue::Int(5));
        let e = Expr::Binary(BinOp::Div, Box::new(lit(1i64)), Box::new(lit(0i64)));
        assert!(e.eval(&MapCtx::default()).is_err());
    }

    #[test]
    fn path_takes_most_recent_value() {
        let mut ctx = MapCtx::default();
        ctx.values.insert(
            "x".into(),
            vec![FeatureValue::Int(1), FeatureValue::Int(2)],
        );
        assert_eq!(path("x").eval(&ctx).unwrap(), FeatureValue::Int(2));
    }

    #[test]
    fn paths_collects_all_mentions() {
        let e = Expr::Quantified {
            q: Quantifier::Some,
            path: PathExpr(vec!["a".into()]),
            body: Box::new(Expr::Binary(
                BinOp::Lt,
                Box::new(path("b.c")),
                Box::new(lit(1i64)),
            )),
        };
        let ps: Vec<String> = e.paths().iter().map(|p| p.to_string()).collect();
        assert_eq!(ps, vec!["a", "b.c"]);
    }
}
