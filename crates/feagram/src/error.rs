//! Error type for grammar processing.

use std::fmt;

/// Errors raised while lexing, parsing or validating a feature grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Lexical error with line/column position (1-based).
    Lex {
        /// Line number.
        line: usize,
        /// Column number.
        col: usize,
        /// Description.
        message: String,
    },
    /// Syntax error with position.
    Syntax {
        /// Line number.
        line: usize,
        /// Column number.
        col: usize,
        /// Description.
        message: String,
    },
    /// Well-formedness violation (undeclared symbol, duplicate detector,
    /// bad atom type, …).
    Validation(String),
}

impl Error {
    pub(crate) fn syntax(line: usize, col: usize, message: impl Into<String>) -> Self {
        Error::Syntax {
            line,
            col,
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Lex { line, col, message } => {
                write!(f, "lexical error at {line}:{col}: {message}")
            }
            Error::Syntax { line, col, message } => {
                write!(f, "syntax error at {line}:{col}: {message}")
            }
            Error::Validation(msg) => write!(f, "invalid grammar: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias for grammar processing.
pub type Result<T> = std::result::Result<T, Error>;
