//! The value domain of feature tokens.
//!
//! The feature grammar language declares atoms with Abstract Data Types:
//! the built-ins `str`, `int`, `flt`, `bit` and developer-declared ADTs
//! such as `url` ("%atom url;" in Figure 6, "which should be supported by
//! the lower system levels"). [`FeatureValue`] is the runtime
//! representation of a token's value; detectors consume and produce it.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A typed token value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FeatureValue {
    /// A string atom.
    Str(String),
    /// An integer atom.
    Int(i64),
    /// A float atom.
    Flt(f64),
    /// A boolean atom.
    Bit(bool),
    /// A value of a developer-declared ADT (e.g. `url`); the type name is
    /// carried alongside the lexical representation.
    Adt {
        /// The declared ADT name.
        ty: String,
        /// The value's lexical form.
        lexical: String,
    },
}

impl FeatureValue {
    /// Convenience constructor for `url` values (the ADT the paper's
    /// grammars use).
    pub fn url(u: impl Into<String>) -> Self {
        FeatureValue::Adt {
            ty: "url".to_owned(),
            lexical: u.into(),
        }
    }

    /// The ADT name of this value.
    pub fn type_name(&self) -> &str {
        match self {
            FeatureValue::Str(_) => "str",
            FeatureValue::Int(_) => "int",
            FeatureValue::Flt(_) => "flt",
            FeatureValue::Bit(_) => "bit",
            FeatureValue::Adt { ty, .. } => ty,
        }
    }

    /// Numeric view (ints widen to floats), if the value is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            FeatureValue::Int(i) => Some(*i as f64),
            FeatureValue::Flt(f) => Some(*f),
            _ => None,
        }
    }

    /// String view for `str` and ADT values.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FeatureValue::Str(s) => Some(s),
            FeatureValue::Adt { lexical, .. } => Some(lexical),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            FeatureValue::Bit(b) => Some(*b),
            _ => None,
        }
    }

    /// The lexical form, as it would appear in an XML dump of the parse
    /// tree.
    pub fn lexical(&self) -> String {
        self.to_string()
    }

    /// Parses a lexical form back into a value of the ADT `ty`.
    /// Unknown ADTs round-trip as [`FeatureValue::Adt`].
    pub fn from_lexical(ty: &str, lexical: &str) -> Option<FeatureValue> {
        Some(match ty {
            "str" => FeatureValue::Str(lexical.to_owned()),
            "int" => FeatureValue::Int(lexical.parse().ok()?),
            "flt" => FeatureValue::Flt(lexical.parse().ok()?),
            "bit" => FeatureValue::Bit(match lexical {
                "true" | "1" => true,
                "false" | "0" => false,
                _ => return None,
            }),
            other => FeatureValue::Adt {
                ty: other.to_owned(),
                lexical: lexical.to_owned(),
            },
        })
    }
}

impl fmt::Display for FeatureValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeatureValue::Str(s) => f.write_str(s),
            FeatureValue::Int(i) => write!(f, "{i}"),
            FeatureValue::Flt(x) => write!(f, "{x}"),
            FeatureValue::Bit(b) => write!(f, "{b}"),
            FeatureValue::Adt { lexical, .. } => f.write_str(lexical),
        }
    }
}

impl From<&str> for FeatureValue {
    fn from(s: &str) -> Self {
        FeatureValue::Str(s.to_owned())
    }
}
impl From<String> for FeatureValue {
    fn from(s: String) -> Self {
        FeatureValue::Str(s)
    }
}
impl From<i64> for FeatureValue {
    fn from(i: i64) -> Self {
        FeatureValue::Int(i)
    }
}
impl From<f64> for FeatureValue {
    fn from(f: f64) -> Self {
        FeatureValue::Flt(f)
    }
}
impl From<bool> for FeatureValue {
    fn from(b: bool) -> Self {
        FeatureValue::Bit(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexical_round_trips_builtins() {
        for (ty, v) in [
            ("str", FeatureValue::from("hello")),
            ("int", FeatureValue::from(-42i64)),
            ("flt", FeatureValue::from(1.5f64)),
            ("bit", FeatureValue::from(true)),
        ] {
            let lex = v.lexical();
            assert_eq!(FeatureValue::from_lexical(ty, &lex), Some(v));
        }
    }

    #[test]
    fn url_adt_round_trips() {
        let u = FeatureValue::url("http://ausopen.org/");
        assert_eq!(u.type_name(), "url");
        assert_eq!(
            FeatureValue::from_lexical("url", &u.lexical()),
            Some(u)
        );
    }

    #[test]
    fn numeric_widening() {
        assert_eq!(FeatureValue::Int(170).as_f64(), Some(170.0));
        assert_eq!(FeatureValue::Flt(0.5).as_f64(), Some(0.5));
        assert_eq!(FeatureValue::from("x").as_f64(), None);
    }

    #[test]
    fn bad_lexical_forms_rejected() {
        assert_eq!(FeatureValue::from_lexical("int", "abc"), None);
        assert_eq!(FeatureValue::from_lexical("bit", "maybe"), None);
    }
}
