//! Abstract syntax of feature grammars.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::expr::{Expr, Quantifier};
use crate::symbols::SymbolTable;

/// A dotted path into the parse tree (`begin.frameNo`); paths "can only
/// refer to preceding symbols", which the FDE enforces at run time.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PathExpr(pub Vec<String>);

impl PathExpr {
    /// The path's segments.
    pub fn segments(&self) -> &[String] {
        &self.0
    }
}

impl std::fmt::Display for PathExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0.join("."))
    }
}

/// The `%start` declaration: the start symbol and the minimum token set
/// that must be supplied to kick off parsing (Figure 6: `MMO(location)`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StartDecl {
    /// The start symbol (a variable or detector).
    pub symbol: String,
    /// Paths naming the initial tokens.
    pub args: Vec<PathExpr>,
}

/// How a blackbox detector's implementation is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Transport {
    /// Linked into the parser (the paper's C-linked `header` detector).
    Linked,
    /// Remote procedure via XML-RPC (`xml-rpc::segment`).
    XmlRpc,
    /// Distributed object via CORBA (`corba::…`).
    Corba,
    /// Plain system call (`exec::…`).
    Exec,
}

impl Transport {
    /// Parses a transport prefix identifier.
    pub fn from_prefix(prefix: &str) -> Option<Transport> {
        match prefix {
            "xml-rpc" => Some(Transport::XmlRpc),
            "corba" => Some(Transport::Corba),
            "exec" => Some(Transport::Exec),
            _ => None,
        }
    }
}

/// The lifecycle events of special detectors (Figure 6, lines 4–5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpecialEvent {
    /// Called the first time the parser encounters the symbol.
    Init,
    /// Called when the parser finishes (if init succeeded).
    Final,
    /// Called every time the symbol is entered.
    Begin,
    /// Called every time the symbol is completed.
    End,
}

impl SpecialEvent {
    /// Parses `init` / `final` / `begin` / `end`.
    pub fn from_name(name: &str) -> Option<SpecialEvent> {
        match name {
            "init" => Some(SpecialEvent::Init),
            "final" => Some(SpecialEvent::Final),
            "begin" => Some(SpecialEvent::Begin),
            "end" => Some(SpecialEvent::End),
            _ => None,
        }
    }
}

/// What kind of detector a declaration introduces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DetectorKind {
    /// Implementation outside the grammar; only inputs/outputs are known.
    Blackbox {
        /// How the implementation is reached.
        transport: Transport,
        /// Input token paths.
        inputs: Vec<PathExpr>,
    },
    /// Fully specified inside the grammar as a boolean predicate,
    /// optionally quantified over parse-tree instances
    /// (`some[tennis.frame](…)`).
    Whitebox {
        /// Quantifier binding, if any.
        quantifier: Option<(Quantifier, PathExpr)>,
        /// The predicate.
        predicate: Expr,
    },
    /// A lifecycle hook attached to another symbol
    /// (`%detector header.init();`).
    Special {
        /// The symbol the hook is attached to.
        target: String,
        /// Which lifecycle event.
        event: SpecialEvent,
    },
}

/// A `%detector` declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectorDecl {
    /// The detector symbol name (for special detectors, the hook's own
    /// composite name, e.g. `header.init`).
    pub name: String,
    /// Its kind.
    pub kind: DetectorKind,
}

/// A `%atom` declaration: either a new ADT (`%atom url;`) or terminals of
/// an ADT (`%atom flt xPos,yPos;`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AtomDecl {
    /// Declares a new abstract data type.
    Type(String),
    /// Declares terminal symbols with the given type.
    Terminals {
        /// The ADT name.
        ty: String,
        /// The terminal symbol names.
        names: Vec<String>,
    },
}

/// Repetition bounds on a right-hand-side term (regular right parts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Rep {
    /// Exactly one.
    One,
    /// `?` — zero or one.
    Opt,
    /// `*` — zero or more.
    Star,
    /// `+` — one or more.
    Plus,
}

impl Rep {
    /// Whether the lower bound is greater than zero (an *obligatory*
    /// term — the paper's rule-dependency definition hinges on this).
    pub fn obligatory(self) -> bool {
        matches!(self, Rep::One | Rep::Plus)
    }
}

/// A term in a right-hand side.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Term {
    /// A symbol occurrence (variable, detector or terminal).
    Symbol(String),
    /// A literal token that must match exactly (`"tennis"` in Figure 7 —
    /// "using this type information … the right alternative can directly
    /// be validated").
    Literal(String),
    /// A reference to another symbol's subtree (`&MMO` in Figure 14) —
    /// turns the parse tree into a graph without re-parsing.
    Reference(String),
    /// A parenthesised group of alternatives, each a sequence.
    Group(Vec<Vec<TermRep>>),
}

/// A term with its repetition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TermRep {
    /// The term.
    pub term: Term,
    /// Its repetition bound.
    pub rep: Rep,
}

/// One production rule `lhs : rhs ;`. Several rules with the same
/// left-hand side are alternatives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// Left-hand-side symbol.
    pub lhs: String,
    /// Right-hand-side sequence.
    pub rhs: Vec<TermRep>,
}

impl Rule {
    /// The last obligatory *symbol* term of this rule, per the paper's
    /// rule-dependency definition ("the last symbol with a lower bound
    /// greater than zero").
    pub fn last_obligatory_symbol(&self) -> Option<&str> {
        self.rhs.iter().rev().find_map(|tr| {
            if !tr.rep.obligatory() {
                return None;
            }
            match &tr.term {
                Term::Symbol(s) | Term::Reference(s) => Some(s.as_str()),
                _ => None,
            }
        })
    }

    /// All symbol names mentioned anywhere in the rhs (flattening groups,
    /// including references, excluding literals).
    pub fn rhs_symbols(&self) -> Vec<&str> {
        fn collect<'a>(terms: &'a [TermRep], out: &mut Vec<&'a str>) {
            for tr in terms {
                match &tr.term {
                    Term::Symbol(s) | Term::Reference(s) => out.push(s),
                    Term::Literal(_) => {}
                    Term::Group(alts) => {
                        for alt in alts {
                            collect(alt, out);
                        }
                    }
                }
            }
        }
        let mut out = Vec::new();
        collect(&self.rhs, &mut out);
        out
    }
}

/// A complete feature grammar.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grammar {
    start: StartDecl,
    detectors: Vec<DetectorDecl>,
    atoms: Vec<AtomDecl>,
    rules: Vec<Rule>,
    symbols: SymbolTable,
    /// lhs → indexes into `rules`, preserving declaration order (the FDE
    /// tries alternatives in this order).
    rule_index: HashMap<String, Vec<usize>>,
}

impl Grammar {
    pub(crate) fn assemble(
        start: StartDecl,
        detectors: Vec<DetectorDecl>,
        atoms: Vec<AtomDecl>,
        rules: Vec<Rule>,
        symbols: SymbolTable,
    ) -> Self {
        let mut rule_index: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, rule) in rules.iter().enumerate() {
            rule_index.entry(rule.lhs.clone()).or_default().push(i);
        }
        Grammar {
            start,
            detectors,
            atoms,
            rules,
            symbols,
            rule_index,
        }
    }

    /// The `%start` declaration.
    pub fn start(&self) -> &StartDecl {
        &self.start
    }

    /// All detector declarations (including special hooks).
    pub fn detectors(&self) -> &[DetectorDecl] {
        &self.detectors
    }

    /// The declaration of detector `name`, if any (not special hooks).
    pub fn detector(&self, name: &str) -> Option<&DetectorDecl> {
        self.detectors
            .iter()
            .find(|d| d.name == name && !matches!(d.kind, DetectorKind::Special { .. }))
    }

    /// Special hooks attached to `target`.
    pub fn special_hooks(&self, target: &str) -> Vec<(&DetectorDecl, SpecialEvent)> {
        self.detectors
            .iter()
            .filter_map(|d| match &d.kind {
                DetectorKind::Special { target: t, event } if t == target => Some((d, *event)),
                _ => None,
            })
            .collect()
    }

    /// All atom declarations.
    pub fn atoms(&self) -> &[AtomDecl] {
        &self.atoms
    }

    /// All rules, in declaration order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// The alternatives for `lhs`, in declaration order.
    pub fn rules_for(&self, lhs: &str) -> Vec<&Rule> {
        self.rule_index
            .get(lhs)
            .map(|idxs| idxs.iter().map(|&i| &self.rules[i]).collect())
            .unwrap_or_default()
    }

    /// The symbol table.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// The derivation closure of `sym`: every symbol reachable from it
    /// through rule right-hand sides (including optional and repeated
    /// terms). This is the full set of symbols that can occur in a parse
    /// subtree rooted at `sym` — the set the FDS must treat as
    /// invalidated when `sym`'s detector changes. (The dependency-graph
    /// walk of Figure 8 follows only *last-obligatory* rule edges; on
    /// grammars with starred rules such as `segment : shot*` that walk
    /// under-approximates, so maintenance uses this closure instead.)
    pub fn derivation_closure(&self, sym: &str) -> std::collections::BTreeSet<String> {
        let mut seen = std::collections::BTreeSet::new();
        let mut queue = vec![sym.to_owned()];
        seen.insert(sym.to_owned());
        while let Some(cur) = queue.pop() {
            for rule in self.rules_for(&cur) {
                for s in rule.rhs_symbols() {
                    if seen.insert(s.to_owned()) {
                        queue.push(s.to_owned());
                    }
                }
            }
        }
        seen
    }

    /// Composes two grammars into one (the paper's future-work hook:
    /// "a similar close connection can be realized … From the webspace
    /// schema a feature grammar can be derived, containing references
    /// to, for example, the MMO start symbol" — an Internet grammar
    /// whose `&MMO` references resolve against the video grammar's
    /// rules).
    ///
    /// `self`'s start declaration wins; declarations and rules are
    /// concatenated. Conflicts — a detector declared in both with
    /// different kinds, or a terminal declared with different ADTs — are
    /// errors. Identical re-declarations deduplicate; same-lhs rules
    /// become additional alternatives (self's first).
    pub fn merge(&self, other: &Grammar) -> crate::error::Result<Grammar> {
        use crate::error::Error;

        let mut detectors = self.detectors.clone();
        for det in &other.detectors {
            match detectors.iter().find(|d| d.name == det.name) {
                Some(existing) if existing.kind == det.kind => {}
                Some(_) => {
                    return Err(Error::Validation(format!(
                        "detector `{}` declared differently in both grammars",
                        det.name
                    )))
                }
                None => detectors.push(det.clone()),
            }
        }

        let mut atoms = self.atoms.clone();
        for atom in &other.atoms {
            match atom {
                AtomDecl::Type(_) => {
                    if !atoms.contains(atom) {
                        atoms.push(atom.clone());
                    }
                }
                AtomDecl::Terminals { ty, names } => {
                    for name in names {
                        let conflicting = atoms.iter().any(|a| match a {
                            AtomDecl::Terminals {
                                ty: existing_ty,
                                names: existing,
                            } => existing.contains(name) && existing_ty != ty,
                            AtomDecl::Type(_) => false,
                        });
                        if conflicting {
                            return Err(Error::Validation(format!(
                                "atom `{name}` declared with different ADTs in the two grammars"
                            )));
                        }
                    }
                    atoms.push(atom.clone());
                }
            }
        }

        let mut rules = self.rules.clone();
        for rule in &other.rules {
            if !rules.contains(rule) {
                rules.push(rule.clone());
            }
        }

        let symbols = crate::symbols::build_table(&detectors, &atoms, &rules);
        Ok(Grammar::assemble(
            self.start.clone(),
            detectors,
            atoms,
            rules,
            symbols,
        ))
    }

    /// All symbols that are parents of `sym` (their rules mention it in
    /// the rhs) — the upward direction of the FDS's invalidation walk.
    pub fn parents_of(&self, sym: &str) -> Vec<&str> {
        let mut out = Vec::new();
        for rule in &self.rules {
            if rule.rhs_symbols().contains(&sym) && !out.contains(&rule.lhs.as_str()) {
                out.push(rule.lhs.as_str());
            }
        }
        out
    }
}
