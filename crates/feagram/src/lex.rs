//! Tokenizer for the feature grammar language.
//!
//! The concrete syntax follows the paper's figures: `%`-prefixed
//! declaration keywords, identifiers (which may contain `-`, as in the
//! `xml-rpc` transport prefix), `::` for transport qualification, string
//! literals, numbers, the repetition operators `? * +`, the reference
//! marker `&`, and the predicate operators of whitebox detectors.
//!
//! Because `-` may appear inside identifiers, binary minus in predicates
//! must be surrounded by whitespace (`a - b`); `a-b` is one identifier.
//! The paper's grammars contain no arithmetic, so this trade-off favours
//! fidelity to the published syntax.

use crate::error::{Error, Result};

/// A lexical token with its position (1-based line and column).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token's kind and payload.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// `%start`, `%detector`, `%atom`, … (keyword without the `%`).
    Percent(String),
    /// An identifier (may contain `-` and `_`).
    Ident(String),
    /// A double-quoted string literal (decoded).
    Str(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Flt(f64),
    /// `:`
    Colon,
    /// `::`
    ColonColon,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `?`
    Question,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-` (binary minus; requires surrounding whitespace)
    Minus,
    /// `/`
    Slash,
    /// `&`
    Amp,
    /// `.`
    Dot,
    /// `|`
    Pipe,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,
}

/// Tokenizes grammar source text.
pub fn tokenize(src: &str) -> Result<Vec<Token>> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    text: &'a str,
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(text: &'a str) -> Self {
        Lexer {
            src: text.as_bytes(),
            text,
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> Error {
        Error::Lex {
            line: self.line,
            col: self.col,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn is_ident_start(c: u8) -> bool {
        c.is_ascii_alphabetic() || c == b'_'
    }

    fn is_ident_continue(&self, c: u8) -> bool {
        c.is_ascii_alphanumeric()
            || c == b'_'
            // '-' continues an identifier only when followed by a letter
            // (so `xml-rpc` lexes as one name but `x -1` does not).
            || (c == b'-' && self.peek2().is_some_and(|n| n.is_ascii_alphabetic()))
    }

    fn run(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        while let Some(c) = self.peek() {
            let (line, col) = (self.line, self.col);
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                b'/' if self.peek2() == Some(b'*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => return Err(self.err("unterminated block comment")),
                        }
                    }
                }
                b'%' => {
                    self.bump();
                    let word = self.take_ident()?;
                    out.push(Token {
                        kind: TokenKind::Percent(word),
                        line,
                        col,
                    });
                }
                b'"' => {
                    self.bump();
                    let mut s = String::new();
                    loop {
                        match self.bump() {
                            Some(b'"') => break,
                            Some(b'\\') => match self.bump() {
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                Some(b'n') => s.push('\n'),
                                Some(b't') => s.push('\t'),
                                Some(other) => {
                                    return Err(
                                        self.err(format!("bad escape \\{}", other as char))
                                    )
                                }
                                None => return Err(self.err("unterminated string")),
                            },
                            Some(other) => s.push(other as char),
                            None => return Err(self.err("unterminated string")),
                        }
                    }
                    out.push(Token {
                        kind: TokenKind::Str(s),
                        line,
                        col,
                    });
                }
                c if c.is_ascii_digit() => {
                    let kind = self.take_number(false)?;
                    out.push(Token { kind, line, col });
                }
                b'-' if self.peek2().is_some_and(|n| n.is_ascii_digit()) => {
                    self.bump();
                    let kind = self.take_number(true)?;
                    out.push(Token { kind, line, col });
                }
                c if Self::is_ident_start(c) => {
                    let word = self.take_ident()?;
                    out.push(Token {
                        kind: TokenKind::Ident(word),
                        line,
                        col,
                    });
                }
                _ => {
                    let kind = self.take_punct()?;
                    out.push(Token { kind, line, col });
                }
            }
        }
        Ok(out)
    }

    fn take_ident(&mut self) -> Result<String> {
        let start = self.pos;
        match self.peek() {
            Some(c) if Self::is_ident_start(c) => {
                self.bump();
            }
            _ => return Err(self.err("expected identifier")),
        }
        while let Some(c) = self.peek() {
            if self.is_ident_continue(c) {
                self.bump();
            } else {
                break;
            }
        }
        Ok(self.text[start..self.pos].to_owned())
    }

    fn take_number(&mut self, negative: bool) -> Result<TokenKind> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') && self.peek2().is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            self.bump();
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
        }
        let text = &self.text[start..self.pos];
        if is_float {
            let v: f64 = text
                .parse()
                .map_err(|_| self.err(format!("bad float literal {text}")))?;
            Ok(TokenKind::Flt(if negative { -v } else { v }))
        } else {
            let v: i64 = text
                .parse()
                .map_err(|_| self.err(format!("bad integer literal {text}")))?;
            Ok(TokenKind::Int(if negative { -v } else { v }))
        }
    }

    fn take_punct(&mut self) -> Result<TokenKind> {
        let c = self.bump().expect("caller peeked");
        let kind = match c {
            b':' if self.peek() == Some(b':') => {
                self.bump();
                TokenKind::ColonColon
            }
            b':' => TokenKind::Colon,
            b';' => TokenKind::Semi,
            b',' => TokenKind::Comma,
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'[' => TokenKind::LBracket,
            b']' => TokenKind::RBracket,
            b'?' => TokenKind::Question,
            b'*' => TokenKind::Star,
            b'+' => TokenKind::Plus,
            b'-' => TokenKind::Minus,
            b'/' => TokenKind::Slash,
            b'.' => TokenKind::Dot,
            b'|' if self.peek() == Some(b'|') => {
                self.bump();
                TokenKind::OrOr
            }
            b'|' => TokenKind::Pipe,
            b'&' if self.peek() == Some(b'&') => {
                self.bump();
                TokenKind::AndAnd
            }
            b'&' => TokenKind::Amp,
            b'=' if self.peek() == Some(b'=') => {
                self.bump();
                TokenKind::EqEq
            }
            b'!' if self.peek() == Some(b'=') => {
                self.bump();
                TokenKind::NotEq
            }
            b'!' => TokenKind::Not,
            b'<' if self.peek() == Some(b'=') => {
                self.bump();
                TokenKind::Le
            }
            b'<' => TokenKind::Lt,
            b'>' if self.peek() == Some(b'=') => {
                self.bump();
                TokenKind::Ge
            }
            b'>' => TokenKind::Gt,
            other => {
                return Err(self.err(format!("unexpected character `{}`", other as char)))
            }
        };
        Ok(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn figure6_line1_lexes() {
        use TokenKind::*;
        assert_eq!(
            kinds("%start MMO(location);"),
            vec![
                Percent("start".into()),
                Ident("MMO".into()),
                LParen,
                Ident("location".into()),
                RParen,
                Semi
            ]
        );
    }

    #[test]
    fn xml_rpc_prefix_is_one_identifier() {
        use TokenKind::*;
        assert_eq!(
            kinds("%detector xml-rpc::segment(location);"),
            vec![
                Percent("detector".into()),
                Ident("xml-rpc".into()),
                ColonColon,
                Ident("segment".into()),
                LParen,
                Ident("location".into()),
                RParen,
                Semi
            ]
        );
    }

    #[test]
    fn special_detector_dot_names() {
        use TokenKind::*;
        assert_eq!(
            kinds("%detector header.init();"),
            vec![
                Percent("detector".into()),
                Ident("header".into()),
                Dot,
                Ident("init".into()),
                LParen,
                RParen,
                Semi
            ]
        );
    }

    #[test]
    fn predicate_operators() {
        use TokenKind::*;
        assert_eq!(
            kinds(r#"primary == "video" && x <= 170.0 || !(y != 2)"#),
            vec![
                Ident("primary".into()),
                EqEq,
                Str("video".into()),
                AndAnd,
                Ident("x".into()),
                Le,
                Flt(170.0),
                OrOr,
                Not,
                LParen,
                Ident("y".into()),
                NotEq,
                Int(2),
                RParen
            ]
        );
    }

    #[test]
    fn repetition_and_reference_markers() {
        use TokenKind::*;
        assert_eq!(
            kinds("anchor : &MMO embedded link? alternative*;"),
            vec![
                Ident("anchor".into()),
                Colon,
                Amp,
                Ident("MMO".into()),
                Ident("embedded".into()),
                Ident("link".into()),
                Question,
                Ident("alternative".into()),
                Star,
                Semi
            ]
        );
    }

    #[test]
    fn negative_numbers_and_minus() {
        use TokenKind::*;
        assert_eq!(kinds("-5 a - b -1.5"), vec![
            Int(-5),
            Ident("a".into()),
            Minus,
            Ident("b".into()),
            Flt(-1.5),
        ]);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // comment\n/* block\nstill */ b"),
            vec![TokenKind::Ident("a".into()), TokenKind::Ident("b".into())]
        );
    }

    #[test]
    fn string_escapes_decode() {
        assert_eq!(
            kinds(r#""a\"b\\c""#),
            vec![TokenKind::Str("a\"b\\c".into())]
        );
    }

    #[test]
    fn positions_are_tracked() {
        let toks = tokenize("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("\"abc").is_err());
    }

    #[test]
    fn stray_character_errors() {
        assert!(tokenize("a $ b").is_err());
    }
}
