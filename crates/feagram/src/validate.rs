//! Well-formedness checks for parsed grammars.
//!
//! The checks catch what the concrete syntax cannot: undeclared symbols,
//! terminals with production rules, unknown ADTs, detectors without
//! output descriptions, and paths referring to unknown symbols.
//!
//! One deliberate subtlety, straight from Figure 7: a **whitebox detector
//! doubles as a terminal** — `netplay` is declared both as
//! `%detector netplay some[…](…)` and `%atom bit netplay`. The detector
//! computes the predicate; the resulting boolean *is* the token stored at
//! the node. The checks therefore allow a symbol to be a whitebox
//! detector and an atom simultaneously (but never a blackbox detector
//! and an atom).

use std::collections::BTreeSet;

use crate::ast::{AtomDecl, DetectorKind, Grammar, PathExpr, Term, TermRep};
use crate::error::{Error, Result};

/// Checks `grammar` for well-formedness.
pub fn check(grammar: &Grammar) -> Result<()> {
    let known = known_symbols(grammar);

    // 1. ADTs of terminal declarations must exist.
    for atom in grammar.atoms() {
        if let AtomDecl::Terminals { ty, names } = atom {
            if !grammar.symbols().is_adt(ty) {
                return Err(Error::Validation(format!(
                    "atom(s) {names:?} use undeclared ADT `{ty}`"
                )));
            }
        }
    }

    // 2. The start symbol must be known, and its argument paths too.
    if !known.contains(grammar.start().symbol.as_str()) {
        return Err(Error::Validation(format!(
            "start symbol `{}` is not declared anywhere",
            grammar.start().symbol
        )));
    }
    for arg in &grammar.start().args {
        check_path(arg, &known, "start declaration")?;
    }

    // 3. Every rhs symbol must be known.
    for rule in grammar.rules() {
        check_terms(&rule.rhs, &known, &rule.lhs)?;
    }

    // 4. Terminals may not have production rules — except whitebox
    //    detector-terminals (the Figure 7 `netplay` pattern), which have
    //    no rules anyway; so the plain check suffices with the detector
    //    exemption.
    for rule in grammar.rules() {
        if grammar.symbols().terminal_type(&rule.lhs).is_some()
            && grammar.detector(&rule.lhs).is_none()
        {
            return Err(Error::Validation(format!(
                "terminal `{}` has a production rule",
                rule.lhs
            )));
        }
    }

    // 5. Detector sanity.
    for det in grammar.detectors() {
        match &det.kind {
            DetectorKind::Blackbox { inputs, .. } => {
                // A blackbox detector's rules describe its output; without
                // any rule the parser could never consume what it emits.
                if grammar.rules_for(&det.name).is_empty() {
                    return Err(Error::Validation(format!(
                        "blackbox detector `{}` has no production rule describing its output",
                        det.name
                    )));
                }
                if grammar.symbols().terminal_type(&det.name).is_some() {
                    return Err(Error::Validation(format!(
                        "`{}` cannot be both a blackbox detector and an atom",
                        det.name
                    )));
                }
                for input in inputs {
                    check_path(input, &known, &det.name)?;
                }
            }
            DetectorKind::Whitebox { predicate, .. } => {
                for path in predicate.paths() {
                    check_path(path, &known, &det.name)?;
                }
            }
            DetectorKind::Special { target, .. } => {
                if !known.contains(target.as_str()) {
                    return Err(Error::Validation(format!(
                        "special detector `{}` targets unknown symbol `{target}`",
                        det.name
                    )));
                }
            }
        }
    }

    // 6. Duplicate (non-special) detector declarations.
    let mut seen = BTreeSet::new();
    for det in grammar.detectors() {
        if matches!(det.kind, DetectorKind::Special { .. }) {
            continue;
        }
        if !seen.insert(det.name.as_str()) {
            return Err(Error::Validation(format!(
                "detector `{}` declared twice",
                det.name
            )));
        }
    }

    Ok(())
}

/// Every name that may legally appear in a rule or path: terminals,
/// detectors and rule left-hand sides.
fn known_symbols(grammar: &Grammar) -> BTreeSet<&str> {
    let mut known: BTreeSet<&str> = grammar.symbols().iter().map(|(n, _)| n).collect();
    for det in grammar.detectors() {
        if !matches!(det.kind, DetectorKind::Special { .. }) {
            known.insert(det.name.as_str());
        }
    }
    for rule in grammar.rules() {
        known.insert(rule.lhs.as_str());
    }
    known
}

fn check_terms(terms: &[TermRep], known: &BTreeSet<&str>, lhs: &str) -> Result<()> {
    for tr in terms {
        match &tr.term {
            Term::Symbol(s) | Term::Reference(s) => {
                if !known.contains(s.as_str()) {
                    return Err(Error::Validation(format!(
                        "rule for `{lhs}` references undeclared symbol `{s}`"
                    )));
                }
            }
            Term::Literal(_) => {}
            Term::Group(alts) => {
                for alt in alts {
                    check_terms(alt, known, lhs)?;
                }
            }
        }
    }
    Ok(())
}

fn check_path(path: &PathExpr, known: &BTreeSet<&str>, owner: &str) -> Result<()> {
    for seg in path.segments() {
        if !known.contains(seg.as_str()) {
            return Err(Error::Validation(format!(
                "path `{path}` in `{owner}` mentions unknown symbol `{seg}`"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::parser::{parse_grammar, parse_grammar_raw};

    fn check_err(src: &str) -> String {
        let g = parse_grammar_raw(src).unwrap();
        super::check(&g).unwrap_err().to_string()
    }

    #[test]
    fn undeclared_rhs_symbol_is_caught() {
        let msg = check_err("%start a(x); %atom str x; a : x ghost;");
        assert!(msg.contains("ghost"), "{msg}");
    }

    #[test]
    fn unknown_start_symbol_is_caught() {
        let msg = check_err("%start nowhere(x); %atom str x; a : x;");
        assert!(msg.contains("nowhere"), "{msg}");
    }

    #[test]
    fn unknown_adt_is_caught() {
        let msg = check_err("%start a(x); %atom mystery x; a : x;");
        assert!(msg.contains("mystery"), "{msg}");
    }

    #[test]
    fn declared_adt_is_accepted() {
        let src = "%start a(x); %atom url; %atom url x; a : x;";
        assert!(parse_grammar(src).is_ok());
    }

    #[test]
    fn terminal_with_rule_is_caught() {
        let msg = check_err("%start a(x); %atom str x; a : x; x : a;");
        assert!(msg.contains("terminal"), "{msg}");
    }

    #[test]
    fn blackbox_without_rule_is_caught() {
        let msg = check_err("%start a(x); %atom str x; %detector d(x); a : x d;");
        assert!(msg.contains("no production rule"), "{msg}");
    }

    #[test]
    fn blackbox_atom_conflict_is_caught() {
        let msg =
            check_err("%start a(x); %atom str x, d; %detector d(x); a : x d; d : x;");
        assert!(msg.contains("both"), "{msg}");
    }

    #[test]
    fn whitebox_atom_pairing_is_allowed() {
        // The Figure 7 `netplay` pattern.
        let src = r#"
%start a(x);
%atom flt x;
%atom bit w;
%detector w x <= 1.0;
a : x w;
"#;
        assert!(parse_grammar(src).is_ok());
    }

    #[test]
    fn bad_detector_input_path_is_caught() {
        let msg = check_err("%start a(x); %atom str x; %detector d(nope); a : x d; d : x;");
        assert!(msg.contains("nope"), "{msg}");
    }

    #[test]
    fn bad_predicate_path_is_caught() {
        let msg = check_err(r#"%start a(x); %atom str x; %detector w ghost == "v"; a : x w;"#);
        assert!(msg.contains("ghost"), "{msg}");
    }

    #[test]
    fn special_hook_on_unknown_target_is_caught() {
        let msg = check_err("%start a(x); %atom str x; %detector ghost.init(); a : x;");
        assert!(msg.contains("ghost"), "{msg}");
    }

    #[test]
    fn duplicate_detector_is_caught() {
        let msg = check_err(
            "%start a(x); %atom str x; %detector d(x); %detector d(x); a : x d; d : x;",
        );
        assert!(msg.contains("twice"), "{msg}");
    }
}
