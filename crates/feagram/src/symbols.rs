//! Symbol classification.
//!
//! The node types of the dependency graph (Figure 8) are the basic symbol
//! types of a feature grammar: **atoms** (terminals with an ADT),
//! **variables** and **detectors**. The symbol table records the class of
//! every name appearing in the grammar and the set of declared ADTs.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

/// The class of a grammar symbol.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SymbolClass {
    /// A plain variable (appears as a rule lhs, not declared otherwise).
    Variable,
    /// A detector (bound to an algorithm or predicate).
    Detector,
    /// A terminal with its ADT name.
    Terminal(String),
}

/// The symbol table of one grammar.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SymbolTable {
    classes: BTreeMap<String, SymbolClass>,
    adts: BTreeSet<String>,
}

/// The built-in ADTs every grammar knows.
pub const BUILTIN_ADTS: [&str; 4] = ["str", "int", "flt", "bit"];

impl SymbolTable {
    /// A table with only the built-in ADTs.
    pub fn new() -> Self {
        let mut adts = BTreeSet::new();
        for ty in BUILTIN_ADTS {
            adts.insert(ty.to_owned());
        }
        SymbolTable {
            classes: BTreeMap::new(),
            adts,
        }
    }

    /// Declares a new ADT (e.g. `url`). Returns false if it existed.
    pub fn declare_adt(&mut self, name: &str) -> bool {
        self.adts.insert(name.to_owned())
    }

    /// Whether `name` is a known ADT.
    pub fn is_adt(&self, name: &str) -> bool {
        self.adts.contains(name)
    }

    /// Records `name` as having `class`. Re-declaring with a *different*
    /// class returns the previous class as an error value.
    pub fn declare(&mut self, name: &str, class: SymbolClass) -> Result<(), SymbolClass> {
        match self.classes.get(name) {
            Some(existing) if *existing != class => Err(existing.clone()),
            _ => {
                self.classes.insert(name.to_owned(), class);
                Ok(())
            }
        }
    }

    /// The class of `name`, if declared.
    pub fn class(&self, name: &str) -> Option<&SymbolClass> {
        self.classes.get(name)
    }

    /// Whether `name` is a detector.
    pub fn is_detector(&self, name: &str) -> bool {
        matches!(self.classes.get(name), Some(SymbolClass::Detector))
    }

    /// Whether `name` is a terminal; returns its ADT.
    pub fn terminal_type(&self, name: &str) -> Option<&str> {
        match self.classes.get(name) {
            Some(SymbolClass::Terminal(ty)) => Some(ty),
            _ => None,
        }
    }

    /// Whether `name` is known at all.
    pub fn contains(&self, name: &str) -> bool {
        self.classes.contains_key(name)
    }

    /// All names with their classes, sorted by name.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &SymbolClass)> {
        self.classes.iter().map(|(n, c)| (n.as_str(), c))
    }

    /// All declared ADTs (built-in + user), sorted.
    pub fn adts(&self) -> impl Iterator<Item = &str> {
        self.adts.iter().map(String::as_str)
    }
}

/// Builds the symbol table for a set of declarations and rules (shared
/// by the parser and by [`crate::ast::Grammar::merge`]).
pub(crate) fn build_table(
    detectors: &[crate::ast::DetectorDecl],
    atoms: &[crate::ast::AtomDecl],
    rules: &[crate::ast::Rule],
) -> SymbolTable {
    use crate::ast::{AtomDecl, DetectorKind};
    let mut table = SymbolTable::new();
    for atom in atoms {
        match atom {
            AtomDecl::Type(ty) => {
                table.declare_adt(ty);
            }
            AtomDecl::Terminals { ty, names } => {
                for name in names {
                    // Conflicts surface in validation; last-wins here.
                    let _ = table.declare(name, SymbolClass::Terminal(ty.clone()));
                }
            }
        }
    }
    for det in detectors {
        if !matches!(det.kind, DetectorKind::Special { .. }) {
            let _ = table.declare(&det.name, SymbolClass::Detector);
        }
    }
    for rule in rules {
        if table.class(&rule.lhs).is_none() {
            let _ = table.declare(&rule.lhs, SymbolClass::Variable);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_are_known() {
        let t = SymbolTable::new();
        for ty in BUILTIN_ADTS {
            assert!(t.is_adt(ty));
        }
        assert!(!t.is_adt("url"));
    }

    #[test]
    fn declare_adt_is_idempotent_check() {
        let mut t = SymbolTable::new();
        assert!(t.declare_adt("url"));
        assert!(!t.declare_adt("url"));
        assert!(t.is_adt("url"));
    }

    #[test]
    fn conflicting_class_is_rejected() {
        let mut t = SymbolTable::new();
        t.declare("x", SymbolClass::Variable).unwrap();
        assert_eq!(
            t.declare("x", SymbolClass::Detector),
            Err(SymbolClass::Variable)
        );
        // Same class re-declaration is fine.
        assert!(t.declare("x", SymbolClass::Variable).is_ok());
    }

    #[test]
    fn terminal_type_lookup() {
        let mut t = SymbolTable::new();
        t.declare("frameNo", SymbolClass::Terminal("int".into()))
            .unwrap();
        assert_eq!(t.terminal_type("frameNo"), Some("int"));
        assert_eq!(t.terminal_type("other"), None);
        assert!(!t.is_detector("frameNo"));
    }
}
