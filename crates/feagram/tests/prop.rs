//! Property tests for the grammar language: total (panic-free) lexing
//! and parsing on arbitrary input, evaluator determinism, and
//! merge/validation invariants.

use feagram::expr::EvalContext;
use feagram::{parse_grammar, FeatureValue};
use proptest::prelude::*;

struct EmptyCtx;
impl EvalContext for EmptyCtx {
    fn values(&self, _path: &[String]) -> Vec<FeatureValue> {
        Vec::new()
    }
    fn contexts(&self, _path: &[String]) -> Vec<Box<dyn EvalContext + '_>> {
        Vec::new()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The front end is total: any byte soup yields Ok or Err, never a
    /// panic. (The FDE consumes developer-written grammars, but a search
    /// engine's grammar editor must not crash the system.)
    #[test]
    fn lexer_and_parser_never_panic(input in "\\PC{0,200}") {
        let _ = feagram::lex::tokenize(&input);
        let _ = feagram::parser::parse_grammar_raw(&input);
        let _ = parse_grammar(&input);
    }

    /// Structured fuzz: inputs built from the grammar's own token
    /// vocabulary reach deeper parser paths.
    #[test]
    fn parser_never_panics_on_token_soup(
        tokens in prop::collection::vec(
            prop_oneof![
                Just("%start"), Just("%detector"), Just("%atom"),
                Just("MMO"), Just("location"), Just("header"),
                Just(":"), Just(";"), Just("("), Just(")"),
                Just("["), Just("]"), Just("?"), Just("*"), Just("+"),
                Just("&"), Just("|"), Just("=="), Just("\"lit\""),
                Just("some"), Just("xml-rpc"), Just("::"), Just("."),
                Just("170.0"), Just("str"),
            ],
            0..40,
        )
    ) {
        let input = tokens.join(" ");
        let _ = feagram::parser::parse_grammar_raw(&input);
    }

    /// Quantifier evaluation over an empty context is total and
    /// deterministic.
    #[test]
    fn expression_evaluation_is_deterministic(a in -1000i64..1000, b in -1000i64..1000) {
        use feagram::expr::{BinOp, Expr};
        let e = Expr::Binary(
            BinOp::Le,
            Box::new(Expr::Lit(FeatureValue::Int(a))),
            Box::new(Expr::Lit(FeatureValue::Int(b))),
        );
        let r1 = e.eval_bool(&EmptyCtx).unwrap();
        let r2 = e.eval_bool(&EmptyCtx).unwrap();
        prop_assert_eq!(r1, r2);
        prop_assert_eq!(r1, a <= b);
    }

    /// Merging a valid grammar with itself is idempotent and stays valid.
    #[test]
    fn self_merge_is_idempotent(seed in 0u8..3) {
        let source = match seed {
            0 => feagram::paper::VIDEO_GRAMMAR,
            1 => feagram::paper::INTERNET_GRAMMAR,
            _ => feagram::paper::MEDIA_GRAMMAR,
        };
        let g = parse_grammar(source).unwrap();
        let merged = g.merge(&g).unwrap();
        feagram::validate::check(&merged).unwrap();
        prop_assert_eq!(merged.rules().len(), g.rules().len());
        prop_assert_eq!(merged.detectors().len(), g.detectors().len());
    }
}
