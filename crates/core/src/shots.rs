//! Reading shot structure back out of stored parse trees.
//!
//! The video feature grammar (Figure 7) shapes a video's meta-data as
//! `segment : shot*` with `shot : begin end type`; this module projects a
//! parse tree onto that shape so the query level can return "video
//! shots" — the answer granularity of the Figure 13 query.

use acoi::{PNodeId, ParseTree};
use feagram::FeatureValue;

/// One shot as recorded in the meta-index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShotMeta {
    /// First frame.
    pub begin: i64,
    /// Last frame.
    pub end: i64,
    /// Whether the shot was classified as a tennis (court) shot.
    pub is_tennis: bool,
    /// The netplay event outcome, when the shot is a tennis shot.
    pub netplay: Option<bool>,
}

/// Extracts all shots from a video parse tree.
pub fn video_shots(tree: &ParseTree) -> Vec<ShotMeta> {
    tree.find_all("shot")
        .into_iter()
        .filter_map(|shot| shot_meta(tree, shot))
        .collect()
}

fn shot_meta(tree: &ParseTree, shot: PNodeId) -> Option<ShotMeta> {
    let mut begin = None;
    let mut end = None;
    let mut is_tennis = false;
    let mut netplay = None;
    for child in tree.children(shot) {
        match tree.symbol(*child) {
            "begin" => begin = frame_no(tree, *child),
            "end" => end = frame_no(tree, *child),
            "type" => {
                // `type : "tennis" tennis;` — a tennis subtree marks a
                // court shot; its event carries the netplay bit.
                for tc in tree.children(*child) {
                    if tree.symbol(*tc) == "tennis" {
                        is_tennis = true;
                        for n in tree.preorder(*tc) {
                            if tree.symbol(n) == "netplay" {
                                netplay = tree.value(n).and_then(|v| match v {
                                    FeatureValue::Bit(b) => Some(*b),
                                    _ => None,
                                });
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }
    Some(ShotMeta {
        begin: begin?,
        end: end?,
        is_tennis,
        netplay,
    })
}

fn frame_no(tree: &ParseTree, node: PNodeId) -> Option<i64> {
    tree.children(node).iter().find_map(|c| {
        if tree.symbol(*c) == "frameNo" {
            tree.value(*c).and_then(|v| match v {
                FeatureValue::Int(i) => Some(*i),
                _ => None,
            })
        } else {
            None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use acoi::tree::PNodeKind;

    fn build_tree() -> ParseTree {
        let mut t = ParseTree::new();
        let mmo = t.add(None, "MMO", PNodeKind::Variable);
        let segment = t.add(Some(mmo), "segment", PNodeKind::Detector);
        // Shot 1: tennis with netplay.
        let s1 = t.add(Some(segment), "shot", PNodeKind::Variable);
        add_frame(&mut t, s1, "begin", 0);
        add_frame(&mut t, s1, "end", 59);
        let ty1 = t.add(Some(s1), "type", PNodeKind::Variable);
        let tennis = t.add(Some(ty1), "tennis", PNodeKind::Detector);
        let event = t.add(Some(tennis), "event", PNodeKind::Variable);
        let np = t.add(Some(event), "netplay", PNodeKind::Detector);
        t.set_value(np, FeatureValue::Bit(true));
        // Shot 2: other.
        let s2 = t.add(Some(segment), "shot", PNodeKind::Variable);
        add_frame(&mut t, s2, "begin", 60);
        add_frame(&mut t, s2, "end", 89);
        let ty2 = t.add(Some(s2), "type", PNodeKind::Variable);
        let lit = t.add(Some(ty2), "literal", PNodeKind::Literal);
        t.set_value(lit, FeatureValue::from("other"));
        t
    }

    fn add_frame(t: &mut ParseTree, parent: PNodeId, tag: &str, v: i64) {
        let n = t.add(Some(parent), tag, PNodeKind::Variable);
        let f = t.add(Some(n), "frameNo", PNodeKind::Terminal);
        t.set_value(f, FeatureValue::Int(v));
    }

    #[test]
    fn shots_are_extracted_with_classification() {
        let shots = video_shots(&build_tree());
        assert_eq!(
            shots,
            vec![
                ShotMeta {
                    begin: 0,
                    end: 59,
                    is_tennis: true,
                    netplay: Some(true)
                },
                ShotMeta {
                    begin: 60,
                    end: 89,
                    is_tennis: false,
                    netplay: None
                },
            ]
        );
    }

    #[test]
    fn empty_tree_has_no_shots() {
        assert!(video_shots(&ParseTree::new()).is_empty());
    }
}
