//! `dlsearch` — Flexible and Scalable Digital Library Search.
//!
//! The integrated search engine of Windhouwer, Schmidt, van Zwol,
//! Petkovic & Blok (CWI INS-R0111 / VLDB 2001): three levels, one
//! system.
//!
//! * **Conceptual** — a webspace schema describes the domain; documents
//!   are materialized views; queries select and join *concepts* (the
//!   [`webspace`] crate).
//! * **Logical** — feature grammars bind multimedia analysis detectors
//!   into a grammar; the Feature Detector Engine populates the
//!   meta-index; the Feature Detector Scheduler maintains it
//!   incrementally (the [`feagram`] and [`acoi`] crates, with the video
//!   pipeline in [`cobra`]).
//! * **Physical** — everything lands in path-centric binary relations
//!   (Monet XML, the [`monetxml`] and [`monet`] crates), with ranked
//!   full-text retrieval, idf fragmentation and per-document
//!   distribution in [`ir`].
//!
//! This crate is the public face: the [`Engine`] drives the lifecycle —
//! **model** ([`ausopen`] configures the running example), **populate /
//! maintain** ([`Engine::populate`], [`Engine::upgrade_detector`]) and
//! **query** ([`Engine::query`], with the small textual query language
//! in [`qlang`]).
//!
//! # The paper's flagship query
//!
//! ```no_run
//! use dlsearch::{ausopen, qlang, Engine};
//! use websim::{Site, SiteSpec};
//!
//! let site = std::sync::Arc::new(Site::generate(SiteSpec::default()));
//! let mut engine = ausopen::engine(std::sync::Arc::clone(&site)).unwrap();
//! engine.populate(&websim::crawl(&site)).unwrap();
//!
//! // "Show me video shots of left-handed female players, who have won
//! //  the Australian Open in the past, and in which they approach the
//! //  net."  (Figure 13)
//! let query = qlang::parse(r#"
//!     FROM Player
//!     WHERE gender = "female" AND hand = "left"
//!     TEXT history CONTAINS "Winner"
//!     VIA Is_covered_in
//!     MEDIA video HAS netplay
//!     TOP 10
//! "#).unwrap();
//! for hit in engine.query(&query).unwrap() {
//!     println!("{:?} shots {:?}", hit.chain, hit.shots);
//! }
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod ausopen;
pub mod control;
pub mod engine;
pub mod error;
pub mod maintenance;
pub mod persist;
pub mod qlang;
pub mod query;
pub mod shots;
pub mod telemetry;

pub use admission::{
    AdmissionConfig, AdmissionGate, LevelTransition, OverloadLevel, OverloadStatus, Permit,
    Priority, QueryOutcome, QueryService,
};
pub use control::{ControlOutcome, ControlPlane};
pub use engine::{
    Engine, EngineConfig, PopulateOptions, PopulateReport, QueryTrace, StageTimings,
    TextQueryStatus,
};
pub use error::{Error, PartialProgress, Result};
pub use maintenance::{MaintenanceJob, MaintenanceKind};
pub use persist::RecoveryReport;
pub use query::{EngineHit, EngineQuery, MediaPredicate, TextPredicate};
pub use shots::{video_shots, ShotMeta};
pub use telemetry::{standard_slos, Telemetry, TelemetryConfig, TelemetryTick};
