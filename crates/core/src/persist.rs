//! Durable engine state: the checkpoint manifest and crash recovery.
//!
//! The engine persists as a set of per-store snapshot files plus a tiny
//! `MANIFEST` naming one consistent generation of them:
//!
//! ```text
//! <dir>/views-<id>.snap       the materialized-view store
//! <dir>/meta-<id>.snap        the meta-index (parse-tree) store
//! <dir>/text-<id>-<k>.snap    one per text server (shard order)
//! <dir>/MANIFEST              commit point of generation <id>
//! <dir>/MANIFEST.prev         the previous generation (fallback)
//! <dir>/wal/wal-*.wal         the write-ahead log segments
//! ```
//!
//! The manifest is the *commit point*: snapshots are written first
//! (each atomically, temp + rename), then the manifest is atomically
//! swapped in. A crash anywhere in between leaves the old manifest
//! naming the old — still complete — generation. Recovery
//! ([`Engine::open`](crate::Engine::open)) loads the newest generation
//! whose manifest **and** every referenced snapshot verify their
//! CRC-32s, falls back to `MANIFEST.prev` otherwise, then replays the
//! WAL tail from the manifest's watermark, skipping torn final records.
//!
//! Manifest layout (CRC-trailered like every durable artefact):
//!
//! ```text
//! magic "DLMF" | version u8 | snapshot id u64 | WAL watermark u64
//! views epoch u64 | meta epoch u64 | text replicas u32
//! text server count u32 | per server: epoch u64
//! route slot count u16 | per slot: server u16
//! crc32 of everything above: u32 LE
//! ```
//!
//! The store epochs ride in the manifest so a reopened engine resumes
//! its epoch counters monotonically instead of silently restarting at
//! zero — an epoch value observed before a restart can never validate
//! stale derived state afterwards. Since version 2 the manifest also
//! pins the text tier's replication factor and slot→server routing
//! layout: recovery cross-checks them against what the shard snapshots
//! decode to, so a checkpoint can never silently come back with a
//! different document placement than it was written with.

use std::path::{Path, PathBuf};

use monet::crc::crc32;
use monet::storage::StorageBackend;

use crate::error::{Error, Result};

/// WAL store tag of the materialized-view store.
pub const STORE_VIEWS: u8 = 0;
/// WAL store tag of the meta-index store.
pub const STORE_META: u8 = 1;
/// WAL store tag of the text index (all servers share it).
pub const STORE_TEXT: u8 = 2;

const MANIFEST_MAGIC: &[u8; 4] = b"DLMF";
const MANIFEST_VERSION: u8 = 2;

/// Current manifest file name.
pub const MANIFEST: &str = "MANIFEST";
/// Previous-generation manifest (the corruption fallback).
pub const MANIFEST_PREV: &str = "MANIFEST.prev";
/// WAL directory name inside the persistence dir.
pub const WAL_DIR: &str = "wal";

/// One consistent checkpoint generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Monotone generation counter; names the snapshot files.
    pub snapshot_id: u64,
    /// First WAL LSN *not* covered by the snapshots: replay starts here.
    pub watermark: u64,
    /// View-store epoch at snapshot time.
    pub views_epoch: u64,
    /// Meta-store epoch at snapshot time.
    pub meta_epoch: u64,
    /// Per-text-server epochs at snapshot time (shard order; the length
    /// is the shard count the snapshots were written with).
    pub shard_epochs: Vec<u64>,
    /// Replication factor of the text tier at snapshot time.
    pub text_replicas: u32,
    /// Slot→server routing layout at snapshot time (length
    /// [`ir::ROUTE_SLOTS`] in practice; recovery cross-checks it
    /// against what the shard snapshots decode to).
    pub text_layout: Vec<u16>,
}

impl Manifest {
    /// Serialises the manifest with its CRC trailer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(MANIFEST_MAGIC);
        out.push(MANIFEST_VERSION);
        out.extend_from_slice(&self.snapshot_id.to_le_bytes());
        out.extend_from_slice(&self.watermark.to_le_bytes());
        out.extend_from_slice(&self.views_epoch.to_le_bytes());
        out.extend_from_slice(&self.meta_epoch.to_le_bytes());
        out.extend_from_slice(&self.text_replicas.to_le_bytes());
        out.extend_from_slice(&(self.shard_epochs.len() as u32).to_le_bytes());
        for e in &self.shard_epochs {
            out.extend_from_slice(&e.to_le_bytes());
        }
        out.extend_from_slice(&(self.text_layout.len() as u16).to_le_bytes());
        for s in &self.text_layout {
            out.extend_from_slice(&s.to_le_bytes());
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes and CRC-verifies a manifest.
    pub fn decode(bytes: &[u8]) -> Result<Manifest> {
        if bytes.len() < 4 + 1 + 8 * 4 + 4 + 4 + 2 + 4 {
            return Err(Error::Recovery("manifest truncated".into()));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(trailer.try_into().expect("4 bytes"));
        if stored != crc32(body) {
            return Err(Error::Recovery("manifest checksum mismatch".into()));
        }
        if &body[..4] != MANIFEST_MAGIC {
            return Err(Error::Recovery("bad manifest magic".into()));
        }
        if body[4] != MANIFEST_VERSION {
            return Err(Error::Recovery(format!("unsupported manifest version {}", body[4])));
        }
        let u64_at = |off: usize| u64::from_le_bytes(body[off..off + 8].try_into().expect("8 bytes"));
        let snapshot_id = u64_at(5);
        let watermark = u64_at(13);
        let views_epoch = u64_at(21);
        let meta_epoch = u64_at(29);
        let text_replicas = u32::from_le_bytes(body[37..41].try_into().expect("4 bytes"));
        let nshards = u32::from_le_bytes(body[41..45].try_into().expect("4 bytes")) as usize;
        if body.len() < 45 + nshards * 8 + 2 {
            return Err(Error::Recovery(format!("manifest lists {nshards} servers but is truncated")));
        }
        let shard_epochs = (0..nshards).map(|i| u64_at(45 + i * 8)).collect();
        let slots_at = 45 + nshards * 8;
        let nslots =
            u16::from_le_bytes(body[slots_at..slots_at + 2].try_into().expect("2 bytes")) as usize;
        if body.len() < slots_at + 2 + nslots * 2 {
            return Err(Error::Recovery(format!("manifest lists {nslots} route slots but is truncated")));
        }
        let text_layout = (0..nslots)
            .map(|i| {
                let off = slots_at + 2 + i * 2;
                u16::from_le_bytes(body[off..off + 2].try_into().expect("2 bytes"))
            })
            .collect();
        Ok(Manifest {
            snapshot_id,
            watermark,
            views_epoch,
            meta_epoch,
            shard_epochs,
            text_replicas,
            text_layout,
        })
    }
}

/// Snapshot file names of generation `id`.
pub fn views_snap(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("views-{id:08}.snap"))
}
/// Meta-store snapshot of generation `id`.
pub fn meta_snap(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("meta-{id:08}.snap"))
}
/// Text-server `k` snapshot of generation `id`.
pub fn text_snap(dir: &Path, id: u64, k: usize) -> PathBuf {
    dir.join(format!("text-{id:08}-{k}.snap"))
}

/// What recovery found and did — the typed report the crash harness
/// asserts on instead of a panic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Generation that was loaded (0 = no checkpoint existed; the
    /// engine started empty and only the WAL was replayed).
    pub snapshot_id: u64,
    /// Whether the newest manifest (or one of its snapshots) was
    /// invalid and recovery fell back to the previous generation.
    pub fell_back: bool,
    /// WAL records applied during replay.
    pub wal_replayed: usize,
    /// WAL records skipped because their effect was already present in
    /// the snapshot (replay is idempotent) or they no longer apply.
    pub wal_skipped: usize,
    /// Human-readable notes: what was corrupt, what was skipped, why.
    pub notes: Vec<String>,
}

/// One loaded checkpoint generation: the restored stores.
pub struct LoadedGeneration {
    /// The manifest that named this generation.
    pub manifest: Manifest,
    /// The restored view store.
    pub views: monetxml::XmlStore,
    /// The restored meta-index store.
    pub meta_store: monetxml::XmlStore,
    /// The restored text index (shard count from the snapshot list).
    pub text: ir::DistributedIndex,
}

/// Attempts to load the generation named by one manifest file. Any
/// checksum or decode failure anywhere in the generation fails the
/// whole attempt — a generation is valid only as a unit.
fn try_load_generation(
    backend: &dyn StorageBackend,
    dir: &Path,
    manifest_name: &str,
) -> Result<LoadedGeneration> {
    let manifest_bytes = backend
        .read(&dir.join(manifest_name))
        .map_err(|e| Error::Recovery(format!("{manifest_name}: {e}")))?;
    let manifest = Manifest::decode(&manifest_bytes)?;
    let id = manifest.snapshot_id;
    // Lazy per-relation opens: the CRC-32 trailer and snapshot directory
    // are still validated here (a corrupt file fails the generation),
    // but relation payloads decode on first touch, so recovery cost
    // scales with what the rebuild actually reads, not snapshot size.
    let views = monetxml::XmlStore::restore_lazy(backend.read(&views_snap(dir, id))?)
        .map_err(|e| Error::Recovery(format!("views snapshot {id}: {e}")))?;
    let meta_store = monetxml::XmlStore::restore_lazy(backend.read(&meta_snap(dir, id))?)
        .map_err(|e| Error::Recovery(format!("meta snapshot {id}: {e}")))?;
    let mut shard_bytes = Vec::with_capacity(manifest.shard_epochs.len());
    for k in 0..manifest.shard_epochs.len() {
        shard_bytes.push(backend.read(&text_snap(dir, id, k))?);
    }
    let text = ir::DistributedIndex::restore_shards(&shard_bytes)
        .map_err(|e| Error::Recovery(format!("text snapshot {id}: {e}")))?;
    if text.layout() != &manifest.text_layout[..] {
        return Err(Error::Recovery(format!(
            "text snapshot {id}: routing layout disagrees with the manifest"
        )));
    }
    if text.replication() != manifest.text_replicas as usize {
        return Err(Error::Recovery(format!(
            "text snapshot {id}: replication {} disagrees with the manifest's {}",
            text.replication(),
            manifest.text_replicas
        )));
    }
    Ok(LoadedGeneration {
        manifest,
        views,
        meta_store,
        text,
    })
}

/// Loads the newest fully-valid checkpoint generation: the current
/// manifest first, the previous one if the current generation is
/// corrupt or torn. `Ok(None)` means no manifest exists at all (a
/// fresh directory — the engine starts empty and replays any WAL).
pub fn load_newest_generation(
    backend: &dyn StorageBackend,
    dir: &Path,
    report: &mut RecoveryReport,
) -> Result<Option<LoadedGeneration>> {
    let current_exists = backend.exists(&dir.join(MANIFEST));
    let prev_exists = backend.exists(&dir.join(MANIFEST_PREV));
    if !current_exists && !prev_exists {
        return Ok(None);
    }
    if current_exists {
        match try_load_generation(backend, dir, MANIFEST) {
            Ok(generation) => {
                report.snapshot_id = generation.manifest.snapshot_id;
                return Ok(Some(generation));
            }
            Err(e) => {
                report
                    .notes
                    .push(format!("newest generation invalid ({e}); trying previous"));
            }
        }
    } else {
        report
            .notes
            .push("MANIFEST missing (crash between manifest renames); trying previous".into());
    }
    match try_load_generation(backend, dir, MANIFEST_PREV) {
        Ok(generation) => {
            report.snapshot_id = generation.manifest.snapshot_id;
            report.fell_back = true;
            Ok(Some(generation))
        }
        Err(e) => Err(Error::Recovery(format!(
            "no valid checkpoint generation: {} / {e}",
            report
                .notes
                .last()
                .cloned()
                .unwrap_or_else(|| "newest unavailable".into())
        ))),
    }
}

/// Applies replayed WAL records to the restored stores. Idempotent by
/// construction: an insert whose source/url is already present and a
/// delete whose target is already gone are skipped, so replaying a
/// prefix twice leaves the same state as replaying it once.
pub fn apply_wal_records(
    views: &mut monetxml::XmlStore,
    meta_store: &mut monetxml::XmlStore,
    text: &mut ir::DistributedIndex,
    records: &[monet::wal::WalRecord],
    report: &mut RecoveryReport,
) -> Result<()> {
    let mut text_touched = false;
    for record in records {
        let (store, op, fields) = match monet::wal::decode_payload(&record.payload) {
            Ok(parts) => parts,
            Err(e) => {
                report
                    .notes
                    .push(format!("lsn {}: undecodable record ({e}); skipped", record.lsn));
                report.wal_skipped += 1;
                continue;
            }
        };
        let field_str = |i: usize| -> std::result::Result<&str, std::str::Utf8Error> {
            std::str::from_utf8(&fields[i])
        };
        let applied = match (store, op) {
            (STORE_VIEWS | STORE_META, monetxml::store::WAL_OP_INSERT) if fields.len() == 2 => {
                let (source, xml) = match (field_str(0), field_str(1)) {
                    (Ok(s), Ok(x)) => (s, x),
                    _ => {
                        report
                            .notes
                            .push(format!("lsn {}: non-utf8 insert fields; skipped", record.lsn));
                        report.wal_skipped += 1;
                        continue;
                    }
                };
                let target = if store == STORE_VIEWS { &mut *views } else { &mut *meta_store };
                if target.root_for_source(source).is_some() {
                    false // already in the snapshot: idempotent skip
                } else {
                    match target.bulkload_str(source, xml) {
                        Ok(_) => true,
                        Err(e) => {
                            report
                                .notes
                                .push(format!("lsn {}: insert of {source} failed ({e}); skipped", record.lsn));
                            false
                        }
                    }
                }
            }
            (STORE_VIEWS | STORE_META, monetxml::store::WAL_OP_DELETE) if fields.len() == 1 => {
                let source = field_str(0).unwrap_or_default();
                let target = if store == STORE_VIEWS { &mut *views } else { &mut *meta_store };
                match target.root_for_source(source) {
                    Some(root) => {
                        target.delete_document(root)?;
                        true
                    }
                    None => false, // already gone: idempotent skip
                }
            }
            (STORE_TEXT, ir::index::WAL_OP_INDEX) if fields.len() == 2 => {
                let (url, body) = match (field_str(0), field_str(1)) {
                    (Ok(u), Ok(b)) => (u, b),
                    _ => {
                        report
                            .notes
                            .push(format!("lsn {}: non-utf8 text fields; skipped", record.lsn));
                        report.wal_skipped += 1;
                        continue;
                    }
                };
                if text.contains_url(url) {
                    false
                } else {
                    text.index_document(url, body).map_err(Error::Ir)?;
                    text_touched = true;
                    true
                }
            }
            (STORE_TEXT, ir::distrib::WAL_OP_LAYOUT) if fields.len() == 1 => {
                match decode_layout_record(&fields[0]) {
                    Some((shards, layout)) => {
                        if text.servers() == shards && text.layout() == &layout[..] {
                            false // snapshot already past this cutover
                        } else {
                            match text.apply_layout(shards, &layout) {
                                Ok(_) => {
                                    text_touched = true;
                                    true
                                }
                                Err(e) => {
                                    report.notes.push(format!(
                                        "lsn {}: layout cutover failed ({e}); skipped",
                                        record.lsn
                                    ));
                                    false
                                }
                            }
                        }
                    }
                    None => {
                        report.notes.push(format!(
                            "lsn {}: malformed layout record; skipped",
                            record.lsn
                        ));
                        false
                    }
                }
            }
            (STORE_TEXT, ir::distrib::WAL_OP_CONTROL) => {
                // Control-plane audit record (re-replication placement).
                // Placement is derived state, rebuilt from the shard
                // snapshots and document routing on restore — the
                // record documents the decision, it does not replay.
                report.notes.push(format!(
                    "lsn {}: control-plane audit record; noted, not replayed",
                    record.lsn
                ));
                false
            }
            _ => {
                report.notes.push(format!(
                    "lsn {}: unknown record (store {store}, op {op}); skipped",
                    record.lsn
                ));
                false
            }
        };
        if applied {
            report.wal_replayed += 1;
        } else {
            report.wal_skipped += 1;
        }
    }
    if text_touched {
        text.commit().map_err(Error::Ir)?;
    }
    Ok(())
}

/// Decodes a [`ir::distrib::WAL_OP_LAYOUT`] record:
/// `shards u32 | nslots u16 | per slot: server u16`.
fn decode_layout_record(bytes: &[u8]) -> Option<(usize, Vec<u16>)> {
    if bytes.len() < 6 {
        return None;
    }
    let shards = u32::from_le_bytes(bytes[0..4].try_into().ok()?) as usize;
    let nslots = u16::from_le_bytes(bytes[4..6].try_into().ok()?) as usize;
    if bytes.len() != 6 + nslots * 2 {
        return None;
    }
    let layout = (0..nslots)
        .map(|i| u16::from_le_bytes([bytes[6 + i * 2], bytes[7 + i * 2]]))
        .collect();
    Some((shards, layout))
}

/// Deletes snapshot files of generations older than `keep_from` —
/// everything the current and previous manifests can still reference
/// stays. Best-effort: a failed removal is reported, not fatal.
pub fn gc_old_snapshots(
    backend: &dyn StorageBackend,
    dir: &Path,
    keep_from: u64,
) -> Vec<String> {
    let mut notes = Vec::new();
    let Ok(names) = backend.list(dir) else {
        return notes;
    };
    for name in names {
        let Some(id) = snapshot_file_generation(&name) else {
            continue;
        };
        if id < keep_from {
            if let Err(e) = backend.remove(&dir.join(&name)) {
                notes.push(format!("gc of {name} failed: {e}"));
            }
        }
    }
    notes
}

/// The generation id a snapshot file name encodes, if it is one.
fn snapshot_file_generation(name: &str) -> Option<u64> {
    let rest = name
        .strip_prefix("views-")
        .or_else(|| name.strip_prefix("meta-"))
        .or_else(|| name.strip_prefix("text-"))?;
    let rest = rest.strip_suffix(".snap")?;
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trips() {
        let m = Manifest {
            snapshot_id: 7,
            watermark: 1234,
            views_epoch: 42,
            meta_epoch: 9,
            shard_epochs: vec![3, 0, 11],
            text_replicas: 2,
            text_layout: (0..ir::ROUTE_SLOTS).map(|s| (s % 3) as u16).collect(),
        };
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn manifest_corruption_is_detected() {
        let m = Manifest {
            snapshot_id: 1,
            watermark: 0,
            views_epoch: 0,
            meta_epoch: 0,
            shard_epochs: vec![5],
            text_replicas: 0,
            text_layout: vec![0; ir::ROUTE_SLOTS],
        };
        let bytes = m.encode();
        for i in 0..bytes.len() {
            let mut copy = bytes.clone();
            copy[i] ^= 0x10;
            assert!(
                matches!(Manifest::decode(&copy), Err(Error::Recovery(_))),
                "byte {i} undetected"
            );
        }
        assert!(Manifest::decode(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn snapshot_file_names_parse_back() {
        let dir = Path::new("/x");
        assert_eq!(
            snapshot_file_generation(views_snap(dir, 3).file_name().unwrap().to_str().unwrap()),
            Some(3)
        );
        assert_eq!(
            snapshot_file_generation(text_snap(dir, 12, 4).file_name().unwrap().to_str().unwrap()),
            Some(12)
        );
        assert_eq!(snapshot_file_generation("MANIFEST"), None);
        assert_eq!(snapshot_file_generation("wal-00.wal"), None);
    }
}
