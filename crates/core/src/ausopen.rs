//! The running example, fully wired: the Australian Open search engine.
//!
//! This module is the paper's "developer" role made concrete — it models
//! the three levels for the tennis domain:
//!
//! * the **webspace schema** of Figure 3
//!   ([`webspace::paper::ausopen_schema`]),
//! * the **re-engineering template rules** mapping the site's
//!   presentation markup back to concepts (the "special purpose feature
//!   grammar" for the HTML),
//! * the **media feature grammar** — Figures 6–7 plus the audio branch
//!   ([`feagram::paper::MEDIA_GRAMMAR`]),
//! * the **detector implementations** binding the grammar to the COBRA
//!   pipelines: `header` reads MIME types off the (simulated) server,
//!   `segment` runs shot segmentation + classification, `tennis` runs
//!   player tracking and shape-feature extraction, `interview` runs the
//!   audio segmentation and speaker-turn analysis. The `netplay` and
//!   `isInterview` whiteboxes need no implementation — their predicates
//!   live in the grammar.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use acoi::{DetectorRegistry, Token, Version};
use cobra::audio::{count_turns, segment_audio, speech_ratio};
use cobra::{classify_video, track_player, ShotClass, Video};
use websim::Site;
use webspace::{MediaType, Retriever, TemplateRule};
use webspace::retriever::{AttrKind, AttrRule, LinkRule, Selector};

use crate::engine::{Engine, EngineConfig};
use crate::error::Result;

/// The [`EngineConfig`] behind [`engine`], exposed on its own so a
/// durable engine can be reopened against the same model
/// ([`Engine::open`] consumes a config per call).
pub fn config(site: Arc<Site>) -> EngineConfig {
    EngineConfig {
        schema: webspace::paper::ausopen_schema(),
        retriever: retriever(),
        grammar_source: feagram::paper::MEDIA_GRAMMAR.to_owned(),
        registry: detectors(site),
        text_servers: 1,
        text_replicas: 0,
        faults: None,
        text_read_scaling: false,
    }
}

/// Builds the complete Australian Open engine over a (simulated) site.
pub fn engine(site: Arc<Site>) -> Result<Engine> {
    Engine::new(config(site))
}

/// Builds the engine as deployed against an unreliable world: the media
/// detectors run out of process behind the XML-RPC wire (with the fault
/// plan injecting at `rpc:<name>`), every remote call is supervised
/// (deadline, retries, circuit breaker), and full text is spread over
/// `text_servers` shared-nothing servers (the plan injecting at
/// `shard:<i>`). With a zero-fault plan the answers are identical to
/// [`engine`]'s.
pub fn resilient_engine(
    site: Arc<Site>,
    text_servers: usize,
    plan: Arc<faults::FaultPlan>,
) -> Result<Engine> {
    Engine::new(EngineConfig {
        schema: webspace::paper::ausopen_schema(),
        retriever: retriever(),
        grammar_source: feagram::paper::MEDIA_GRAMMAR.to_owned(),
        registry: supervised_detectors(site, Arc::clone(&plan)),
        text_servers,
        text_replicas: 0,
        faults: Some(plan),
        text_read_scaling: false,
    })
}

/// The template rules for the Australian Open site's page layouts.
pub fn retriever() -> Retriever {
    Retriever::new("AustralianOpen")
        .rule(TemplateRule {
            class: "Player".into(),
            page_class: "bio-page".into(),
            id_prefix: "player:".into(),
            attrs: vec![
                AttrRule {
                    attr: "name".into(),
                    selector: Selector::text("h1", "player-name"),
                    kind: AttrKind::Text,
                },
                AttrRule {
                    attr: "gender".into(),
                    selector: Selector::text("td", "gender"),
                    kind: AttrKind::Text,
                },
                AttrRule {
                    attr: "country".into(),
                    selector: Selector::text("td", "country"),
                    kind: AttrKind::Text,
                },
                AttrRule {
                    attr: "hand".into(),
                    selector: Selector::text("td", "hand"),
                    kind: AttrKind::Text,
                },
                AttrRule {
                    attr: "picture".into(),
                    selector: Selector::attr("img", "portrait", "src"),
                    kind: AttrKind::Media(MediaType::Image),
                },
                AttrRule {
                    attr: "history".into(),
                    selector: Selector::text("div", "history"),
                    kind: AttrKind::Text,
                },
            ],
            links: vec![LinkRule {
                association: "Is_covered_in".into(),
                selector: Selector::attr("a", "profile-link", "href"),
            }],
        })
        .rule(TemplateRule {
            class: "Profile".into(),
            page_class: "profile-page".into(),
            id_prefix: "profile:".into(),
            attrs: vec![
                AttrRule {
                    attr: "video".into(),
                    selector: Selector::attr("a", "match-video", "href"),
                    kind: AttrKind::Media(MediaType::Video),
                },
                AttrRule {
                    attr: "interview".into(),
                    selector: Selector::attr("a", "interview-audio", "href"),
                    kind: AttrKind::Media(MediaType::Audio),
                },
            ],
            links: vec![],
        })
        .rule(TemplateRule {
            class: "Article".into(),
            page_class: "article-page".into(),
            id_prefix: "article:".into(),
            attrs: vec![
                AttrRule {
                    attr: "title".into(),
                    selector: Selector::text("h1", "headline"),
                    kind: AttrKind::Text,
                },
                AttrRule {
                    attr: "body".into(),
                    selector: Selector::text("div", "story"),
                    kind: AttrKind::Text,
                },
            ],
            links: vec![LinkRule {
                association: "About".into(),
                selector: Selector::attr("a", "about-player", "href"),
            }],
        })
}

/// Registers the three blackbox detectors of the video grammar against
/// the simulated site. Analysed videos are cached so `segment` and
/// `tennis` share one decoded copy per location.
pub fn detectors(site: Arc<Site>) -> DetectorRegistry {
    let mut registry = DetectorRegistry::new();
    for (name, f) in detector_impls(site) {
        registry.register(name, Version::new(1, 0, 0), f);
    }
    registry
}

/// The detector registry as deployed against an unreliable world: the
/// media detectors (`segment`, `tennis`, `interview`) run behind the
/// XML-RPC wire on a server that consults `plan` (labels `rpc:<name>`),
/// and every remote call is supervised — per-call deadline, bounded
/// retries with backoff, circuit breaker. `header` (cheap, local MIME
/// sniffing) stays linked. With a zero-fault plan this registry answers
/// exactly like [`detectors`].
pub fn supervised_detectors(site: Arc<Site>, plan: Arc<faults::FaultPlan>) -> DetectorRegistry {
    let supervisor = acoi::Supervisor::new(acoi::SupervisorConfig::default());
    let mut registry = DetectorRegistry::new();
    let mut server = acoi::RpcServer::new().with_fault_plan(plan);
    for (name, f) in detector_impls(site) {
        if name == "header" {
            registry.register(name, Version::new(1, 0, 0), f);
        } else {
            server.handle(name, f);
        }
    }
    let client = acoi::external::spawn_server(server);
    for name in ["segment", "tennis", "interview"] {
        registry.register(
            name,
            Version::new(1, 0, 0),
            supervisor.wrap(name, client.as_detector(name)),
        );
    }
    registry
}

/// Builds an engine whose media detectors fail deterministically per
/// *document*: outages are drawn with
/// [`faults::FaultPlan::decide_keyed`] on the media location, so the
/// same documents degrade no matter how populate schedules the
/// analyses — the fixture for exercising degraded ingestion under the
/// parallel pipeline. Text serving stays fault-free (and cacheable).
pub fn flaky_engine(site: Arc<Site>, plan: Arc<faults::FaultPlan>) -> Result<Engine> {
    Engine::new(EngineConfig {
        schema: webspace::paper::ausopen_schema(),
        retriever: retriever(),
        grammar_source: feagram::paper::MEDIA_GRAMMAR.to_owned(),
        registry: flaky_detectors(site, plan),
        text_servers: 1,
        text_replicas: 0,
        faults: None,
        text_read_scaling: false,
    })
}

/// The detector registry with per-document keyed fault injection: the
/// media detectors (`segment`, `tennis`, `interview`) consult
/// `plan.decide_keyed("det:<name>", <location>)` before running, and
/// any injected action surfaces as [`acoi::DetectorError::Unavailable`]
/// — the failure mode that leaves rejected-with-cause holes in the
/// parse tree instead of aborting it. `header` stays reliable. The
/// keyed draw is a pure function of (seed, detector, location), so two
/// populate runs — whatever their worker counts or scheduling — fail
/// on exactly the same documents.
pub fn flaky_detectors(site: Arc<Site>, plan: Arc<faults::FaultPlan>) -> DetectorRegistry {
    let mut registry = DetectorRegistry::new();
    for (name, f) in detector_impls(site) {
        if name == "header" {
            registry.register(name, Version::new(1, 0, 0), f);
            continue;
        }
        let plan = Arc::clone(&plan);
        let label = format!("det:{name}");
        let flaky: acoi::DetectorFn = Box::new(move |inputs| {
            let key = inputs
                .first()
                .and_then(|v| v.as_str())
                .unwrap_or_default()
                .to_owned();
            if plan.decide_keyed(&label, &key) != faults::FaultAction::None {
                return Err(acoi::DetectorError::Unavailable(format!(
                    "{label}: injected outage for {key}"
                )));
            }
            f(inputs)
        });
        registry.register(name, Version::new(1, 0, 0), flaky);
    }
    registry
}

/// The four detector implementations, shared by the linked and the
/// remote/supervised wirings.
fn detector_impls(site: Arc<Site>) -> Vec<(&'static str, acoi::DetectorFn)> {
    type Cache = Arc<Mutex<HashMap<String, Arc<AnalyzedVideo>>>>;

    struct AnalyzedVideo {
        video: Video,
        classified: Vec<(cobra::Shot, ShotClass)>,
    }

    fn analysed(site: &Site, cache: &Cache, url: &str) -> std::result::Result<Arc<AnalyzedVideo>, String> {
        if let Some(v) = cache.lock().expect("cache lock").get(url) {
            return Ok(Arc::clone(v));
        }
        let spec = site
            .video(url)
            .ok_or_else(|| format!("404: no video at {url}"))?;
        let video = spec.generate();
        let classified = classify_video(&video);
        let entry = Arc::new(AnalyzedVideo { video, classified });
        cache
            .lock()
            .expect("cache lock")
            .insert(url.to_owned(), Arc::clone(&entry));
        Ok(entry)
    }

    let cache: Cache = Arc::new(Mutex::new(HashMap::new()));
    let mut impls: Vec<(&'static str, acoi::DetectorFn)> = Vec::new();

    // header: MIME sniffing over the simulated HTTP server.
    {
        let site = Arc::clone(&site);
        impls.push((
            "header",
            Box::new(move |inputs| {
                let url = inputs[0].as_str().ok_or("header: no location")?;
                let (primary, secondary) = site.mime(url);
                Ok(vec![
                    Token::new("primary", primary),
                    Token::new("secondary", secondary),
                ])
            }),
        ));
    }

    // segment: shot segmentation + classification (one combined
    // algorithm, as in the paper).
    {
        let site = Arc::clone(&site);
        let cache = Arc::clone(&cache);
        impls.push((
            "segment",
            Box::new(move |inputs| {
                let url = inputs[0].as_str().ok_or("segment: no location")?;
                let analysed = analysed(&site, &cache, url)?;
                let mut tokens = Vec::new();
                for (shot, class) in &analysed.classified {
                    tokens.push(Token::new("frameNo", shot.begin as i64));
                    tokens.push(Token::new("frameNo", shot.end as i64));
                    tokens.push(Token::new(
                        "type",
                        // The grammar's `type` alternatives are
                        // "tennis" and "other" (Figure 7); close-ups and
                        // audience shots take the "other" branch.
                        if *class == ShotClass::Tennis {
                            "tennis"
                        } else {
                            "other"
                        },
                    ));
                }
                Ok(tokens)
            }),
        ));
    }

    // tennis: player segmentation, tracking and shape features for one
    // court shot.
    {
        let site = Arc::clone(&site);
        let cache = Arc::clone(&cache);
        impls.push((
            "tennis",
            Box::new(move |inputs| {
                let url = inputs[0].as_str().ok_or("tennis: no location")?;
                let begin = inputs[1].as_f64().ok_or("tennis: no begin")? as usize;
                let end = inputs[2].as_f64().ok_or("tennis: no end")? as usize;
                let analysed = analysed(&site, &cache, url)?;
                let shot = cobra::Shot {
                    begin,
                    end,
                    dominant: 0,
                    skin: 0.0,
                    entropy: 0.0,
                    variance: 0.0,
                };
                let mut tokens = Vec::new();
                for obs in track_player(&analysed.video, &shot) {
                    tokens.push(Token::new("frameNo", obs.frame as i64));
                    tokens.push(Token::new("xPos", obs.x));
                    tokens.push(Token::new("yPos", obs.y));
                    tokens.push(Token::new("Area", obs.area.round() as i64));
                    tokens.push(Token::new("Ecc", obs.eccentricity));
                    tokens.push(Token::new("Orient", obs.orientation));
                }
                Ok(tokens)
            }),
        ));
    }

    // interview: audio segmentation + speaker-turn analysis.
    {
        let site = Arc::clone(&site);
        impls.push((
            "interview",
            Box::new(move |inputs| {
                let url = inputs[0].as_str().ok_or("interview: no location")?;
                let clip = site
                    .audio(url)
                    .ok_or_else(|| format!("404: no audio at {url}"))?;
                let segments = segment_audio(clip);
                Ok(vec![
                    Token::new("speechRatio", speech_ratio(&segments)),
                    Token::new("turnCount", count_turns(clip, &segments, 20.0) as i64),
                ])
            }),
        ));
    }

    impls
}

#[cfg(test)]
mod tests {
    use super::*;
    use websim::SiteSpec;

    #[test]
    fn engine_builds_from_the_paper_artifacts() {
        let site = Arc::new(Site::generate(SiteSpec::default()));
        let engine = engine(site).unwrap();
        assert_eq!(engine.schema().name(), "AustralianOpen");
        assert_eq!(engine.grammar().start().symbol, "MMO");
    }

    #[test]
    fn detectors_serve_the_video_grammar() {
        let site = Arc::new(Site::generate(SiteSpec {
            players: 2,
            articles: 2,
            seed: 8,
        }));
        let registry = detectors(Arc::clone(&site));
        let video_url = site.players[0].video_url.clone();
        let out = registry
            .run("header", &[feagram::FeatureValue::url(video_url.clone())])
            .unwrap();
        assert_eq!(out[0].value.as_str(), Some("video"));
        let shots = registry
            .run("segment", &[feagram::FeatureValue::url(video_url)])
            .unwrap();
        // 8 shots × 3 tokens each.
        assert_eq!(shots.len(), 24);
    }

    #[test]
    fn segment_fails_on_missing_video() {
        let site = Arc::new(Site::generate(SiteSpec::default()));
        let registry = detectors(site);
        let err = registry
            .run("segment", &[feagram::FeatureValue::url("http://nowhere/x.mpg")])
            .unwrap_err();
        assert!(err.to_string().contains("404"), "{err}");
    }
}
