//! A small textual query language for the integrated engine.
//!
//! The paper's users compose queries in a GUI over the webspace schema
//! (Figure 13); this module is the text-mode equivalent, compiling to an
//! [`EngineQuery`]:
//!
//! ```text
//! FROM Player
//! WHERE gender = "female" AND hand = "left"
//! TEXT history CONTAINS "Winner"
//! VIA Is_covered_in
//! MEDIA video HAS netplay
//! TOP 10
//! ```
//!
//! Clauses appear in that order; `WHERE`, `TEXT`, `VIA` (repeatable) and
//! `MEDIA` are optional. Keywords are case-insensitive.

use crate::error::{Error, Result};
use crate::query::EngineQuery;

/// Default `top_n` handed to the text retrieval stage.
const DEFAULT_TEXT_TOP_N: usize = 100;

/// Parses the textual form into an [`EngineQuery`].
pub fn parse(input: &str) -> Result<EngineQuery> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };

    p.expect_kw("FROM")?;
    let class = p.expect_word("class name")?;
    let mut query = EngineQuery::from_class(class);

    if p.peek_kw("WHERE") {
        p.pos += 1;
        loop {
            let attr = p.expect_word("attribute name")?;
            let op = p.expect_word("operator")?;
            match op.as_str() {
                "=" => {
                    let value = p.expect_string("value")?;
                    query = query.filter_eq(attr, value);
                }
                _ if op.eq_ignore_ascii_case("CONTAINS") => {
                    let needle = p.expect_string("value")?;
                    query.conceptual = query
                        .conceptual
                        .filter(webspace::Predicate::Contains { attr, needle });
                }
                other => {
                    return Err(Error::Query(format!(
                        "unknown operator `{other}` (expected `=` or CONTAINS)"
                    )))
                }
            }
            if p.peek_kw("AND") {
                p.pos += 1;
            } else {
                break;
            }
        }
    }

    if p.peek_kw("TEXT") {
        p.pos += 1;
        let attr = p.expect_word("attribute name")?;
        p.expect_kw("CONTAINS")?;
        let text = p.expect_string("search text")?;
        query = query.text_search(attr, text, DEFAULT_TEXT_TOP_N);
        // Optional `WITHIN`: restrict the ranking a-priori to the
        // conceptual candidates (the paper's optimizer choice).
        if p.peek_kw("WITHIN") {
            p.pos += 1;
            query = query.rank_within_candidates();
        }
    }

    while p.peek_kw("VIA") {
        p.pos += 1;
        let association = p.expect_word("association name")?;
        query = query.via(association);
    }

    if p.peek_kw("MEDIA") {
        p.pos += 1;
        let attr = p.expect_word("attribute name")?;
        p.expect_kw("HAS")?;
        let event = p.expect_word("event name")?;
        query = query.media_event(attr, event);
    }

    if p.peek_kw("TOP") {
        p.pos += 1;
        let n = p.expect_word("limit")?;
        let n: usize = n
            .parse()
            .map_err(|_| Error::Query(format!("bad TOP limit `{n}`")))?;
        query = query.top(n);
    }

    if p.pos < p.tokens.len() {
        return Err(Error::Query(format!(
            "unexpected trailing input near `{}`",
            p.tokens[p.pos].text()
        )));
    }
    Ok(query)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Word(String),
    Str(String),
}

impl Tok {
    fn text(&self) -> &str {
        match self {
            Tok::Word(w) => w,
            Tok::Str(s) => s,
        }
    }
}

fn lex(input: &str) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '"' {
            chars.next();
            let mut s = String::new();
            loop {
                match chars.next() {
                    Some('"') => break,
                    Some(ch) => s.push(ch),
                    None => return Err(Error::Query("unterminated string literal".into())),
                }
            }
            out.push(Tok::Str(s));
        } else if c == '=' {
            chars.next();
            out.push(Tok::Word("=".into()));
        } else {
            let mut w = String::new();
            while let Some(&ch) = chars.peek() {
                if ch.is_whitespace() || ch == '"' || ch == '=' {
                    break;
                }
                w.push(ch);
                chars.next();
            }
            out.push(Tok::Word(w));
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.tokens.get(self.pos), Some(Tok::Word(w)) if w.eq_ignore_ascii_case(kw))
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.peek_kw(kw) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::Query(format!(
                "expected keyword {kw}, found `{}`",
                self.tokens
                    .get(self.pos)
                    .map(Tok::text)
                    .unwrap_or("<end of input>")
            )))
        }
    }

    fn expect_word(&mut self, what: &str) -> Result<String> {
        match self.tokens.get(self.pos) {
            Some(Tok::Word(w)) => {
                let w = w.clone();
                self.pos += 1;
                Ok(w)
            }
            other => Err(Error::Query(format!(
                "expected {what}, found `{}`",
                other.map(Tok::text).unwrap_or("<end of input>")
            ))),
        }
    }

    fn expect_string(&mut self, what: &str) -> Result<String> {
        match self.tokens.get(self.pos) {
            Some(Tok::Str(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            other => Err(Error::Query(format!(
                "expected quoted {what}, found `{}`",
                other.map(Tok::text).unwrap_or("<end of input>")
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure13_query_parses() {
        let q = parse(
            r#"
            FROM Player
            WHERE gender = "female" AND hand = "left"
            TEXT history CONTAINS "Winner"
            VIA Is_covered_in
            MEDIA video HAS netplay
            TOP 10
            "#,
        )
        .unwrap();
        assert_eq!(q.conceptual.from_class, "Player");
        assert_eq!(q.conceptual.predicates.len(), 2);
        assert_eq!(q.conceptual.joins.len(), 1);
        assert_eq!(q.text.as_ref().unwrap().attr, "history");
        assert_eq!(q.media.as_ref().unwrap().event, "netplay");
        assert_eq!(q.limit, 10);
    }

    #[test]
    fn within_restricts_the_ranking_domain() {
        let q = parse(r#"FROM Player TEXT history CONTAINS "Winner" WITHIN"#).unwrap();
        assert!(q.text.as_ref().unwrap().rank_within);
        let q = parse(r#"FROM Player TEXT history CONTAINS "Winner""#).unwrap();
        assert!(!q.text.as_ref().unwrap().rank_within);
    }

    #[test]
    fn minimal_query_parses() {
        let q = parse("FROM Article").unwrap();
        assert_eq!(q.conceptual.from_class, "Article");
        assert!(q.text.is_none());
        assert!(q.media.is_none());
        assert_eq!(q.limit, 10);
    }

    #[test]
    fn where_contains_predicate() {
        let q = parse(r#"FROM Article WHERE title CONTAINS "final""#).unwrap();
        assert_eq!(q.conceptual.predicates.len(), 1);
        assert!(matches!(
            &q.conceptual.predicates[0],
            webspace::Predicate::Contains { .. }
        ));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let q = parse(r#"from Player where hand = "left" top 3"#).unwrap();
        assert_eq!(q.limit, 3);
    }

    #[test]
    fn multiple_via_steps_chain() {
        let q = parse("FROM Article VIA About VIA Is_covered_in").unwrap();
        assert_eq!(q.conceptual.joins.len(), 2);
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse("WHERE x").unwrap_err().to_string().contains("FROM"));
        assert!(parse("FROM Player WHERE a ~ \"b\"")
            .unwrap_err()
            .to_string()
            .contains("operator"));
        assert!(parse("FROM Player TOP ten")
            .unwrap_err()
            .to_string()
            .contains("TOP"));
        assert!(parse("FROM Player garbage")
            .unwrap_err()
            .to_string()
            .contains("trailing"));
        assert!(parse(r#"FROM Player WHERE a = "unclosed"#)
            .unwrap_err()
            .to_string()
            .contains("unterminated"));
    }
}
