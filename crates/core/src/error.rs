//! Error type of the integrated engine.

use std::fmt;
use std::time::Duration;

/// How far a budget-cancelled query got before it was cut off.
///
/// `phase` names the evaluation stage the budget expired in
/// (`"admission"`, `"conceptual"`, `"text"`, `"physical"` or
/// `"media"`); `completed` counts the units that stage had finished —
/// rows expanded, server answers merged, nodes reconstructed,
/// candidates refined — so callers can judge whether retrying with a
/// bigger budget is worthwhile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialProgress {
    /// Evaluation stage the budget expired in.
    pub phase: String,
    /// Units of work that stage completed before the cut-off.
    pub completed: usize,
}

impl fmt::Display for PartialProgress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} phase, {} unit(s) done", self.phase, self.completed)
    }
}

/// Errors from any of the three levels, unified.
#[derive(Debug)]
pub enum Error {
    /// Conceptual-level error.
    Webspace(webspace::Error),
    /// Logical-level (grammar/engine/scheduler) error.
    Acoi(acoi::Error),
    /// Grammar-language error.
    Feagram(feagram::Error),
    /// Physical-level XML error.
    Xml(monetxml::Error),
    /// Retrieval error.
    Ir(ir::Error),
    /// Query formulation error.
    Query(String),
    /// Engine configuration error.
    Config(String),
    /// Durable-storage error (snapshot, WAL or backend I/O).
    Persist(monet::Error),
    /// Recovery failed: no valid checkpoint generation could be loaded.
    Recovery(String),
    /// The telemetry layer could not write an incident report.
    Telemetry(String),
    /// The admission gate turned the query away: every execution slot
    /// and queue position is taken (or the ladder is shedding this
    /// priority class). Not a failure of the query itself — retrying
    /// after roughly `retry_after_hint` has a good chance of admission.
    Overloaded {
        /// Estimated wait until a slot frees up, from recent service
        /// latency and current occupancy.
        retry_after_hint: Duration,
    },
    /// The query's end-to-end budget (wall-clock deadline, work budget
    /// or explicit cancellation) expired mid-evaluation. The engine
    /// state is left exactly as if the query never ran.
    DeadlineExceeded {
        /// How far evaluation got before the cut-off.
        partial: PartialProgress,
        /// Which budget dimension ran out.
        cause: faults::BudgetExceeded,
    },
    /// A background maintenance job could not commit: the live
    /// meta-index advanced past the epoch the job pinned at begin
    /// (something else mutated stored trees mid-job). The store is
    /// untouched and the detector registry rolled back; re-running the
    /// job against the new epoch is safe.
    MaintenanceStale {
        /// The detector the stale job was maintaining.
        detector: String,
    },
    /// A second `begin_upgrade`/`begin_heal` hit a detector that
    /// already has a maintenance job in flight. Beginning anyway would
    /// clobber the first job's pinned snapshot; the caller waits for
    /// the in-flight job to commit or abort and retries.
    MaintenanceBusy {
        /// The detector whose job is still in flight.
        detector: String,
    },
    /// A background maintenance job died mid-run (an injected fault or
    /// a failed re-parse). The live store is untouched; aborting the
    /// job rolls the registry back to the pre-job implementation.
    Maintenance {
        /// The detector the failed job was maintaining.
        detector: String,
        /// What killed the job.
        cause: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Webspace(e) => write!(f, "conceptual level: {e}"),
            Error::Acoi(e) => write!(f, "logical level: {e}"),
            Error::Feagram(e) => write!(f, "grammar: {e}"),
            Error::Xml(e) => write!(f, "physical level: {e}"),
            Error::Ir(e) => write!(f, "retrieval: {e}"),
            Error::Query(m) => write!(f, "query error: {m}"),
            Error::Config(m) => write!(f, "configuration error: {m}"),
            Error::Persist(e) => write!(f, "durable storage: {e}"),
            Error::Recovery(m) => write!(f, "recovery failed: {m}"),
            Error::Telemetry(m) => write!(f, "telemetry: {m}"),
            Error::Overloaded { retry_after_hint } => write!(
                f,
                "overloaded: admission refused, retry after ~{}ms",
                retry_after_hint.as_millis()
            ),
            Error::DeadlineExceeded { partial, cause } => {
                write!(f, "query budget expired ({cause}) in the {partial}")
            }
            Error::MaintenanceStale { detector } => write!(
                f,
                "maintenance of `{detector}` is stale: the meta-index moved past the pinned epoch"
            ),
            Error::MaintenanceBusy { detector } => write!(
                f,
                "maintenance of `{detector}` already in flight: wait for it to commit or abort"
            ),
            Error::Maintenance { detector, cause } => {
                write!(f, "maintenance of `{detector}` failed: {cause}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Webspace(e) => Some(e),
            Error::Acoi(e) => Some(e),
            Error::Feagram(e) => Some(e),
            Error::Xml(e) => Some(e),
            Error::Ir(e) => Some(e),
            Error::Persist(e) => Some(e),
            Error::DeadlineExceeded { cause, .. } => Some(cause),
            _ => None,
        }
    }
}

impl From<monet::Error> for Error {
    fn from(e: monet::Error) -> Self {
        Error::Persist(e)
    }
}

// The conversions below lift the typed budget errors of every layer
// into [`Error::DeadlineExceeded`] instead of burying them in the
// layer's wrapper variant, so callers can match one variant no matter
// which stage the budget expired in.

impl From<webspace::Error> for Error {
    fn from(e: webspace::Error) -> Self {
        match e {
            webspace::Error::DeadlineExceeded { rows, cause } => Error::DeadlineExceeded {
                partial: PartialProgress {
                    phase: "conceptual".into(),
                    completed: rows,
                },
                cause,
            },
            other => Error::Webspace(other),
        }
    }
}
impl From<acoi::Error> for Error {
    fn from(e: acoi::Error) -> Self {
        match e {
            // A budget cut-off while loading a stored parse tree is the
            // media-refinement stage of the integrated query.
            acoi::Error::Storage(monetxml::Error::DeadlineExceeded { nodes, cause }) => {
                Error::DeadlineExceeded {
                    partial: PartialProgress {
                        phase: "media".into(),
                        completed: nodes,
                    },
                    cause,
                }
            }
            other => Error::Acoi(other),
        }
    }
}
impl From<feagram::Error> for Error {
    fn from(e: feagram::Error) -> Self {
        Error::Feagram(e)
    }
}
impl From<monetxml::Error> for Error {
    fn from(e: monetxml::Error) -> Self {
        match e {
            monetxml::Error::DeadlineExceeded { nodes, cause } => Error::DeadlineExceeded {
                partial: PartialProgress {
                    phase: "physical".into(),
                    completed: nodes,
                },
                cause,
            },
            other => Error::Xml(other),
        }
    }
}
impl From<ir::Error> for Error {
    fn from(e: ir::Error) -> Self {
        match e {
            ir::Error::DeadlineExceeded {
                shards_answered,
                cause,
            } => Error::DeadlineExceeded {
                partial: PartialProgress {
                    phase: "text".into(),
                    completed: shards_answered,
                },
                cause,
            },
            other => Error::Ir(other),
        }
    }
}

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, Error>;
