//! Error type of the integrated engine.

use std::fmt;

/// Errors from any of the three levels, unified.
#[derive(Debug)]
pub enum Error {
    /// Conceptual-level error.
    Webspace(webspace::Error),
    /// Logical-level (grammar/engine/scheduler) error.
    Acoi(acoi::Error),
    /// Grammar-language error.
    Feagram(feagram::Error),
    /// Physical-level XML error.
    Xml(monetxml::Error),
    /// Retrieval error.
    Ir(ir::Error),
    /// Query formulation error.
    Query(String),
    /// Engine configuration error.
    Config(String),
    /// Durable-storage error (snapshot, WAL or backend I/O).
    Persist(monet::Error),
    /// Recovery failed: no valid checkpoint generation could be loaded.
    Recovery(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Webspace(e) => write!(f, "conceptual level: {e}"),
            Error::Acoi(e) => write!(f, "logical level: {e}"),
            Error::Feagram(e) => write!(f, "grammar: {e}"),
            Error::Xml(e) => write!(f, "physical level: {e}"),
            Error::Ir(e) => write!(f, "retrieval: {e}"),
            Error::Query(m) => write!(f, "query error: {m}"),
            Error::Config(m) => write!(f, "configuration error: {m}"),
            Error::Persist(e) => write!(f, "durable storage: {e}"),
            Error::Recovery(m) => write!(f, "recovery failed: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Webspace(e) => Some(e),
            Error::Acoi(e) => Some(e),
            Error::Feagram(e) => Some(e),
            Error::Xml(e) => Some(e),
            Error::Ir(e) => Some(e),
            Error::Persist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<monet::Error> for Error {
    fn from(e: monet::Error) -> Self {
        Error::Persist(e)
    }
}

impl From<webspace::Error> for Error {
    fn from(e: webspace::Error) -> Self {
        Error::Webspace(e)
    }
}
impl From<acoi::Error> for Error {
    fn from(e: acoi::Error) -> Self {
        Error::Acoi(e)
    }
}
impl From<feagram::Error> for Error {
    fn from(e: feagram::Error) -> Self {
        Error::Feagram(e)
    }
}
impl From<monetxml::Error> for Error {
    fn from(e: monetxml::Error) -> Self {
        Error::Xml(e)
    }
}
impl From<ir::Error> for Error {
    fn from(e: ir::Error) -> Self {
        Error::Ir(e)
    }
}

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, Error>;
