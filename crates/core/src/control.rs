//! The self-healing distribution control plane: the *executing* half
//! of the policy in [`ir::control`].
//!
//! A [`ControlPlane`] wraps a deterministic [`ir::ControlPolicy`] and
//! drives its decisions against a [`QueryService`], one
//! [`ControlPlane::tick`] at a time:
//!
//! 1. Under a **brief** engine borrow it assembles an
//!    [`ir::ClusterView`] (shard loads, observed p99, declared-lost
//!    servers) and asks the policy for a decision. Queries keep serving
//!    the moment the borrow drops.
//! 2. A split/merge/re-replication is **admission-gated**: if the
//!    overload ladder sits at Brownout or worse the decision is
//!    deferred to a later tick — interactive traffic owns the capacity
//!    — and every chunk of background work holds one `Batch`-class
//!    permit, exactly like online maintenance.
//! 3. **Re-replication** runs in the same two-brief-locks shape as
//!    maintenance: begin under the lock (snapshot the lost server's
//!    copies from survivors), rebuild chunk by chunk off-lock
//!    (consulting the fault plan at `rereplicate:<lost>:<group>`), and
//!    commit under the lock behind an epoch check. A fault or a stale
//!    commit aborts with the cluster byte-identical to never-started.
//! 4. **Split/merge** takes one permit and runs the idf-aware
//!    rebalancer under the lock (the cutover itself must be atomic);
//!    success arms the policy's cooldown so a hot interval cannot
//!    thrash the layout.
//!
//! Every decision is counted in `ir_control_decisions_total{action}`
//! and surfaced by EXPLAIN ANALYZE's `REBALANCE` line. The fault plan
//! is additionally consulted at `control:<action>` before any side
//! effect, so chaos schedules can kill a decision at the policy/
//! mechanism boundary too.

#![deny(clippy::unwrap_used)]

use std::sync::{Arc, Mutex};
use std::time::Duration;

use faults::{FaultAction, FaultPlan};
use ir::{ControlConfig, ControlDecision, ControlPolicy};

use crate::admission::{AdmissionGate, OverloadLevel, Permit, Priority, QueryService};
use crate::error::{Error, Result};

/// Copies rebuilt per Batch admission during background
/// re-replication — the control plane's unit of interference, matching
/// online maintenance's chunk size.
const ADMIT_CHUNK: usize = 4;

/// How long a gated action waits out a Brownout before giving up.
const MAX_BROWNOUT_PAUSES: usize = 2000;
const BROWNOUT_PAUSE: Duration = Duration::from_millis(1);

/// Admission retries after a typed `Overloaded` rejection.
const MAX_ADMIT_RETRIES: usize = 50;
const MAX_RETRY_SLEEP: Duration = Duration::from_millis(10);

/// Help string of the decision counter (shared with the pre-seeded
/// family in `ir`'s metric registration).
const DECISIONS_HELP: &str = "Control-plane policy decisions, by action";

/// What one [`ControlPlane::tick`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlOutcome {
    /// The policy saw a healthy, balanced cluster and decided nothing.
    Idle,
    /// A decision exists but the admission ladder sits at Brownout or
    /// worse; it will be re-evaluated on a later tick.
    Deferred(String),
    /// The decision was executed; the string says what and why.
    Acted(String),
    /// The decision was started but aborted (injected fault, stale
    /// epoch, rebalance error); the cluster is byte-identical to
    /// never-started.
    Aborted(String),
}

impl ControlOutcome {
    /// The human-readable description, if the tick did anything.
    pub fn describe(&self) -> Option<&str> {
        match self {
            ControlOutcome::Idle => None,
            ControlOutcome::Deferred(d)
            | ControlOutcome::Acted(d)
            | ControlOutcome::Aborted(d) => Some(d),
        }
    }
}

/// The control loop: a deterministic policy plus the admission-gated,
/// fault-injectable execution of its decisions.
pub struct ControlPlane {
    policy: ControlPolicy,
    /// Fault plan consulted at `control:<action>` before execution and
    /// threaded into re-replication steps (`rereplicate:<lost>:<group>`).
    faults: Option<Arc<FaultPlan>>,
    obs: obs::Obs,
    /// Telemetry recorder + window (in ticks): when attached, the
    /// policy's latency trigger uses the windowed p99 reconstructed
    /// from `ir_critical_path_seconds` bucket deltas instead of the
    /// instantaneous ring observation.
    telemetry: Option<(Arc<Mutex<obs::Recorder>>, usize)>,
}

impl ControlPlane {
    /// A control plane with the given policy thresholds.
    pub fn new(cfg: ControlConfig, faults: Option<Arc<FaultPlan>>) -> ControlPlane {
        ControlPlane {
            policy: ControlPolicy::new(cfg),
            faults,
            obs: obs::Obs::disabled(),
            telemetry: None,
        }
    }

    /// Routes the control plane's metrics into `o`'s registry.
    pub fn set_obs(&mut self, o: &obs::Obs) {
        self.obs = o.clone();
    }

    /// Closes the loop with the telemetry layer: from now on the
    /// policy's latency trigger reads the windowed p99 over the
    /// recorder's last `p99_window` ticks (falling back to the
    /// instantaneous observation while the window is still empty).
    pub fn set_telemetry(&mut self, telemetry: &crate::telemetry::Telemetry) {
        self.telemetry = Some((telemetry.recorder(), telemetry.p99_window()));
    }

    /// The wrapped policy (tick counter, cooldown state).
    pub fn policy(&self) -> &ControlPolicy {
        &self.policy
    }

    /// One control round: observe under a brief engine borrow, decide,
    /// and execute the decision (if any) behind the admission gate.
    /// Errors are reserved for broken invariants (poisoned gate,
    /// storage failure inside a commit); everything expected — faults,
    /// stale epochs, overload — comes back as a [`ControlOutcome`].
    pub fn tick(&mut self, svc: &QueryService) -> Result<ControlOutcome> {
        self.policy.tick();
        // Observe under a brief borrow, then drop it before consulting
        // telemetry: the recorder's lock is never held together with
        // the engine's.
        let mut view = {
            let engine = svc.engine();
            engine.control_view(self.policy.config().loss_threshold)
        };
        if let Some((recorder, window)) = &self.telemetry {
            let rec = recorder.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(p99) = rec.windowed_quantile("ir_critical_path_seconds", 0.99, *window)
            {
                view.shard_p99 = Duration::from_secs_f64(p99.max(0.0));
            }
        }
        let Some(decision) = self.policy.evaluate(&view) else {
            return Ok(ControlOutcome::Idle);
        };
        let action = decision.action();
        self.count_decision(action);
        let describe = format!("{action}: {}", decision.reason());
        if svc.gate().level() >= OverloadLevel::Brownout {
            self.count_decision("defer");
            let outcome = ControlOutcome::Deferred(describe);
            self.record_outcome(&outcome);
            return Ok(outcome);
        }
        // The policy/mechanism boundary is a fault site of its own:
        // a scripted `control:<action>` fault kills the decision
        // before any side effect.
        if let Some(plan) = &self.faults {
            let label = format!("control:{action}");
            let delay = plan.decide_delay(&label);
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
            match plan.decide(&label) {
                FaultAction::None => {}
                injected => {
                    let outcome = ControlOutcome::Aborted(format!(
                        "{describe} — injected {injected:?} fault before execution \
                         (cluster untouched)"
                    ));
                    self.record_outcome(&outcome);
                    return Ok(outcome);
                }
            }
        }
        let outcome = match decision {
            ControlDecision::Rereplicate { lost, .. } => {
                self.run_rereplication(svc, lost, describe)
            }
            ControlDecision::Split { target, .. } | ControlDecision::Merge { target, .. } => {
                self.run_rebalance(svc, target, describe)
            }
        }?;
        self.record_outcome(&outcome);
        Ok(outcome)
    }

    /// Leaves a `control` flight-recorder event for any tick that did
    /// (or explicitly refused to do) something.
    fn record_outcome(&self, outcome: &ControlOutcome) {
        let (verb, detail) = match outcome {
            ControlOutcome::Idle => return,
            ControlOutcome::Deferred(d) => ("deferred", d),
            ControlOutcome::Acted(d) => ("acted", d),
            ControlOutcome::Aborted(d) => ("aborted", d),
        };
        self.obs
            .record_event("control", || format!("{verb}: {detail}"));
    }

    /// Background re-replication, two-brief-locks: begin under the
    /// engine borrow, rebuild in admission-gated chunks off-lock,
    /// commit under the borrow behind the epoch check.
    fn run_rereplication(
        &mut self,
        svc: &QueryService,
        lost: usize,
        describe: String,
    ) -> Result<ControlOutcome> {
        let mut job = match svc.engine().begin_text_rereplication(lost) {
            Ok(job) => job,
            Err(e) => return Ok(ControlOutcome::Aborted(format!("{describe} — {e}"))),
        };
        let faults = self.faults.as_deref();
        while !job.is_done() {
            let _permit = admit_batch(svc.gate(), &self.obs)?;
            for _ in 0..ADMIT_CHUNK {
                if job.is_done() {
                    break;
                }
                if let Err(e) = job.step(faults) {
                    // Dropping the job is the whole abort: the live
                    // cluster was never touched.
                    return Ok(ControlOutcome::Aborted(format!("{describe} — {e}")));
                }
            }
        }
        let mut engine = svc.engine();
        match engine.commit_text_rereplication(job) {
            Ok(installed) => {
                let done = format!("{describe} — rebuilt {installed} cop(ies) onto survivors");
                engine.note_control_decision(&done);
                Ok(ControlOutcome::Acted(done))
            }
            Err(Error::Ir(ir::Error::RereplicationStale { pinned, current })) => {
                Ok(ControlOutcome::Aborted(format!(
                    "{describe} — stale: staged at epoch {pinned}, cluster now at {current}"
                )))
            }
            Err(e) => Err(e),
        }
    }

    /// A split or merge: one Batch permit, then the idf-aware
    /// rebalancer under the engine borrow (the cutover is atomic by
    /// construction). Success arms the policy cooldown; failure leaves
    /// the policy free to retry next tick.
    fn run_rebalance(
        &mut self,
        svc: &QueryService,
        target: usize,
        describe: String,
    ) -> Result<ControlOutcome> {
        let _permit = admit_batch(svc.gate(), &self.obs)?;
        let mut engine = svc.engine();
        match engine.rebalance_text(target) {
            Ok(report) => {
                self.policy.note_layout_change();
                let done = format!(
                    "{describe} — rebalanced {} → {} server(s), {} document(s) moved",
                    report.shards_before, report.shards_after, report.moved_docs
                );
                engine.note_control_decision(&done);
                Ok(ControlOutcome::Acted(done))
            }
            Err(e) => Ok(ControlOutcome::Aborted(format!("{describe} — {e}"))),
        }
    }

    fn count_decision(&self, action: &str) {
        if let Some(reg) = self.obs.registry() {
            reg.labeled_counter("ir_control_decisions_total", DECISIONS_HELP, "action", action)
                .inc();
        }
    }
}

/// One Batch-class admission, with the same Brownout-pause /
/// bounded-retry discipline as online maintenance: background work
/// yields to distressed interactive traffic instead of competing.
fn admit_batch(gate: &Arc<AdmissionGate>, obs: &obs::Obs) -> Result<Permit> {
    let mut pauses = 0;
    while gate.level() >= OverloadLevel::Brownout && pauses < MAX_BROWNOUT_PAUSES {
        std::thread::sleep(BROWNOUT_PAUSE);
        pauses += 1;
    }
    let mut attempts = 0;
    loop {
        match gate.admit(Priority::Batch) {
            Ok(permit) => {
                if let Some(reg) = obs.registry() {
                    reg.counter(
                        "engine_control_batch_admissions_total",
                        "Batch-class gate permits granted to the control plane",
                    )
                    .inc();
                }
                return Ok(permit);
            }
            Err(Error::Overloaded { retry_after_hint }) if attempts < MAX_ADMIT_RETRIES => {
                attempts += 1;
                std::thread::sleep(retry_after_hint.min(MAX_RETRY_SLEEP));
            }
            Err(e) => return Err(e),
        }
    }
}
