//! The search engine: lifecycle stages over the three levels.
//!
//! * **Modeling** — an [`EngineConfig`] carries the webspace schema, the
//!   re-engineering template rules, the feature grammar and the detector
//!   registry (the developer "does not have to model all the system
//!   levels: the focus is on the upper levels").
//! * **Populating** — [`Engine::populate`] runs the crawler output
//!   through the web-object retriever, stores every materialized view as
//!   an XML document (the physical level), feeds Hypertext attributes to
//!   the full-text indexer, and hands every Video and Audio attribute to
//!   the FDE, whose parse tree lands in the meta-index.
//! * **Maintaining** — [`Engine::upgrade_detector`] delegates to the FDS:
//!   incremental re-parses with memoised detector outputs.
//! * **Querying** — [`Engine::query`] combines conceptual selection,
//!   ranked text retrieval and media-event evidence into one answer.

use std::collections::HashMap;
use std::sync::Arc;

use acoi::{DetectorRegistry, Fde, Fds, MaintenanceReport, MetaIndex, RevisionLevel, Token};
use faults::FaultPlan;
use feagram::{FeatureValue, Grammar};
use monetxml::XmlStore;
use webspace::{AttrValue, MaterializedView, MediaType, Retriever, WebspaceIndex, WebspaceSchema};

use crate::error::{Error, Result};
use crate::query::{EngineHit, EngineQuery};
use crate::shots::video_shots;

/// Everything the developer models up front.
pub struct EngineConfig {
    /// The conceptual schema.
    pub schema: WebspaceSchema,
    /// Template rules for HTML re-engineering.
    pub retriever: Retriever,
    /// The feature grammar source (e.g.
    /// [`feagram::paper::VIDEO_GRAMMAR`]).
    pub grammar_source: String,
    /// Implementations for the grammar's blackbox detectors.
    pub registry: DetectorRegistry,
    /// Shared-nothing text servers backing full-text retrieval. `1`
    /// keeps the single-server semantics (and byte-identical rankings);
    /// more servers distribute documents per-document and answer
    /// queries in parallel, degrading gracefully when servers fail.
    pub text_servers: usize,
    /// Fault plan consulted by the text servers (labels `shard:<i>`).
    /// `None` means no injection anywhere.
    pub faults: Option<Arc<FaultPlan>>,
}

/// What one population run did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PopulateReport {
    /// Pages processed.
    pub pages: usize,
    /// Web objects extracted (after merging).
    pub objects: usize,
    /// Association instances extracted.
    pub associations: usize,
    /// Hypertext attributes indexed for full text.
    pub text_documents: usize,
    /// Multimedia objects (videos, audio clips) analysed by the FDE.
    pub media_analyzed: usize,
    /// Multimedia objects whose analysis was rejected by the grammar.
    pub media_rejected: usize,
    /// Multimedia objects analysed, but with holes: one or more
    /// detectors were unavailable, so their parse tree carries
    /// rejected-with-cause nodes awaiting a heal.
    pub media_degraded: usize,
    /// Total unavailable-detector failures recorded across the run
    /// (rejected nodes over all degraded objects).
    pub detector_failures: usize,
    /// Blackbox detector executions during analysis.
    pub detector_calls: usize,
}

/// The integrated search engine.
pub struct Engine {
    schema: WebspaceSchema,
    retriever: Retriever,
    grammar: Grammar,
    registry: DetectorRegistry,
    webspace: WebspaceIndex,
    /// Conceptual data as stored XML (the physical level's view store).
    views: XmlStore,
    text: ir::DistributedIndex,
    meta: MetaIndex,
    fds: Fds,
    /// Shard status of the last text retrieval, for degraded-plan
    /// reporting. `None` until a text query ran.
    last_text_status: Option<TextQueryStatus>,
    /// Lazily computed media evidence per analysed location: the shot
    /// list and per-event verdicts. Loading a stored parse tree means
    /// reconstructing it from the Monet relations, so repeated queries
    /// must not re-load it per candidate. Invalidated whenever the
    /// meta-index changes (populate / maintenance / source refresh).
    media_cache: HashMap<String, MediaEvidence>,
}

#[derive(Default, Clone)]
struct MediaEvidence {
    shots: Option<Vec<crate::shots::ShotMeta>>,
    events: HashMap<String, bool>,
}

/// Shard status of the most recent text retrieval: how distributed (and
/// how degraded) the ranking behind the current answer was.
#[derive(Debug, Clone, PartialEq)]
pub struct TextQueryStatus {
    /// Text servers whose local ranking made it into the merge.
    pub shards_ok: usize,
    /// Text servers that failed (error, hang past deadline, panic).
    pub shards_failed: usize,
    /// Which servers failed.
    pub failed_shards: Vec<usize>,
    /// Estimated answer quality: fraction of the collection's documents
    /// held by surviving servers.
    pub quality: f64,
}

impl Engine {
    /// Builds an engine from its model.
    pub fn new(config: EngineConfig) -> Result<Engine> {
        let grammar = feagram::parse_grammar(&config.grammar_source)?;
        let fds = Fds::new(&grammar);
        let mut text =
            ir::DistributedIndex::new(config.text_servers, ir::ScoreModel::TfIdf)
                .map_err(Error::Ir)?;
        if let Some(plan) = &config.faults {
            text.set_fault_plan(Arc::clone(plan));
        }
        Ok(Engine {
            webspace: WebspaceIndex::new(config.schema.clone()),
            schema: config.schema,
            retriever: config.retriever,
            grammar,
            registry: config.registry,
            views: XmlStore::new(),
            text,
            meta: MetaIndex::new(),
            fds,
            last_text_status: None,
            media_cache: HashMap::new(),
        })
    }

    /// The conceptual schema.
    pub fn schema(&self) -> &WebspaceSchema {
        &self.schema
    }

    /// The feature grammar.
    pub fn grammar(&self) -> &Grammar {
        &self.grammar
    }

    /// The merged object graph.
    pub fn webspace(&self) -> &WebspaceIndex {
        &self.webspace
    }

    /// The stored materialized views (physical level).
    pub fn views(&self) -> &XmlStore {
        &self.views
    }

    /// The meta-index of parse trees.
    pub fn meta(&self) -> &MetaIndex {
        &self.meta
    }

    /// Mutable meta-index access (experiments poke at stored trees).
    pub fn meta_mut(&mut self) -> &mut MetaIndex {
        &mut self.meta
    }

    /// The full-text index (one or more shared-nothing servers).
    pub fn text_index(&self) -> &ir::DistributedIndex {
        &self.text
    }

    /// Mutable full-text index access (deadline / fault-plan knobs).
    pub fn text_index_mut(&mut self) -> &mut ir::DistributedIndex {
        &mut self.text
    }

    /// Shard status of the last text retrieval, if any ran.
    pub fn last_text_status(&self) -> Option<&TextQueryStatus> {
        self.last_text_status.as_ref()
    }

    /// The detector registry (call counters for experiments).
    pub fn registry(&self) -> &DetectorRegistry {
        &self.registry
    }

    /// Populates the index from crawled `(url, html)` pages.
    pub fn populate(&mut self, pages: &[(String, String)]) -> Result<PopulateReport> {
        let mut report = PopulateReport {
            pages: pages.len(),
            ..PopulateReport::default()
        };

        // Conceptual extraction (two passes: objects, then links).
        let mut extracts = Vec::new();
        for (url, html) in pages {
            extracts.push(self.retriever.extract_page(url, html)?);
        }
        let views: Vec<MaterializedView> = self.retriever.finalize(extracts);

        for view in &views {
            // Physical storage of the view document…
            let doc = view.to_document();
            self.views.insert_document(&view.name, &doc)?;
            // …and the merged conceptual graph.
            self.webspace.add_view(view)?;
            report.associations += view.associations.len();
        }
        report.objects = self.webspace.object_count();

        // Logical level: full text + video analysis, driven by the
        // schema's multimedia hooks.
        let object_ids: Vec<String> = self
            .webspace
            .schema()
            .classes()
            .iter()
            .flat_map(|c| {
                self.webspace
                    .objects_of(&c.name)
                    .map(|o| o.id.clone())
                    .collect::<Vec<_>>()
            })
            .collect();

        for id in object_ids {
            let object = self
                .webspace
                .object(&id)
                .expect("id enumerated from the index")
                .clone();
            let class = self
                .schema
                .class(&object.class)
                .ok_or_else(|| Error::Config(format!("unknown class {}", object.class)))?
                .clone();
            for attr_def in &class.attributes {
                let Some(value) = object.attr(&attr_def.name) else {
                    continue;
                };
                match (&attr_def.ty, value) {
                    // Inline hypertext → full-text index.
                    (
                        webspace::AttrType::Media(MediaType::Hypertext),
                        AttrValue::Text(text),
                    ) => {
                        let key = text_doc_key(&object.id, &attr_def.name);
                        self.text
                            .index_document(&key, text)
                            .map_err(Error::Ir)?;
                        report.text_documents += 1;
                    }
                    // Video / audio → FDE analysis into the meta-index.
                    (
                        webspace::AttrType::Media(MediaType::Video | MediaType::Audio),
                        AttrValue::Media { location, .. },
                    ) => {
                        if self.meta.contains(location) {
                            continue; // shared media object, already analysed
                        }
                        let initial = vec![Token::new(
                            "location",
                            FeatureValue::url(location.clone()),
                        )];
                        let mut fde = Fde::new(&self.grammar, &mut self.registry);
                        match fde.parse(initial.clone()) {
                            Ok(tree) => {
                                report.detector_calls += fde.stats().detector_calls;
                                // Unavailable detectors don't abort the
                                // parse — they leave rejected-with-cause
                                // holes. Count and log every one so a
                                // degraded population is visible, not
                                // silently incomplete.
                                let rejected = tree.rejected_nodes();
                                if !rejected.is_empty() {
                                    report.media_degraded += 1;
                                    report.detector_failures += rejected.len();
                                    for (_, symbol, cause) in &rejected {
                                        eprintln!(
                                            "populate: {location}: detector `{symbol}` unavailable: {cause}"
                                        );
                                    }
                                }
                                self.meta.insert(location, initial, &tree)?;
                                report.media_analyzed += 1;
                            }
                            Err(
                                e @ (acoi::Error::Reject { .. }
                                | acoi::Error::DetectorFailed { .. }),
                            ) => {
                                report.media_rejected += 1;
                                eprintln!("populate: {location}: analysis rejected: {e}");
                            }
                            Err(e) => return Err(Error::Acoi(e)),
                        }
                    }
                    _ => {}
                }
            }
        }
        self.text.commit().map_err(Error::Ir)?;
        self.media_cache.clear();
        Ok(report)
    }

    /// Renders the evaluation plan of a query as text — how the query
    /// "breaks down to structured database searches" at the physical
    /// layer.
    pub fn explain(&self, q: &EngineQuery) -> String {
        let mut out = String::new();
        let mut step = 1usize;
        let mut push = |out: &mut String, line: String| {
            out.push_str(&format!("{step}. {line}\n"));
            step += 1;
        };
        push(
            &mut out,
            format!(
                "conceptual selection on {} ({} predicate(s)) over the merged object graph",
                q.conceptual.from_class,
                q.conceptual.predicates.len()
            ),
        );
        if let Some(text) = &q.text {
            push(
                &mut out,
                format!(
                    "ranked text retrieval on {}.{} for {:?}, top {} ({})",
                    q.conceptual.from_class,
                    text.attr,
                    text.query,
                    text.top_n,
                    if text.rank_within {
                        "restricted a-priori to the conceptual candidates"
                    } else {
                        "global ranking, merged afterwards"
                    }
                ),
            );
            if self.text.servers() > 1 {
                push(
                    &mut out,
                    format!(
                        "fan the top-{} request out to {} shared-nothing text servers; the central node merges the local rankings",
                        text.top_n,
                        self.text.servers()
                    ),
                );
            }
            if let Some(st) = &self.last_text_status {
                if st.shards_failed > 0 {
                    push(
                        &mut out,
                        format!(
                            "DEGRADED: {} of {} text servers answered last time (shards {:?} down), estimated quality {:.0}%",
                            st.shards_ok,
                            st.shards_ok + st.shards_failed,
                            st.failed_shards,
                            st.quality * 100.0
                        ),
                    );
                }
            }
        }
        for join in &q.conceptual.joins {
            push(
                &mut out,
                format!("join along association {}", join.association),
            );
        }
        if let Some(media) = &q.media {
            push(
                &mut out,
                format!(
                    "media-event filter: {} on attribute {} (meta-index parse trees)",
                    media.event, media.attr
                ),
            );
        }
        push(&mut out, format!("top {} by text score", q.limit));
        out
    }

    /// Executes an integrated query.
    pub fn query(&mut self, q: &EngineQuery) -> Result<Vec<EngineHit>> {
        // 1. Conceptual selection and joins.
        let rows = self.webspace.execute(&q.conceptual)?;

        // 2. Ranked text retrieval on the start class. The optimizer
        //    choice: global ranking merged afterwards, or ranking
        //    restricted a-priori to the conceptual candidates.
        let mut scores: Option<HashMap<String, f64>> = None;
        if q.text.is_none() {
            self.last_text_status = None;
        }
        if let Some(text) = &q.text {
            let result = if text.rank_within {
                let candidates: std::collections::HashSet<String> = rows
                    .iter()
                    .filter_map(|r| r.chain.first())
                    .map(|id| text_doc_key(id, &text.attr))
                    .collect();
                self.text
                    .query_restricted(&text.query, text.top_n, &candidates)
                    .map_err(Error::Ir)?
            } else {
                // Parallel, isolated evaluation: failed servers drop
                // out and the merge ranks the survivors.
                self.text
                    .query_parallel(&text.query, text.top_n)
                    .map_err(Error::Ir)?
            };
            self.last_text_status = Some(TextQueryStatus {
                shards_ok: result.shards_ok,
                shards_failed: result.shards_failed,
                failed_shards: result.failed_shards.clone(),
                quality: result.quality,
            });
            let hits = result.hits;
            let mut map = HashMap::new();
            for hit in hits {
                if let Some((object_id, attr)) = split_text_doc_key(&hit.url) {
                    if attr == text.attr {
                        map.insert(object_id.to_owned(), hit.score);
                    }
                }
            }
            scores = Some(map);
        }

        // 3. Media evidence on the final class.
        let mut out = Vec::new();
        for row in rows {
            let first = row.chain.first().expect("non-empty chain").clone();
            let score = match &scores {
                Some(map) => match map.get(&first) {
                    Some(s) => *s,
                    None => continue, // outside the ranked top-N
                },
                None => 0.0,
            };

            let (video, shots) = if let Some(media) = &q.media {
                // The event must exist in the grammar — an atom-paired
                // whitebox detector (netplay, isInterview, …).
                if self.grammar.detector(&media.event).is_none() {
                    return Err(Error::Query(format!(
                        "unknown media event `{}` (not a detector of the grammar)",
                        media.event
                    )));
                }
                let last = row.chain.last().expect("non-empty chain");
                let Some(object) = self.webspace.object(last) else {
                    continue;
                };
                let Some(AttrValue::Media { location, .. }) = object.attr(&media.attr)
                else {
                    continue;
                };
                let location = location.clone();
                if !self.meta.contains(&location) {
                    continue; // the object was never analysed
                }
                // Load the stored tree only when the cache cannot answer.
                let need_tree = match self.media_cache.get(&location) {
                    Some(ev) if media.event == "netplay" => ev.shots.is_none(),
                    Some(ev) => !ev.events.contains_key(&media.event),
                    None => true,
                };
                let tree = if need_tree {
                    match self.meta.tree(&self.grammar, &location) {
                        Ok(t) => t,
                        Err(_) => continue,
                    }
                } else {
                    acoi::ParseTree::new()
                };
                let evidence = self.media_cache.entry(location.clone()).or_default();
                if media.event == "netplay" {
                    // Video events answer at shot granularity.
                    let shots = evidence
                        .shots
                        .get_or_insert_with(|| video_shots(&tree))
                        .clone();
                    let matching: Vec<_> = shots
                        .into_iter()
                        .filter(|s| s.netplay == Some(true))
                        .collect();
                    if matching.is_empty() {
                        continue;
                    }
                    (Some(location), matching)
                } else {
                    // Generic event: any node of that symbol with a true
                    // outcome.
                    let event = media.event.clone();
                    let holds = *evidence.events.entry(event).or_insert_with(|| {
                        tree.find_all(&media.event).into_iter().any(|n| {
                            tree.value(n) == Some(&feagram::FeatureValue::Bit(true))
                        })
                    });
                    if !holds {
                        continue;
                    }
                    (Some(location), Vec::new())
                }
            } else {
                (None, Vec::new())
            };

            out.push(EngineHit {
                chain: row.chain,
                score,
                video,
                shots,
            });
        }

        out.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then_with(|| a.chain.cmp(&b.chain))
        });
        out.truncate(q.limit);
        Ok(out)
    }

    /// Re-checks one analysed object against its source: when
    /// `still_valid` reports the source data changed, the stored parse
    /// tree is regenerated from scratch ("the FDS uses a special
    /// detector associated to the start symbol to determine if the
    /// complete stored parse tree has become invalid due to changes of
    /// the source data"). Returns whether a regeneration happened.
    pub fn refresh_source(
        &mut self,
        source: &str,
        still_valid: impl Fn(&str) -> bool,
    ) -> Result<bool> {
        self.media_cache.remove(source);
        self.fds
            .refresh_source(
                &self.grammar,
                &mut self.registry,
                &mut self.meta,
                source,
                still_valid,
            )
            .map_err(Error::Acoi)
    }

    /// Installs a new detector implementation and incrementally
    /// maintains the meta-index (the FDS path).
    pub fn upgrade_detector(
        &mut self,
        detector: &str,
        level: RevisionLevel,
        new_impl: acoi::DetectorFn,
    ) -> Result<MaintenanceReport> {
        self.media_cache.clear();
        self.fds
            .upgrade_detector(
                &self.grammar,
                &mut self.registry,
                &mut self.meta,
                detector,
                level,
                new_impl,
            )
            .map_err(Error::Acoi)
    }

    /// Re-parses every analysed object whose stored tree carries
    /// rejected-with-cause holes left by an unavailable `detector` —
    /// the low-priority heal the scheduler queues when a circuit breaks.
    /// Healthy detector results are reused from the harvest cache, so a
    /// heal costs only the calls the outage originally skipped.
    pub fn heal_detector(&mut self, detector: &str) -> Result<MaintenanceReport> {
        self.media_cache.clear();
        self.fds
            .heal_detector(&self.grammar, &mut self.registry, &mut self.meta, detector)
            .map_err(Error::Acoi)
    }
}

/// Key of a Hypertext attribute in the full-text document registry.
fn text_doc_key(object_id: &str, attr: &str) -> String {
    format!("{object_id}#{attr}")
}

fn split_text_doc_key(key: &str) -> Option<(&str, &str)> {
    key.rsplit_once('#')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_doc_keys_round_trip() {
        let key = text_doc_key("player:seles0", "history");
        assert_eq!(
            split_text_doc_key(&key),
            Some(("player:seles0", "history"))
        );
        assert_eq!(split_text_doc_key("nokey"), None);
    }
}
