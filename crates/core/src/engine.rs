//! The search engine: lifecycle stages over the three levels.
//!
//! * **Modeling** — an [`EngineConfig`] carries the webspace schema, the
//!   re-engineering template rules, the feature grammar and the detector
//!   registry (the developer "does not have to model all the system
//!   levels: the focus is on the upper levels").
//! * **Populating** — [`Engine::populate`] runs the crawler output
//!   through the web-object retriever, stores every materialized view as
//!   an XML document (the physical level), feeds Hypertext attributes to
//!   the full-text indexer, and hands every Video and Audio attribute to
//!   the FDE, whose parse tree lands in the meta-index.
//! * **Maintaining** — [`Engine::upgrade_detector`] delegates to the FDS:
//!   incremental re-parses with memoised detector outputs.
//! * **Querying** — [`Engine::query`] combines conceptual selection,
//!   ranked text retrieval and media-event evidence into one answer.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use acoi::{DetectorRegistry, Fde, Fds, MaintenanceReport, MetaIndex, RevisionLevel, Token};
use faults::{Budget, FaultPlan};
use feagram::{FeatureValue, Grammar};
use monet::storage::{write_atomic, FsBackend, StorageBackend};
use monet::wal::{Wal, WalHandle};
use monetxml::XmlStore;
use webspace::{AttrValue, MaterializedView, MediaType, Retriever, WebspaceIndex, WebspaceSchema};

use crate::admission::{
    AdmissionConfig, AdmissionGate, OverloadLevel, OverloadStatus, QueryOutcome,
};
use crate::error::{Error, PartialProgress, Result};
use crate::maintenance::{MaintenanceJob, MaintenanceKind};
use crate::persist::{
    self, Manifest, RecoveryReport, MANIFEST, MANIFEST_PREV, WAL_DIR,
};
use crate::query::{EngineHit, EngineQuery};
use crate::shots::video_shots;

/// Everything the developer models up front.
pub struct EngineConfig {
    /// The conceptual schema.
    pub schema: WebspaceSchema,
    /// Template rules for HTML re-engineering.
    pub retriever: Retriever,
    /// The feature grammar source (e.g.
    /// [`feagram::paper::VIDEO_GRAMMAR`]).
    pub grammar_source: String,
    /// Implementations for the grammar's blackbox detectors.
    pub registry: DetectorRegistry,
    /// Shared-nothing text servers backing full-text retrieval. `1`
    /// keeps the single-server semantics (and byte-identical rankings);
    /// more servers distribute documents per-document and answer
    /// queries in parallel, degrading gracefully when servers fail.
    pub text_servers: usize,
    /// Replicas per text shard, each placed on a distinct server.
    /// `0` keeps the unreplicated semantics; with `R > 0` a query
    /// fails over to a replica before ever degrading, as long as any
    /// copy of the shard's group survives. Must leave room for
    /// distinct hosts (`text_replicas < text_servers` unless 0).
    pub text_replicas: usize,
    /// Fault plan consulted by the text servers (labels `shard:<i>`).
    /// `None` means no injection anywhere.
    pub faults: Option<Arc<FaultPlan>>,
    /// Spread text reads round-robin over every copy of each shard
    /// group instead of always consulting the primary. Answers stay
    /// byte-identical (replicas are exact copies and the failover
    /// order is preserved); what changes is which copy does the work.
    /// Ignored when `text_replicas == 0`.
    pub text_read_scaling: bool,
}

/// What one population run did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PopulateReport {
    /// Pages processed.
    pub pages: usize,
    /// Web objects extracted (after merging).
    pub objects: usize,
    /// Association instances extracted.
    pub associations: usize,
    /// Hypertext attributes indexed for full text.
    pub text_documents: usize,
    /// Multimedia objects (videos, audio clips) analysed by the FDE.
    pub media_analyzed: usize,
    /// Multimedia objects whose analysis was rejected by the grammar.
    pub media_rejected: usize,
    /// Multimedia objects analysed, but with holes: one or more
    /// detectors were unavailable, so their parse tree carries
    /// rejected-with-cause nodes awaiting a heal.
    pub media_degraded: usize,
    /// Total unavailable-detector failures recorded across the run
    /// (rejected nodes over all degraded objects).
    pub detector_failures: usize,
    /// Blackbox detector executions during analysis.
    pub detector_calls: usize,
}

/// Wall-clock breakdown of one [`Engine::populate_with`] run, by
/// pipeline stage. Deliberately **not** part of [`PopulateReport`]:
/// reports are compared byte-for-byte across worker counts, and wall
/// clocks never are. Retrieved via [`Engine::last_populate_timings`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimings {
    /// Conceptual extraction (page parsing + view finalization).
    pub extract_ms: f64,
    /// Physical storage: view documents + merged object graph.
    pub store_ms: f64,
    /// Schema walk collecting the text and media workloads.
    pub collect_ms: f64,
    /// Full-text indexing of the hypertext attributes.
    pub text_ms: f64,
    /// Media analysis (detector cascade), wall time of the whole stage.
    pub analyse_ms: f64,
    /// Time spent merging parse trees into the meta-index, in source
    /// order (a subset of the analyse stage's wall time).
    pub merge_ms: f64,
}

impl StageTimings {
    /// Total wall time across the stages (merge is counted inside
    /// analyse, not added again).
    pub fn total_ms(&self) -> f64 {
        self.extract_ms + self.store_ms + self.collect_ms + self.text_ms + self.analyse_ms
    }
}

/// Options controlling how [`Engine::populate_with`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PopulateOptions {
    /// FDE worker threads for media analysis. `1` analyses every
    /// document in source order on the calling thread; `N > 1` fans
    /// the analyses over a pool of `N` workers while a single writer
    /// merges the parse trees back in source order, so stores, report
    /// counters and log lines are identical to the sequential run.
    pub workers: usize,
}

impl Default for PopulateOptions {
    fn default() -> Self {
        PopulateOptions { workers: 1 }
    }
}

/// The integrated search engine.
pub struct Engine {
    schema: WebspaceSchema,
    retriever: Retriever,
    grammar: Grammar,
    /// Shared with background maintenance jobs, which install upgraded
    /// implementations through its interior locks while the engine
    /// keeps serving (foreground queries never execute detectors, so
    /// the early swap cannot change an answer).
    registry: Arc<DetectorRegistry>,
    webspace: WebspaceIndex,
    /// Conceptual data as stored XML (the physical level's view store).
    views: XmlStore,
    text: ir::DistributedIndex,
    meta: MetaIndex,
    fds: Fds,
    /// Shard status of the last text retrieval, for degraded-plan
    /// reporting. `None` until a text query ran.
    last_text_status: Option<TextQueryStatus>,
    /// Lazily computed media evidence per analysed location: the shot
    /// list and per-event verdicts. Loading a stored parse tree means
    /// reconstructing it from the Monet relations, so repeated queries
    /// must not re-load it per candidate. Invalidated whenever the
    /// meta-index changes (populate / maintenance / source refresh).
    media_cache: HashMap<String, MediaEvidence>,
    /// Whether a fault plan is wired in anywhere. Fault-injected runs
    /// must exercise the real evaluation path on every query (the
    /// injection draws advance per call), so the answer cache is
    /// bypassed entirely.
    faults_active: bool,
    /// Epoch-keyed LRU cache of full query answers.
    query_cache: QueryCache,
    /// Wired in by [`Engine::persist_to`] / [`Engine::open`]: the
    /// storage backend, WAL and current checkpoint generation.
    durability: Option<Durability>,
    /// The admission gate and degradation ladder. Shared with any
    /// [`crate::admission::QueryService`] wrapping this engine.
    admission: Arc<AdmissionGate>,
    /// The fault plan shared with the text servers, kept so
    /// [`Engine::set_obs`] can thread observability into it too.
    faults_plan: Option<Arc<FaultPlan>>,
    /// Observability handle. Disabled by default: no clock reads, no
    /// recording, byte-identical answers. [`Engine::set_obs`] turns the
    /// lights on across every layer.
    obs: obs::Obs,
    /// Engine-level metric handles, present iff obs is enabled.
    metrics: Option<EngineMetrics>,
    /// The recovery report of the `open` that produced this engine.
    last_recovery: Option<RecoveryReport>,
    /// Per-stage wall-clock breakdown of the most recent populate run.
    last_populate_timings: StageTimings,
    /// Detectors with a maintenance job in flight. Shared with each
    /// job's busy guard, which releases its entry on commit, abort or
    /// drop — a second `begin_*` on the same detector is refused with
    /// [`Error::MaintenanceBusy`] instead of clobbering the first
    /// job's pinned snapshot.
    maintenance_inflight: Arc<Mutex<HashSet<String>>>,
    /// The last control-plane decision executed against this engine
    /// (action + reason), surfaced by EXPLAIN ANALYZE.
    last_control_decision: Option<String>,
    /// The SLO engine, when a telemetry layer is attached
    /// ([`crate::Telemetry::attach`]); [`Engine::overload_status`]
    /// folds its burn-rate context into the gate snapshot.
    slo: Option<Arc<Mutex<obs::SloEngine>>>,
}

/// Engine-level metric handles, registered once in
/// [`Engine::set_obs`]. Counters record at event time; gauges are
/// refreshed from live state on every [`Engine::metrics_text`] /
/// [`Engine::metrics_json`] scrape.
struct EngineMetrics {
    queries: obs::Counter,
    query_deadlines: obs::Counter,
    cache_hits: obs::Counter,
    cache_misses: obs::Counter,
    degraded_answers: obs::Counter,
    populate_runs: obs::Counter,
    populate_pages: obs::Counter,
    media_analyzed: obs::Counter,
    detector_calls: obs::Counter,
    checkpoints: obs::Counter,
    query_cache_entries: obs::Gauge,
    media_cache_entries: obs::Gauge,
    views_epoch: obs::Gauge,
    meta_epoch: obs::Gauge,
    text_epoch: obs::Gauge,
    snapshot_generation: obs::Gauge,
    recovery_wal_replayed: obs::Gauge,
    recovery_wal_skipped: obs::Gauge,
    recovery_fell_back: obs::Gauge,
    monet_bytes_resident: obs::Gauge,
    monet_dict_entries: obs::Gauge,
    monet_dict_hit_ratio: obs::Gauge,
    /// Per-detector heal-backlog gauges (`engine_heal_backlog`),
    /// registered on first sight of a detector and re-stamped at every
    /// meta-index mutation point (the backlog cannot change between
    /// mutations, and the scan needs mutable store access).
    heal_backlog: HashMap<String, obs::Gauge>,
}

impl EngineMetrics {
    fn register(reg: &obs::Registry) -> EngineMetrics {
        EngineMetrics {
            queries: reg.counter("engine_queries_total", "Queries executed (all entry points)"),
            query_deadlines: reg.counter(
                "engine_query_deadline_total",
                "Queries cancelled by their budget",
            ),
            cache_hits: reg.counter(
                "engine_query_cache_hits_total",
                "Answers served from the epoch-keyed query cache",
            ),
            cache_misses: reg.counter(
                "engine_query_cache_misses_total",
                "Cache consultations that had to execute the query",
            ),
            degraded_answers: reg.counter(
                "engine_degraded_answers_total",
                "Answers stamped DEGRADED (brownout cuts or failed shards)",
            ),
            populate_runs: reg.counter("engine_populate_runs_total", "Population runs"),
            populate_pages: reg.counter(
                "engine_populate_pages_total",
                "Crawled pages processed across population runs",
            ),
            media_analyzed: reg.counter(
                "engine_media_analyzed_total",
                "Multimedia objects analysed by the FDE",
            ),
            detector_calls: reg.counter(
                "engine_detector_calls_total",
                "Blackbox detector executions during population",
            ),
            checkpoints: reg.counter("engine_checkpoints_total", "Checkpoints committed"),
            query_cache_entries: reg.gauge(
                "engine_query_cache_entries",
                "Distinct answers currently cached",
            ),
            media_cache_entries: reg.gauge(
                "engine_media_cache_entries",
                "Memoised media-evidence entries currently held",
            ),
            views_epoch: reg.gauge("engine_views_epoch", "Mutation epoch of the view store"),
            meta_epoch: reg.gauge("engine_meta_epoch", "Mutation epoch of the meta-index store"),
            text_epoch: reg.gauge("engine_text_epoch", "Combined mutation epoch of the text shards"),
            snapshot_generation: reg.gauge(
                "engine_snapshot_generation",
                "Generation of the newest committed checkpoint",
            ),
            recovery_wal_replayed: reg.gauge(
                "engine_recovery_wal_replayed",
                "WAL records replayed by the recovery that opened this engine",
            ),
            recovery_wal_skipped: reg.gauge(
                "engine_recovery_wal_skipped",
                "WAL records skipped as already applied during recovery",
            ),
            recovery_fell_back: reg.gauge(
                "engine_recovery_fell_back",
                "1 when recovery fell back past the newest checkpoint generation",
            ),
            monet_bytes_resident: reg.gauge(
                "monet_bytes_resident",
                "Bytes resident in materialized BAT catalogs (views, meta, text shards)",
            ),
            monet_dict_entries: reg.gauge(
                "monet_dict_entries",
                "Distinct strings across the catalogs' shared dictionaries",
            ),
            monet_dict_hit_ratio: reg.gauge(
                "monet_dict_hit_ratio",
                "Dictionary intern hit ratio, in per-mille (987 = 98.7% of interns were repeats)",
            ),
            heal_backlog: HashMap::new(),
        }
    }
}

/// The durable half of an engine: where checkpoints live and the log
/// every mutation goes through first.
struct Durability {
    dir: PathBuf,
    backend: Arc<dyn StorageBackend>,
    wal: Arc<Mutex<Wal>>,
    /// Generation of the newest committed checkpoint.
    snapshot_id: u64,
}

fn lock_wal(wal: &Arc<Mutex<Wal>>) -> Result<std::sync::MutexGuard<'_, Wal>> {
    wal.lock()
        .map_err(|_| Error::Persist(monet::Error::Wal("log mutex poisoned".into())))
}

/// How many distinct query answers [`QueryCache`] retains.
const QUERY_CACHE_CAPACITY: usize = 64;

/// LRU cache of complete query answers, validated by store epochs.
///
/// A cached answer is only returned while the `(views, meta, text)`
/// epoch triple it was computed under still matches the stores, so any
/// ingestion or maintenance makes stale entries unreachable even
/// without an explicit [`QueryCache::clear`] (the mutating engine
/// entry points clear eagerly anyway, to free the memory).
struct QueryCache {
    capacity: usize,
    entries: HashMap<String, CachedAnswer>,
    /// Recency order, least recent first.
    order: VecDeque<String>,
    hits: u64,
    misses: u64,
}

#[derive(Clone)]
struct CachedAnswer {
    /// `(views, meta, text)` store epochs at compute time.
    epochs: (u64, u64, u64),
    hits: Vec<EngineHit>,
    /// The [`TextQueryStatus`] the answer was produced with, restored
    /// on a cache hit so degraded-plan reporting stays consistent.
    text_status: Option<TextQueryStatus>,
}

impl QueryCache {
    fn new(capacity: usize) -> QueryCache {
        QueryCache {
            capacity,
            entries: HashMap::new(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
        }
    }

    fn lookup(&mut self, key: &str, epochs: (u64, u64, u64)) -> Option<CachedAnswer> {
        let fresh = match self.entries.get(key) {
            Some(entry) => entry.epochs == epochs,
            None => {
                self.misses += 1;
                return None;
            }
        };
        if !fresh {
            self.misses += 1;
            self.entries.remove(key);
            self.order.retain(|k| k != key);
            return None;
        }
        self.hits += 1;
        if let Some(pos) = self.order.iter().position(|k| k == key) {
            let k = self.order.remove(pos).expect("position from iter");
            self.order.push_back(k);
        }
        self.entries.get(key).cloned()
    }

    fn insert(&mut self, key: String, answer: CachedAnswer) {
        if self.entries.insert(key.clone(), answer).is_some() {
            self.order.retain(|k| k != &key);
        }
        self.order.push_back(key);
        while self.entries.len() > self.capacity {
            match self.order.pop_front() {
                Some(oldest) => {
                    self.entries.remove(&oldest);
                }
                None => break,
            }
        }
    }

    /// Drops every entry; the hit/miss counters survive.
    fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
    }
}

#[derive(Default, Clone)]
struct MediaEvidence {
    shots: Option<Vec<crate::shots::ShotMeta>>,
    events: HashMap<String, bool>,
}

/// Undo log for the media-evidence memo: enough to roll a cancelled
/// query's insertions back precisely (entries it created, shot lists it
/// materialised on existing entries, event verdicts it memoised), so a
/// budget cut-off leaves the cache exactly as found.
#[derive(Default)]
struct MediaUndo {
    /// Locations whose cache entry this query created.
    inserted: Vec<String>,
    /// Pre-existing entries whose `shots` went `None` → `Some`.
    shots_set: Vec<String>,
    /// `(location, event)` verdicts memoised onto pre-existing entries.
    events_added: Vec<(String, String)>,
}

impl MediaUndo {
    /// Records what the upcoming mutation of `location` for `event`
    /// will change, judged against the cache's current state.
    fn note(&mut self, cache: &HashMap<String, MediaEvidence>, location: &str, event: &str) {
        match cache.get(location) {
            None => self.inserted.push(location.to_owned()),
            Some(ev) => {
                if event == "netplay" {
                    if ev.shots.is_none() {
                        self.shots_set.push(location.to_owned());
                    }
                } else if !ev.events.contains_key(event) {
                    self.events_added.push((location.to_owned(), event.to_owned()));
                }
            }
        }
    }

    /// Reverts every recorded mutation.
    fn apply(self, cache: &mut HashMap<String, MediaEvidence>) {
        for location in self.inserted {
            cache.remove(&location);
        }
        for location in self.shots_set {
            if let Some(ev) = cache.get_mut(&location) {
                ev.shots = None;
            }
        }
        for (location, event) in self.events_added {
            if let Some(ev) = cache.get_mut(&location) {
                ev.events.remove(&event);
            }
        }
    }
}

/// Shard status of the most recent text retrieval: how distributed (and
/// how degraded) the ranking behind the current answer was.
#[derive(Debug, Clone, PartialEq)]
pub struct TextQueryStatus {
    /// Text servers whose local ranking made it into the merge.
    pub shards_ok: usize,
    /// Text servers that failed (error, hang past deadline, panic).
    pub shards_failed: usize,
    /// Which servers failed.
    pub failed_shards: Vec<usize>,
    /// Shard groups whose primary failed but a replica answered — the
    /// group still counts towards `shards_ok` and full quality.
    pub failovers: usize,
    /// Estimated answer quality: fraction of the collection's documents
    /// held by surviving servers.
    pub quality: f64,
    /// Which copy index served each shard group (`0` = primary), in
    /// group order. `None` for a group no copy answered.
    pub served_by: Vec<Option<usize>>,
    /// Whether round-robin read-scaling routed this query (as opposed
    /// to the primary-first default).
    pub routed: bool,
}

/// One traced query: the answer plus the measured EXPLAIN ANALYZE
/// tree, from [`Engine::query_traced`].
#[derive(Debug, Clone)]
pub struct QueryTrace {
    /// The answer, identical to what [`Engine::query`] returns.
    pub hits: Vec<EngineHit>,
    /// The phase tree (wall time, work units, outcome, per-shard
    /// children). `None` when observability is disabled.
    pub trace: Option<obs::TraceNode>,
}

impl QueryTrace {
    /// Renders the trace as an EXPLAIN ANALYZE-style report.
    pub fn render(&self) -> String {
        match &self.trace {
            Some(t) => format!("EXPLAIN ANALYZE\n{}", t.render()),
            None => {
                "EXPLAIN ANALYZE\n(observability disabled: no trace collected)\n".to_owned()
            }
        }
    }
}

impl Engine {
    /// Builds an engine from its model.
    pub fn new(config: EngineConfig) -> Result<Engine> {
        let grammar = feagram::parse_grammar(&config.grammar_source)?;
        let fds = Fds::new(&grammar);
        let mut text = ir::DistributedIndex::with_replication(
            config.text_servers,
            ir::ScoreModel::TfIdf,
            config.text_replicas,
        )
        .map_err(Error::Ir)?;
        if let Some(plan) = &config.faults {
            text.set_fault_plan(Arc::clone(plan));
        }
        if config.text_read_scaling {
            text.set_read_routing(ir::ReadRouting::RoundRobin);
        }
        let faults_active = config.faults.is_some();
        Ok(Engine {
            webspace: WebspaceIndex::new(config.schema.clone()),
            schema: config.schema,
            retriever: config.retriever,
            grammar,
            registry: Arc::new(config.registry),
            views: XmlStore::new(),
            text,
            meta: MetaIndex::new(),
            fds,
            last_text_status: None,
            media_cache: HashMap::new(),
            faults_active,
            query_cache: QueryCache::new(QUERY_CACHE_CAPACITY),
            durability: None,
            admission: AdmissionGate::new(AdmissionConfig::default()),
            faults_plan: config.faults,
            obs: obs::Obs::disabled(),
            metrics: None,
            last_recovery: None,
            last_populate_timings: StageTimings::default(),
            maintenance_inflight: Arc::new(Mutex::new(HashSet::new())),
            last_control_decision: None,
            slo: None,
        })
    }

    /// Opens a durable engine from `dir` (the real filesystem):
    /// recovers the newest valid checkpoint, replays the WAL tail, and
    /// leaves the engine logging to the same WAL. See
    /// [`Engine::open_with_backend`].
    pub fn open(config: EngineConfig, dir: impl AsRef<Path>) -> Result<(Engine, RecoveryReport)> {
        Self::open_with_backend(config, FsBackend::shared(), dir)
    }

    /// Opens a durable engine through an arbitrary storage backend.
    ///
    /// Recovery: load the newest checkpoint generation whose manifest
    /// and snapshots all pass their CRC-32 checks (falling back to the
    /// previous generation when the newest is corrupt or torn), resume
    /// the store epochs recorded in the manifest, replay every intact
    /// WAL record past the manifest's watermark (a torn final record —
    /// a crashed append — is silently dropped; replay is idempotent),
    /// then rebuild the derived state: the webspace graph from the
    /// stored views, the meta-index registry from the stored parse
    /// trees. The returned [`RecoveryReport`] says what was loaded,
    /// replayed, skipped and — on fallback — why.
    pub fn open_with_backend(
        config: EngineConfig,
        backend: Arc<dyn StorageBackend>,
        dir: impl AsRef<Path>,
    ) -> Result<(Engine, RecoveryReport)> {
        let dir = dir.as_ref().to_path_buf();
        let faults = config.faults.clone();
        let mut engine = Engine::new(config)?;
        let mut report = RecoveryReport::default();

        let wal = monet::wal::open_shared(Arc::clone(&backend), dir.join(WAL_DIR))
            .map_err(Error::Persist)?;
        let generation = match persist::load_newest_generation(backend.as_ref(), &dir, &mut report)
        {
            Ok(g) => g,
            Err(e) => {
                // Every checkpoint generation is corrupt. Last resort:
                // if the log still reaches back to LSN 0 — no checkpoint
                // ever garbage-collected it — empty stores plus a full
                // replay reproduce every logged write.
                let reaches_origin = lock_wal(&wal)?
                    .replay_from(0)
                    .map_err(Error::Persist)?
                    .first()
                    .map(|r| r.lsn)
                    == Some(0);
                if !reaches_origin {
                    return Err(e);
                }
                report.fell_back = true;
                report.snapshot_id = 0;
                report.notes.push(format!(
                    "{e}; the log still reaches LSN 0 — rebuilding every store by full replay"
                ));
                None
            }
        };
        let configured_servers = engine.text.servers();
        let configured_replicas = engine.text.replication();
        let (mut views, mut meta_store, mut text, watermark) = match generation {
            Some(g) => {
                if g.manifest.shard_epochs.len() != configured_servers {
                    report.notes.push(format!(
                        "config asks for {configured_servers} text servers but the checkpoint \
                         was written with {}; using the checkpoint's count (routing depends on it)",
                        g.manifest.shard_epochs.len()
                    ));
                }
                let mut views = g.views;
                let mut meta_store = g.meta_store;
                let mut text = g.text;
                if text.replication() != configured_replicas {
                    // Replicas are derived state (snapshots of their
                    // primaries), so unlike the shard count the config
                    // wins: rebuild the replica sets at the requested
                    // factor — unless it cannot place distinct hosts.
                    match text.set_replication(configured_replicas) {
                        Ok(()) => report.notes.push(format!(
                            "checkpoint was written with {} text replica(s); rebuilt at the \
                             configured {configured_replicas}",
                            g.manifest.text_replicas
                        )),
                        Err(e) => report.notes.push(format!(
                            "cannot apply configured text replication {configured_replicas} \
                             to the checkpoint's {} server(s) ({e}); keeping {}",
                            g.manifest.shard_epochs.len(),
                            g.manifest.text_replicas
                        )),
                    }
                }
                // Resume epochs monotonically from the manifest BEFORE
                // replay, so replayed mutations advance past every
                // epoch value the previous process could have exposed.
                views.set_epoch(g.manifest.views_epoch);
                meta_store.set_epoch(g.manifest.meta_epoch);
                text.set_shard_epochs(&g.manifest.shard_epochs);
                (views, meta_store, text, g.manifest.watermark)
            }
            None => (
                XmlStore::new(),
                XmlStore::new(),
                ir::DistributedIndex::with_replication(
                    configured_servers,
                    ir::ScoreModel::TfIdf,
                    configured_replicas,
                )
                .map_err(Error::Ir)?,
                0,
            ),
        };

        // Replay the WAL tail into the raw stores (no WAL attached yet,
        // so replayed operations are not re-logged).
        let records = lock_wal(&wal)?.replay_from(watermark).map_err(Error::Persist)?;
        persist::apply_wal_records(&mut views, &mut meta_store, &mut text, &records, &mut report)?;

        // Rebuild derived state from the recovered stores.
        engine.webspace = WebspaceIndex::new(engine.schema.clone());
        for root in views.roots().to_vec() {
            let doc = views.reconstruct(root)?;
            let view = MaterializedView::from_document(&doc)?;
            engine.webspace.add_view(&view)?;
        }
        engine.views = views;
        engine.meta = MetaIndex::from_store(meta_store, |location| {
            vec![Token::new(
                "location",
                FeatureValue::url(location.to_owned()),
            )]
        });
        if let Some(plan) = &faults {
            text.set_fault_plan(Arc::clone(plan));
        }
        engine.text = text;

        engine.attach_wal(&wal);
        engine.durability = Some(Durability {
            dir,
            backend,
            wal,
            snapshot_id: report.snapshot_id,
        });
        engine.last_recovery = Some(report.clone());
        Ok((engine, report))
    }

    /// Checkpoints the engine to `dir` on the real filesystem. See
    /// [`Engine::persist_to_backend`].
    pub fn persist_to(&mut self, dir: impl AsRef<Path>) -> Result<()> {
        self.persist_to_backend(FsBackend::shared(), dir)
    }

    /// Checkpoints the engine through an arbitrary storage backend and
    /// leaves it durable: every subsequent insert/delete is logged to
    /// the WAL in `dir` before any store mutates.
    ///
    /// The write order makes the manifest swap the commit point: all
    /// snapshot files land atomically first (temp + rename), then
    /// `MANIFEST` rotates to `MANIFEST.prev` and the new manifest takes
    /// its place. A crash at any step leaves either the old or the new
    /// generation fully intact. Afterwards, snapshots older than the
    /// fallback generation and WAL segments below its watermark are
    /// garbage-collected.
    pub fn persist_to_backend(
        &mut self,
        backend: Arc<dyn StorageBackend>,
        dir: impl AsRef<Path>,
    ) -> Result<()> {
        let dir = dir.as_ref().to_path_buf();
        let mut checkpoint_span = self.obs.span("engine.checkpoint");
        backend.create_dir_all(&dir).map_err(Error::Persist)?;

        // Reuse the live WAL when re-checkpointing the same directory
        // (a fresh open would be fine too, but pointless); otherwise
        // open the log now so the manifest can record its watermark.
        let wal = match &self.durability {
            Some(d) if d.dir == dir => Arc::clone(&d.wal),
            _ => monet::wal::open_shared(Arc::clone(&backend), dir.join(WAL_DIR))
                .map_err(Error::Persist)?,
        };
        lock_wal(&wal)?.flush().map_err(Error::Persist)?;
        let watermark = lock_wal(&wal)?.next_lsn();

        let prev = if backend.exists(&dir.join(MANIFEST)) {
            let bytes = backend.read(&dir.join(MANIFEST)).map_err(Error::Persist)?;
            Manifest::decode(&bytes).ok()
        } else {
            None
        };
        let id = prev.as_ref().map(|m| m.snapshot_id).unwrap_or(0) + 1;

        // Snapshots first (each atomic on its own)…
        let views_bytes = self.views.snapshot()?;
        write_atomic(backend.as_ref(), &persist::views_snap(&dir, id), &views_bytes)
            .map_err(Error::Persist)?;
        let meta_bytes = self.meta.store().snapshot()?;
        write_atomic(backend.as_ref(), &persist::meta_snap(&dir, id), &meta_bytes)
            .map_err(Error::Persist)?;
        let shard_bytes = self.text.snapshot_shards().map_err(Error::Ir)?;
        for (k, bytes) in shard_bytes.iter().enumerate() {
            write_atomic(backend.as_ref(), &persist::text_snap(&dir, id, k), bytes)
                .map_err(Error::Persist)?;
        }

        // …then the manifest swap commits the generation.
        let manifest = Manifest {
            snapshot_id: id,
            watermark,
            views_epoch: self.views.epoch(),
            meta_epoch: self.meta.store().epoch(),
            shard_epochs: self.text.shard_epochs(),
            text_replicas: self.text.replication() as u32,
            text_layout: self.text.layout().to_vec(),
        };
        let new_path = dir.join("MANIFEST.new");
        backend.write(&new_path, &manifest.encode()).map_err(Error::Persist)?;
        backend.sync(&new_path).map_err(Error::Persist)?;
        if backend.exists(&dir.join(MANIFEST)) {
            backend
                .rename(&dir.join(MANIFEST), &dir.join(MANIFEST_PREV))
                .map_err(Error::Persist)?;
        }
        backend.rename(&new_path, &dir.join(MANIFEST)).map_err(Error::Persist)?;
        backend.sync(&dir).map_err(Error::Persist)?;

        // The fallback generation (prev) must stay loadable: keep its
        // snapshots and every WAL record from its watermark on.
        if let Some(prev) = &prev {
            persist::gc_old_snapshots(backend.as_ref(), &dir, prev.snapshot_id);
            lock_wal(&wal)?.gc_below(prev.watermark).map_err(Error::Persist)?;
        }

        self.attach_wal(&wal);
        if self.obs.is_enabled() {
            if let Ok(mut w) = wal.lock() {
                w.set_obs(&self.obs);
            }
        }
        self.durability = Some(Durability {
            dir,
            backend,
            wal,
            snapshot_id: id,
        });
        checkpoint_span.add_work(1);
        drop(checkpoint_span);
        if let Some(m) = &self.metrics {
            m.checkpoints.inc();
        }
        Ok(())
    }

    /// Attaches one shared WAL to all three stores, each under its own
    /// store tag.
    fn attach_wal(&mut self, wal: &Arc<Mutex<Wal>>) {
        let handle = WalHandle::new(Arc::clone(wal), persist::STORE_VIEWS);
        self.views.set_wal(handle.clone());
        self.meta
            .store_mut()
            .set_wal(handle.for_store(persist::STORE_META));
        self.text.set_wal(handle.for_store(persist::STORE_TEXT));
    }

    /// Re-checkpoints a durable engine to its attached directory,
    /// through its attached backend. Errors when the engine was never
    /// opened or persisted durably.
    pub fn checkpoint(&mut self) -> Result<()> {
        let (backend, dir) = match &self.durability {
            Some(d) => (Arc::clone(&d.backend), d.dir.clone()),
            None => {
                return Err(Error::Config(
                    "checkpoint() requires a durable engine (open or persist_to first)".into(),
                ))
            }
        };
        self.persist_to_backend(backend, dir)
    }

    /// Forces every WAL record appended so far to stable storage. A
    /// no-op for a purely in-memory engine. The mutating entry points
    /// call this at the end of each batch, so fsync cost is paid per
    /// operation batch, not per record.
    pub fn sync_wal(&self) -> Result<()> {
        if let Some(d) = &self.durability {
            lock_wal(&d.wal)?.flush().map_err(Error::Persist)?;
        }
        Ok(())
    }

    /// Generation id of the newest committed checkpoint (0 when the
    /// engine is not durable or has never checkpointed).
    pub fn snapshot_id(&self) -> u64 {
        self.durability.as_ref().map(|d| d.snapshot_id).unwrap_or(0)
    }

    /// A byte string that is equal iff the persistent state of two
    /// engines is equal: the concatenated store snapshots (views, meta,
    /// every text server). The crash harness compares digests of a
    /// reopened engine against pre-/post-operation captures.
    pub fn state_digest(&mut self) -> Result<Vec<u8>> {
        let mut out = self.views.snapshot()?;
        out.extend_from_slice(&self.meta.store().snapshot()?);
        // Content-only shard snapshots: the epoch counters measure how
        // many mutations a history took, and recovery resumes them from
        // the manifest anyway — equal digests must mean equal *state*.
        for shard in self.text.content_snapshot_shards().map_err(Error::Ir)? {
            out.extend_from_slice(&shard);
        }
        Ok(out)
    }

    /// The conceptual schema.
    pub fn schema(&self) -> &WebspaceSchema {
        &self.schema
    }

    /// The feature grammar.
    pub fn grammar(&self) -> &Grammar {
        &self.grammar
    }

    /// The merged object graph.
    pub fn webspace(&self) -> &WebspaceIndex {
        &self.webspace
    }

    /// The stored materialized views (physical level).
    pub fn views(&self) -> &XmlStore {
        &self.views
    }

    /// The meta-index of parse trees.
    pub fn meta(&self) -> &MetaIndex {
        &self.meta
    }

    /// Mutable meta-index access (experiments poke at stored trees).
    pub fn meta_mut(&mut self) -> &mut MetaIndex {
        &mut self.meta
    }

    /// The full-text index (one or more shared-nothing servers).
    pub fn text_index(&self) -> &ir::DistributedIndex {
        &self.text
    }

    /// Mutable full-text index access (deadline / fault-plan knobs).
    pub fn text_index_mut(&mut self) -> &mut ir::DistributedIndex {
        &mut self.text
    }

    /// Shard status of the last text retrieval, if any ran.
    pub fn last_text_status(&self) -> Option<&TextQueryStatus> {
        self.last_text_status.as_ref()
    }

    /// Per-shard-group health of the text tier — document counts,
    /// replica counts, copies believed healthy — the distributed
    /// index's analogue of `Supervisor::detector_health`.
    pub fn shard_health(&self) -> Vec<ir::ShardHealth> {
        self.text.shard_health()
    }

    /// Rebalances the text tier onto `target` servers with the
    /// idf-aware planner, migrating documents and cutting over
    /// epoch-consistently. The answer cache is cleared up front (the
    /// cutover bumps every shard epoch anyway, but a rebalance is rare
    /// and correctness must not lean on epoch-key coverage alone). With
    /// durability attached, the cutover is WAL-logged before the swap;
    /// checkpointing afterwards persists the new layout in the
    /// manifest.
    pub fn rebalance_text(&mut self, target: usize) -> Result<ir::RebalanceReport> {
        self.query_cache.clear();
        let report = ir::Rebalancer::new()
            .rebalance(&mut self.text, target)
            .map_err(Error::Ir)?;
        Ok(report)
    }

    /// Assembles the control plane's observation of the text tier:
    /// server/replica counts, per-shard document loads, the observed
    /// p99 critical path and any servers declared permanently lost at
    /// `loss_threshold` consecutive failures. Cheap — the control loop
    /// calls this under a brief engine borrow every tick.
    pub fn control_view(&self, loss_threshold: u32) -> ir::ClusterView {
        ir::ClusterView {
            servers: self.text.servers(),
            replication: self.text.replication(),
            docs_per_shard: self.text.shard_sizes(),
            shard_p99: self.text.observed_shard_p99(),
            lost_servers: self.text.lost_servers(loss_threshold),
        }
    }

    /// Stages background re-replication around permanently lost text
    /// server `lost`: snapshots every copy the server hosted from a
    /// surviving source and plans placements on survivors. The engine
    /// is untouched; drive the returned job off-lock with
    /// [`ir::RereplicationJob::step`], then hand it to
    /// [`Engine::commit_text_rereplication`].
    pub fn begin_text_rereplication(&mut self, lost: usize) -> Result<ir::RereplicationJob> {
        self.text.begin_rereplication(lost).map_err(Error::Ir)
    }

    /// Cuts a completed re-replication job over: installs the rebuilt
    /// copies on their planned survivors in one critical section
    /// (WAL-audited when durability is attached). Refused with a typed
    /// stale error if the cluster epoch moved since the job was staged.
    /// Clears the answer cache — placement changed even though no
    /// ranking did.
    pub fn commit_text_rereplication(&mut self, job: ir::RereplicationJob) -> Result<usize> {
        self.query_cache.clear();
        self.text.commit_rereplication(job).map_err(Error::Ir)
    }

    /// Records a control-plane decision (action + reason) for EXPLAIN
    /// ANALYZE's `REBALANCE` line.
    pub fn note_control_decision(&mut self, decision: impl Into<String>) {
        self.last_control_decision = Some(decision.into());
    }

    /// The last control-plane decision executed against this engine.
    pub fn last_control_decision(&self) -> Option<&str> {
        self.last_control_decision.as_deref()
    }

    /// The admission gate (shared; clones point at the same gate).
    pub fn admission_gate(&self) -> Arc<AdmissionGate> {
        Arc::clone(&self.admission)
    }

    /// Retunes the admission gate in place.
    pub fn set_admission_config(&mut self, config: AdmissionConfig) {
        self.admission.reconfigure(config);
    }

    /// Current overload state: ladder rung, gate occupancy, lifetime
    /// admission counters, the recent transition log — and, when a
    /// telemetry layer is attached, per-SLO burn-rate context from the
    /// latest evaluation.
    pub fn overload_status(&self) -> OverloadStatus {
        let mut status = self.admission.status();
        if let Some(slo) = &self.slo {
            status.slo = slo.lock().unwrap_or_else(|e| e.into_inner()).statuses();
        }
        status
    }

    /// Wires in the SLO engine evaluated by the telemetry layer, so
    /// [`Engine::overload_status`] can report burn-rate context.
    pub fn set_slo_engine(&mut self, slo: Arc<Mutex<obs::SloEngine>>) {
        self.slo = Some(slo);
    }

    /// Turns observability on: every layer below — conceptual joins,
    /// the view and meta stores, the text shards, the fault plan, the
    /// WAL and the admission gate — records into `o`'s registry and
    /// trace stack from here on. Disabled (the default) the engine
    /// takes zero clock reads and produces byte-identical output.
    pub fn set_obs(&mut self, o: &obs::Obs) {
        self.obs = o.clone();
        self.metrics = o.registry().map(EngineMetrics::register);
        self.webspace.set_obs(o);
        self.views.set_obs(o);
        self.meta.store_mut().set_obs(o);
        self.text.set_obs(o);
        self.admission.set_obs(o);
        if let Some(plan) = &self.faults_plan {
            plan.set_obs(o);
        }
        if let Some(d) = &self.durability {
            if let Ok(mut wal) = d.wal.lock() {
                wal.set_obs(o);
            }
        }
        self.refresh_gauges();
        self.refresh_heal_backlog();
    }

    /// The engine's observability handle (disabled unless
    /// [`Engine::set_obs`] was called).
    pub fn obs(&self) -> &obs::Obs {
        &self.obs
    }

    /// The recovery report of the `open` that produced this engine,
    /// if it was opened from durable storage.
    pub fn last_recovery(&self) -> Option<&RecoveryReport> {
        self.last_recovery.as_ref()
    }

    /// Per-stage wall-clock breakdown of the most recent
    /// [`Engine::populate_with`] run (zeros before the first run).
    pub fn last_populate_timings(&self) -> StageTimings {
        self.last_populate_timings
    }

    /// Re-stamps every scrape-time gauge from live state, without
    /// rendering anything. The telemetry recorder calls this right
    /// before snapshotting the registry so its samples carry current
    /// gauge values, exactly as a text scrape would.
    pub fn refresh_scrape_gauges(&self) {
        self.refresh_gauges();
    }

    /// Re-stamps every scrape-time gauge from live state.
    fn refresh_gauges(&self) {
        let Some(m) = &self.metrics else { return };
        m.query_cache_entries.set(self.query_cache.entries.len() as i64);
        m.media_cache_entries.set(self.media_cache.len() as i64);
        m.views_epoch.set(self.views.epoch() as i64);
        m.meta_epoch.set(self.meta.store().epoch() as i64);
        m.text_epoch.set(self.text.epoch() as i64);
        m.snapshot_generation.set(self.snapshot_id() as i64);
        if let Some(r) = &self.last_recovery {
            m.recovery_wal_replayed.set(r.wal_replayed as i64);
            m.recovery_wal_skipped.set(r.wal_skipped as i64);
            m.recovery_fell_back.set(i64::from(r.fell_back));
        }
        // Data-plane footprint, aggregated over every BAT catalog the
        // engine holds: the view store, the meta-index store and each
        // text shard.
        let mut bytes = 0usize;
        let mut dict = monet::DictStats::default();
        for db in [self.views.db(), self.meta.store().db()]
            .into_iter()
            .chain((0..self.text.servers()).map(|k| self.text.shard(k).db()))
        {
            bytes += db.resident_bytes();
            dict.merge(&db.dict_stats());
        }
        m.monet_bytes_resident.set(bytes as i64);
        m.monet_dict_entries.set(dict.entries as i64);
        m.monet_dict_hit_ratio
            .set((dict.hit_ratio() * 1000.0).round() as i64);
    }

    /// Re-stamps the `engine_heal_backlog{detector=…}` gauge family
    /// from the stored trees' rejected-node relations. Called at every
    /// meta-index mutation point (populate, maintenance commit, source
    /// refresh) and from [`Engine::set_obs`] rather than at scrape
    /// time: the backlog only changes when stored trees do, and the
    /// relation scan needs mutable store access (lazily opened
    /// snapshots materialize relations on first touch).
    fn refresh_heal_backlog(&mut self) {
        if self.metrics.is_none() {
            return;
        }
        let backlog = self.meta.heal_backlog();
        let Some(reg) = self.obs.registry() else { return };
        let Some(m) = self.metrics.as_mut() else { return };
        for gauge in m.heal_backlog.values() {
            gauge.set(0);
        }
        for (detector, count) in backlog {
            m.heal_backlog
                .entry(detector.clone())
                .or_insert_with(|| {
                    reg.labeled_gauge(
                        "engine_heal_backlog",
                        "Rejected-with-cause nodes awaiting a heal, per detector",
                        "detector",
                        &detector,
                    )
                })
                .set(count as i64);
        }
    }

    /// Every registered metric — this engine's and every layer's — in
    /// Prometheus text exposition format. Scrape-time gauges are
    /// refreshed first. Empty when observability is disabled.
    pub fn metrics_text(&self) -> String {
        self.refresh_gauges();
        match self.obs.registry() {
            Some(reg) => reg.render_text(),
            None => String::new(),
        }
    }

    /// The registry contents as a JSON value (bench reports embed it).
    /// [`obs::report::Json::Null`] when observability is disabled.
    pub fn metrics_json(&self) -> obs::report::Json {
        self.refresh_gauges();
        match self.obs.registry() {
            Some(reg) => reg.render_json(),
            None => obs::report::Json::Null,
        }
    }

    /// Memoised media-evidence entries currently held (diagnostics; the
    /// budget-cancellation property tests assert a cancelled query
    /// leaves this count untouched).
    pub fn media_cache_len(&self) -> usize {
        self.media_cache.len()
    }

    /// The detector registry (call counters for experiments).
    pub fn registry(&self) -> &DetectorRegistry {
        &self.registry
    }

    /// Populates the index from crawled `(url, html)` pages,
    /// analysing media sequentially (one worker).
    pub fn populate(&mut self, pages: &[(String, String)]) -> Result<PopulateReport> {
        self.populate_with(pages, PopulateOptions::default())
    }

    /// Populates the index from crawled `(url, html)` pages.
    ///
    /// The run is staged: conceptual extraction, view storage and text
    /// indexing happen in source order on the calling thread; media
    /// analysis — the FDE-dominated stage — fans out over
    /// `options.workers` threads. A single writer merges the resulting
    /// parse trees into the meta-index strictly in source order, so
    /// every store snapshot, report counter and log line is identical
    /// to a `workers: 1` run.
    pub fn populate_with(
        &mut self,
        pages: &[(String, String)],
        options: PopulateOptions,
    ) -> Result<PopulateReport> {
        self.query_cache.clear();
        let mut populate_span = self.obs.span("engine.populate");
        populate_span.add_work(pages.len() as u64);
        let mut report = PopulateReport {
            pages: pages.len(),
            ..PopulateReport::default()
        };
        let mut timings = StageTimings::default();
        let elapsed_ms = |t: std::time::Instant| t.elapsed().as_secs_f64() * 1e3;

        // Conceptual extraction (two passes: objects, then links).
        let stage = std::time::Instant::now();
        let mut extracts = Vec::new();
        for (url, html) in pages {
            extracts.push(self.retriever.extract_page(url, html)?);
        }
        let views: Vec<MaterializedView> = self.retriever.finalize(extracts);
        timings.extract_ms = elapsed_ms(stage);

        // Physical storage of the view documents (one batched load)…
        let stage = std::time::Instant::now();
        let docs: Vec<_> = views
            .iter()
            .map(|view| (view.name.clone(), view.to_document()))
            .collect();
        self.views
            .insert_documents(docs.iter().map(|(name, doc)| (name.as_str(), doc)))?;
        // …and the merged conceptual graph.
        for view in &views {
            self.webspace.add_view(view)?;
            report.associations += view.associations.len();
        }
        report.objects = self.webspace.object_count();
        timings.store_ms = elapsed_ms(stage);

        // Logical level: full text + video analysis, driven by the
        // schema's multimedia hooks. One ordered walk collects both
        // workloads; text is indexed as a batch, media analysis is the
        // stage worth parallelising (each document runs the detector
        // cascade).
        let stage = std::time::Instant::now();
        let object_ids: Vec<String> = self
            .webspace
            .schema()
            .classes()
            .iter()
            .flat_map(|c| {
                self.webspace
                    .objects_of(&c.name)
                    .map(|o| o.id.clone())
                    .collect::<Vec<_>>()
            })
            .collect();

        let mut text_docs: Vec<(String, String)> = Vec::new();
        // Media analysis jobs in source order. Locations already in
        // the meta-index (or queued earlier in this run) are shared
        // media objects — analysed once.
        let mut media_jobs: Vec<(String, Vec<Token>)> = Vec::new();
        let mut queued: HashSet<String> = HashSet::new();
        for id in object_ids {
            let object = self
                .webspace
                .object(&id)
                .expect("id enumerated from the index")
                .clone();
            let class = self
                .schema
                .class(&object.class)
                .ok_or_else(|| Error::Config(format!("unknown class {}", object.class)))?
                .clone();
            for attr_def in &class.attributes {
                let Some(value) = object.attr(&attr_def.name) else {
                    continue;
                };
                match (&attr_def.ty, value) {
                    // Inline hypertext → full-text index.
                    (
                        webspace::AttrType::Media(MediaType::Hypertext),
                        AttrValue::Text(text),
                    ) => {
                        text_docs
                            .push((text_doc_key(&object.id, &attr_def.name), text.clone()));
                    }
                    // Video / audio → FDE analysis into the meta-index.
                    (
                        webspace::AttrType::Media(MediaType::Video | MediaType::Audio),
                        AttrValue::Media { location, .. },
                    ) => {
                        if self.meta.contains(location) || !queued.insert(location.clone())
                        {
                            continue;
                        }
                        let initial = vec![Token::new(
                            "location",
                            FeatureValue::url(location.clone()),
                        )];
                        media_jobs.push((location.clone(), initial));
                    }
                    _ => {}
                }
            }
        }
        timings.collect_ms = elapsed_ms(stage);

        let stage = std::time::Instant::now();
        self.text
            .index_documents(text_docs.iter().map(|(key, text)| (key.as_str(), text.as_str())))
            .map_err(Error::Ir)?;
        report.text_documents = text_docs.len();
        timings.text_ms = elapsed_ms(stage);

        let stage = std::time::Instant::now();
        let mut merge_ms = 0.0f64;
        let workers = options.workers.max(1).min(media_jobs.len().max(1));
        if workers <= 1 {
            for (location, initial) in media_jobs {
                let outcome = analyse_media(&self.grammar, &self.registry, &initial);
                let merge_t = std::time::Instant::now();
                merge_media_outcome(&mut self.meta, &mut report, &location, initial, outcome)?;
                merge_ms += elapsed_ms(merge_t);
            }
        } else {
            // Fan out: a shared job queue feeds the workers; each runs
            // its own FDE over the shared grammar and registry. Jobs
            // travel in contiguous chunks (one channel round-trip per
            // chunk, not per job — channel and wake-up overhead was a
            // measurable share of merge cost at 10^5-document scale).
            // The writer (this thread) holds the only mutable borrows
            // and merges results strictly by ascending sequence number,
            // buffering out-of-order arrivals, so the meta-index sees
            // the exact sequential insertion order.
            let grammar = &self.grammar;
            let registry = &self.registry;
            let meta = &mut self.meta;
            let chunk_size = (media_jobs.len() / (workers * 4)).max(1);
            let (job_tx, job_rx) = crossbeam::channel::unbounded::<(usize, Vec<Vec<Token>>)>();
            let (res_tx, res_rx) = crossbeam::channel::unbounded::<(usize, Vec<MediaOutcome>)>();
            for (i, chunk) in media_jobs.chunks(chunk_size).enumerate() {
                let batch: Vec<Vec<Token>> =
                    chunk.iter().map(|(_, initial)| initial.clone()).collect();
                job_tx
                    .send((i * chunk_size, batch))
                    .expect("job receiver alive");
            }
            drop(job_tx);
            let merged: Result<()> = crossbeam::thread::scope(|scope| {
                for _ in 0..workers {
                    let job_rx = job_rx.clone();
                    let res_tx = res_tx.clone();
                    scope.spawn(move |_| {
                        while let Ok((start, batch)) = job_rx.recv() {
                            let outcomes: Vec<MediaOutcome> = batch
                                .iter()
                                .map(|initial| analyse_media(grammar, registry, initial))
                                .collect();
                            if res_tx.send((start, outcomes)).is_err() {
                                break;
                            }
                        }
                    });
                }
                drop(res_tx);
                let mut pending: BTreeMap<usize, MediaOutcome> = BTreeMap::new();
                let mut next = 0usize;
                while next < media_jobs.len() {
                    let Ok((start, outcomes)) = res_rx.recv() else {
                        // Workers gone with jobs outstanding: one of
                        // them panicked; the scope will surface it.
                        break;
                    };
                    for (i, outcome) in outcomes.into_iter().enumerate() {
                        pending.insert(start + i, outcome);
                    }
                    while let Some(outcome) = pending.remove(&next) {
                        let (location, initial) = &media_jobs[next];
                        let merge_t = std::time::Instant::now();
                        merge_media_outcome(
                            meta,
                            &mut report,
                            location,
                            initial.clone(),
                            outcome,
                        )?;
                        merge_ms += elapsed_ms(merge_t);
                        next += 1;
                    }
                }
                Ok(())
            })
            .map_err(|_| Error::Config("media analysis worker panicked".to_owned()))?;
            merged?;
        }
        timings.analyse_ms = elapsed_ms(stage);
        timings.merge_ms = merge_ms;
        self.last_populate_timings = timings;
        self.text.commit().map_err(Error::Ir)?;
        self.media_cache.clear();
        self.sync_wal()?;
        drop(populate_span);
        if let Some(m) = &self.metrics {
            m.populate_runs.inc();
            m.populate_pages.add(report.pages as u64);
            m.media_analyzed.add(report.media_analyzed as u64);
            m.detector_calls.add(report.detector_calls as u64);
        }
        self.refresh_heal_backlog();
        Ok(report)
    }

    /// Renders the evaluation plan of a query as text — how the query
    /// "breaks down to structured database searches" at the physical
    /// layer.
    pub fn explain(&self, q: &EngineQuery) -> String {
        let mut out = String::new();
        let mut step = 1usize;
        let mut push = |out: &mut String, line: String| {
            out.push_str(&format!("{step}. {line}\n"));
            step += 1;
        };
        push(
            &mut out,
            format!(
                "conceptual selection on {} ({} predicate(s)) over the merged object graph",
                q.conceptual.from_class,
                q.conceptual.predicates.len()
            ),
        );
        if let Some(text) = &q.text {
            push(
                &mut out,
                format!(
                    "ranked text retrieval on {}.{} for {:?}, top {} ({})",
                    q.conceptual.from_class,
                    text.attr,
                    text.query,
                    text.top_n,
                    if text.rank_within {
                        "restricted a-priori to the conceptual candidates"
                    } else {
                        "global ranking, merged afterwards"
                    }
                ),
            );
            if self.text.servers() > 1 {
                push(
                    &mut out,
                    format!(
                        "fan the top-{} request out to {} shared-nothing text servers; the central node merges the local rankings",
                        text.top_n,
                        self.text.servers()
                    ),
                );
            }
            if let Some(st) = &self.last_text_status {
                if st.routed || st.served_by.iter().flatten().any(|&c| c != 0) {
                    let route: Vec<String> = st
                        .served_by
                        .iter()
                        .enumerate()
                        .map(|(g, c)| match c {
                            Some(c) => format!("g{g}→copy{c}"),
                            None => format!("g{g}→none"),
                        })
                        .collect();
                    push(
                        &mut out,
                        format!(
                            "READ-ROUTE: {} last time ({})",
                            if st.routed {
                                "round-robin read-scaling spread groups over replicas"
                            } else {
                                "primary-first routing"
                            },
                            route.join(", ")
                        ),
                    );
                }
                if st.failovers > 0 {
                    push(
                        &mut out,
                        format!(
                            "FAILOVER: {} shard group(s) answered from a replica last time (primary down, answer exact)",
                            st.failovers
                        ),
                    );
                }
                if st.shards_failed > 0 {
                    push(
                        &mut out,
                        format!(
                            "DEGRADED: {} of {} text servers answered last time (shards {:?} down), estimated quality {:.0}%",
                            st.shards_ok,
                            st.shards_ok + st.shards_failed,
                            st.failed_shards,
                            st.quality * 100.0
                        ),
                    );
                }
            }
            if let Some(decision) = &self.last_control_decision {
                push(&mut out, format!("REBALANCE: control plane last acted: {decision}"));
            }
        }
        for join in &q.conceptual.joins {
            push(
                &mut out,
                format!("join along association {}", join.association),
            );
        }
        if let Some(media) = &q.media {
            push(
                &mut out,
                format!(
                    "media-event filter: {} on attribute {} (meta-index parse trees)",
                    media.event, media.attr
                ),
            );
        }
        push(&mut out, format!("top {} by text score", q.limit));
        out
    }

    /// Executes an integrated query.
    ///
    /// Answers are cached under an epoch-keyed LRU: the key combines
    /// the normalized query (stemmed text terms, so `"winner"` and
    /// `"Winner"` share an entry) with the `(views, meta, text)` store
    /// epochs, and every mutation — populate, maintenance, source
    /// refresh — bumps an epoch and clears the cache. Fault-injected
    /// engines bypass the cache entirely: injection draws advance per
    /// call, so a replayed answer would freeze the failure dynamics.
    pub fn query(&mut self, q: &EngineQuery) -> Result<Vec<EngineHit>> {
        self.query_budgeted(q, &Budget::unlimited())
    }

    /// [`Engine::query`] under an end-to-end budget: a wall-clock
    /// deadline, a work budget, or a cancellation flag, checked at loop
    /// granularity in every layer — conceptual join expansion, text
    /// scatter-gather, physical tuple scans, media-tree reconstruction.
    ///
    /// On expiry the query returns a typed [`Error::DeadlineExceeded`]
    /// whose [`PartialProgress`] says which stage was cut and how far it
    /// got, and the engine is left exactly as if the query never ran:
    /// no answer is cached, memoised media evidence gathered by the
    /// cancelled run is rolled back, and the last-text-status report is
    /// restored. An unlimited budget is the plain [`Engine::query`]
    /// path, byte for byte — same cache, same answers.
    pub fn query_budgeted(&mut self, q: &EngineQuery, budget: &Budget) -> Result<Vec<EngineHit>> {
        if let Some(m) = &self.metrics {
            m.queries.inc();
        }
        let mut sp = self.obs.span("engine.query");
        let out = self.query_budgeted_inner(q, budget);
        match &out {
            Ok(hits) => {
                sp.add_work(hits.len() as u64);
                if self.last_text_status.as_ref().is_some_and(|s| s.shards_failed > 0) {
                    sp.set_outcome(obs::Outcome::Degraded);
                }
            }
            Err(Error::DeadlineExceeded { .. }) => {
                sp.set_outcome(obs::Outcome::Deadline);
                if let Some(m) = &self.metrics {
                    m.query_deadlines.inc();
                }
            }
            Err(_) => sp.set_outcome(obs::Outcome::Degraded),
        }
        out
    }

    fn query_budgeted_inner(&mut self, q: &EngineQuery, budget: &Budget) -> Result<Vec<EngineHit>> {
        if self.faults_active || !budget.is_unlimited() {
            // Fault-injected runs must replay the failure dynamics;
            // budget-limited runs must not publish (possibly partial)
            // work into the shared answer cache. Both bypass it.
            return self.query_uncached_budgeted(q, budget);
        }
        let key = cache_key(q);
        let epochs = self.store_epochs();
        if let Some(answer) = self.query_cache.lookup(&key, epochs) {
            if let Some(m) = &self.metrics {
                m.cache_hits.inc();
            }
            self.obs.annotate(|| "cache=hit".to_owned());
            self.last_text_status = answer.text_status;
            return Ok(answer.hits);
        }
        if let Some(m) = &self.metrics {
            m.cache_misses.inc();
        }
        self.obs.annotate(|| "cache=miss".to_owned());
        let hits = self.query_uncached_budgeted(q, budget)?;
        self.query_cache.insert(
            key,
            CachedAnswer {
                epochs,
                hits: hits.clone(),
                text_status: self.last_text_status.clone(),
            },
        );
        Ok(hits)
    }

    /// Executes `q` at the fidelity the degradation ladder asks for.
    ///
    /// * `Healthy` / `Pressured` — the full-fidelity path (Pressured
    ///   changes nothing about evaluation; the answer cache, consulted
    ///   on every unlimited-budget query, is what absorbs the repeat
    ///   traffic).
    /// * `Brownout` / `Shedding` — the browned-out plan: the text
    ///   ranking's top-N and the result limit are halved, and the
    ///   media-event refinement — the most expensive stage, every
    ///   candidate's parse tree reconstructed from the physical store —
    ///   is skipped. Each cut is recorded in
    ///   [`QueryOutcome::degraded`] and priced into
    ///   [`QueryOutcome::quality`], so a browned-out answer is honest
    ///   about what it is. Degraded answers are never cached.
    ///
    /// The quality stamp also folds in the text layer's shard survival
    /// (a degraded distributed ranking is a quality loss whatever the
    /// ladder says).
    pub fn query_degraded(
        &mut self,
        q: &EngineQuery,
        budget: &Budget,
        level: OverloadLevel,
    ) -> Result<QueryOutcome> {
        if level < OverloadLevel::Brownout {
            let hits = self.query_budgeted(q, budget)?;
            let quality = self
                .last_text_status
                .as_ref()
                .map(|s| s.quality)
                .unwrap_or(1.0);
            let degraded = match &self.last_text_status {
                Some(s) if s.shards_failed > 0 => vec![format!(
                    "DEGRADED: {} of {} text servers answered",
                    s.shards_ok,
                    s.shards_ok + s.shards_failed
                )],
                _ => Vec::new(),
            };
            if !degraded.is_empty() {
                if let Some(m) = &self.metrics {
                    m.degraded_answers.inc();
                }
            }
            return Ok(QueryOutcome {
                hits,
                quality,
                level,
                degraded,
            });
        }

        let mut plan = q.clone();
        let mut quality = 1.0_f64;
        let mut degraded = Vec::new();
        if let Some(text) = &mut plan.text {
            let wanted = text.top_n;
            text.top_n = (wanted / 2).max(1);
            if text.top_n < wanted {
                quality *= text.top_n as f64 / wanted as f64;
                degraded.push(format!(
                    "DEGRADED: text ranking truncated to top-{} (asked top-{wanted})",
                    text.top_n
                ));
            }
        }
        let wanted_limit = plan.limit;
        plan.limit = (wanted_limit / 2).max(1);
        if plan.limit < wanted_limit {
            degraded.push(format!(
                "DEGRADED: result limit cut to {} (asked {wanted_limit})",
                plan.limit
            ));
        }
        if plan.media.take().is_some() {
            quality *= 0.5;
            degraded.push(
                "DEGRADED: media-event refinement skipped (candidates unverified)".to_owned(),
            );
        }
        if let Some(m) = &self.metrics {
            m.queries.inc();
        }
        let mut sp = self.obs.span("engine.query");
        sp.note(|| format!("brownout plan at {level:?}"));
        let hits = match self.query_uncached_budgeted(&plan, budget) {
            Ok(hits) => hits,
            Err(e) => {
                sp.set_outcome(match &e {
                    Error::DeadlineExceeded { .. } => obs::Outcome::Deadline,
                    _ => obs::Outcome::Degraded,
                });
                if matches!(e, Error::DeadlineExceeded { .. }) {
                    if let Some(m) = &self.metrics {
                        m.query_deadlines.inc();
                    }
                }
                return Err(e);
            }
        };
        sp.add_work(hits.len() as u64);
        sp.set_outcome(obs::Outcome::Degraded);
        drop(sp);
        if let Some(status) = &self.last_text_status {
            quality *= status.quality;
            if status.shards_failed > 0 {
                degraded.push(format!(
                    "DEGRADED: {} of {} text servers answered",
                    status.shards_ok,
                    status.shards_ok + status.shards_failed
                ));
            }
        }
        if !degraded.is_empty() {
            if let Some(m) = &self.metrics {
                m.degraded_answers.inc();
            }
        }
        Ok(QueryOutcome {
            hits,
            quality,
            level,
            degraded,
        })
    }

    /// [`Engine::query`] with EXPLAIN ANALYZE: the same answer (same
    /// cache, same evaluation path), plus the measured phase tree —
    /// which stages ran, how long each took, how much work each did,
    /// which text shards answered. The trace is also offered to the
    /// slow-query log. With observability disabled the query runs
    /// exactly as untraced and the trace is `None`.
    pub fn query_traced(&mut self, q: &EngineQuery) -> Result<QueryTrace> {
        self.obs.begin_trace();
        let out = self.query(q);
        let trace = self.obs.take_trace();
        if let Some(t) = &trace {
            self.obs.offer_slow(cache_key(q), t);
        }
        Ok(QueryTrace { hits: out?, trace })
    }

    /// Hit/miss counters of the query-answer cache since engine
    /// construction (cache clears do not reset them).
    pub fn query_cache_stats(&self) -> (u64, u64) {
        (self.query_cache.hits, self.query_cache.misses)
    }

    /// Drops every cached query answer. Epoch keys already make stale
    /// answers unreachable; this frees the memory too.
    pub fn invalidate_query_cache(&mut self) {
        self.query_cache.clear();
    }

    /// Current `(views, meta, text)` store epochs — the freshness
    /// stamp carried by every cached answer.
    fn store_epochs(&self) -> (u64, u64, u64) {
        (
            self.views.epoch(),
            self.meta.store().epoch(),
            self.text.epoch(),
        )
    }

    /// The uncached execution path, with cancellation hygiene: when the
    /// budget is limited, any error restores the engine's query-visible
    /// state — memoised media evidence, the last-text-status report —
    /// to what it was before the call, so a cancelled query is
    /// indistinguishable from one that never ran. (Unlimited budgets
    /// keep the historical behaviour: partial memoisation survives an
    /// error, which is harmless because nothing partial is derived from
    /// a *failed* unlimited query either.)
    pub(crate) fn query_uncached_budgeted(
        &mut self,
        q: &EngineQuery,
        budget: &Budget,
    ) -> Result<Vec<EngineHit>> {
        let saved_status = if budget.is_unlimited() {
            None
        } else {
            Some(self.last_text_status.clone())
        };
        let mut undo = MediaUndo::default();
        let out = self.query_core(q, budget, &mut undo);
        if out.is_err() {
            if let Some(saved) = saved_status {
                self.last_text_status = saved;
                undo.apply(&mut self.media_cache);
            }
        }
        out
    }

    fn query_core(
        &mut self,
        q: &EngineQuery,
        budget: &Budget,
        undo: &mut MediaUndo,
    ) -> Result<Vec<EngineHit>> {
        // A budget that is already spent (or cancelled) fails before
        // any work: the admission phase.
        budget.check().map_err(|cause| Error::DeadlineExceeded {
            partial: PartialProgress {
                phase: "admission".into(),
                completed: 0,
            },
            cause,
        })?;

        // 1. Conceptual selection and joins (one work unit per seed
        //    candidate and per expanded join row).
        let rows = {
            let mut sp = self.obs.span("engine.query.conceptual");
            match self.webspace.execute_budgeted(&q.conceptual, budget) {
                Ok(rows) => {
                    sp.add_work(rows.len() as u64);
                    rows
                }
                Err(e) => {
                    sp.set_outcome(match &e {
                        webspace::Error::DeadlineExceeded { .. } => obs::Outcome::Deadline,
                        _ => obs::Outcome::Degraded,
                    });
                    return Err(e.into());
                }
            }
        };

        // 2. Ranked text retrieval on the start class. The optimizer
        //    choice: global ranking merged afterwards, or ranking
        //    restricted a-priori to the conceptual candidates.
        let mut scores: Option<HashMap<String, f64>> = None;
        if q.text.is_none() {
            self.last_text_status = None;
        }
        if let Some(text) = &q.text {
            let mut sp = self.obs.span("engine.query.text");
            let queried = if text.rank_within {
                let candidates: std::collections::HashSet<String> = rows
                    .iter()
                    .filter_map(|r| r.chain.first())
                    .map(|id| text_doc_key(id, &text.attr))
                    .collect();
                self.text
                    .query_restricted_budgeted(&text.query, text.top_n, &candidates, budget)
            } else {
                // Parallel, isolated evaluation: failed servers drop
                // out and the merge ranks the survivors; the per-shard
                // deadline shrinks to the budget's remaining window.
                self.text
                    .query_parallel_budgeted(&text.query, text.top_n, budget)
            };
            let result = match queried {
                Ok(r) => r,
                Err(e) => {
                    sp.set_outcome(match &e {
                        ir::Error::DeadlineExceeded { .. } => obs::Outcome::Deadline,
                        _ => obs::Outcome::Degraded,
                    });
                    return Err(e.into());
                }
            };
            sp.add_work(result.hits.len() as u64);
            if result.shards_failed > 0 {
                sp.set_outcome(obs::Outcome::Degraded);
            }
            drop(sp);
            if result.failovers > 0 {
                let (failovers, failed) = (result.failovers, result.shards_failed);
                self.obs.record_event("failover", move || {
                    format!("replica failovers={failovers} shards_failed={failed}")
                });
            }
            self.last_text_status = Some(TextQueryStatus {
                shards_ok: result.shards_ok,
                shards_failed: result.shards_failed,
                failed_shards: result.failed_shards.clone(),
                failovers: result.failovers,
                quality: result.quality,
                served_by: result.served_by.clone(),
                routed: self.text.read_routing() == ir::ReadRouting::RoundRobin,
            });
            let hits = result.hits;
            let mut map = HashMap::new();
            for hit in hits {
                if let Some((object_id, attr)) = split_text_doc_key(&hit.url) {
                    if attr == text.attr {
                        map.insert(object_id.to_owned(), hit.score);
                    }
                }
            }
            scores = Some(map);
        }

        // 3. Media evidence on the final class.
        let mut sp = self.obs.span("engine.query.refine");
        let out = self.refine_media(q, rows, &scores, budget, undo);
        match &out {
            Ok(hits) => sp.add_work(hits.len() as u64),
            Err(Error::DeadlineExceeded { .. }) => sp.set_outcome(obs::Outcome::Deadline),
            Err(_) => sp.set_outcome(obs::Outcome::Degraded),
        }
        out
    }

    /// Step 3 of [`Engine::query_core`]: walks every conceptual
    /// candidate, attaches its text score, verifies the media event
    /// against the stored parse tree (memoised), then ranks and
    /// truncates the answer.
    fn refine_media(
        &mut self,
        q: &EngineQuery,
        rows: Vec<webspace::QueryResult>,
        scores: &Option<HashMap<String, f64>>,
        budget: &Budget,
        undo: &mut MediaUndo,
    ) -> Result<Vec<EngineHit>> {
        let mut out = Vec::new();
        for row in rows {
            let first = row.chain.first().expect("non-empty chain").clone();
            let score = match scores {
                Some(map) => match map.get(&first) {
                    Some(s) => *s,
                    None => continue, // outside the ranked top-N
                },
                None => 0.0,
            };

            let (video, shots) = if let Some(media) = &q.media {
                // One work unit per candidate refined; `completed`
                // reports the hits already assembled.
                budget.consume(1).map_err(|cause| Error::DeadlineExceeded {
                    partial: PartialProgress {
                        phase: "media".into(),
                        completed: out.len(),
                    },
                    cause,
                })?;
                // The event must exist in the grammar — an atom-paired
                // whitebox detector (netplay, isInterview, …).
                if self.grammar.detector(&media.event).is_none() {
                    return Err(Error::Query(format!(
                        "unknown media event `{}` (not a detector of the grammar)",
                        media.event
                    )));
                }
                let last = row.chain.last().expect("non-empty chain");
                let Some(object) = self.webspace.object(last) else {
                    continue;
                };
                let Some(AttrValue::Media { location, .. }) = object.attr(&media.attr)
                else {
                    continue;
                };
                let location = location.clone();
                if !self.meta.contains(&location) {
                    continue; // the object was never analysed
                }
                // Load the stored tree only when the cache cannot answer.
                let need_tree = match self.media_cache.get(&location) {
                    Some(ev) if media.event == "netplay" => ev.shots.is_none(),
                    Some(ev) => !ev.events.contains_key(&media.event),
                    None => true,
                };
                let tree = if need_tree {
                    match self.meta.tree_budgeted(&self.grammar, &location, budget) {
                        Ok(t) => t,
                        // A broken stored tree is skipped (historical
                        // behaviour) — but a budget cut-off mid-
                        // reconstruction must surface, not silently
                        // drop the candidate.
                        Err(e @ acoi::Error::Storage(monetxml::Error::DeadlineExceeded {
                            ..
                        })) => return Err(Error::from(e)),
                        Err(_) => continue,
                    }
                } else {
                    acoi::ParseTree::new()
                };
                undo.note(&self.media_cache, &location, &media.event);
                let evidence = self.media_cache.entry(location.clone()).or_default();
                if media.event == "netplay" {
                    // Video events answer at shot granularity.
                    let shots = evidence
                        .shots
                        .get_or_insert_with(|| video_shots(&tree))
                        .clone();
                    let matching: Vec<_> = shots
                        .into_iter()
                        .filter(|s| s.netplay == Some(true))
                        .collect();
                    if matching.is_empty() {
                        continue;
                    }
                    (Some(location), matching)
                } else {
                    // Generic event: any node of that symbol with a true
                    // outcome.
                    let event = media.event.clone();
                    let holds = *evidence.events.entry(event).or_insert_with(|| {
                        tree.find_all(&media.event).into_iter().any(|n| {
                            tree.value(n) == Some(&feagram::FeatureValue::Bit(true))
                        })
                    });
                    if !holds {
                        continue;
                    }
                    (Some(location), Vec::new())
                }
            } else {
                (None, Vec::new())
            };

            out.push(EngineHit {
                chain: row.chain,
                score,
                video,
                shots,
            });
        }

        out.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then_with(|| a.chain.cmp(&b.chain))
        });
        out.truncate(q.limit);
        Ok(out)
    }

    /// Re-checks one analysed object against its source: when
    /// `still_valid` reports the source data changed, the stored parse
    /// tree is regenerated from scratch ("the FDS uses a special
    /// detector associated to the start symbol to determine if the
    /// complete stored parse tree has become invalid due to changes of
    /// the source data"). Returns whether a regeneration happened.
    pub fn refresh_source(
        &mut self,
        source: &str,
        still_valid: impl Fn(&str) -> bool,
    ) -> Result<bool> {
        self.media_cache.remove(source);
        self.query_cache.clear();
        let refreshed = self
            .fds
            .refresh_source(
                &self.grammar,
                &self.registry,
                &mut self.meta,
                source,
                still_valid,
            )
            .map_err(Error::Acoi)?;
        self.sync_wal()?;
        self.refresh_heal_backlog();
        Ok(refreshed)
    }

    /// Installs a new detector implementation and incrementally
    /// maintains the meta-index (the FDS path), synchronously: begin,
    /// run and cutover all happen under this `&mut self` borrow. The
    /// online variant is [`crate::QueryService::upgrade_detector_online`].
    pub fn upgrade_detector(
        &mut self,
        detector: &str,
        level: RevisionLevel,
        new_impl: acoi::DetectorFn,
    ) -> Result<MaintenanceReport> {
        let mut job =
            self.begin_maintenance(detector, MaintenanceKind::Upgrade { level }, Some(new_impl), false)?;
        match job.run() {
            Ok(()) => self.commit_maintenance(job),
            Err(e) => {
                self.abort_maintenance(job)?;
                Err(e)
            }
        }
    }

    /// Re-parses every analysed object whose stored tree carries
    /// rejected-with-cause holes left by an unavailable `detector` —
    /// the low-priority heal the scheduler queues when a circuit breaks.
    /// Healthy detector results are reused from the harvest cache, so a
    /// heal costs only the calls the outage originally skipped. Runs
    /// synchronously; the online variant is
    /// [`crate::QueryService::heal_detector_online`].
    pub fn heal_detector(&mut self, detector: &str) -> Result<MaintenanceReport> {
        let mut job = self.begin_maintenance(detector, MaintenanceKind::Heal, None, false)?;
        match job.run() {
            Ok(()) => self.commit_maintenance(job),
            Err(e) => {
                self.abort_maintenance(job)?;
                Err(e)
            }
        }
    }

    /// Begins a *background* detector upgrade: installs `new_impl`
    /// (keeping the old pair for rollback), pins the current meta
    /// epoch and snapshots the stored trees — a brief borrow. Drive
    /// the returned job with [`MaintenanceJob::run`] off the engine
    /// (queries keep serving), then cut over with
    /// [`Engine::commit_maintenance`] or roll back with
    /// [`Engine::abort_maintenance`].
    pub fn begin_upgrade(
        &mut self,
        detector: &str,
        level: RevisionLevel,
        new_impl: acoi::DetectorFn,
    ) -> Result<MaintenanceJob> {
        self.begin_maintenance(
            detector,
            MaintenanceKind::Upgrade { level },
            Some(new_impl),
            true,
        )
    }

    /// Begins a background heal of `detector` (see
    /// [`Engine::begin_upgrade`] for the job protocol). Heals swap no
    /// implementation, so aborting one is free.
    pub fn begin_heal(&mut self, detector: &str) -> Result<MaintenanceJob> {
        self.begin_maintenance(detector, MaintenanceKind::Heal, None, true)
    }

    /// The shared begin: captures everything the job needs so `run`
    /// never touches the engine. `gated` jobs additionally carry the
    /// admission gate (Batch-class permits, Brownout pauses) and the
    /// fault plan; the synchronous legacy paths run ungated and
    /// uninjected, exactly as they always did.
    fn begin_maintenance(
        &mut self,
        detector: &str,
        kind: MaintenanceKind,
        new_impl: Option<acoi::DetectorFn>,
        gated: bool,
    ) -> Result<MaintenanceJob> {
        // Claim the detector *before* any side effect (the registry
        // swap below): a second begin while a job is in flight must
        // not clobber the first job's pinned snapshot or rollback pair.
        let busy = crate::maintenance::BusyGuard::acquire(&self.maintenance_inflight, detector)?;
        let plan = match kind {
            MaintenanceKind::Upgrade { level } => self.fds.plan(&self.grammar, detector, level),
            MaintenanceKind::Heal => Fds::heal_plan(detector),
        };
        let (rollback, new_version) = match (kind, new_impl) {
            (MaintenanceKind::Upgrade { level }, Some(new_impl)) => {
                let old_version = self.registry.version(detector).ok_or_else(|| {
                    Error::Acoi(acoi::Error::UnregisteredDetector(detector.to_owned()))
                })?;
                let new_version = old_version.bumped(level);
                let old = self
                    .registry
                    .replace(detector, new_version, new_impl)
                    .map_err(Error::Acoi)?;
                (Some(old), Some(new_version))
            }
            _ => (None, None),
        };
        let snapshot = self.meta.store().snapshot()?;
        let initial: HashMap<String, Vec<Token>> = self
            .meta
            .sources()
            .iter()
            .map(|s| {
                let tokens = self
                    .meta
                    .initial_tokens(s)
                    .map(<[Token]>::to_vec)
                    .unwrap_or_default();
                (s.clone(), tokens)
            })
            .collect();
        let mut job = MaintenanceJob::new(
            detector.to_owned(),
            kind,
            plan,
            self.meta.store().epoch(),
            snapshot,
            initial,
            self.grammar.clone(),
            Arc::clone(&self.registry),
            rollback,
            new_version,
            if gated { self.faults_plan.clone() } else { None },
            if gated { Some(Arc::clone(&self.admission)) } else { None },
            self.obs.clone(),
        );
        job.busy = Some(busy);
        Ok(job)
    }

    /// Epoch-consistent cutover of a finished job: under this borrow
    /// (the same mutex every query serializes on) the pinned epoch is
    /// re-checked, every delta is applied, and the caches are
    /// invalidated — conditionally: a job that re-parsed nothing
    /// provably left the store unchanged, so cached answers stay. A
    /// stale job (the live store moved past the pinned epoch) is
    /// rolled back and refused with [`Error::MaintenanceStale`].
    pub fn commit_maintenance(&mut self, job: MaintenanceJob) -> Result<MaintenanceReport> {
        if self.meta.store().epoch() != job.pinned_meta_epoch {
            let detector = job.detector.clone();
            self.abort_maintenance(job)?;
            return Err(Error::MaintenanceStale { detector });
        }
        let mut span = self.obs.span("engine.maintenance.commit");
        let MaintenanceJob {
            kind,
            plan,
            deltas,
            objects_reparsed,
            objects_untouched,
            detector_calls,
            detector_calls_saved,
            started,
            ..
        } = job;
        for (source, initial, tree) in deltas {
            self.meta.insert(&source, initial, &tree).map_err(Error::Acoi)?;
            self.media_cache.remove(&source);
        }
        if objects_reparsed > 0 {
            // Answers may combine several sources, so any reparse
            // invalidates the whole answer cache. Zero reparses — a
            // correction bump, a heal with no backlog — leave both
            // caches (and the store epoch) untouched.
            self.query_cache.clear();
        }
        self.sync_wal()?;
        span.add_work(objects_reparsed as u64);
        drop(span);
        if let Some(reg) = self.obs.registry() {
            reg.labeled_counter(
                "engine_maintenance_jobs_total",
                "Maintenance jobs committed, by upgrade kind",
                "kind",
                kind.label(),
            )
            .inc();
            reg.counter(
                "engine_maintenance_objects_reparsed_total",
                "Stored parse trees replaced by maintenance jobs",
            )
            .add(objects_reparsed as u64);
            reg.counter(
                "engine_maintenance_detector_calls_total",
                "Detector executions spent in maintenance jobs",
            )
            .add(detector_calls as u64);
            reg.counter(
                "engine_maintenance_detector_calls_saved_total",
                "Detector executions avoided by harvesting stored results",
            )
            .add(detector_calls_saved as u64);
            if let Some(begun) = started {
                reg.histogram(
                    "engine_maintenance_wall_seconds",
                    "Wall time from job begin to committed cutover",
                    obs::DEFAULT_TIME_BUCKETS,
                )
                .observe(begun.elapsed().as_secs_f64());
            }
            reg.counter(
                "engine_maintenance_finished_total",
                "Maintenance jobs that reached commit or abort",
            )
            .inc();
        }
        self.obs.record_event("maintenance", || {
            format!("commit kind={} reparsed={objects_reparsed}", kind.label())
        });
        self.refresh_heal_backlog();
        Ok(MaintenanceReport {
            plan,
            objects_reparsed,
            objects_untouched,
            detector_calls,
            detector_calls_saved,
        })
    }

    /// Aborts a job: reinstalls the pre-upgrade detector implementation
    /// (if one was swapped at begin) and drops the job's private copy.
    /// The live store was never touched, so afterwards the engine is
    /// byte-identical to one where the job never began.
    pub fn abort_maintenance(&mut self, job: MaintenanceJob) -> Result<()> {
        if let Some((version, run)) = job.rollback {
            // The swapped-out pair is the aborted upgrade's new
            // implementation; dropping it is the point.
            let _aborted_impl = self
                .registry
                .replace(&job.detector, version, run)
                .map_err(Error::Acoi)?;
        }
        if let Some(reg) = self.obs.registry() {
            reg.counter(
                "engine_maintenance_aborts_total",
                "Maintenance jobs rolled back without touching the store",
            )
            .inc();
            reg.counter(
                "engine_maintenance_finished_total",
                "Maintenance jobs that reached commit or abort",
            )
            .inc();
        }
        let detector = job.detector;
        self.obs
            .record_event("maintenance", move || format!("abort detector={detector}"));
        Ok(())
    }
}

/// Normalizes a query into its cache key. Text terms go through the
/// same tokenizer/stemmer as indexing, so spelling variants that rank
/// identically share an entry; everything else uses its canonical
/// debug form.
fn cache_key(q: &EngineQuery) -> String {
    let mut key = format!("{:?}", q.conceptual);
    match &q.text {
        Some(text) => {
            let terms = ir::tokenize_and_stem(&text.query).join(" ");
            key.push_str(&format!(
                "|text:{}:{}:{}:{}",
                text.attr, terms, text.top_n, text.rank_within
            ));
        }
        None => key.push_str("|text:-"),
    }
    match &q.media {
        Some(media) => key.push_str(&format!("|media:{}:{}", media.attr, media.event)),
        None => key.push_str("|media:-"),
    }
    key.push_str(&format!("|limit:{}", q.limit));
    key
}

/// What one media analysis produced: the parse tree plus the number of
/// blackbox detector executions it took, or the parse error.
type MediaOutcome = std::result::Result<(acoi::ParseTree, usize), acoi::Error>;

/// Runs one FDE analysis. Pure with respect to the engine: only the
/// (shared, thread-safe) grammar and registry are touched, so any
/// worker thread can execute it.
fn analyse_media(
    grammar: &Grammar,
    registry: &DetectorRegistry,
    initial: &[Token],
) -> MediaOutcome {
    let mut fde = Fde::new(grammar, registry);
    let tree = fde.parse(initial.to_vec())?;
    let calls = fde.stats().detector_calls;
    Ok((tree, calls))
}

/// Applies one analysis outcome to the meta-index and the report —
/// the single-writer half of the pipeline. Callers must invoke it in
/// source order; it reproduces the sequential counters and log lines.
fn merge_media_outcome(
    meta: &mut MetaIndex,
    report: &mut PopulateReport,
    location: &str,
    initial: Vec<Token>,
    outcome: MediaOutcome,
) -> Result<()> {
    match outcome {
        Ok((tree, detector_calls)) => {
            report.detector_calls += detector_calls;
            // Unavailable detectors don't abort the parse — they leave
            // rejected-with-cause holes. Count and log every one so a
            // degraded population is visible, not silently incomplete.
            let rejected = tree.rejected_nodes();
            if !rejected.is_empty() {
                report.media_degraded += 1;
                report.detector_failures += rejected.len();
                for (_, symbol, cause) in &rejected {
                    eprintln!(
                        "populate: {location}: detector `{symbol}` unavailable: {cause}"
                    );
                }
            }
            meta.insert(location, initial, &tree)?;
            report.media_analyzed += 1;
            Ok(())
        }
        Err(e @ (acoi::Error::Reject { .. } | acoi::Error::DetectorFailed { .. })) => {
            report.media_rejected += 1;
            eprintln!("populate: {location}: analysis rejected: {e}");
            Ok(())
        }
        Err(e) => Err(Error::Acoi(e)),
    }
}

/// Key of a Hypertext attribute in the full-text document registry.
fn text_doc_key(object_id: &str, attr: &str) -> String {
    format!("{object_id}#{attr}")
}

fn split_text_doc_key(key: &str) -> Option<(&str, &str)> {
    key.rsplit_once('#')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_doc_keys_round_trip() {
        let key = text_doc_key("player:seles0", "history");
        assert_eq!(
            split_text_doc_key(&key),
            Some(("player:seles0", "history"))
        );
        assert_eq!(split_text_doc_key("nokey"), None);
    }
}
