//! The engine-facing telemetry layer: history, SLOs, incidents.
//!
//! [`Telemetry`] ties the generic machinery in `obs` to this engine's
//! metric families. Driven by the same caller loop as
//! [`crate::ControlPlane::tick`], each [`Telemetry::tick`]:
//!
//! 1. refreshes scrape-time gauges under a **brief** engine borrow,
//! 2. samples the whole registry into the ring-buffer
//!    [`obs::Recorder`] (lock dropped before the recorder's is taken —
//!    the two are never held together),
//! 3. evaluates every configured [`obs::SloSpec`] as fast/slow-window
//!    burn rates, and
//! 4. when an SLO pages — or the admission ladder enters Shedding —
//!    dumps a self-contained JSON **incident report**: SLO states,
//!    gate occupancy, cluster view, the flight-recorder ring, the
//!    slow-query traces and a full metrics dump.
//!
//! The layer is strictly additive: it reads the registry and emits
//! `obs_*`/`engine_incident_*` families, never touching an answer
//! path, so query results stay byte-identical with it on or off.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use obs::report::{Json, SCHEMA_VERSION};
use obs::{Recorder, SloEngine, SloSignal, SloSpec, SloTransition};

use crate::admission::{OverloadLevel, QueryService};
use crate::error::Result;

/// Tuning for the telemetry layer.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Registry samples the recorder retains.
    pub history: usize,
    /// The objectives to evaluate ([`standard_slos`] by default).
    pub slos: Vec<SloSpec>,
    /// Where incident reports are written; `None` keeps dumps
    /// in-memory only (callers can still ask for the JSON).
    pub incident_dir: Option<PathBuf>,
    /// At most this many incident files are written (a paging storm
    /// must not fill the disk with identical reports).
    pub max_incidents: usize,
    /// Window (in ticks) for the control plane's shard p99.
    pub p99_window: usize,
    /// Consecutive-failure threshold used when assembling the cluster
    /// view embedded in incident reports.
    pub loss_threshold: u32,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            history: 32,
            slos: standard_slos(),
            incident_dir: None,
            max_incidents: 8,
            p99_window: 8,
            loss_threshold: 3,
        }
    }
}

/// The engine's standard objectives:
///
/// * **query-availability** — at most 0.1% of admission outcomes are
///   rejections (the gate is the front door; a rejection is this
///   system's "error response").
/// * **query-latency** — 99% of `engine.query` spans finish within
///   250ms (the admission ladder's own latency target).
/// * **maintenance-success** — at most 5% of finished maintenance
///   jobs abort.
pub fn standard_slos() -> Vec<SloSpec> {
    vec![
        SloSpec {
            name: "query-availability",
            objective: 0.999,
            signal: SloSignal::ErrorRatio {
                bad: vec!["admission_rejected_total".to_owned()],
                total: vec![
                    "admission_admitted_total".to_owned(),
                    "admission_rejected_total".to_owned(),
                ],
            },
            fast_window: 3,
            slow_window: 12,
            page_burn: 14.4,
            warn_burn: 3.0,
        },
        SloSpec {
            name: "query-latency",
            objective: 0.99,
            signal: SloSignal::LatencyAbove {
                histogram: "obs_span_seconds{span=\"engine.query\"}".to_owned(),
                threshold_seconds: 0.25,
            },
            fast_window: 3,
            slow_window: 12,
            page_burn: 14.4,
            warn_burn: 3.0,
        },
        SloSpec {
            name: "maintenance-success",
            objective: 0.95,
            signal: SloSignal::ErrorRatio {
                bad: vec!["engine_maintenance_aborts_total".to_owned()],
                total: vec!["engine_maintenance_finished_total".to_owned()],
            },
            fast_window: 3,
            slow_window: 12,
            page_burn: 4.0,
            warn_burn: 1.0,
        },
    ]
}

/// What one [`Telemetry::tick`] did.
#[derive(Debug, Clone)]
pub struct TelemetryTick {
    /// The recorder tick number just taken.
    pub tick: u64,
    /// SLO alert-state transitions that fired this tick.
    pub transitions: Vec<SloTransition>,
    /// Incident files written this tick (empty without a trigger or
    /// without an `incident_dir`).
    pub incidents: Vec<PathBuf>,
}

/// The second observability layer: recorder + SLO engine + incident
/// dumper, wired to one engine's [`obs::Obs`] handle.
pub struct Telemetry {
    obs: obs::Obs,
    recorder: Arc<Mutex<Recorder>>,
    slo: Arc<Mutex<SloEngine>>,
    incident_dir: Option<PathBuf>,
    max_incidents: usize,
    p99_window: usize,
    loss_threshold: u32,
    incidents_written: usize,
    incident_seq: u64,
    /// Highest admission-ladder transition seq already examined, so a
    /// Shedding entry triggers exactly one dump.
    last_gate_seq: u64,
}

impl Telemetry {
    /// A telemetry layer over the engine's observability handle. With
    /// a disabled handle every [`Telemetry::tick`] is a cheap no-op.
    pub fn new(obs: &obs::Obs, config: TelemetryConfig) -> Telemetry {
        Telemetry {
            obs: obs.clone(),
            recorder: Arc::new(Mutex::new(Recorder::new(config.history))),
            slo: Arc::new(Mutex::new(SloEngine::new(config.slos))),
            incident_dir: config.incident_dir,
            max_incidents: config.max_incidents,
            p99_window: config.p99_window,
            loss_threshold: config.loss_threshold,
            incidents_written: 0,
            incident_seq: 0,
            last_gate_seq: 0,
        }
    }

    /// The shared recorder ([`crate::ControlPlane::set_telemetry`]
    /// reads windowed p99 through it).
    pub fn recorder(&self) -> Arc<Mutex<Recorder>> {
        Arc::clone(&self.recorder)
    }

    /// The shared SLO engine.
    pub fn slo_engine(&self) -> Arc<Mutex<SloEngine>> {
        Arc::clone(&self.slo)
    }

    /// The configured p99 window, in ticks.
    pub fn p99_window(&self) -> usize {
        self.p99_window
    }

    /// Wires the engine side of the loop: burn-rate context in
    /// [`crate::Engine::overload_status`].
    pub fn attach(&self, svc: &QueryService) {
        svc.engine().set_slo_engine(self.slo_engine());
    }

    /// One telemetry round: sample, evaluate, maybe dump. See the
    /// module docs for the locking discipline.
    pub fn tick(&mut self, svc: &QueryService) -> Result<TelemetryTick> {
        if self.obs.registry().is_none() {
            return Ok(TelemetryTick {
                tick: 0,
                transitions: Vec::new(),
                incidents: Vec::new(),
            });
        }
        // 1. Gauges reflect live state under a brief engine borrow.
        svc.engine().refresh_scrape_gauges();
        // 2–3. Sample and evaluate (engine borrow already dropped).
        let at_ns = self.obs.now_ns();
        let (tick, transitions) = {
            let mut rec = lock(&self.recorder);
            let tick = match self.obs.registry() {
                Some(reg) => rec.record(reg, at_ns),
                None => 0,
            };
            let transitions = lock(&self.slo).evaluate(&rec, &self.obs);
            (tick, transitions)
        };
        // 4. Page-level burn or a fresh entry into Shedding triggers
        // an incident dump.
        let mut triggers: Vec<String> = transitions
            .iter()
            .filter(|t| t.to == obs::AlertState::Page)
            .map(|t| format!("slo-page:{}", t.slo))
            .collect();
        for t in svc.status().transitions {
            if t.seq > self.last_gate_seq {
                self.last_gate_seq = t.seq;
                if t.to == OverloadLevel::Shedding {
                    triggers.push("admission-shedding".to_owned());
                }
            }
        }
        let mut incidents = Vec::new();
        for trigger in triggers {
            if let Some(path) = self.dump_incident(svc, &trigger)? {
                incidents.push(path);
            }
        }
        Ok(TelemetryTick {
            tick,
            transitions,
            incidents,
        })
    }

    /// Assembles a self-contained incident report: what fired, what
    /// every SLO looked like, the gate, the cluster, the recent flight
    /// events, the retained slow traces and the full metrics dump.
    pub fn incident_report(&self, svc: &QueryService, trigger: &str) -> Json {
        let (cluster, overload) = {
            let engine = svc.engine();
            engine.refresh_scrape_gauges();
            (engine.control_view(self.loss_threshold), engine.overload_status())
        };
        let statuses = lock(&self.slo).statuses();
        let tick = lock(&self.recorder).current_tick();
        let slow: Vec<Json> = self
            .obs
            .slow_queries()
            .into_iter()
            .map(|e| {
                Json::Obj(vec![
                    ("label".to_owned(), Json::str(e.label)),
                    ("total_ns".to_owned(), Json::Int(e.total_ns as i64)),
                    ("trace".to_owned(), Json::str(e.trace.render())),
                ])
            })
            .collect();
        let events: Vec<Json> = self.obs.flight_events().iter().map(|e| e.to_json()).collect();
        let slos: Vec<Json> = statuses
            .into_iter()
            .map(|s| {
                Json::Obj(vec![
                    ("name".to_owned(), Json::str(s.name)),
                    ("state".to_owned(), Json::str(s.state.as_str())),
                    ("fast_burn".to_owned(), Json::Num(s.fast_burn)),
                    ("slow_burn".to_owned(), Json::Num(s.slow_burn)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema_version".to_owned(), Json::Int(SCHEMA_VERSION)),
            ("kind".to_owned(), Json::str("incident")),
            ("trigger".to_owned(), Json::str(trigger)),
            ("tick".to_owned(), Json::Int(tick as i64)),
            ("slo".to_owned(), Json::Arr(slos)),
            (
                "overload".to_owned(),
                Json::Obj(vec![
                    ("level".to_owned(), Json::str(format!("{:?}", overload.level))),
                    ("running".to_owned(), Json::Int(overload.running as i64)),
                    ("queued".to_owned(), Json::Int(overload.queued as i64)),
                    ("admitted".to_owned(), Json::Int(overload.admitted as i64)),
                    ("rejected".to_owned(), Json::Int(overload.rejected as i64)),
                    ("timed_out".to_owned(), Json::Int(overload.timed_out as i64)),
                    ("completed".to_owned(), Json::Int(overload.completed as i64)),
                ]),
            ),
            (
                "cluster".to_owned(),
                Json::Obj(vec![
                    ("servers".to_owned(), Json::Int(cluster.servers as i64)),
                    ("replication".to_owned(), Json::Int(cluster.replication as i64)),
                    (
                        "docs_per_shard".to_owned(),
                        Json::Arr(
                            cluster
                                .docs_per_shard
                                .iter()
                                .map(|&d| Json::Int(d as i64))
                                .collect(),
                        ),
                    ),
                    (
                        "shard_p99_us".to_owned(),
                        Json::Int(duration_us(cluster.shard_p99)),
                    ),
                    (
                        "lost_servers".to_owned(),
                        Json::Arr(
                            cluster
                                .lost_servers
                                .iter()
                                .map(|&s| Json::Int(s as i64))
                                .collect(),
                        ),
                    ),
                ]),
            ),
            ("events".to_owned(), Json::Arr(events)),
            ("slow_queries".to_owned(), Json::Arr(slow)),
            (
                "metrics".to_owned(),
                match self.obs.registry() {
                    Some(reg) => reg.render_json(),
                    None => Json::Null,
                },
            ),
        ])
    }

    /// Writes one incident report to `incident_dir`, bounded by
    /// `max_incidents`. Returns the path written, or `None` when no
    /// directory is configured or the budget is spent (the suppression
    /// still counts in `engine_incident_dumps_suppressed_total`).
    pub fn dump_incident(&mut self, svc: &QueryService, trigger: &str) -> Result<Option<PathBuf>> {
        self.incident_seq += 1;
        let Some(dir) = self.incident_dir.clone() else {
            return Ok(None);
        };
        if self.incidents_written >= self.max_incidents {
            if let Some(reg) = self.obs.registry() {
                reg.counter(
                    "engine_incident_dumps_suppressed_total",
                    "Incident dumps skipped after max_incidents was reached",
                )
                .inc();
            }
            return Ok(None);
        }
        let report = self.incident_report(svc, trigger);
        let slug: String = trigger
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        let path = dir.join(format!("incident-{:04}-{slug}.json", self.incident_seq));
        std::fs::create_dir_all(&dir)
            .map_err(|e| crate::error::Error::Telemetry(format!("incident dir {}: {e}", dir.display())))?;
        std::fs::write(&path, report.render())
            .map_err(|e| crate::error::Error::Telemetry(format!("incident {}: {e}", path.display())))?;
        self.incidents_written += 1;
        if let Some(reg) = self.obs.registry() {
            reg.counter(
                "engine_incident_dumps_total",
                "Incident reports written to disk",
            )
            .inc();
        }
        let shown = path.display().to_string();
        self.obs
            .record_event("incident", move || format!("{trigger} -> {shown}"));
        Ok(Some(path))
    }

    /// The windowed shard p99 the control plane would see right now
    /// (`None` while the window holds no parallel queries).
    pub fn windowed_shard_p99(&self) -> Option<Duration> {
        lock(&self.recorder)
            .windowed_quantile("ir_critical_path_seconds", 0.99, self.p99_window)
            .map(|s| Duration::from_secs_f64(s.max(0.0)))
    }
}

fn duration_us(d: Duration) -> i64 {
    i64::try_from(d.as_micros()).unwrap_or(i64::MAX)
}

fn lock<T>(m: &Arc<Mutex<T>>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}
