//! The integrated query model: conceptual ∧ content-based ∧ ranked text.
//!
//! "The integration of all this functionality allows the combination of
//! both conceptual and content-based querying in the query stage. This
//! integration is missing in traditional search engines."
//!
//! An [`EngineQuery`] wraps a conceptual query (class selection +
//! association chain) with up to two content-based parts:
//!
//! * a [`TextPredicate`] — ranked full-text retrieval over a Hypertext
//!   attribute of the start class (the Figure 13 query turns "who has
//!   won the Australian Open in the past" into "a free text search on
//!   the word 'Winner' in the history attribute"),
//! * a [`MediaPredicate`] — an event test over the meta-index parse tree
//!   of a Video attribute of the *final* class in the chain (the
//!   `netplay` event "is used to determine which shots match the phrase
//!   'approach the net'").

use serde::{Deserialize, Serialize};

use crate::shots::ShotMeta;

/// Ranked full-text search on a Hypertext attribute of the start class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TextPredicate {
    /// The attribute searched.
    pub attr: String,
    /// The free-text query.
    pub query: String,
    /// How many ranked objects to keep before joining.
    pub top_n: usize,
    /// The query-optimizer choice the paper leaves open: `false` ranks
    /// the whole collection and merges afterwards (global top-N);
    /// `true` restricts the ranking a-priori to the conceptual
    /// candidates ("a very interesting a-priori restriction of the
    /// ranking candidate set") — cheaper, and top-N is then *within*
    /// the candidate domain.
    pub rank_within: bool,
}

/// An event test on a Video attribute of the final class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MediaPredicate {
    /// The video attribute.
    pub attr: String,
    /// The event name (currently `netplay`).
    pub event: String,
}

/// The integrated query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineQuery {
    /// The conceptual part.
    pub conceptual: webspace::ConceptualQuery,
    /// Optional ranked text part (start class).
    pub text: Option<TextPredicate>,
    /// Optional media-event part (final class).
    pub media: Option<MediaPredicate>,
    /// Result limit.
    pub limit: usize,
}

impl EngineQuery {
    /// A query over `class` with no predicates and limit 10.
    pub fn from_class(class: impl Into<String>) -> Self {
        EngineQuery {
            conceptual: webspace::ConceptualQuery::from_class(class),
            text: None,
            media: None,
            limit: 10,
        }
    }

    /// Adds a conceptual equality predicate (builder style).
    pub fn filter_eq(mut self, attr: impl Into<String>, value: impl Into<String>) -> Self {
        self.conceptual = self.conceptual.filter(webspace::Predicate::Eq {
            attr: attr.into(),
            value: value.into(),
        });
        self
    }

    /// Adds a join step along an association (builder style).
    pub fn via(mut self, association: impl Into<String>) -> Self {
        self.conceptual = self.conceptual.join(association, vec![]);
        self
    }

    /// Sets the ranked-text part (builder style).
    pub fn text_search(
        mut self,
        attr: impl Into<String>,
        query: impl Into<String>,
        top_n: usize,
    ) -> Self {
        self.text = Some(TextPredicate {
            attr: attr.into(),
            query: query.into(),
            top_n,
            rank_within: false,
        });
        self
    }

    /// Switches the text part to candidate-restricted ranking (builder
    /// style; no-op without a text part).
    pub fn rank_within_candidates(mut self) -> Self {
        if let Some(text) = &mut self.text {
            text.rank_within = true;
        }
        self
    }

    /// Sets the media-event part (builder style).
    pub fn media_event(mut self, attr: impl Into<String>, event: impl Into<String>) -> Self {
        self.media = Some(MediaPredicate {
            attr: attr.into(),
            event: event.into(),
        });
        self
    }

    /// Sets the result limit (builder style).
    pub fn top(mut self, limit: usize) -> Self {
        self.limit = limit;
        self
    }
}

/// One integrated query answer: conceptual data plus content evidence —
/// "specific conceptual information can be fetched as the result of a
/// query, rather than a bunch of relevant document URLs".
#[derive(Debug, Clone, PartialEq)]
pub struct EngineHit {
    /// The matched object chain (start class first).
    pub chain: Vec<String>,
    /// Text-retrieval score (0 when no text part).
    pub score: f64,
    /// The video location the media evidence came from, if any.
    pub video: Option<String>,
    /// The shots satisfying the media event (empty when no media part).
    pub shots: Vec<ShotMeta>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assembles_the_figure13_query() {
        let q = EngineQuery::from_class("Player")
            .filter_eq("gender", "female")
            .filter_eq("hand", "left")
            .text_search("history", "Winner", 10)
            .via("Is_covered_in")
            .media_event("video", "netplay")
            .top(10);
        assert_eq!(q.conceptual.from_class, "Player");
        assert_eq!(q.conceptual.predicates.len(), 2);
        assert_eq!(q.conceptual.joins.len(), 1);
        assert_eq!(q.text.as_ref().unwrap().query, "Winner");
        assert_eq!(q.media.as_ref().unwrap().event, "netplay");
        assert_eq!(q.limit, 10);
    }
}
