//! Online maintenance: detector upgrades and circuit-breaker heals
//! that run as background jobs while the engine keeps serving.
//!
//! The read path and the maintenance path are split. A job begins
//! under a brief engine borrow ([`crate::Engine::begin_upgrade`] /
//! [`crate::Engine::begin_heal`]): it pins the meta-index epoch,
//! captures a snapshot of the stored parse trees, and — for upgrades —
//! installs the new detector implementation in the shared registry,
//! keeping the old `(version, impl)` pair for rollback. The engine is
//! then free: interactive queries keep answering from the live,
//! epoch-pinned store (foreground queries never execute detectors, so
//! the early registry swap cannot change an answer).
//!
//! [`MaintenanceJob::run`] does the expensive work off-lock, against a
//! private restore of the pinned snapshot: it re-parses exactly the
//! objects the invalidation plan touches and collects the new trees as
//! *deltas*. Background jobs are admitted through the
//! [`crate::AdmissionGate`] in the `Batch` class, one permit per chunk
//! of objects, so the overload ladder can pause (Brownout) or refuse
//! (Shedding) maintenance whenever interactive traffic needs the
//! capacity — the interference bound is the one Batch slot a chunk
//! occupies.
//!
//! Cutover is epoch-consistent: [`crate::Engine::commit_maintenance`]
//! re-checks the pinned epoch under the engine borrow and applies every
//! delta in one critical section, so in-flight queries see either the
//! old store or the new one, never a half-upgraded mix. A job that
//! dies mid-run (injected fault, failed re-parse) is aborted instead:
//! [`crate::Engine::abort_maintenance`] swaps the old implementation
//! back and drops the private copy, leaving the live store
//! byte-identical to never-ran.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use acoi::{
    DetectorFn, DetectorRegistry, Fds, MetaIndex, ParseTree, RevisionLevel, Token, Version,
};
use acoi::fds::InvalidationPlan;
use faults::{FaultAction, FaultPlan};
use feagram::Grammar;
use monetxml::XmlStore;

use crate::admission::{AdmissionGate, OverloadLevel, Permit, Priority};
use crate::error::{Error, Result};

/// What a maintenance job is doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenanceKind {
    /// A detector implementation upgrade at some revision level.
    Upgrade {
        /// The revision level of the new implementation.
        level: RevisionLevel,
    },
    /// A heal: re-parse objects whose stored trees carry
    /// rejected-with-cause holes left by a detector outage.
    Heal,
}

impl MaintenanceKind {
    /// The metric label of this kind
    /// (`correction` / `minor` / `major` / `heal`).
    pub fn label(&self) -> &'static str {
        match self {
            MaintenanceKind::Upgrade { level: RevisionLevel::Correction } => "correction",
            MaintenanceKind::Upgrade { level: RevisionLevel::Minor } => "minor",
            MaintenanceKind::Upgrade { level: RevisionLevel::Major } => "major",
            MaintenanceKind::Heal => "heal",
        }
    }
}

/// Objects re-parsed per Batch admission. Each chunk holds one gate
/// permit, so this is the unit of interference maintenance can cause
/// before the ladder gets a chance to push back again.
const ADMIT_CHUNK: usize = 4;

/// How long a gated job waits out a Brownout before giving up
/// (`2000 × 1ms`); Brownout is interactive traffic asking for the
/// capacity, so maintenance pauses rather than competes.
const MAX_BROWNOUT_PAUSES: usize = 2000;
const BROWNOUT_PAUSE: Duration = Duration::from_millis(1);

/// Admission retries after a typed `Overloaded` rejection before the
/// job reports itself as starved.
const MAX_ADMIT_RETRIES: usize = 50;
const MAX_RETRY_SLEEP: Duration = Duration::from_millis(10);

/// Marks a detector busy in the engine's in-flight set for the life of
/// one maintenance job. Acquired as the *first* step of a begin —
/// before any side effect like the registry swap — so a second
/// `begin_*` on the same detector is refused with a typed
/// [`Error::MaintenanceBusy`] while the first job still exists.
/// Dropping the guard (commit, abort, or simply dropping the job)
/// releases the detector again.
pub(crate) struct BusyGuard {
    set: Arc<Mutex<HashSet<String>>>,
    detector: String,
}

impl BusyGuard {
    /// Claims `detector` in the shared in-flight set, or refuses with
    /// [`Error::MaintenanceBusy`] when a job already holds it.
    pub(crate) fn acquire(
        set: &Arc<Mutex<HashSet<String>>>,
        detector: &str,
    ) -> Result<BusyGuard> {
        let mut inflight = set
            .lock()
            .map_err(|_| Error::Config("maintenance in-flight set poisoned".to_owned()))?;
        if !inflight.insert(detector.to_owned()) {
            return Err(Error::MaintenanceBusy {
                detector: detector.to_owned(),
            });
        }
        Ok(BusyGuard {
            set: Arc::clone(set),
            detector: detector.to_owned(),
        })
    }
}

impl Drop for BusyGuard {
    fn drop(&mut self) {
        if let Ok(mut inflight) = self.set.lock() {
            inflight.remove(&self.detector);
        }
    }
}

/// One in-flight background maintenance job. Created by
/// [`crate::Engine::begin_upgrade`] / [`crate::Engine::begin_heal`],
/// driven by [`MaintenanceJob::run`] (no engine access needed), then
/// handed back to [`crate::Engine::commit_maintenance`] or
/// [`crate::Engine::abort_maintenance`].
pub struct MaintenanceJob {
    pub(crate) detector: String,
    pub(crate) kind: MaintenanceKind,
    pub(crate) plan: InvalidationPlan,
    /// Meta-store epoch at begin; commit refuses to cut over when the
    /// live store moved past it.
    pub(crate) pinned_meta_epoch: u64,
    /// Snapshot of the meta store at begin — the job's private epoch.
    snapshot: Vec<u8>,
    /// Initial token sets of every source at begin (the store snapshot
    /// does not record them).
    initial: HashMap<String, Vec<Token>>,
    grammar: Grammar,
    registry: Arc<DetectorRegistry>,
    /// The pre-upgrade `(version, impl)` pair, reinstalled on abort.
    /// `None` for heals (nothing was swapped).
    pub(crate) rollback: Option<(Version, DetectorFn)>,
    /// The version installed at begin (upgrades only) — part of the
    /// fault-injection label, so chaos schedules can target one
    /// specific upgrade cycle.
    new_version: Option<Version>,
    /// Re-parsed trees awaiting cutover, in source order.
    pub(crate) deltas: Vec<(String, Vec<Token>, ParseTree)>,
    pub(crate) objects_reparsed: usize,
    pub(crate) objects_untouched: usize,
    pub(crate) detector_calls: usize,
    pub(crate) detector_calls_saved: usize,
    /// Fault plan consulted once per object (background jobs only; the
    /// synchronous legacy paths never had injection here).
    faults: Option<Arc<FaultPlan>>,
    /// The admission gate, present iff the job runs gated (background).
    gate: Option<Arc<AdmissionGate>>,
    obs: obs::Obs,
    /// Holds the detector's slot in the engine's in-flight set;
    /// released when the job is committed, aborted or dropped.
    pub(crate) busy: Option<BusyGuard>,
    /// Begin time, taken only when observability is enabled (disabled
    /// engines must stay clock-free and byte-identical).
    pub(crate) started: Option<Instant>,
    /// Batch permits this job was granted.
    pub(crate) batch_admissions: u64,
}

impl MaintenanceJob {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        detector: String,
        kind: MaintenanceKind,
        plan: InvalidationPlan,
        pinned_meta_epoch: u64,
        snapshot: Vec<u8>,
        initial: HashMap<String, Vec<Token>>,
        grammar: Grammar,
        registry: Arc<DetectorRegistry>,
        rollback: Option<(Version, DetectorFn)>,
        new_version: Option<Version>,
        faults: Option<Arc<FaultPlan>>,
        gate: Option<Arc<AdmissionGate>>,
        obs: obs::Obs,
    ) -> MaintenanceJob {
        let started = if obs.is_enabled() { Some(Instant::now()) } else { None };
        MaintenanceJob {
            detector,
            kind,
            plan,
            pinned_meta_epoch,
            snapshot,
            initial,
            grammar,
            registry,
            rollback,
            new_version,
            deltas: Vec::new(),
            objects_reparsed: 0,
            objects_untouched: 0,
            detector_calls: 0,
            detector_calls_saved: 0,
            faults,
            gate,
            obs,
            busy: None,
            started,
            batch_admissions: 0,
        }
    }

    /// The detector this job maintains.
    pub fn detector(&self) -> &str {
        &self.detector
    }

    /// What the job is doing.
    pub fn kind(&self) -> MaintenanceKind {
        self.kind
    }

    /// Re-parsed objects collected so far (deltas awaiting cutover).
    pub fn delta_count(&self) -> usize {
        self.deltas.len()
    }

    /// Batch-class gate permits this job was granted (0 for ungated
    /// legacy jobs) — the proof that its work was admitted as
    /// background traffic.
    pub fn batch_admissions(&self) -> u64 {
        self.batch_admissions
    }

    /// The fault-injection label this job consults once per object:
    /// `maintenance:<detector>:<new-version>` for upgrades,
    /// `maintenance:<detector>:heal` for heals.
    pub fn fault_label(&self) -> String {
        match self.new_version {
            Some(v) => format!("maintenance:{}:{v}", self.detector),
            None => format!("maintenance:{}:heal", self.detector),
        }
    }

    /// Does the expensive half of the job, entirely off the engine:
    /// restores the pinned snapshot into a private meta-index, walks
    /// every source the plan touches (one Batch permit per
    /// [`ADMIT_CHUNK`] when gated), and collects the re-parsed trees
    /// as deltas. On any error the job is dead — hand it to
    /// [`crate::Engine::abort_maintenance`]; the live store was never
    /// touched.
    pub fn run(&mut self) -> Result<()> {
        let mut span = self.obs.span("engine.maintenance");
        let out = self.run_inner(&mut span);
        if out.is_err() {
            span.set_outcome(obs::Outcome::Rejected);
        }
        out
    }

    fn run_inner(&mut self, span: &mut obs::Span) -> Result<()> {
        let store = XmlStore::restore(&self.snapshot)?;
        self.snapshot = Vec::new();
        let initial = std::mem::take(&mut self.initial);
        let mut index =
            MetaIndex::from_store(store, |s| initial.get(s).cloned().unwrap_or_default());
        let sources: Vec<String> = index.sources().to_vec();

        // Corrections invalidate nothing: the version bump installed at
        // begin is the whole job.
        if self.plan.priority == acoi::fds::Priority::None {
            self.objects_untouched = sources.len();
            return Ok(());
        }

        let fds = Fds::new(&self.grammar);
        let stale: BTreeSet<String> = self.plan.stale_symbols();
        for chunk in sources.chunks(ADMIT_CHUNK) {
            let _permit = self.admit_batch()?;
            for source in chunk {
                self.consult_faults(source)?;
                let done = match self.kind {
                    MaintenanceKind::Upgrade { .. } => fds.reparse_object(
                        &self.grammar,
                        &self.registry,
                        &mut index,
                        source,
                        &self.detector,
                        &stale,
                    ),
                    MaintenanceKind::Heal => fds.heal_object(
                        &self.grammar,
                        &self.registry,
                        &mut index,
                        source,
                        &self.detector,
                    ),
                }
                .map_err(|e| Error::Maintenance {
                    detector: self.detector.clone(),
                    cause: e.to_string(),
                })?;
                match done {
                    None => self.objects_untouched += 1,
                    Some(done) => {
                        self.detector_calls += done.detector_calls;
                        self.detector_calls_saved += done.detector_calls_saved;
                        // Keep the private copy current too, so the
                        // job's view stays a consistent next epoch.
                        index
                            .insert(source, done.initial.clone(), &done.tree)
                            .map_err(Error::Acoi)?;
                        self.deltas.push((source.clone(), done.initial, done.tree));
                        self.objects_reparsed += 1;
                    }
                }
                span.add_work(1);
            }
        }
        Ok(())
    }

    /// One injected-fault consultation per object. A scripted or drawn
    /// fault kills the job with a typed error — the caller aborts and
    /// the live store stays byte-identical.
    fn consult_faults(&self, source: &str) -> Result<()> {
        let Some(plan) = &self.faults else { return Ok(()) };
        match plan.decide(&self.fault_label()) {
            FaultAction::None => Ok(()),
            action => Err(Error::Maintenance {
                detector: self.detector.clone(),
                cause: format!("injected {action:?} fault at `{source}`"),
            }),
        }
    }

    /// Admission of the next chunk. Ungated jobs (the synchronous
    /// legacy paths, which already hold the engine) skip the gate
    /// entirely. Gated jobs first wait out any Brownout-or-worse rung
    /// — maintenance pauses while interactive traffic is distressed —
    /// then take one `Batch` permit, retrying a bounded number of
    /// times on a typed `Overloaded` rejection.
    fn admit_batch(&mut self) -> Result<Option<Permit>> {
        let Some(gate) = &self.gate else { return Ok(None) };
        let mut pauses = 0;
        while gate.level() >= OverloadLevel::Brownout && pauses < MAX_BROWNOUT_PAUSES {
            std::thread::sleep(BROWNOUT_PAUSE);
            pauses += 1;
        }
        let mut attempts = 0;
        loop {
            match gate.admit(Priority::Batch) {
                Ok(permit) => {
                    self.batch_admissions += 1;
                    if let Some(reg) = self.obs.registry() {
                        reg.counter(
                            "engine_maintenance_batch_admissions_total",
                            "Batch-class gate permits granted to maintenance jobs",
                        )
                        .inc();
                    }
                    return Ok(Some(permit));
                }
                Err(Error::Overloaded { retry_after_hint }) if attempts < MAX_ADMIT_RETRIES => {
                    attempts += 1;
                    std::thread::sleep(retry_after_hint.min(MAX_RETRY_SLEEP));
                }
                Err(e) => return Err(e),
            }
        }
    }
}
