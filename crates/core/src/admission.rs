//! Admission control and the brownout degradation ladder.
//!
//! A digital library front-end faces open-loop load: crawl bursts,
//! result-page fan-out, batch analytics — all hitting the same query
//! path. Left unbounded, every queueing layer grows until latency is
//! unbounded and the process dies of memory, which helps nobody. The
//! admission layer bounds the system instead:
//!
//! * an [`AdmissionGate`] holds a fixed number of execution slots and a
//!   bounded wait queue; when both are full the query is *rejected* with
//!   a typed [`Error::Overloaded`] carrying a retry-after hint, never
//!   silently queued,
//! * every query class carries a [`Priority`] — `Interactive` requests
//!   (a person is waiting) outrank `Batch` work (a crawler can wait),
//! * an [`OverloadLevel`] ladder — Healthy → Pressured → Brownout →
//!   Shedding — is recomputed from the gate's queue depth and recent
//!   service latency on every admission event. Higher rungs trade
//!   answer *quality* for *liveness*: Brownout truncates rankings and
//!   skips media refinement (stamping the answer DEGRADED with an
//!   honest quality estimate), Shedding stops admitting batch work
//!   entirely,
//! * the [`QueryService`] ties the pieces together for concurrent
//!   callers: admit, read the ladder, run the query at the appropriate
//!   degradation level under the caller's [`Budget`].
//!
//! Every level transition is logged with its trigger occupancy and kept
//! in a bounded ring, queryable via [`AdmissionGate::status`] (or
//! [`crate::Engine::overload_status`]) so operators can reconstruct
//! what the ladder did during an incident.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use faults::Budget;

use crate::engine::Engine;
use crate::error::{Error, Result};
use crate::query::{EngineHit, EngineQuery};

/// Priority class of a query at the admission gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Priority {
    /// A person is waiting on the answer. Served at every ladder rung
    /// (degraded when the ladder says so), rejected only when the gate
    /// itself is full.
    Interactive,
    /// Background work — crawl refresh, analytics, prefetch. First to
    /// be shed: rejected outright once the ladder reaches
    /// [`OverloadLevel::Shedding`].
    Batch,
}

/// The degradation ladder, in escalation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OverloadLevel {
    /// Nominal: full-fidelity answers.
    Healthy,
    /// Queueing has started: answers still full-fidelity, but served
    /// from the answer cache whenever the epoch check allows it.
    Pressured,
    /// Quality is traded for throughput: rankings truncated, media
    /// refinement skipped, answers stamped DEGRADED with quality < 1.
    Brownout,
    /// Survival mode: batch work is rejected at the gate; interactive
    /// queries still get Brownout-grade answers.
    Shedding,
}

impl OverloadLevel {
    /// The next rung up (saturating at [`OverloadLevel::Shedding`]).
    pub fn escalate(self) -> OverloadLevel {
        match self {
            OverloadLevel::Healthy => OverloadLevel::Pressured,
            OverloadLevel::Pressured => OverloadLevel::Brownout,
            OverloadLevel::Brownout | OverloadLevel::Shedding => OverloadLevel::Shedding,
        }
    }
}

/// Tuning of the [`AdmissionGate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Queries executing at once; further admissions wait in the queue.
    pub max_concurrent: usize,
    /// Wait-queue capacity. Arrivals beyond it are rejected with
    /// [`Error::Overloaded`] — the hard bound that keeps the process
    /// live under any arrival rate.
    pub max_queue: usize,
    /// How long an admitted query may wait for a slot before the gate
    /// gives up and rejects it (bounds worst-case queueing latency).
    pub queue_timeout: Duration,
    /// Queue depth at which the ladder leaves Healthy.
    pub pressured_queue: usize,
    /// Queue depth at which the ladder reaches Brownout.
    pub brownout_queue: usize,
    /// Recent-latency median above this escalates the ladder one rung
    /// (only once `latency_window` samples exist, so cold starts and
    /// zero-load runs judge by queue depth alone).
    pub latency_target: Duration,
    /// Completed-query latencies kept for the median.
    pub latency_window: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_concurrent: 4,
            max_queue: 16,
            queue_timeout: Duration::from_secs(2),
            pressured_queue: 2,
            brownout_queue: 6,
            latency_target: Duration::from_millis(250),
            latency_window: 16,
        }
    }
}

/// One ladder movement, with the occupancy that triggered it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelTransition {
    /// Monotonic transition counter (survives ring eviction).
    pub seq: u64,
    /// Rung before.
    pub from: OverloadLevel,
    /// Rung after.
    pub to: OverloadLevel,
    /// Queue depth at the transition.
    pub queued: usize,
    /// Executing queries at the transition.
    pub running: usize,
}

/// A queryable snapshot of the gate: the current rung, occupancy,
/// lifetime counters and the recent transition log.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadStatus {
    /// Current ladder rung.
    pub level: OverloadLevel,
    /// Queries executing right now.
    pub running: usize,
    /// Queries waiting for a slot right now.
    pub queued: usize,
    /// Lifetime admissions.
    pub admitted: u64,
    /// Lifetime rejections (queue full, shedding, or wait timeout).
    pub rejected: u64,
    /// The subset of rejections that waited out `queue_timeout`.
    pub timed_out: u64,
    /// Lifetime completed queries (permits released).
    pub completed: u64,
    /// Median of the recent-latency window, once it has any samples.
    pub recent_p50: Option<Duration>,
    /// Recent ladder movements, oldest first (bounded ring).
    pub transitions: Vec<LevelTransition>,
    /// Burn-rate context per SLO, filled by [`crate::Engine::overload_status`]
    /// when a telemetry layer is attached (empty otherwise).
    pub slo: Vec<obs::SloStatus>,
}

/// Transition-log ring capacity.
const TRANSITION_LOG: usize = 256;

/// Gate metric handles, registered by [`AdmissionGate::set_obs`].
struct GateMetrics {
    admitted: obs::Counter,
    rejected: obs::Counter,
    timed_out: obs::Counter,
    shed: obs::Counter,
    completed: obs::Counter,
    wait_seconds: obs::Histogram,
    level: obs::Gauge,
    running: obs::Gauge,
    queued: obs::Gauge,
}

impl GateMetrics {
    fn register(reg: &obs::Registry) -> GateMetrics {
        GateMetrics {
            admitted: reg.counter("admission_admitted_total", "Queries granted a slot"),
            rejected: reg.counter(
                "admission_rejected_total",
                "Queries turned away (queue full, shedding, or wait timeout)",
            ),
            timed_out: reg.counter(
                "admission_timed_out_total",
                "Rejections that first waited out the queue timeout",
            ),
            shed: reg.counter(
                "admission_shed_total",
                "Batch queries rejected because the ladder was shedding",
            ),
            completed: reg.counter("admission_completed_total", "Permits released"),
            wait_seconds: reg.histogram(
                "admission_wait_seconds",
                "Time from arrival at the gate to a granted slot",
                obs::DEFAULT_TIME_BUCKETS,
            ),
            level: reg.gauge(
                "admission_level",
                "Ladder rung (0=healthy, 1=pressured, 2=brownout, 3=shedding)",
            ),
            running: reg.gauge("admission_running", "Queries executing right now"),
            queued: reg.gauge("admission_queued", "Queries waiting for a slot right now"),
        }
    }
}

fn level_ordinal(level: OverloadLevel) -> i64 {
    match level {
        OverloadLevel::Healthy => 0,
        OverloadLevel::Pressured => 1,
        OverloadLevel::Brownout => 2,
        OverloadLevel::Shedding => 3,
    }
}

struct GateState {
    config: AdmissionConfig,
    /// Observability handle plus pre-registered metric handles; both
    /// disabled/absent until [`AdmissionGate::set_obs`].
    obs: obs::Obs,
    metrics: Option<GateMetrics>,
    running: usize,
    queued: usize,
    level: OverloadLevel,
    /// Completed-query latencies, oldest first, capped at
    /// `config.latency_window`.
    latencies: VecDeque<Duration>,
    admitted: u64,
    rejected: u64,
    timed_out: u64,
    completed: u64,
    transitions: VecDeque<LevelTransition>,
    transition_seq: u64,
}

/// The bounded admission gate. Shared (`Arc`) between the engine, the
/// [`QueryService`] and every outstanding [`Permit`].
pub struct AdmissionGate {
    state: Mutex<GateState>,
    slot_free: Condvar,
}

impl AdmissionGate {
    /// A gate with `config` tuning, all slots free, ladder Healthy.
    pub fn new(config: AdmissionConfig) -> Arc<AdmissionGate> {
        Arc::new(AdmissionGate {
            state: Mutex::new(GateState {
                config,
                obs: obs::Obs::disabled(),
                metrics: None,
                running: 0,
                queued: 0,
                level: OverloadLevel::Healthy,
                latencies: VecDeque::new(),
                admitted: 0,
                rejected: 0,
                timed_out: 0,
                completed: 0,
                transitions: VecDeque::new(),
                transition_seq: 0,
            }),
            slot_free: Condvar::new(),
        })
    }

    /// Connects the gate to an observability handle: admissions,
    /// rejections and wait times record into `admission_*` metrics,
    /// and each admission runs under an `admission.wait` span.
    pub fn set_obs(&self, o: &obs::Obs) {
        let mut state = self.lock();
        state.obs = o.clone();
        state.metrics = o.registry().map(GateMetrics::register);
        if let Some(m) = &state.metrics {
            m.level.set(level_ordinal(state.level));
            m.running.set(state.running as i64);
            m.queued.set(state.queued as i64);
        }
    }

    /// Locks the gate state, absorbing poisoning: a panic inside a
    /// query holding a permit must not take the whole gate down with
    /// it — overload resilience includes surviving our own bugs.
    fn lock(&self) -> MutexGuard<'_, GateState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Recomputes the ladder rung from the locked state and logs the
    /// transition if it moved.
    fn retune(&self, state: &mut GateState) {
        let next = level_for(state);
        if let Some(m) = &state.metrics {
            m.level.set(level_ordinal(next));
            m.running.set(state.running as i64);
            m.queued.set(state.queued as i64);
        }
        if next != state.level {
            state.transition_seq += 1;
            if state.transitions.len() == TRANSITION_LOG {
                state.transitions.pop_front();
            }
            state.transitions.push_back(LevelTransition {
                seq: state.transition_seq,
                from: state.level,
                to: next,
                queued: state.queued,
                running: state.running,
            });
            let (queued, running) = (state.queued, state.running);
            let from = state.level;
            state.obs.record_event("admission", || {
                format!("ladder {from:?}->{next:?} queued={queued} running={running}")
            });
            state.level = next;
        }
    }

    /// Asks for an execution slot. Returns a [`Permit`] bound to this
    /// gate — dropping it releases the slot and feeds the query's
    /// latency into the ladder — or a typed [`Error::Overloaded`] when
    /// the queue is full, the ladder is shedding this priority class,
    /// or the wait exceeds `queue_timeout`. Never queues unboundedly.
    pub fn admit(self: &Arc<Self>, priority: Priority) -> Result<Permit> {
        let mut state = self.lock();
        let mut sp = state.obs.span("admission.wait");
        let arrived = state.metrics.as_ref().map(|_| Instant::now());
        if state.level == OverloadLevel::Shedding && priority == Priority::Batch {
            state.rejected += 1;
            if let Some(m) = &state.metrics {
                m.rejected.inc();
                m.shed.inc();
            }
            sp.set_outcome(obs::Outcome::Rejected);
            let hint = retry_hint(&state);
            return Err(Error::Overloaded {
                retry_after_hint: hint,
            });
        }
        if state.running < state.config.max_concurrent {
            // Free slot: no queueing, no ladder blip.
            state.running += 1;
            state.admitted += 1;
            if let Some(m) = &state.metrics {
                m.admitted.inc();
                if let Some(arrived) = arrived {
                    m.wait_seconds.observe_ns(arrived.elapsed().as_nanos() as u64);
                }
            }
            self.retune(&mut state);
            return Ok(Permit {
                gate: Arc::clone(self),
                started: Instant::now(),
            });
        }
        if state.queued >= state.config.max_queue {
            state.rejected += 1;
            if let Some(m) = &state.metrics {
                m.rejected.inc();
            }
            sp.set_outcome(obs::Outcome::Rejected);
            let hint = retry_hint(&state);
            return Err(Error::Overloaded {
                retry_after_hint: hint,
            });
        }
        state.queued += 1;
        self.retune(&mut state);
        let give_up = Instant::now() + state.config.queue_timeout;
        while state.running >= state.config.max_concurrent {
            let now = Instant::now();
            if now >= give_up {
                state.queued -= 1;
                state.timed_out += 1;
                state.rejected += 1;
                if let Some(m) = &state.metrics {
                    m.rejected.inc();
                    m.timed_out.inc();
                }
                sp.set_outcome(obs::Outcome::Rejected);
                let hint = retry_hint(&state);
                self.retune(&mut state);
                return Err(Error::Overloaded {
                    retry_after_hint: hint,
                });
            }
            state = self
                .slot_free
                .wait_timeout(state, give_up - now)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
        state.queued -= 1;
        state.running += 1;
        state.admitted += 1;
        if let Some(m) = &state.metrics {
            m.admitted.inc();
            if let Some(arrived) = arrived {
                m.wait_seconds.observe_ns(arrived.elapsed().as_nanos() as u64);
            }
        }
        self.retune(&mut state);
        Ok(Permit {
            gate: Arc::clone(self),
            started: Instant::now(),
        })
    }

    /// The current ladder rung.
    pub fn level(&self) -> OverloadLevel {
        self.lock().level
    }

    /// Snapshot of the gate for operators and tests.
    pub fn status(&self) -> OverloadStatus {
        let state = self.lock();
        OverloadStatus {
            level: state.level,
            running: state.running,
            queued: state.queued,
            admitted: state.admitted,
            rejected: state.rejected,
            timed_out: state.timed_out,
            completed: state.completed,
            recent_p50: median(&state.latencies),
            transitions: state.transitions.iter().cloned().collect(),
            slo: Vec::new(),
        }
    }

    /// Swaps the tuning in place (occupancy, counters and the
    /// transition log survive; the ladder is recomputed immediately).
    pub fn reconfigure(&self, config: AdmissionConfig) {
        let mut state = self.lock();
        state.config = config;
        while state.latencies.len() > state.config.latency_window {
            state.latencies.pop_front();
        }
        self.retune(&mut state);
        drop(state);
        // A raised max_concurrent may unblock waiters right now.
        self.slot_free.notify_all();
    }
}

/// Ladder rung for the current occupancy: queue depth sets the base
/// rung; a full latency window with a median past target escalates one
/// rung — but only while load exists, so an idle gate always reads
/// Healthy regardless of what the last storm's latencies looked like.
fn level_for(state: &GateState) -> OverloadLevel {
    let c = &state.config;
    let mut level = if state.queued == 0 {
        OverloadLevel::Healthy
    } else if state.queued >= c.max_queue {
        OverloadLevel::Shedding
    } else if state.queued >= c.brownout_queue {
        OverloadLevel::Brownout
    } else if state.queued >= c.pressured_queue {
        OverloadLevel::Pressured
    } else {
        OverloadLevel::Healthy
    };
    if state.running + state.queued > 0
        && c.latency_window > 0
        && state.latencies.len() >= c.latency_window
    {
        if let Some(p50) = median(&state.latencies) {
            if p50 > c.latency_target {
                level = level.escalate();
            }
        }
    }
    level
}

/// Median of the latency window (`None` when empty).
fn median(window: &VecDeque<Duration>) -> Option<Duration> {
    if window.is_empty() {
        return None;
    }
    let mut sorted: Vec<Duration> = window.iter().copied().collect();
    sorted.sort();
    Some(sorted[sorted.len() / 2])
}

/// Estimated wait until a slot frees: the average recent service time,
/// multiplied by how many service waves stand between the caller and a
/// slot. With no latency history yet, a small fixed hint.
fn retry_hint(state: &GateState) -> Duration {
    let per_query = if state.latencies.is_empty() {
        Duration::from_millis(10)
    } else {
        let total: Duration = state.latencies.iter().sum();
        total / state.latencies.len() as u32
    };
    let ahead = state.queued + state.running;
    let waves = ahead / state.config.max_concurrent.max(1) + 1;
    per_query
        .saturating_mul(waves as u32)
        .max(Duration::from_millis(1))
}

/// Proof of admission: holds one of the gate's execution slots.
/// Dropping it releases the slot, records the query's service latency
/// in the ladder's window and wakes one waiter.
pub struct Permit {
    gate: Arc<AdmissionGate>,
    started: Instant,
}

impl std::fmt::Debug for Permit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Permit")
            .field("held_for", &self.started.elapsed())
            .finish()
    }
}

impl Permit {
    /// Time since this permit was granted.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        let latency = self.started.elapsed();
        let mut state = self.gate.lock();
        state.running = state.running.saturating_sub(1);
        state.completed += 1;
        if let Some(m) = &state.metrics {
            m.completed.inc();
        }
        if state.config.latency_window > 0 {
            if state.latencies.len() >= state.config.latency_window {
                state.latencies.pop_front();
            }
            state.latencies.push_back(latency);
        }
        self.gate.retune(&mut state);
        drop(state);
        self.gate.slot_free.notify_one();
    }
}

/// One query answer with its honesty metadata: the hits, the ladder
/// rung they were computed at, an estimated quality in `(0, 1]` and
/// human-readable notes for every fidelity cut that was taken.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// The (possibly truncated) answer.
    pub hits: Vec<EngineHit>,
    /// Estimated answer quality: 1.0 for a full-fidelity answer,
    /// lowered by ranking truncation, skipped media refinement and
    /// failed text servers.
    pub quality: f64,
    /// Ladder rung the answer was computed at.
    pub level: OverloadLevel,
    /// One note per fidelity cut (empty for full-fidelity answers).
    pub degraded: Vec<String>,
}

/// The concurrent front door: a shared engine behind an admission
/// gate. Clone-free sharing is by reference (`&QueryService` is `Sync`);
/// the closed-loop load harness drives one instance from many threads.
pub struct QueryService {
    engine: Mutex<Engine>,
    gate: Arc<AdmissionGate>,
}

impl QueryService {
    /// Wraps an engine, sharing its admission gate.
    pub fn new(engine: Engine) -> QueryService {
        let gate = engine.admission_gate();
        QueryService {
            engine: Mutex::new(engine),
            gate,
        }
    }

    /// Wraps an engine after retuning its gate.
    pub fn with_config(engine: Engine, config: AdmissionConfig) -> QueryService {
        engine.admission_gate().reconfigure(config);
        Self::new(engine)
    }

    /// The shared admission gate.
    pub fn gate(&self) -> &Arc<AdmissionGate> {
        &self.gate
    }

    /// Snapshot of the gate (rung, occupancy, counters, transitions).
    pub fn status(&self) -> OverloadStatus {
        self.gate.status()
    }

    /// Locked access to the engine for setup (populate, persistence).
    /// A poisoned lock is absorbed: the engine's query path does not
    /// leave partial state behind on panic-free error paths, and
    /// staying live beats propagating a poison after a bug.
    pub fn engine(&self) -> MutexGuard<'_, Engine> {
        self.engine.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Unwraps the service back into its engine.
    pub fn into_engine(self) -> Engine {
        self.engine
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// The full overload-resilient query path: admission (typed
    /// rejection when saturated), ladder read, then execution at the
    /// rung's fidelity under the caller's budget. The permit is held
    /// for the whole execution, so its drop feeds true service latency
    /// into the ladder.
    pub fn query(
        &self,
        q: &EngineQuery,
        priority: Priority,
        budget: &Budget,
    ) -> Result<QueryOutcome> {
        let permit = self.gate.admit(priority)?;
        let level = self.gate.level();
        let outcome = self.engine().query_degraded(q, budget, level);
        drop(permit);
        outcome
    }

    /// Upgrades a detector as a *background* maintenance job: the
    /// engine lock is taken only twice, briefly — once to begin (pin
    /// the epoch, snapshot the trees, install the new implementation)
    /// and once to cut over (or roll back). The expensive re-parsing
    /// in between runs off-lock, admitted through the gate in the
    /// `Batch` class, while interactive queries keep serving exact
    /// answers against the pinned epoch.
    pub fn upgrade_detector_online(
        &self,
        detector: &str,
        level: acoi::RevisionLevel,
        new_impl: acoi::DetectorFn,
    ) -> Result<acoi::MaintenanceReport> {
        let mut job = self.engine().begin_upgrade(detector, level, new_impl)?;
        match job.run() {
            Ok(()) => self.engine().commit_maintenance(job),
            Err(e) => {
                self.engine().abort_maintenance(job)?;
                Err(e)
            }
        }
    }

    /// Heals a detector's rejected-with-cause backlog as a background
    /// maintenance job — same two-brief-locks protocol as
    /// [`QueryService::upgrade_detector_online`].
    pub fn heal_detector_online(&self, detector: &str) -> Result<acoi::MaintenanceReport> {
        let mut job = self.engine().begin_heal(detector)?;
        match job.run() {
            Ok(()) => self.engine().commit_maintenance(job),
            Err(e) => {
                self.engine().abort_maintenance(job)?;
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    fn tiny_config() -> AdmissionConfig {
        AdmissionConfig {
            max_concurrent: 1,
            max_queue: 2,
            queue_timeout: Duration::from_millis(50),
            pressured_queue: 1,
            brownout_queue: 2,
            latency_target: Duration::from_millis(5),
            latency_window: 4,
        }
    }

    #[test]
    fn idle_gate_is_healthy_and_admits() {
        let gate = AdmissionGate::new(AdmissionConfig::default());
        assert_eq!(gate.level(), OverloadLevel::Healthy);
        let permit = gate.admit(Priority::Interactive).unwrap();
        let status = gate.status();
        assert_eq!(status.running, 1);
        assert_eq!(status.queued, 0);
        assert_eq!(status.admitted, 1);
        drop(permit);
        let status = gate.status();
        assert_eq!(status.running, 0);
        assert_eq!(status.completed, 1);
        assert_eq!(status.level, OverloadLevel::Healthy);
        assert!(status.transitions.is_empty());
    }

    #[test]
    fn full_queue_rejects_with_a_retry_hint() {
        let gate = AdmissionGate::new(AdmissionConfig {
            max_queue: 0,
            ..tiny_config()
        });
        let _held = gate.admit(Priority::Interactive).unwrap();
        // Slot taken, queue capacity zero: the next arrival must be
        // turned away immediately, not parked.
        let before = Instant::now();
        let err = gate.admit(Priority::Interactive).unwrap_err();
        assert!(before.elapsed() < Duration::from_millis(40));
        match err {
            Error::Overloaded { retry_after_hint } => {
                assert!(retry_after_hint >= Duration::from_millis(1));
            }
            other => panic!("expected Overloaded, got {other}"),
        }
        assert_eq!(gate.status().rejected, 1);
    }

    #[test]
    fn queue_timeout_bounds_the_wait() {
        let gate = AdmissionGate::new(tiny_config());
        let _held = gate.admit(Priority::Interactive).unwrap();
        let start = Instant::now();
        let err = gate.admit(Priority::Interactive).unwrap_err();
        let waited = start.elapsed();
        assert!(matches!(err, Error::Overloaded { .. }), "got {err}");
        assert!(waited >= Duration::from_millis(50), "gave up too early: {waited:?}");
        assert!(waited < Duration::from_secs(2), "wait not bounded: {waited:?}");
        let status = gate.status();
        assert_eq!(status.timed_out, 1);
        assert_eq!(status.queued, 0, "timed-out waiter still counted as queued");
    }

    #[test]
    fn ladder_climbs_with_queue_depth_and_logs_transitions() {
        let gate = AdmissionGate::new(AdmissionConfig {
            max_concurrent: 1,
            max_queue: 4,
            queue_timeout: Duration::from_millis(400),
            pressured_queue: 1,
            brownout_queue: 2,
            ..AdmissionConfig::default()
        });
        let held = gate.admit(Priority::Interactive).unwrap();
        // Two waiters queue up behind the held slot; queue depth 1 then
        // 2 walks the ladder Healthy → Pressured → Brownout.
        let mut waiters = Vec::new();
        for _ in 0..2 {
            let worker_gate = Arc::clone(&gate);
            waiters.push(thread::spawn(move || {
                worker_gate.admit(Priority::Interactive).map(drop).is_ok()
            }));
            let deadline = Instant::now() + Duration::from_secs(2);
            while gate.status().transitions.is_empty() && Instant::now() < deadline {
                thread::yield_now();
            }
        }
        let deadline = Instant::now() + Duration::from_secs(2);
        while gate.status().queued < 2 && Instant::now() < deadline {
            thread::yield_now();
        }
        assert_eq!(gate.level(), OverloadLevel::Brownout);
        drop(held);
        for w in waiters {
            assert!(w.join().unwrap(), "waiter should be admitted once the slot frees");
        }
        let status = gate.status();
        assert_eq!(status.level, OverloadLevel::Healthy, "idle gate must settle Healthy");
        let seen: Vec<(OverloadLevel, OverloadLevel)> =
            status.transitions.iter().map(|t| (t.from, t.to)).collect();
        assert!(
            seen.contains(&(OverloadLevel::Healthy, OverloadLevel::Pressured)),
            "missing Healthy→Pressured in {seen:?}"
        );
        assert!(
            seen.iter().any(|(_, to)| *to == OverloadLevel::Brownout),
            "missing →Brownout in {seen:?}"
        );
        // Seqs are strictly increasing.
        for pair in status.transitions.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
        }
    }

    #[test]
    fn shedding_rejects_batch_but_serves_interactive() {
        let gate = AdmissionGate::new(AdmissionConfig {
            max_concurrent: 1,
            max_queue: 1,
            queue_timeout: Duration::from_millis(400),
            pressured_queue: 1,
            brownout_queue: 1,
            ..AdmissionConfig::default()
        });
        let held = gate.admit(Priority::Interactive).unwrap();
        // One waiter fills the queue: depth 1 == max_queue → Shedding.
        let waiter = {
            let gate = Arc::clone(&gate);
            thread::spawn(move || gate.admit(Priority::Interactive).map(drop).is_ok())
        };
        let deadline = Instant::now() + Duration::from_secs(2);
        while gate.status().queued < 1 && Instant::now() < deadline {
            thread::yield_now();
        }
        assert_eq!(gate.level(), OverloadLevel::Shedding);
        // Batch is shed (queue-full also rejects, but the point is the
        // rejection is immediate and typed either way).
        let err = Arc::clone(&gate).admit(Priority::Batch).unwrap_err();
        assert!(matches!(err, Error::Overloaded { .. }), "got {err}");
        drop(held);
        assert!(waiter.join().unwrap());
        // Ladder recovers; interactive is admitted again.
        assert_eq!(gate.level(), OverloadLevel::Healthy);
        drop(gate.admit(Priority::Interactive).unwrap());
    }

    #[test]
    fn slow_medians_escalate_one_rung_under_load() {
        let gate = AdmissionGate::new(AdmissionConfig {
            max_concurrent: 2,
            latency_window: 2,
            latency_target: Duration::from_millis(1),
            ..AdmissionConfig::default()
        });
        // Fill the latency window with slow completions.
        for _ in 0..2 {
            let permit = gate.admit(Priority::Interactive).unwrap();
            thread::sleep(Duration::from_millis(3));
            drop(permit);
        }
        // Idle: slow history alone must not leave Healthy.
        assert_eq!(gate.level(), OverloadLevel::Healthy);
        // Under load the same history escalates Healthy → Pressured.
        let _held = gate.admit(Priority::Interactive).unwrap();
        assert_eq!(gate.level(), OverloadLevel::Pressured);
    }

    #[test]
    fn reconfigure_wakes_waiters() {
        let gate = AdmissionGate::new(AdmissionConfig {
            max_concurrent: 1,
            max_queue: 4,
            queue_timeout: Duration::from_secs(5),
            ..AdmissionConfig::default()
        });
        let _held = gate.admit(Priority::Interactive).unwrap();
        let admitted = Arc::new(AtomicUsize::new(0));
        let waiter = {
            let gate = Arc::clone(&gate);
            let admitted = Arc::clone(&admitted);
            thread::spawn(move || {
                let permit = gate.admit(Priority::Interactive);
                if permit.is_ok() {
                    admitted.fetch_add(1, Ordering::SeqCst);
                }
                drop(permit);
            })
        };
        let deadline = Instant::now() + Duration::from_secs(2);
        while gate.status().queued < 1 && Instant::now() < deadline {
            thread::yield_now();
        }
        gate.reconfigure(AdmissionConfig {
            max_concurrent: 2,
            ..AdmissionConfig::default()
        });
        waiter.join().unwrap();
        assert_eq!(admitted.load(Ordering::SeqCst), 1);
    }
}
