//! A breadth-first crawler over a generated site.
//!
//! "In the indexing phase, a crawler retrieves the source documents from
//! a webspace."

use std::collections::{BTreeSet, VecDeque};

use monetxml::{parse_document, Document, NodeId};

use crate::ausopen::Site;

/// Crawls `site` breadth-first from its home page; returns `(url, html)`
/// pairs in visit order. Only pages of the site are followed (the paper's
/// engines restrict themselves to an IP-domain); media links (`.mpg`,
/// `.jpg`) are recorded by the caller's extraction rules, not fetched.
pub fn crawl(site: &Site) -> Vec<(String, String)> {
    let mut visited = BTreeSet::new();
    let mut queue = VecDeque::new();
    let mut out = Vec::new();
    queue.push_back(site.home());
    visited.insert(site.home());

    while let Some(url) = queue.pop_front() {
        let Some(html) = site.page(&url) else {
            continue;
        };
        out.push((url.clone(), html.to_owned()));
        let Ok(doc) = parse_document(html) else {
            continue;
        };
        for href in extract_links(&doc) {
            if site.page(&href).is_some() && visited.insert(href.clone()) {
                queue.push_back(href);
            }
        }
    }
    out
}

/// All `href` attribute values of `<a>` elements, in document order.
pub fn extract_links(doc: &Document) -> Vec<String> {
    let mut out = Vec::new();
    fn walk(doc: &Document, node: NodeId, out: &mut Vec<String>) {
        if doc.tag(node) == Some("a") {
            if let Some(href) = doc.attr(node, "href") {
                out.push(href.to_owned());
            }
        }
        for c in doc.children(node) {
            walk(doc, *c, out);
        }
    }
    walk(doc, doc.root(), &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ausopen::SiteSpec;

    #[test]
    fn crawl_reaches_every_page() {
        let site = Site::generate(SiteSpec {
            players: 6,
            articles: 8,
            seed: 3,
        });
        let crawled = crawl(&site);
        assert_eq!(crawled.len(), site.page_count());
        // No duplicates.
        let urls: BTreeSet<&str> = crawled.iter().map(|(u, _)| u.as_str()).collect();
        assert_eq!(urls.len(), crawled.len());
    }

    #[test]
    fn crawl_starts_at_home() {
        let site = Site::generate(SiteSpec::default());
        let crawled = crawl(&site);
        assert_eq!(crawled[0].0, site.home());
    }

    #[test]
    fn extract_links_finds_hrefs_in_order() {
        let doc = parse_document(
            r#"<div><a href="one.html">1</a><p><a href="two.html">2</a></p><a>none</a></div>"#,
        )
        .unwrap();
        assert_eq!(extract_links(&doc), vec!["one.html", "two.html"]);
    }
}
