//! The Australian Open site generator.

use std::collections::BTreeMap;

use cobra::audio::{ambience_clip, interview_clip, AudioClip};
use cobra::{BroadcastSpec, ShotSpec, TrajectorySpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Site base URL.
pub const BASE: &str = "http://ausopen.example.org";

const FIRST_NAMES_F: &[&str] = &[
    "Monica", "Martina", "Jennifer", "Lindsay", "Venus", "Serena", "Kim", "Justine", "Amelie",
    "Arantxa",
];
const FIRST_NAMES_M: &[&str] = &[
    "Andre", "Pete", "Patrick", "Yevgeny", "Marat", "Gustavo", "Lleyton", "Thomas", "Carlos",
    "Goran",
];
const LAST_NAMES: &[&str] = &[
    "Seles", "Hingis", "Capriati", "Davenport", "Williams", "Agassi", "Sampras", "Rafter",
    "Kafelnikov", "Safin", "Kuerten", "Hewitt", "Johansson", "Moya", "Ivanisevic", "Clijsters",
    "Henin", "Mauresmo", "Sanchez", "Enqvist",
];
const COUNTRIES: &[&str] = &[
    "USA", "Switzerland", "Australia", "Russia", "Brazil", "Sweden", "Spain", "Croatia",
    "Belgium", "France",
];

/// Ground truth for one generated player.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlayerTruth {
    /// Page key (`seles0` style slug).
    pub key: String,
    /// Full display name.
    pub name: String,
    /// `female` / `male`.
    pub gender: String,
    /// Country name.
    pub country: String,
    /// `left` / `right`.
    pub hand: String,
    /// Whether the history text declares a past Australian Open win.
    pub past_winner: bool,
    /// URL of the bio page.
    pub bio_url: String,
    /// URL of the profile page.
    pub profile_url: String,
    /// URL of the match video.
    pub video_url: String,
    /// URL of the portrait image.
    pub picture_url: String,
    /// Whether the match video contains a net approach (ground truth of
    /// the Figure 13 query's content-based half).
    pub video_has_netplay: bool,
    /// URL of the post-match audio clip on the profile page.
    pub audio_url: String,
    /// Whether that clip really is an interview (some profiles carry
    /// crowd-ambience clips instead).
    pub audio_is_interview: bool,
}

/// Ground truth for one generated article.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArticleTruth {
    /// Page key.
    pub key: String,
    /// Headline.
    pub title: String,
    /// URL of the article page.
    pub url: String,
    /// Indexes (into the player list) this article is about.
    pub about: Vec<usize>,
}

/// Parameters of the generated site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteSpec {
    /// Number of players.
    pub players: usize,
    /// Number of news articles.
    pub articles: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SiteSpec {
    fn default() -> Self {
        SiteSpec {
            players: 16,
            articles: 24,
            seed: 2001,
        }
    }
}

/// The generated site: pages, media objects and ground truth.
#[derive(Debug, Clone)]
pub struct Site {
    pages: BTreeMap<String, String>,
    videos: BTreeMap<String, BroadcastSpec>,
    audio: BTreeMap<String, AudioClip>,
    /// Player ground truth, in generation order.
    pub players: Vec<PlayerTruth>,
    /// Article ground truth, in generation order.
    pub articles: Vec<ArticleTruth>,
}

impl Site {
    /// Generates the site from a spec. Deterministic per spec.
    pub fn generate(spec: SiteSpec) -> Site {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut players = Vec::with_capacity(spec.players);
        let mut videos = BTreeMap::new();
        let mut audio = BTreeMap::new();

        for i in 0..spec.players {
            let female = i % 2 == 0;
            let first = if female {
                FIRST_NAMES_F[i / 2 % FIRST_NAMES_F.len()]
            } else {
                FIRST_NAMES_M[i / 2 % FIRST_NAMES_M.len()]
            };
            let last = LAST_NAMES[i % LAST_NAMES.len()];
            let key = format!("{}{}", last.to_lowercase(), i);
            // Player 0 is always Monica Seles, left-handed female past
            // champion whose match video contains a net approach — the
            // historically accurate witness for the Figure 13 query.
            let has_netplay = i == 0 || rng.gen_bool(0.5);
            let video_url = format!("{BASE}/video/{key}-match.mpg");
            videos.insert(video_url.clone(), match_video(has_netplay, spec.seed + i as u64));
            // Post-match audio: players 0 and most others get a real
            // interview; every fifth profile carries crowd ambience.
            let audio_url = format!("{BASE}/audio/{key}-interview.wav");
            let audio_is_interview = i == 0 || i % 5 != 4;
            audio.insert(
                audio_url.clone(),
                if audio_is_interview {
                    interview_clip(2, spec.seed ^ (i as u64) << 16)
                } else {
                    ambience_clip(spec.seed ^ (i as u64) << 16)
                },
            );
            players.push(PlayerTruth {
                name: format!("{first} {last}"),
                gender: if female { "female" } else { "male" }.to_owned(),
                country: COUNTRIES[i % COUNTRIES.len()].to_owned(),
                hand: if i % 3 == 0 { "left" } else { "right" }.to_owned(),
                past_winner: i == 0 || rng.gen_bool(0.4),
                bio_url: format!("{BASE}/players/{key}.html"),
                profile_url: format!("{BASE}/profiles/{key}.html"),
                video_url,
                picture_url: format!("{BASE}/img/{key}.jpg"),
                video_has_netplay: has_netplay,
                audio_url,
                audio_is_interview,
                key,
            });
        }

        let mut articles = Vec::with_capacity(spec.articles);
        for a in 0..spec.articles {
            let subject = a % spec.players.max(1);
            let mut about = vec![subject];
            if rng.gen_bool(0.3) && spec.players > 1 {
                let other = (subject + 1 + rng.gen_range(0..spec.players - 1)) % spec.players;
                if other != subject {
                    about.push(other);
                }
            }
            let key = format!("day{}-story{a}", a / 4 + 1);
            articles.push(ArticleTruth {
                title: article_title(a, &players[subject], &mut rng),
                url: format!("{BASE}/news/{key}.html"),
                about,
                key,
            });
        }

        let mut pages = BTreeMap::new();
        pages.insert(format!("{BASE}/index.html"), home_page(&players, &articles));
        for p in &players {
            pages.insert(p.bio_url.clone(), bio_page(p));
            pages.insert(p.profile_url.clone(), profile_page(p));
        }
        for a in &articles {
            pages.insert(a.url.clone(), article_page(a, &players));
        }

        Site {
            pages,
            videos,
            audio,
            players,
            articles,
        }
    }

    /// The home page URL (crawl entry point).
    pub fn home(&self) -> String {
        format!("{BASE}/index.html")
    }

    /// The HTML of a page, if it exists.
    pub fn page(&self, url: &str) -> Option<&str> {
        self.pages.get(url).map(String::as_str)
    }

    /// All page URLs.
    pub fn urls(&self) -> impl Iterator<Item = &str> {
        self.pages.keys().map(String::as_str)
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// The broadcast behind a video URL (the "raw multimedia data" the
    /// detectors fetch).
    pub fn video(&self, url: &str) -> Option<&BroadcastSpec> {
        self.videos.get(url)
    }

    /// The clip behind an audio URL.
    pub fn audio(&self, url: &str) -> Option<&AudioClip> {
        self.audio.get(url)
    }

    /// MIME type of a URL, as the paper's `header` detector would learn
    /// from the HTTP server.
    pub fn mime(&self, url: &str) -> (&'static str, &'static str) {
        if url.ends_with(".mpg") {
            ("video", "mpeg")
        } else if url.ends_with(".jpg") {
            ("image", "jpeg")
        } else if url.ends_with(".wav") {
            ("audio", "wav")
        } else if url.ends_with(".html") {
            ("text", "html")
        } else {
            ("application", "octet-stream")
        }
    }
}

fn match_video(with_netplay: bool, seed: u64) -> BroadcastSpec {
    let mut shots = Vec::new();
    for i in 0..4 {
        let trajectory = if with_netplay && i == 2 {
            TrajectorySpec::approach_net()
        } else {
            TrajectorySpec::baseline()
        };
        shots.push(ShotSpec::tennis(60, 3, trajectory));
        shots.push(ShotSpec::other(
            if i % 2 == 0 {
                cobra::ShotClass::Closeup
            } else {
                cobra::ShotClass::Audience
            },
            20,
        ));
    }
    BroadcastSpec { shots, seed }
}

fn article_title(a: usize, subject: &PlayerTruth, rng: &mut StdRng) -> String {
    let verbs = ["storms into", "battles through to", "cruises into", "fights into"];
    let stages = ["the final", "the semifinal", "the quarterfinals", "round four"];
    format!(
        "{} {} {}",
        subject.name,
        verbs[rng.gen_range(0..verbs.len())],
        stages[a % stages.len()]
    )
}

fn history_text(p: &PlayerTruth) -> String {
    let mut text = format!(
        "{} turned professional and has competed at Melbourne Park for many seasons. ",
        p.name
    );
    if p.past_winner {
        text.push_str("Winner of the Australian Open, a title that crowned a remarkable run. ");
    } else {
        text.push_str("A deep run at the Australian Open has so far eluded this player. ");
    }
    text.push_str("Known for relentless baseline play and famous rivalries on tour.");
    text
}

fn home_page(players: &[PlayerTruth], articles: &[ArticleTruth]) -> String {
    let mut body = String::new();
    body.push_str("<h1 class=\"site-title\">Australian Open</h1><ul class=\"nav\">");
    for p in players {
        body.push_str(&format!(
            "<li><a class=\"player-link\" href=\"{}\">{}</a></li>",
            p.bio_url, p.name
        ));
    }
    for a in articles {
        body.push_str(&format!(
            "<li><a class=\"article-link\" href=\"{}\">{}</a></li>",
            a.url, a.title
        ));
    }
    body.push_str("</ul>");
    wrap("Australian Open", "home-page", &body)
}

fn bio_page(p: &PlayerTruth) -> String {
    let body = format!(
        concat!(
            "<div class=\"bio\">",
            "<h1 class=\"player-name\">{name}</h1>",
            "<table class=\"factbox\">",
            "<tr><td>Gender</td><td class=\"gender\">{gender}</td></tr>",
            "<tr><td>Country</td><td class=\"country\">{country}</td></tr>",
            "<tr><td>Plays</td><td class=\"hand\">{hand}</td></tr>",
            "</table>",
            "<img class=\"portrait\" src=\"{picture}\"/>",
            "<div class=\"history\">{history}</div>",
            "</div>",
            "<div class=\"media\">",
            "<a class=\"profile-link\" href=\"{profile}\">full profile</a>",
            "</div>"
        ),
        name = p.name,
        gender = p.gender,
        country = p.country,
        hand = p.hand,
        picture = p.picture_url,
        history = history_text(p),
        profile = p.profile_url,
    );
    wrap(&format!("{} - Australian Open", p.name), "bio-page", &body)
}

fn profile_page(p: &PlayerTruth) -> String {
    let body = format!(
        concat!(
            "<h1 class=\"profile-title\">{name} in action</h1>",
            "<a class=\"match-video\" href=\"{video}\">match highlights</a>",
            "<a class=\"interview-audio\" href=\"{audio}\">post-match audio</a>",
            "<a class=\"player-link\" href=\"{bio}\">back to bio</a>"
        ),
        name = p.name,
        video = p.video_url,
        audio = p.audio_url,
        bio = p.bio_url,
    );
    wrap(
        &format!("{} profile - Australian Open", p.name),
        "profile-page",
        &body,
    )
}

fn article_page(a: &ArticleTruth, players: &[PlayerTruth]) -> String {
    let mut body = format!("<h1 class=\"headline\">{}</h1><div class=\"story\">", a.title);
    for (n, idx) in a.about.iter().enumerate() {
        let p = &players[*idx];
        if n == 0 {
            body.push_str(&format!(
                "{} produced a commanding performance on centre court today. ",
                p.name
            ));
        } else {
            body.push_str(&format!("Earlier, {} also advanced. ", p.name));
        }
    }
    body.push_str("The crowd at Melbourne Park rose to the occasion.</div><div class=\"related\">");
    for idx in &a.about {
        let p = &players[*idx];
        body.push_str(&format!(
            "<a class=\"about-player\" href=\"{}\">{}</a>",
            p.bio_url, p.name
        ));
    }
    body.push_str("</div>");
    wrap(&a.title, "article-page", &body)
}

fn wrap(title: &str, page_class: &str, body: &str) -> String {
    format!(
        concat!(
            "<html><head><title>{title}</title></head>",
            "<body class=\"page {class}\">{body}",
            "<div class=\"footer\"><a class=\"home-link\" href=\"{base}/index.html\">home</a>",
            "</div></body></html>"
        ),
        title = title,
        class = page_class,
        body = body,
        base = BASE,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Site::generate(SiteSpec::default());
        let b = Site::generate(SiteSpec::default());
        assert_eq!(a.pages, b.pages);
        assert_eq!(a.players, b.players);
    }

    #[test]
    fn page_counts_add_up() {
        let spec = SiteSpec {
            players: 8,
            articles: 10,
            seed: 1,
        };
        let site = Site::generate(spec);
        // home + 2 per player + 1 per article.
        assert_eq!(site.page_count(), 1 + 2 * 8 + 10);
        assert_eq!(site.players.len(), 8);
        assert_eq!(site.articles.len(), 10);
    }

    #[test]
    fn every_page_is_well_formed_xml() {
        let site = Site::generate(SiteSpec::default());
        for url in site.urls() {
            let html = site.page(url).unwrap();
            monetxml::parse_document(html)
                .unwrap_or_else(|e| panic!("{url} is not well-formed: {e}"));
        }
    }

    #[test]
    fn winner_text_matches_ground_truth() {
        let site = Site::generate(SiteSpec::default());
        for p in &site.players {
            let html = site.page(&p.bio_url).unwrap();
            assert_eq!(
                html.contains("Winner of the Australian Open"),
                p.past_winner,
                "{}",
                p.key
            );
        }
    }

    #[test]
    fn every_video_url_resolves_to_a_broadcast() {
        let site = Site::generate(SiteSpec::default());
        for p in &site.players {
            let spec = site.video(&p.video_url).expect("video exists");
            let video = spec.generate();
            // The broadcast's netplay ground truth matches the site's.
            let has = video.truth.iter().any(|t| t.netplay);
            assert_eq!(has, p.video_has_netplay, "{}", p.key);
        }
    }

    #[test]
    fn mime_types_follow_extensions() {
        let site = Site::generate(SiteSpec::default());
        assert_eq!(site.mime("http://x/v.mpg"), ("video", "mpeg"));
        assert_eq!(site.mime("http://x/p.jpg"), ("image", "jpeg"));
        assert_eq!(site.mime("http://x/p.html"), ("text", "html"));
    }

    #[test]
    fn players_cover_both_genders_and_hands() {
        let site = Site::generate(SiteSpec::default());
        assert!(site.players.iter().any(|p| p.gender == "female"));
        assert!(site.players.iter().any(|p| p.gender == "male"));
        assert!(site.players.iter().any(|p| p.hand == "left"));
        assert!(site.players.iter().any(|p| p.hand == "right"));
    }

    #[test]
    fn at_least_one_left_handed_female_past_winner_with_netplay_exists() {
        // The Figure 13 query must have a non-empty answer on the
        // default site.
        let site = Site::generate(SiteSpec::default());
        assert!(
            site.players.iter().any(|p| p.gender == "female"
                && p.hand == "left"
                && p.past_winner
                && p.video_has_netplay),
            "default site cannot answer the Figure 13 query"
        );
    }
}
