//! A seeded large-corpus generator: 10^5+ article pages with realistic
//! term and attribute distributions.
//!
//! The Australian Open site ([`crate::ausopen`]) is faithful to the
//! paper's running example but tops out at a few hundred pages — far
//! too small to measure how the physical level scales. This module
//! generates arbitrarily many **article documents** whose statistics
//! mirror what a crawler actually brings home from a digital library:
//!
//! * body terms drawn from a **zipfian** vocabulary (a few terms are
//!   everywhere, a long tail appears once or twice) — the distribution
//!   full-text index sizes and idf fragmentation actually face,
//! * categorical attributes (country, year) drawn zipfian over small
//!   domains — the columns dictionary encoding exists for,
//! * repeated **boilerplate paragraphs** (site navigation, copyright
//!   footers) mixed with unique article content, exactly as real
//!   crawled pages repeat their site chrome around the story.
//!
//! Generation is per-document deterministic: document `i` of a spec is
//! a pure function of `(spec, i)`, so corpora can be produced
//! streaming or in parallel without holding 10^5 documents in memory.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a generated corpus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusSpec {
    /// Number of documents.
    pub docs: usize,
    /// RNG seed; every document is a pure function of `(spec, index)`.
    pub seed: u64,
    /// Distinct body terms (the zipfian vocabulary size).
    pub vocab: usize,
    /// Zipf exponent `s` (term `k` has weight `1/(k+1)^s`). Around 1.0
    /// matches natural-language corpora.
    pub exponent: f64,
    /// Minimum body terms per document.
    pub terms_min: usize,
    /// Maximum body terms per document (exclusive bound is `+1`).
    pub terms_max: usize,
}

impl Default for CorpusSpec {
    fn default() -> Self {
        CorpusSpec {
            docs: 1_000,
            seed: 2001,
            vocab: 10_000,
            exponent: 1.05,
            terms_min: 40,
            terms_max: 160,
        }
    }
}

/// One generated document: a stable URL and the article XML, ready for
/// `XmlStore::bulkload_str` / engine ingestion.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusDoc {
    /// Document URL (unique per corpus, stable across runs).
    pub url: String,
    /// The article page as XML.
    pub xml: String,
}

/// Publication countries, zipf-weighted (most articles come from a few
/// big sources — the shape dictionary encoding pays off on).
const COUNTRIES: &[&str] = &[
    "USA",
    "Australia",
    "France",
    "Switzerland",
    "Russia",
    "Spain",
    "Brazil",
    "Sweden",
    "Belgium",
    "Croatia",
    "Argentina",
    "Germany",
];

/// Syllables words are minted from (12 symbols → base-12 digits).
const SYLLABLES: &[&str] = &[
    "ba", "do", "ka", "lu", "mi", "no", "pe", "ra", "su", "ti", "vo", "ze",
];

/// Boilerplate paragraphs per document (drawn from the shared pool).
const BOILERPLATE_PER_DOC: usize = 3;

/// Size of the shared boilerplate pool.
const BOILERPLATE_POOL: usize = 48;

/// A deterministic corpus generator. Construction precomputes the
/// zipfian cumulative-weight table and the boilerplate pool; documents
/// are then minted independently by index.
#[derive(Debug, Clone)]
pub struct Corpus {
    spec: CorpusSpec,
    /// Normalised cumulative zipf weights over the vocabulary; a
    /// uniform draw in `[0, 1)` binary-searches this table.
    cumulative: Vec<f64>,
    /// Cumulative zipf weights over [`COUNTRIES`].
    country_cumulative: Vec<f64>,
    /// The shared boilerplate paragraphs (site chrome).
    boilerplate: Vec<String>,
}

/// Builds a normalised cumulative table for weights `1/(k+1)^s`.
fn zipf_cumulative(n: usize, s: f64) -> Vec<f64> {
    let mut cum = Vec::with_capacity(n);
    let mut total = 0.0f64;
    for k in 0..n {
        total += ((k + 1) as f64).powf(-s);
        cum.push(total);
    }
    for c in &mut cum {
        *c /= total;
    }
    cum
}

/// Rank drawn from a cumulative table by binary search — O(log n) per
/// term, no per-sample allocation.
fn sample_rank(cum: &[f64], rng: &mut StdRng) -> usize {
    let u: f64 = rng.gen_range(0.0..1.0);
    cum.partition_point(|&c| c <= u).min(cum.len() - 1)
}

/// The `rank`-th vocabulary word: base-12 syllable encoding of the
/// rank, so every rank maps to a distinct pronounceable word.
fn word(rank: usize) -> String {
    let mut out = String::new();
    let mut r = rank;
    loop {
        out.push_str(SYLLABLES[r % SYLLABLES.len()]);
        r /= SYLLABLES.len();
        if r == 0 {
            break;
        }
    }
    out
}

impl Corpus {
    /// Prepares a generator for `spec`.
    pub fn new(spec: CorpusSpec) -> Corpus {
        let cumulative = zipf_cumulative(spec.vocab.max(1), spec.exponent);
        let country_cumulative = zipf_cumulative(COUNTRIES.len(), spec.exponent);
        // The boilerplate pool is minted from the same vocabulary with
        // its own seed stream, shared by every document of the corpus.
        let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x0b01_1e72_0b01_1e72);
        let mut boilerplate = Vec::with_capacity(BOILERPLATE_POOL);
        for _ in 0..BOILERPLATE_POOL {
            let n = rng.gen_range(24usize..48);
            let words: Vec<String> = (0..n)
                .map(|_| word(sample_rank(&cumulative, &mut rng)))
                .collect();
            boilerplate.push(words.join(" "));
        }
        Corpus {
            spec,
            cumulative,
            country_cumulative,
            boilerplate,
        }
    }

    /// The spec this generator was built from.
    pub fn spec(&self) -> &CorpusSpec {
        &self.spec
    }

    /// The `rank`-th vocabulary word (rank 0 is the most frequent).
    /// Useful for building probe queries against a generated corpus.
    pub fn term(rank: usize) -> String {
        word(rank)
    }

    /// Number of documents in the corpus.
    pub fn len(&self) -> usize {
        self.spec.docs
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.spec.docs == 0
    }

    /// Generates document `i` (`i < spec.docs`). A pure function of
    /// `(spec, i)` — the same index always yields the same document.
    pub fn doc(&self, i: usize) -> CorpusDoc {
        assert!(i < self.spec.docs, "document index out of range");
        let mut rng =
            StdRng::seed_from_u64(self.spec.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let key = format!("doc{i:07}");
        let url = format!("http://library.example.org/articles/{key}.xml");

        let title_words: Vec<String> = (0..rng.gen_range(3usize..7))
            .map(|_| word(sample_rank(&self.cumulative, &mut rng)))
            .collect();
        let year = 1990 + sample_rank(&self.country_cumulative, &mut rng) as i64;
        let country = COUNTRIES[sample_rank(&self.country_cumulative, &mut rng)];

        let n_terms = rng.gen_range(self.spec.terms_min..self.spec.terms_max.max(self.spec.terms_min) + 1);
        let body_words: Vec<String> = (0..n_terms)
            .map(|_| word(sample_rank(&self.cumulative, &mut rng)))
            .collect();

        let mut xml = String::with_capacity(1024);
        xml.push_str(&format!("<article key=\"{key}\" year=\"{year}\" country=\"{country}\">"));
        xml.push_str(&format!("<title>{}</title>", title_words.join(" ")));
        xml.push_str("<body>");
        // Site chrome around the story: repeated paragraphs from the
        // shared pool, with the unique article content in the middle.
        let lead = self.boilerplate[sample_rank(&self.country_cumulative, &mut rng)
            * (BOILERPLATE_POOL / COUNTRIES.len())
            % BOILERPLATE_POOL]
            .clone();
        xml.push_str(&format!("<p>{lead}</p>"));
        xml.push_str(&format!("<p>{}</p>", body_words.join(" ")));
        for _ in 0..BOILERPLATE_PER_DOC - 1 {
            let b = &self.boilerplate[rng.gen_range(0usize..self.boilerplate.len())];
            xml.push_str(&format!("<p>{b}</p>"));
        }
        xml.push_str("</body>");
        xml.push_str("</article>");
        CorpusDoc { url, xml }
    }

    /// Plain text of document `i`'s body — what a full-text indexer
    /// sees. Same sampling stream as [`Corpus::doc`], so the terms
    /// match the XML.
    pub fn body_text(&self, i: usize) -> String {
        let d = self.doc(i);
        // Strip the markup: everything between <p>…</p> joined.
        let mut out = String::new();
        let mut rest = d.xml.as_str();
        while let Some(start) = rest.find("<p>") {
            let after = &rest[start + 3..];
            let Some(end) = after.find("</p>") else { break };
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(&after[..end]);
            rest = &after[end + 4..];
        }
        out
    }

    /// All documents, materialised. Convenient for 10^3-scale corpora;
    /// for 10^5+ prefer iterating [`Corpus::doc`] and ingesting in
    /// batches.
    pub fn docs(&self) -> Vec<CorpusDoc> {
        (0..self.spec.docs).map(|i| self.doc(i)).collect()
    }

    /// Iterator over every document, generated on demand.
    pub fn iter(&self) -> impl Iterator<Item = CorpusDoc> + '_ {
        (0..self.spec.docs).map(move |i| self.doc(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_index() {
        let spec = CorpusSpec {
            docs: 50,
            ..CorpusSpec::default()
        };
        let a = Corpus::new(spec);
        let b = Corpus::new(spec);
        for i in [0, 7, 49] {
            assert_eq!(a.doc(i), b.doc(i));
        }
        // Different seeds → different documents.
        let c = Corpus::new(CorpusSpec { seed: 999, ..spec });
        assert_ne!(a.doc(0), c.doc(0));
    }

    #[test]
    fn urls_are_unique_and_stable() {
        let corpus = Corpus::new(CorpusSpec {
            docs: 200,
            ..CorpusSpec::default()
        });
        let urls: std::collections::HashSet<String> =
            corpus.iter().map(|d| d.url).collect();
        assert_eq!(urls.len(), 200);
        assert!(corpus.doc(0).url.ends_with("doc0000000.xml"));
    }

    #[test]
    fn term_distribution_is_heavy_headed() {
        // The most common term should appear far more often than the
        // median — the zipf head every text index has to absorb.
        let corpus = Corpus::new(CorpusSpec {
            docs: 100,
            vocab: 1_000,
            ..CorpusSpec::default()
        });
        let mut counts: std::collections::HashMap<String, usize> =
            std::collections::HashMap::new();
        for i in 0..corpus.len() {
            for w in corpus.body_text(i).split_whitespace() {
                *counts.entry(w.to_owned()).or_default() += 1;
            }
        }
        let mut freqs: Vec<usize> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        assert!(
            freqs[0] >= freqs[freqs.len() / 2] * 10,
            "head {} vs median {}",
            freqs[0],
            freqs[freqs.len() / 2]
        );
    }

    #[test]
    fn attributes_repeat_across_documents() {
        // Dictionary encoding needs repetition; the country attribute
        // must take far fewer distinct values than there are documents.
        let corpus = Corpus::new(CorpusSpec {
            docs: 300,
            ..CorpusSpec::default()
        });
        let mut countries = std::collections::HashSet::new();
        for d in corpus.iter() {
            let xml = d.xml;
            let at = xml.find("country=\"").expect("country attr") + 9;
            let end = xml[at..].find('"').expect("closing quote");
            countries.insert(xml[at..at + end].to_owned());
        }
        assert!(countries.len() <= COUNTRIES.len());
        assert!(countries.len() >= 3, "zipf should still hit several");
    }

    #[test]
    fn documents_parse_and_load() {
        let corpus = Corpus::new(CorpusSpec {
            docs: 20,
            ..CorpusSpec::default()
        });
        let mut store = monetxml::XmlStore::new();
        for d in corpus.iter() {
            store.bulkload_str(&d.url, &d.xml).expect("well-formed XML");
        }
        assert_eq!(store.document_count(), 20);
    }
}
