//! Generic Internet pages for the Figure 14 grammar.
//!
//! "However, the system is applicable to the Internet as a whole. Either
//! by replacing the specific webschema by a very generic … one" — these
//! pages have no webspace schema, only the generic structure the
//! Internet feature grammar models: a title, body keywords, and anchors
//! to embedded multimedia objects.

use cobra::image::{generate_image, ImageKind, ImageSignal, ImageTruth};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ground truth of one generic page.
#[derive(Debug, Clone, PartialEq)]
pub struct GenericPage {
    /// Page URL.
    pub url: String,
    /// Page HTML.
    pub html: String,
    /// Title text.
    pub title: String,
    /// Body keywords.
    pub keywords: Vec<String>,
    /// Embedded multimedia object URLs (images and videos).
    pub objects: Vec<String>,
    /// Raw signal + ground truth for each embedded *image* object, keyed
    /// by its URL (the "raw multimedia data" the photo/face detectors
    /// fetch).
    pub images: Vec<(String, ImageSignal, ImageTruth)>,
}

impl GenericPage {
    /// The image signal behind an embedded image URL.
    pub fn image(&self, url: &str) -> Option<&ImageSignal> {
        self.images
            .iter()
            .find(|(u, _, _)| u == url)
            .map(|(_, s, _)| s)
    }
}

const TOPICS: &[(&str, &[&str])] = &[
    (
        "sports",
        &["champion", "tournament", "final", "record", "title", "trophy"],
    ),
    (
        "travel",
        &["beach", "mountain", "hotel", "flight", "guide", "island"],
    ),
    (
        "science",
        &["experiment", "theory", "measurement", "galaxy", "particle", "genome"],
    ),
];

/// Generates `n` deterministic generic pages.
pub fn generate_pages(n: usize, seed: u64) -> Vec<GenericPage> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let (topic, words) = TOPICS[i % TOPICS.len()];
            let url = format!("http://web.example.org/{topic}/page{i}.html");
            let title = format!("All about {topic} #{i}");
            let mut keywords = Vec::new();
            for _ in 0..rng.gen_range(4..10) {
                keywords.push(words[rng.gen_range(0..words.len())].to_owned());
            }
            let mut objects = Vec::new();
            let mut images = Vec::new();
            if rng.gen_bool(0.7) {
                let url = format!("http://web.example.org/{topic}/img{i}.jpg");
                // Roughly 60% of web photos are photographs, the rest
                // charts and logos; photos may contain faces (portraits).
                let kind = if rng.gen_bool(0.6) {
                    ImageKind::Photo
                } else {
                    ImageKind::Graphic
                };
                let faces = if kind == ImageKind::Photo {
                    rng.gen_range(0..3usize)
                } else {
                    0
                };
                let (signal, truth) = generate_image(kind, faces, seed ^ (i as u64) << 8);
                images.push((url.clone(), signal, truth));
                objects.push(url);
            }
            if rng.gen_bool(0.3) {
                objects.push(format!("http://web.example.org/{topic}/clip{i}.mpg"));
            }
            let mut body = String::new();
            body.push_str(&format!("<h1>{title}</h1><p>"));
            for k in &keywords {
                body.push_str(k);
                body.push(' ');
            }
            body.push_str("</p>");
            for (j, o) in objects.iter().enumerate() {
                body.push_str(&format!("<a href=\"{o}\">object {j}</a>"));
            }
            let html = format!(
                "<html><head><title>{title}</title></head><body>{body}</body></html>"
            );
            GenericPage {
                url,
                html,
                title,
                keywords,
                objects,
                images,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_are_deterministic_and_well_formed() {
        let a = generate_pages(12, 5);
        let b = generate_pages(12, 5);
        assert_eq!(a, b);
        for p in &a {
            monetxml::parse_document(&p.html).unwrap();
        }
    }

    #[test]
    fn keywords_appear_in_the_html() {
        for p in generate_pages(6, 9) {
            for k in &p.keywords {
                assert!(p.html.contains(k.as_str()), "{} missing {k}", p.url);
            }
        }
    }

    #[test]
    fn objects_are_linked() {
        let pages = generate_pages(20, 11);
        assert!(pages.iter().any(|p| !p.objects.is_empty()));
        for p in &pages {
            for o in &p.objects {
                assert!(p.html.contains(o.as_str()));
            }
        }
    }

    #[test]
    fn image_signals_cover_every_jpg_object() {
        let pages = generate_pages(30, 4);
        let mut portraits = 0;
        for p in &pages {
            for o in &p.objects {
                if o.ends_with(".jpg") {
                    let signal = p.image(o).expect("signal for every image");
                    if cobra::image::is_portrait(signal) {
                        portraits += 1;
                    }
                }
            }
        }
        assert!(portraits > 0, "some generated images must be portraits");
    }
}
