//! A synthetic Australian Open website — the paper's data source.
//!
//! The real `ausopen.org` of 2001 is gone; this crate generates a
//! deterministic stand-in with exactly the property the paper's
//! motivating example turns on: **semantic concepts (gender, name,
//! country, play hand, history) are clearly present in the source data
//! but lost in the translation to presentation-oriented HTML** (Figure
//! 1). The generator keeps the source data as ground truth, so the
//! web-object retriever and the whole search engine can be scored
//! end-to-end.
//!
//! * [`ausopen`] — the site generator: player bio pages, profile pages
//!   with match videos, and news articles, cross-linked; every match
//!   video is backed by a [`cobra::BroadcastSpec`] so the logical level
//!   has real (synthetic) footage to analyse.
//! * [`crawler`] — a breadth-first crawler over a [`Site`]'s link graph
//!   ("in the indexing phase, a crawler retrieves the source documents
//!   from a webspace").
//! * [`internet`] — generic pages for the Figure 14 Internet grammar
//!   (titles, keywords, embedded multimedia objects).
//! * [`corpus`] — a seeded 10^5+-document article generator with
//!   zipfian term/attribute distributions, for scale experiments.

#![warn(missing_docs)]

pub mod ausopen;
pub mod corpus;
pub mod crawler;
pub mod internet;

pub use ausopen::{PlayerTruth, Site, SiteSpec};
pub use corpus::{Corpus, CorpusDoc, CorpusSpec};
pub use crawler::crawl;
