//! Property tests for the conceptual level: materialized views survive
//! the XML round trip for arbitrary object graphs, and index merging is
//! order-insensitive where the paper requires it.

use proptest::prelude::*;
use webspace::{
    Association, AttrValue, MaterializedView, MediaType, WebObject, WebspaceIndex,
};

fn arb_attr_value() -> impl Strategy<Value = AttrValue> {
    prop_oneof![
        "[ -~]{0,24}".prop_map(|s| AttrValue::Text(s.trim().to_owned())),
        any::<i64>().prop_map(AttrValue::Int),
        (-1.0e9f64..1.0e9).prop_map(AttrValue::Float),
        "[a-z]{1,12}".prop_map(|s| AttrValue::Uri(format!("http://x/{s}"))),
        ("[a-z]{1,12}", 0usize..4).prop_map(|(s, t)| AttrValue::Media {
            ty: match t {
                0 => MediaType::Hypertext,
                1 => MediaType::Image,
                2 => MediaType::Video,
                _ => MediaType::Audio,
            },
            location: format!("http://x/{s}"),
        }),
    ]
}

fn arb_object(idx: usize) -> impl Strategy<Value = WebObject> {
    prop::collection::vec(("[a-z]{1,8}", arb_attr_value()), 0..5).prop_map(move |attrs| {
        let mut o = WebObject::new("Thing", format!("thing:{idx}"));
        for (name, value) in attrs {
            o.attrs.insert(name, value);
        }
        o
    })
}

fn arb_view() -> impl Strategy<Value = MaterializedView> {
    prop::collection::vec(any::<u8>(), 1..6).prop_flat_map(|ids| {
        let objects: Vec<_> = ids
            .iter()
            .enumerate()
            .map(|(i, _)| arb_object(i))
            .collect();
        (objects, prop::collection::vec((0usize..5, 0usize..5), 0..4)).prop_map(
            |(objects, links)| {
                let mut view = MaterializedView::new("prop.html", "PropSpace");
                let n = objects.len();
                view.objects = objects;
                for (a, b) in links {
                    if a < n && b < n {
                        view.associations.push(Association::new(
                            "Linked",
                            format!("thing:{a}"),
                            format!("thing:{b}"),
                        ));
                    }
                }
                view
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn views_round_trip_through_xml_text(view in arb_view()) {
        let xml = monetxml::to_xml(&view.to_document());
        let doc = monetxml::parse_document(&xml).unwrap();
        let back = MaterializedView::from_document(&doc).unwrap();
        prop_assert_eq!(back, view);
    }

    #[test]
    fn index_merge_is_view_order_insensitive_for_disjoint_views(
        mut views in prop::collection::vec(arb_view(), 1..4),
        order_seed in any::<u64>(),
    ) {
        // Rename ids so views are disjoint (merging semantics for
        // overlapping attrs is last-wins, hence order-sensitive by
        // design; disjoint views must commute).
        let mut schema = webspace::WebspaceSchema::new("PropSpace");
        schema.add_class("Thing", vec![]).unwrap();
        schema.add_association("Linked", "Thing", "Thing").unwrap();
        // Allow arbitrary attrs: validation would reject unknown attrs,
        // so strip them for this property.
        for (vi, view) in views.iter_mut().enumerate() {
            for o in view.objects.iter_mut() {
                o.id = format!("v{vi}:{}", o.id);
                o.attrs.clear();
            }
            for a in view.associations.iter_mut() {
                a.from = format!("v{vi}:{}", a.from);
                a.to = format!("v{vi}:{}", a.to);
            }
        }

        let mut forward = WebspaceIndex::new(schema.clone());
        for v in &views {
            forward.add_view(v).unwrap();
        }
        let mut shuffled = views.clone();
        // Deterministic pseudo-shuffle.
        if shuffled.len() > 1 {
            let k = (order_seed as usize) % shuffled.len();
            shuffled.rotate_left(k);
        }
        let mut backward = WebspaceIndex::new(schema);
        for v in &shuffled {
            backward.add_view(v).unwrap();
        }
        prop_assert_eq!(forward.object_count(), backward.object_count());
        prop_assert_eq!(
            forward.associations().len(),
            backward.associations().len()
        );
    }
}
