//! Materialized views as XML documents.
//!
//! "This collection is stored as XML documents in the XML storage level
//! … each document contains a materialized view over the webspace
//! schema; it contains both content and schematic information." The XML
//! encoding below carries class and attribute names explicitly, so a
//! view is self-describing against its schema.

use monetxml::Document;
use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::object::{Association, AttrValue, WebObject};
use crate::schema::{MediaType, WebspaceSchema};

/// One materialized view: the web objects and association instances one
/// document contributes to the webspace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaterializedView {
    /// Document name (usually the source URL).
    pub name: String,
    /// The schema this view materialises.
    pub schema: String,
    /// Web objects described by this document.
    pub objects: Vec<WebObject>,
    /// Association instances described by this document.
    pub associations: Vec<Association>,
}

impl MaterializedView {
    /// An empty view over `schema`.
    pub fn new(name: impl Into<String>, schema: impl Into<String>) -> Self {
        MaterializedView {
            name: name.into(),
            schema: schema.into(),
            objects: Vec::new(),
            associations: Vec::new(),
        }
    }

    /// Validates every object against the schema and every association
    /// name against its definition.
    pub fn validate(&self, schema: &WebspaceSchema) -> Result<()> {
        for o in &self.objects {
            o.validate(schema)?;
        }
        for a in &self.associations {
            if schema.association(&a.name).is_none() {
                return Err(Error::View(format!("unknown association `{}`", a.name)));
            }
        }
        Ok(())
    }

    /// Serialises the view to its XML document form.
    pub fn to_document(&self) -> Document {
        let mut doc = Document::new("view");
        let root = doc.root();
        doc.set_attr(root, "schema", self.schema.clone());
        doc.set_attr(root, "name", self.name.clone());
        for object in &self.objects {
            let obj = doc.add_element(root, "object");
            doc.set_attr(obj, "class", object.class.clone());
            doc.set_attr(obj, "id", object.id.clone());
            for (name, value) in &object.attrs {
                let attr = doc.add_element(obj, "attr");
                doc.set_attr(attr, "name", name.clone());
                match value {
                    AttrValue::Text(s) => {
                        doc.set_attr(attr, "type", "text");
                        doc.add_cdata(attr, s.clone());
                    }
                    AttrValue::Int(i) => {
                        doc.set_attr(attr, "type", "int");
                        doc.add_cdata(attr, i.to_string());
                    }
                    AttrValue::Float(x) => {
                        doc.set_attr(attr, "type", "float");
                        doc.add_cdata(attr, x.to_string());
                    }
                    AttrValue::Uri(u) => {
                        doc.set_attr(attr, "type", "uri");
                        doc.add_cdata(attr, u.clone());
                    }
                    AttrValue::Media { ty, location } => {
                        doc.set_attr(attr, "type", media_tag(*ty));
                        doc.set_attr(attr, "location", location.clone());
                    }
                }
            }
        }
        for assoc in &self.associations {
            let a = doc.add_element(root, "association");
            doc.set_attr(a, "name", assoc.name.clone());
            doc.set_attr(a, "from", assoc.from.clone());
            doc.set_attr(a, "to", assoc.to.clone());
        }
        doc
    }

    /// Reconstructs a view from its XML form.
    pub fn from_document(doc: &Document) -> Result<MaterializedView> {
        let root = doc.root();
        if doc.tag(root) != Some("view") {
            return Err(Error::View("expected <view> root".into()));
        }
        let mut view = MaterializedView::new(
            doc.attr(root, "name").unwrap_or_default(),
            doc.attr(root, "schema").unwrap_or_default(),
        );
        for child in doc.children(root) {
            match doc.tag(*child) {
                Some("object") => {
                    let class = doc
                        .attr(*child, "class")
                        .ok_or_else(|| Error::View("object without class".into()))?;
                    let id = doc
                        .attr(*child, "id")
                        .ok_or_else(|| Error::View("object without id".into()))?;
                    let mut object = WebObject::new(class, id);
                    for attr_el in doc.children_by_tag(*child, "attr") {
                        let name = doc
                            .attr(attr_el, "name")
                            .ok_or_else(|| Error::View("attr without name".into()))?
                            .to_owned();
                        let ty = doc.attr(attr_el, "type").unwrap_or("text");
                        let text = doc
                            .children(attr_el)
                            .first()
                            .and_then(|c| doc.text(*c))
                            .unwrap_or("");
                        let value = decode_attr(ty, text, doc.attr(attr_el, "location"))?;
                        object.attrs.insert(name, value);
                    }
                    view.objects.push(object);
                }
                Some("association") => {
                    let get = |k: &str| {
                        doc.attr(*child, k)
                            .map(str::to_owned)
                            .ok_or_else(|| Error::View(format!("association without {k}")))
                    };
                    view.associations.push(Association {
                        name: get("name")?,
                        from: get("from")?,
                        to: get("to")?,
                    });
                }
                _ => {}
            }
        }
        Ok(view)
    }
}

fn media_tag(ty: MediaType) -> &'static str {
    match ty {
        MediaType::Hypertext => "hypertext",
        MediaType::Image => "image",
        MediaType::Video => "video",
        MediaType::Audio => "audio",
    }
}

fn decode_attr(ty: &str, text: &str, location: Option<&str>) -> Result<AttrValue> {
    Ok(match ty {
        "text" => AttrValue::Text(text.to_owned()),
        "int" => AttrValue::Int(
            text.parse()
                .map_err(|_| Error::View(format!("bad int `{text}`")))?,
        ),
        "float" => AttrValue::Float(
            text.parse()
                .map_err(|_| Error::View(format!("bad float `{text}`")))?,
        ),
        "uri" => AttrValue::Uri(text.to_owned()),
        "hypertext" | "image" | "video" | "audio" => {
            let media_ty = match ty {
                "hypertext" => MediaType::Hypertext,
                "image" => MediaType::Image,
                "video" => MediaType::Video,
                _ => MediaType::Audio,
            };
            AttrValue::Media {
                ty: media_ty,
                location: location
                    .ok_or_else(|| Error::View("media attr without location".into()))?
                    .to_owned(),
            }
        }
        other => return Err(Error::View(format!("unknown attr type `{other}`"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_view() -> MaterializedView {
        let mut view = MaterializedView::new("players/seles.html", "AustralianOpen");
        view.objects.push(
            WebObject::new("Player", "player:seles")
                .with("name", AttrValue::Text("Monica Seles".into()))
                .with("ranking", AttrValue::Int(1))
                .with(
                    "video",
                    AttrValue::Media {
                        ty: MediaType::Video,
                        location: "http://x/final.mpg".into(),
                    },
                ),
        );
        view.associations
            .push(Association::new("About", "article:1", "player:seles"));
        view
    }

    #[test]
    fn xml_round_trip_is_identity() {
        let view = sample_view();
        let doc = view.to_document();
        let back = MaterializedView::from_document(&doc).unwrap();
        assert_eq!(back, view);
    }

    #[test]
    fn round_trip_through_text_serialisation() {
        let view = sample_view();
        let xml = monetxml::to_xml(&view.to_document());
        let doc = monetxml::parse_document(&xml).unwrap();
        assert_eq!(MaterializedView::from_document(&doc).unwrap(), view);
    }

    #[test]
    fn wrong_root_is_rejected() {
        let doc = Document::new("not_a_view");
        assert!(MaterializedView::from_document(&doc).is_err());
    }

    #[test]
    fn media_without_location_is_rejected() {
        let mut doc = Document::new("view");
        let root = doc.root();
        let obj = doc.add_element(root, "object");
        doc.set_attr(obj, "class", "Player");
        doc.set_attr(obj, "id", "p");
        let attr = doc.add_element(obj, "attr");
        doc.set_attr(attr, "name", "video");
        doc.set_attr(attr, "type", "video");
        assert!(MaterializedView::from_document(&doc).is_err());
    }
}
