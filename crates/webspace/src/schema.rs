//! Webspace schemas: classes, attributes, associations.
//!
//! "The webspace schema models the concepts in terms of classes,
//! attributes of classes, and associations over classes. … For the
//! integration with content-based information retrieval we allow the
//! conceptual schema to be extended with all kinds of multimedia types
//! (i.e. text, images, video or audio)."

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};

/// Multimedia attribute types, each hooking into the logical level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MediaType {
    /// Free text with full-text retrieval support.
    Hypertext,
    /// A still image.
    Image,
    /// A video (analysed by the COBRA pipeline).
    Video,
    /// An audio fragment.
    Audio,
}

impl MediaType {
    /// Lexical form used in schema dumps.
    pub fn as_str(self) -> &'static str {
        match self {
            MediaType::Hypertext => "Hypertext",
            MediaType::Image => "Image",
            MediaType::Video => "Video",
            MediaType::Audio => "Audio",
        }
    }
}

/// Attribute types of the object-oriented model (Figure 3 uses
/// `varchar(50)`, `Hypertext`, `Uri`, `Video`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttrType {
    /// Bounded string.
    Varchar(usize),
    /// Integer.
    Int,
    /// Float.
    Float,
    /// A URI.
    Uri,
    /// A multimedia attribute.
    Media(MediaType),
}

/// One attribute of a class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttrDef {
    /// Attribute name.
    pub name: String,
    /// Attribute type.
    pub ty: AttrType,
}

/// One class of the schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassDef {
    /// Class name.
    pub name: String,
    /// Attributes, in declaration order.
    pub attributes: Vec<AttrDef>,
}

impl ClassDef {
    /// The definition of attribute `name`, if any.
    pub fn attr(&self, name: &str) -> Option<&AttrDef> {
        self.attributes.iter().find(|a| a.name == name)
    }
}

/// A directed association between two classes (`Article —About→ Player`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssociationDef {
    /// Association name.
    pub name: String,
    /// Source class.
    pub from: String,
    /// Target class.
    pub to: String,
}

/// A complete webspace schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WebspaceSchema {
    name: String,
    classes: Vec<ClassDef>,
    associations: Vec<AssociationDef>,
}

impl WebspaceSchema {
    /// An empty schema named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        WebspaceSchema {
            name: name.into(),
            classes: Vec::new(),
            associations: Vec::new(),
        }
    }

    /// The schema name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a class; fails on duplicates or empty names.
    pub fn add_class(
        &mut self,
        name: impl Into<String>,
        attributes: Vec<AttrDef>,
    ) -> Result<&mut Self> {
        let name = name.into();
        if name.is_empty() {
            return Err(Error::Schema("class name may not be empty".into()));
        }
        if self.class(&name).is_some() {
            return Err(Error::Schema(format!("duplicate class `{name}`")));
        }
        let mut seen = std::collections::HashSet::new();
        for attr in &attributes {
            if !seen.insert(attr.name.as_str()) {
                return Err(Error::Schema(format!(
                    "class `{name}` declares attribute `{}` twice",
                    attr.name
                )));
            }
        }
        self.classes.push(ClassDef { name, attributes });
        Ok(self)
    }

    /// Adds an association; both endpoint classes must exist.
    pub fn add_association(
        &mut self,
        name: impl Into<String>,
        from: impl Into<String>,
        to: impl Into<String>,
    ) -> Result<&mut Self> {
        let (name, from, to) = (name.into(), from.into(), to.into());
        for class in [&from, &to] {
            if self.class(class).is_none() {
                return Err(Error::Schema(format!(
                    "association `{name}` references unknown class `{class}`"
                )));
            }
        }
        if self.associations.iter().any(|a| a.name == name) {
            return Err(Error::Schema(format!("duplicate association `{name}`")));
        }
        self.associations.push(AssociationDef { name, from, to });
        Ok(self)
    }

    /// Looks up a class.
    pub fn class(&self, name: &str) -> Option<&ClassDef> {
        self.classes.iter().find(|c| c.name == name)
    }

    /// Looks up an association.
    pub fn association(&self, name: &str) -> Option<&AssociationDef> {
        self.associations.iter().find(|a| a.name == name)
    }

    /// All classes.
    pub fn classes(&self) -> &[ClassDef] {
        &self.classes
    }

    /// All associations.
    pub fn associations(&self) -> &[AssociationDef] {
        &self.associations
    }

    /// Attributes of multimedia type across the schema:
    /// `(class, attribute, media type)` — the hooks handed to the
    /// logical level for feature extraction.
    pub fn multimedia_attrs(&self) -> Vec<(&str, &str, MediaType)> {
        let mut out = Vec::new();
        for class in &self.classes {
            for attr in &class.attributes {
                if let AttrType::Media(mt) = attr.ty {
                    out.push((class.name.as_str(), attr.name.as_str(), mt));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_class_is_rejected() {
        let mut s = WebspaceSchema::new("w");
        s.add_class("Player", vec![]).unwrap();
        assert!(s.add_class("Player", vec![]).is_err());
    }

    #[test]
    fn duplicate_attribute_is_rejected() {
        let mut s = WebspaceSchema::new("w");
        let attr = AttrDef {
            name: "name".into(),
            ty: AttrType::Varchar(50),
        };
        assert!(s.add_class("Player", vec![attr.clone(), attr]).is_err());
    }

    #[test]
    fn association_requires_known_classes() {
        let mut s = WebspaceSchema::new("w");
        s.add_class("Article", vec![]).unwrap();
        assert!(s.add_association("About", "Article", "Player").is_err());
        s.add_class("Player", vec![]).unwrap();
        s.add_association("About", "Article", "Player").unwrap();
        assert!(s.add_association("About", "Article", "Player").is_err());
    }

    #[test]
    fn multimedia_attrs_are_enumerated() {
        let mut s = WebspaceSchema::new("w");
        s.add_class(
            "Player",
            vec![
                AttrDef {
                    name: "name".into(),
                    ty: AttrType::Varchar(50),
                },
                AttrDef {
                    name: "history".into(),
                    ty: AttrType::Media(MediaType::Hypertext),
                },
            ],
        )
        .unwrap();
        assert_eq!(
            s.multimedia_attrs(),
            vec![("Player", "history", MediaType::Hypertext)]
        );
    }
}
