//! The paper's webspace schema artefacts.

use crate::schema::{AttrDef, AttrType, MediaType, WebspaceSchema};

/// The Figure 3 fragment of the Australian Open webspace schema,
/// extended with the Player attributes visible in the annotated page of
/// Figure 1 (gender, country, picture, history) and the play hand, which
/// the Figure 13 query selects on ("the play hand is available in the
/// players profile").
pub fn ausopen_schema() -> WebspaceSchema {
    let mut schema = WebspaceSchema::new("AustralianOpen");
    let varchar = |n: &str, len: usize| AttrDef {
        name: n.to_owned(),
        ty: AttrType::Varchar(len),
    };
    let media = |n: &str, mt: MediaType| AttrDef {
        name: n.to_owned(),
        ty: AttrType::Media(mt),
    };
    schema
        .add_class(
            "Article",
            vec![varchar("title", 100), media("body", MediaType::Hypertext)],
        )
        .expect("fresh schema");
    schema
        .add_class(
            "Player",
            vec![
                varchar("name", 50),
                varchar("gender", 10),
                varchar("country", 50),
                varchar("hand", 10),
                media("picture", MediaType::Image),
                media("history", MediaType::Hypertext),
            ],
        )
        .expect("fresh schema");
    schema
        .add_class(
            "Profile",
            vec![
                AttrDef {
                    name: "document".to_owned(),
                    ty: AttrType::Uri,
                },
                media("video", MediaType::Video),
                media("interview", MediaType::Audio),
            ],
        )
        .expect("fresh schema");
    schema
        .add_association("About", "Article", "Player")
        .expect("classes exist");
    schema
        .add_association("Is_covered_in", "Player", "Profile")
        .expect("classes exist");
    schema
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_concepts_are_present() {
        let s = ausopen_schema();
        // The five class concepts of Figure 3 map to three classes plus
        // the two multimedia types Hypertext and Video, which are
        // attribute types in this model.
        for class in ["Article", "Player", "Profile"] {
            assert!(s.class(class).is_some(), "missing class {class}");
        }
        // Attribute concepts of Figure 3: body, name, document, video.
        assert!(s.class("Article").unwrap().attr("body").is_some());
        assert!(s.class("Player").unwrap().attr("name").is_some());
        assert!(s.class("Profile").unwrap().attr("document").is_some());
        assert!(s.class("Profile").unwrap().attr("video").is_some());
        // Association concepts: Is_covered_in and About.
        assert!(s.association("About").is_some());
        assert!(s.association("Is_covered_in").is_some());
    }

    #[test]
    fn multimedia_hooks_cover_all_four_kinds_used() {
        let s = ausopen_schema();
        let hooks = s.multimedia_attrs();
        assert!(hooks.contains(&("Article", "body", MediaType::Hypertext)));
        assert!(hooks.contains(&("Player", "picture", MediaType::Image)));
        assert!(hooks.contains(&("Player", "history", MediaType::Hypertext)));
        assert!(hooks.contains(&("Profile", "video", MediaType::Video)));
    }
}
