//! The web-object retriever: re-engineering HTML into views.
//!
//! "If a webspace is based on an already existing document collection, a
//! reengineering process can be invoked. The process extracts the
//! relevant data from the (HTML-)documents on a website, and stores it
//! in XML-documents, which form a correct view over the webspace schema.
//! The documents for the Australian Open search engine are generated in
//! this manner, using a special purpose feature grammar."
//!
//! Here the "special purpose" knowledge is a set of [`TemplateRule`]s:
//! CSS-class selectors mapping the site's presentation markup back to
//! schema concepts. Pages are processed one by one ([`Retriever::extract_page`]);
//! cross-page links (associations whose target is another page) resolve
//! in a second pass ([`Retriever::finalize`]) once every page's object id
//! is known — exactly how a crawler discovers a site.

use std::collections::HashMap;

use monetxml::{parse_document, Document, NodeId};
use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::object::{Association, AttrValue, WebObject};
use crate::schema::MediaType;
use crate::view::MaterializedView;

/// What to take from a selected element.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Take {
    /// The element's (recursive) text content.
    Text,
    /// The value of an attribute (e.g. `href`, `src`).
    Attr(String),
}

/// A CSS-ish selector: element tag plus required `class` token.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Selector {
    /// Element tag (`div`, `td`, …); empty matches any tag.
    pub tag: String,
    /// Required token in the element's `class` attribute.
    pub class: String,
    /// What to extract.
    pub take: Take,
}

impl Selector {
    /// `tag.class` extracting text.
    pub fn text(tag: &str, class: &str) -> Self {
        Selector {
            tag: tag.to_owned(),
            class: class.to_owned(),
            take: Take::Text,
        }
    }

    /// `tag.class` extracting an attribute.
    pub fn attr(tag: &str, class: &str, attr: &str) -> Self {
        Selector {
            tag: tag.to_owned(),
            class: class.to_owned(),
            take: Take::Attr(attr.to_owned()),
        }
    }

    fn matches(&self, doc: &Document, node: NodeId) -> bool {
        let Some(tag) = doc.tag(node) else {
            return false;
        };
        if !self.tag.is_empty() && tag != self.tag {
            return false;
        }
        doc.attr(node, "class")
            .map(|c| c.split_whitespace().any(|t| t == self.class))
            .unwrap_or(false)
    }

    /// All extracted values under `root`, in document order.
    pub fn extract_all(&self, doc: &Document, root: NodeId) -> Vec<String> {
        let mut out = Vec::new();
        let mut stack = vec![root];
        let mut ordered = Vec::new();
        while let Some(n) = stack.pop() {
            ordered.push(n);
            for c in doc.children(n).iter().rev() {
                stack.push(*c);
            }
        }
        for n in ordered {
            if self.matches(doc, n) {
                match &self.take {
                    Take::Text => out.push(doc.text_content(n)),
                    Take::Attr(a) => {
                        if let Some(v) = doc.attr(n, a) {
                            out.push(v.to_owned());
                        }
                    }
                }
            }
        }
        out
    }

    /// First extracted value under `root`.
    pub fn extract_first(&self, doc: &Document, root: NodeId) -> Option<String> {
        self.extract_all(doc, root).into_iter().next()
    }
}

/// How an extracted attribute value is typed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttrKind {
    /// Plain text.
    Text,
    /// A URI.
    Uri,
    /// A multimedia location.
    Media(MediaType),
}

/// One attribute extraction rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttrRule {
    /// Schema attribute name.
    pub attr: String,
    /// Where to find it.
    pub selector: Selector,
    /// How to type it.
    pub kind: AttrKind,
}

/// A template rule: pages matching `page_class` contain one object of
/// `class`, identified by `id_prefix` + page key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemplateRule {
    /// The schema class extracted by this rule.
    pub class: String,
    /// Token that must appear in the `<body class="…">` of the page for
    /// this rule to apply.
    pub page_class: String,
    /// Object id = `{id_prefix}{page key}` where the page key is the
    /// last path segment of the URL without extension.
    pub id_prefix: String,
    /// Attribute extraction rules.
    pub attrs: Vec<AttrRule>,
    /// Association rules: links on this page whose `href` target page
    /// yields the association's target object.
    pub links: Vec<LinkRule>,
}

/// A cross-page association rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkRule {
    /// The schema association name.
    pub association: String,
    /// Selector for the anchor elements carrying the link.
    pub selector: Selector,
}

/// A pending cross-page link discovered during extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PendingLink {
    association: String,
    from: String,
    target_url: String,
}

/// One page's extraction result (before link resolution).
#[derive(Debug, Clone)]
pub struct PageExtract {
    /// The source URL.
    pub url: String,
    /// Extracted objects.
    pub objects: Vec<WebObject>,
    links: Vec<PendingLink>,
}

/// The web-object retriever.
#[derive(Debug, Clone, Default)]
pub struct Retriever {
    schema_name: String,
    rules: Vec<TemplateRule>,
}

impl Retriever {
    /// A retriever producing views over the named schema.
    pub fn new(schema_name: impl Into<String>) -> Self {
        Retriever {
            schema_name: schema_name.into(),
            rules: Vec::new(),
        }
    }

    /// Adds a template rule.
    pub fn rule(mut self, rule: TemplateRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Extracts the web objects of one HTML page.
    pub fn extract_page(&self, url: &str, html: &str) -> Result<PageExtract> {
        let doc = parse_document(html).map_err(Error::Xml)?;
        let root = doc.root();
        let body_class = find_body_class(&doc, root).unwrap_or_default();
        let key = page_key(url);

        let mut objects = Vec::new();
        let mut links = Vec::new();
        for rule in &self.rules {
            if !body_class
                .split_whitespace()
                .any(|t| t == rule.page_class)
            {
                continue;
            }
            let id = format!("{}{key}", rule.id_prefix);
            let mut object = WebObject::new(rule.class.clone(), id.clone());
            for ar in &rule.attrs {
                if let Some(raw) = ar.selector.extract_first(&doc, root) {
                    let value = match &ar.kind {
                        AttrKind::Text => AttrValue::Text(raw),
                        AttrKind::Uri => AttrValue::Uri(raw),
                        AttrKind::Media(ty) => AttrValue::Media {
                            ty: *ty,
                            location: raw,
                        },
                    };
                    object.attrs.insert(ar.attr.clone(), value);
                }
            }
            for lr in &rule.links {
                for target_url in lr.selector.extract_all(&doc, root) {
                    links.push(PendingLink {
                        association: lr.association.clone(),
                        from: id.clone(),
                        target_url,
                    });
                }
            }
            objects.push(object);
        }
        Ok(PageExtract {
            url: url.to_owned(),
            objects,
            links,
        })
    }

    /// Resolves cross-page links and produces one materialized view per
    /// page. Links whose target page yielded no object are dropped (the
    /// paper's crawler simply cannot re-engineer them).
    pub fn finalize(&self, extracts: Vec<PageExtract>) -> Vec<MaterializedView> {
        // URL → primary object id of the page.
        let mut primary: HashMap<String, String> = HashMap::new();
        for e in &extracts {
            if let Some(first) = e.objects.first() {
                primary.insert(e.url.clone(), first.id.clone());
            }
        }
        extracts
            .into_iter()
            .map(|e| {
                let mut view = MaterializedView::new(e.url.clone(), self.schema_name.clone());
                view.objects = e.objects;
                for link in e.links {
                    if let Some(to) = primary.get(&link.target_url) {
                        view.associations.push(Association::new(
                            link.association,
                            link.from,
                            to.clone(),
                        ));
                    }
                }
                view
            })
            .collect()
    }
}

fn find_body_class(doc: &Document, root: NodeId) -> Option<String> {
    let mut stack = vec![root];
    while let Some(n) = stack.pop() {
        if doc.tag(n) == Some("body") {
            return doc.attr(n, "class").map(str::to_owned);
        }
        for c in doc.children(n) {
            stack.push(*c);
        }
    }
    None
}

/// The last path segment of a URL without its extension:
/// `http://site/players/seles.html` → `seles`.
pub fn page_key(url: &str) -> String {
    let tail = url.rsplit('/').next().unwrap_or(url);
    tail.split('.').next().unwrap_or(tail).to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    const PLAYER_PAGE: &str = r#"
<html>
  <head><title>Monica Seles - Australian Open</title></head>
  <body class="page bio-page">
    <div class="bio">
      <h1 class="player-name">Monica Seles</h1>
      <table class="factbox">
        <tr><td>Gender</td><td class="gender">female</td></tr>
        <tr><td>Country</td><td class="country">USA</td></tr>
        <tr><td>Plays</td><td class="hand">left</td></tr>
      </table>
      <img class="portrait" src="http://site/img/seles.jpg"/>
      <div class="history">Winner of the Australian Open 1991 1992 1993 1996.</div>
    </div>
    <div class="media">
      <a class="profile-link" href="http://site/profiles/seles.html">profile</a>
    </div>
  </body>
</html>"#;

    fn player_rule() -> TemplateRule {
        TemplateRule {
            class: "Player".into(),
            page_class: "bio-page".into(),
            id_prefix: "player:".into(),
            attrs: vec![
                AttrRule {
                    attr: "name".into(),
                    selector: Selector::text("h1", "player-name"),
                    kind: AttrKind::Text,
                },
                AttrRule {
                    attr: "gender".into(),
                    selector: Selector::text("td", "gender"),
                    kind: AttrKind::Text,
                },
                AttrRule {
                    attr: "hand".into(),
                    selector: Selector::text("td", "hand"),
                    kind: AttrKind::Text,
                },
                AttrRule {
                    attr: "picture".into(),
                    selector: Selector::attr("img", "portrait", "src"),
                    kind: AttrKind::Media(MediaType::Image),
                },
                AttrRule {
                    attr: "history".into(),
                    selector: Selector::text("div", "history"),
                    kind: AttrKind::Text,
                },
            ],
            links: vec![LinkRule {
                association: "Is_covered_in".into(),
                selector: Selector::attr("a", "profile-link", "href"),
            }],
        }
    }

    fn profile_rule() -> TemplateRule {
        TemplateRule {
            class: "Profile".into(),
            page_class: "profile-page".into(),
            id_prefix: "profile:".into(),
            attrs: vec![AttrRule {
                attr: "video".into(),
                selector: Selector::attr("a", "match-video", "href"),
                kind: AttrKind::Media(MediaType::Video),
            }],
            links: vec![],
        }
    }

    const PROFILE_PAGE: &str = r#"
<html><head><title>Profile</title></head>
<body class="page profile-page">
  <a class="match-video" href="http://site/video/seles-final.mpg">final</a>
</body></html>"#;

    #[test]
    fn extracts_player_attributes_from_presentation_markup() {
        let retriever = Retriever::new("AustralianOpen").rule(player_rule());
        let extract = retriever
            .extract_page("http://site/players/seles.html", PLAYER_PAGE)
            .unwrap();
        assert_eq!(extract.objects.len(), 1);
        let player = &extract.objects[0];
        assert_eq!(player.id, "player:seles");
        assert_eq!(player.attr("name").unwrap().lexical(), "Monica Seles");
        assert_eq!(player.attr("gender").unwrap().lexical(), "female");
        assert_eq!(player.attr("hand").unwrap().lexical(), "left");
        assert_eq!(
            player.attr("picture").unwrap().lexical(),
            "http://site/img/seles.jpg"
        );
        assert!(player
            .attr("history")
            .unwrap()
            .lexical()
            .contains("Winner"));
    }

    #[test]
    fn cross_page_links_resolve_to_associations() {
        let retriever = Retriever::new("AustralianOpen")
            .rule(player_rule())
            .rule(profile_rule());
        let extracts = vec![
            retriever
                .extract_page("http://site/players/seles.html", PLAYER_PAGE)
                .unwrap(),
            retriever
                .extract_page("http://site/profiles/seles.html", PROFILE_PAGE)
                .unwrap(),
        ];
        let views = retriever.finalize(extracts);
        assert_eq!(views.len(), 2);
        let assoc = &views[0].associations[0];
        assert_eq!(assoc.name, "Is_covered_in");
        assert_eq!(assoc.from, "player:seles");
        assert_eq!(assoc.to, "profile:seles");
    }

    #[test]
    fn pages_without_matching_template_yield_nothing() {
        let retriever = Retriever::new("AustralianOpen").rule(player_rule());
        let extract = retriever
            .extract_page("http://site/profiles/seles.html", PROFILE_PAGE)
            .unwrap();
        assert!(extract.objects.is_empty());
    }

    #[test]
    fn dangling_links_are_dropped() {
        let retriever = Retriever::new("AustralianOpen").rule(player_rule());
        let extracts = vec![retriever
            .extract_page("http://site/players/seles.html", PLAYER_PAGE)
            .unwrap()];
        let views = retriever.finalize(extracts);
        assert!(views[0].associations.is_empty());
    }

    #[test]
    fn page_key_strips_path_and_extension() {
        assert_eq!(page_key("http://site/players/seles.html"), "seles");
        assert_eq!(page_key("seles"), "seles");
        assert_eq!(page_key("http://site/"), "");
    }
}
