//! Conceptual queries over a populated webspace.
//!
//! "Novel within the scope of search engines … is that it allows a user
//! to integrate information stored in different documents in a single
//! query" and "specific conceptual information can be fetched as the
//! result of a query, rather than a bunch of relevant document URLs."
//!
//! A [`WebspaceIndex`] merges the materialized views of many documents
//! into one object graph (objects with the same id contributed by
//! different documents merge their attributes — the document *overlap*
//! that makes cross-document queries possible). A [`ConceptualQuery`]
//! selects objects of a class, filters on attribute predicates, and
//! walks association chains; the result is conceptual data, not URLs.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::object::{Association, AttrValue, WebObject};
use crate::schema::WebspaceSchema;
use crate::view::MaterializedView;

/// A predicate on one attribute of the current class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// Attribute equals the given text (case-insensitive).
    Eq {
        /// Attribute name.
        attr: String,
        /// Expected value.
        value: String,
    },
    /// Attribute text contains the needle (case-insensitive). For
    /// `Hypertext` attributes the engine layer replaces this with ranked
    /// full-text retrieval; here it is exact containment.
    Contains {
        /// Attribute name.
        attr: String,
        /// Substring to find.
        needle: String,
    },
    /// Integer attribute within an inclusive range.
    IntRange {
        /// Attribute name.
        attr: String,
        /// Lower bound.
        lo: i64,
        /// Upper bound.
        hi: i64,
    },
}

impl Predicate {
    /// Evaluates against one object. Missing attributes fail the
    /// predicate.
    pub fn holds(&self, object: &WebObject) -> bool {
        match self {
            Predicate::Eq { attr, value } => object
                .attr(attr)
                .map(|v| v.lexical().eq_ignore_ascii_case(value))
                .unwrap_or(false),
            Predicate::Contains { attr, needle } => object
                .attr(attr)
                .map(|v| {
                    v.lexical()
                        .to_ascii_lowercase()
                        .contains(&needle.to_ascii_lowercase())
                })
                .unwrap_or(false),
            Predicate::IntRange { attr, lo, hi } => match object.attr(attr) {
                Some(AttrValue::Int(i)) => i >= lo && i <= hi,
                _ => false,
            },
        }
    }
}

/// One join step: follow an association from the current class, filter
/// the targets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JoinStep {
    /// Association name (must start at the current class).
    pub association: String,
    /// Predicates on the target objects.
    pub predicates: Vec<Predicate>,
}

/// A conceptual query: class selection, predicates, association chain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConceptualQuery {
    /// The class the query starts from.
    pub from_class: String,
    /// Predicates on the starting class.
    pub predicates: Vec<Predicate>,
    /// Association chain to walk.
    pub joins: Vec<JoinStep>,
}

impl ConceptualQuery {
    /// A query over `class` with no predicates.
    pub fn from_class(class: impl Into<String>) -> Self {
        ConceptualQuery {
            from_class: class.into(),
            predicates: Vec::new(),
            joins: Vec::new(),
        }
    }

    /// Adds a predicate on the starting class (builder style).
    pub fn filter(mut self, p: Predicate) -> Self {
        self.predicates.push(p);
        self
    }

    /// Adds a join step (builder style).
    pub fn join(mut self, association: impl Into<String>, predicates: Vec<Predicate>) -> Self {
        self.joins.push(JoinStep {
            association: association.into(),
            predicates,
        });
        self
    }
}

/// One result row: the chain of matched object ids, starting class
/// first, one per join step after.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryResult {
    /// Matched object ids along the chain.
    pub chain: Vec<String>,
}

/// Metric handles for the conceptual level.
#[derive(Debug, Clone)]
struct WebspaceMetrics {
    queries: obs::Counter,
    rows_examined: obs::Counter,
    rows_out: obs::Counter,
    joins_walked: obs::Counter,
}

impl WebspaceMetrics {
    fn register(registry: &obs::Registry) -> WebspaceMetrics {
        WebspaceMetrics {
            queries: registry.counter(
                "webspace_queries_total",
                "Conceptual queries executed against the object graph",
            ),
            rows_examined: registry.counter(
                "webspace_rows_examined_total",
                "Candidate rows examined (seeds plus join expansions)",
            ),
            rows_out: registry.counter(
                "webspace_rows_out_total",
                "Result rows produced by conceptual queries",
            ),
            joins_walked: registry.counter(
                "webspace_joins_total",
                "Association-chain join steps walked",
            ),
        }
    }
}

/// The merged object graph of a webspace.
#[derive(Debug, Clone)]
pub struct WebspaceIndex {
    schema: WebspaceSchema,
    objects: Vec<WebObject>,
    by_id: HashMap<String, usize>,
    associations: Vec<Association>,
    metrics: Option<WebspaceMetrics>,
}

impl WebspaceIndex {
    /// An empty index over `schema`.
    pub fn new(schema: WebspaceSchema) -> Self {
        WebspaceIndex {
            schema,
            objects: Vec::new(),
            by_id: HashMap::new(),
            associations: Vec::new(),
            metrics: None,
        }
    }

    /// Connects the index to an observability handle: executed queries
    /// feed the `webspace_*` counters. A disabled handle disconnects.
    pub fn set_obs(&mut self, o: &obs::Obs) {
        self.metrics = o.registry().map(WebspaceMetrics::register);
    }

    /// The schema.
    pub fn schema(&self) -> &WebspaceSchema {
        &self.schema
    }

    /// Merges one materialized view into the index. Objects with an id
    /// already present merge their attributes (later documents win on
    /// conflicts); class mismatches are errors.
    pub fn add_view(&mut self, view: &MaterializedView) -> Result<()> {
        view.validate(&self.schema)?;
        for object in &view.objects {
            match self.by_id.get(&object.id) {
                Some(&idx) => {
                    let existing = &mut self.objects[idx];
                    if existing.class != object.class {
                        return Err(Error::Query(format!(
                            "object `{}` is both {} and {}",
                            object.id, existing.class, object.class
                        )));
                    }
                    for (k, v) in &object.attrs {
                        existing.attrs.insert(k.clone(), v.clone());
                    }
                }
                None => {
                    self.by_id.insert(object.id.clone(), self.objects.len());
                    self.objects.push(object.clone());
                }
            }
        }
        for assoc in &view.associations {
            if !self.associations.contains(assoc) {
                self.associations.push(assoc.clone());
            }
        }
        Ok(())
    }

    /// The object with id `id`.
    pub fn object(&self, id: &str) -> Option<&WebObject> {
        self.by_id.get(id).map(|&i| &self.objects[i])
    }

    /// All objects of `class`.
    pub fn objects_of<'a>(&'a self, class: &'a str) -> impl Iterator<Item = &'a WebObject> + 'a {
        self.objects.iter().filter(move |o| o.class == class)
    }

    /// Number of objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// All association instances.
    pub fn associations(&self) -> &[Association] {
        &self.associations
    }

    /// Targets of `association` from object `from`.
    pub fn targets(&self, from: &str, association: &str) -> Vec<&WebObject> {
        self.associations
            .iter()
            .filter(|a| a.name == association && a.from == from)
            .filter_map(|a| self.object(&a.to))
            .collect()
    }

    /// Executes a conceptual query.
    pub fn execute(&self, query: &ConceptualQuery) -> Result<Vec<QueryResult>> {
        self.execute_budgeted(query, &faults::Budget::unlimited())
    }

    /// Executes a conceptual query under a caller budget: one work
    /// unit per candidate row examined (seed objects and join
    /// expansions alike), so a runaway join is cancelled at row
    /// granularity with a typed [`Error::DeadlineExceeded`] instead of
    /// running forever.
    pub fn execute_budgeted(
        &self,
        query: &ConceptualQuery,
        budget: &faults::Budget,
    ) -> Result<Vec<QueryResult>> {
        // Validate against the schema first.
        let mut class = self
            .schema
            .class(&query.from_class)
            .ok_or_else(|| Error::Query(format!("unknown class `{}`", query.from_class)))?
            .name
            .clone();
        for step in &query.joins {
            let assoc = self.schema.association(&step.association).ok_or_else(|| {
                Error::Query(format!("unknown association `{}`", step.association))
            })?;
            if assoc.from != class {
                return Err(Error::Query(format!(
                    "association `{}` starts at `{}`, not `{class}`",
                    step.association, assoc.from
                )));
            }
            class = assoc.to.clone();
        }

        if let Some(m) = &self.metrics {
            m.queries.inc();
        }

        // Seed: objects of the starting class passing all predicates.
        // One work unit per candidate object examined.
        let mut examined: u64 = 0;
        let mut rows: Vec<Vec<String>> = Vec::new();
        for o in self.objects_of(&query.from_class) {
            examined += 1;
            budget.consume(1).map_err(|cause| Error::DeadlineExceeded {
                rows: rows.len(),
                cause,
            })?;
            if query.predicates.iter().all(|p| p.holds(o)) {
                rows.push(vec![o.id.clone()]);
            }
        }

        // Walk the association chain, paying one unit per expanded row.
        for step in &query.joins {
            if let Some(m) = &self.metrics {
                m.joins_walked.inc();
            }
            let mut next = Vec::new();
            for row in rows {
                examined += 1;
                budget.consume(1).map_err(|cause| Error::DeadlineExceeded {
                    rows: next.len(),
                    cause,
                })?;
                let last = row.last().expect("rows are non-empty").clone();
                for target in self.targets(&last, &step.association) {
                    if step.predicates.iter().all(|p| p.holds(target)) {
                        let mut extended = row.clone();
                        extended.push(target.id.clone());
                        next.push(extended);
                    }
                }
            }
            rows = next;
        }

        if let Some(m) = &self.metrics {
            m.rows_examined.add(examined);
            m.rows_out.add(rows.len() as u64);
        }
        Ok(rows.into_iter().map(|chain| QueryResult { chain }).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::AttrValue;
    use crate::paper::ausopen_schema;
    use crate::schema::MediaType;

    /// Two documents: a player page and an article page, overlapping on
    /// the player object — the Figure 3 "slashed boxes" situation.
    fn populated() -> WebspaceIndex {
        let mut index = WebspaceIndex::new(ausopen_schema());

        let mut player_page = MaterializedView::new("players/seles.html", "AustralianOpen");
        player_page.objects.push(
            WebObject::new("Player", "player:seles")
                .with("name", AttrValue::Text("Monica Seles".into()))
                .with("gender", AttrValue::Text("female".into()))
                .with("hand", AttrValue::Text("left".into()))
                .with(
                    "history",
                    AttrValue::Media {
                        ty: MediaType::Hypertext,
                        location: "players/seles-history.html".into(),
                    },
                ),
        );
        player_page.objects.push(
            WebObject::new("Profile", "profile:seles")
                .with("document", AttrValue::Uri("profiles/seles.xml".into()))
                .with(
                    "video",
                    AttrValue::Media {
                        ty: MediaType::Video,
                        location: "http://x/seles-final.mpg".into(),
                    },
                ),
        );
        player_page
            .associations
            .push(Association::new("Is_covered_in", "player:seles", "profile:seles"));
        index.add_view(&player_page).unwrap();

        let mut article_page = MaterializedView::new("news/day1.html", "AustralianOpen");
        article_page.objects.push(
            WebObject::new("Article", "article:day1")
                .with("title", AttrValue::Text("Seles storms into final".into())),
        );
        // The article page also mentions the player (overlap!), adding
        // her country.
        article_page.objects.push(
            WebObject::new("Player", "player:seles")
                .with("country", AttrValue::Text("USA".into())),
        );
        article_page
            .associations
            .push(Association::new("About", "article:day1", "player:seles"));
        index.add_view(&article_page).unwrap();

        index
    }

    #[test]
    fn views_merge_objects_across_documents() {
        let index = populated();
        let seles = index.object("player:seles").unwrap();
        // name came from the player page, country from the article page.
        assert_eq!(seles.attr("name").unwrap().lexical(), "Monica Seles");
        assert_eq!(seles.attr("country").unwrap().lexical(), "USA");
        assert_eq!(index.object_count(), 3);
    }

    #[test]
    fn select_with_predicates() {
        let index = populated();
        let q = ConceptualQuery::from_class("Player")
            .filter(Predicate::Eq {
                attr: "gender".into(),
                value: "Female".into(), // case-insensitive
            })
            .filter(Predicate::Eq {
                attr: "hand".into(),
                value: "left".into(),
            });
        let rows = index.execute(&q).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].chain, vec!["player:seles"]);
    }

    #[test]
    fn join_walks_associations_across_documents() {
        let index = populated();
        // Article → About → Player → Is_covered_in → Profile: a single
        // query integrating three documents.
        let q = ConceptualQuery::from_class("Article")
            .join("About", vec![Predicate::Eq {
                attr: "hand".into(),
                value: "left".into(),
            }])
            .join("Is_covered_in", vec![]);
        let rows = index.execute(&q).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(
            rows[0].chain,
            vec!["article:day1", "player:seles", "profile:seles"]
        );
    }

    #[test]
    fn join_from_wrong_class_is_rejected() {
        let index = populated();
        let q = ConceptualQuery::from_class("Player").join("About", vec![]);
        assert!(index.execute(&q).is_err());
    }

    #[test]
    fn unknown_class_is_rejected() {
        let index = populated();
        let q = ConceptualQuery::from_class("Ghost");
        assert!(index.execute(&q).is_err());
    }

    #[test]
    fn contains_predicate_matches_substrings() {
        let index = populated();
        let q = ConceptualQuery::from_class("Article").filter(Predicate::Contains {
            attr: "title".into(),
            needle: "final".into(),
        });
        assert_eq!(index.execute(&q).unwrap().len(), 1);
    }

    #[test]
    fn budgets_cancel_joins_with_a_typed_error() {
        let index = populated();
        let q = ConceptualQuery::from_class("Article")
            .join("About", vec![])
            .join("Is_covered_in", vec![]);
        // Unlimited budget: identical to plain execute.
        let full = index.execute(&q).unwrap();
        assert_eq!(
            index
                .execute_budgeted(&q, &faults::Budget::unlimited())
                .unwrap(),
            full
        );
        // Sweep work allowances: every failure is typed, and a large
        // enough allowance converges on the full answer.
        let mut succeeded = false;
        for w in 0..50 {
            match index.execute_budgeted(&q, &faults::Budget::with_work(w)) {
                Ok(rows) => {
                    assert_eq!(rows, full);
                    succeeded = true;
                    break;
                }
                Err(Error::DeadlineExceeded { cause, .. }) => {
                    assert_eq!(cause, faults::BudgetExceeded::Work);
                }
                Err(other) => panic!("untyped budget failure: {other:?}"),
            }
        }
        assert!(succeeded, "no work allowance sufficed");
    }

    #[test]
    fn class_conflict_on_merge_is_rejected() {
        let mut index = populated();
        let mut view = MaterializedView::new("bad.html", "AustralianOpen");
        view.objects
            .push(WebObject::new("Article", "player:seles"));
        assert!(index.add_view(&view).is_err());
    }
}
