//! The Webspace Method — the paper's conceptual level.
//!
//! "The Webspace Method defines concepts in a webspace schema using an
//! object-oriented data model. … Each document then forms a materialized
//! view over the webspace schema: describing a part of the webspace.
//! Within a document web-objects are defined along with the relations
//! between them, forming instantiations of classes and associations from
//! the webspace schema."
//!
//! * [`schema`] — classes, attributes (including multimedia types) and
//!   associations; [`paper::ausopen_schema`] reconstructs Figure 3.
//! * [`object`] — web objects and association instances.
//! * [`view`] — materialized views as XML documents (the storage format
//!   the physical level consumes) and back.
//! * [`retriever`] — the web-object retriever: re-engineering
//!   presentation-oriented HTML back into schema-conforming views, driven
//!   by per-site template rules (the paper's "special purpose feature
//!   grammar" for the Australian Open site).
//! * [`query`] — conceptual queries over a populated webspace: selections
//!   on attributes, joins along associations, cross-document results —
//!   "it allows a user to integrate information stored in different
//!   documents in a single query".

#![warn(missing_docs)]

pub mod author;
pub mod error;
pub mod object;
pub mod paper;
pub mod query;
pub mod retriever;
pub mod schema;
pub mod view;

pub use author::{Author, DocumentDesign};
pub use error::{Error, Result};
pub use object::{Association, AttrValue, WebObject};
pub use query::{ConceptualQuery, Predicate, QueryResult, WebspaceIndex};
pub use retriever::{Retriever, TemplateRule};
pub use schema::{AttrDef, AttrType, ClassDef, MediaType, WebspaceSchema};
pub use view::MaterializedView;
