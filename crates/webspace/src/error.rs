//! Error type for the conceptual level.

use std::fmt;

/// Errors raised by schema, view or query processing.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Schema construction or validation failed.
    Schema(String),
    /// An object violates its class definition.
    Object(String),
    /// A materialized view could not be (de)serialised.
    View(String),
    /// A conceptual query is ill-formed against the schema.
    Query(String),
    /// HTML re-engineering failed.
    Retriever(String),
    /// An underlying XML error.
    Xml(monetxml::Error),
    /// The caller's query budget expired mid-join. Carries how many
    /// result rows were already assembled when it ran out.
    DeadlineExceeded {
        /// Chain rows completed before expiry.
        rows: usize,
        /// Which budget dimension expired.
        cause: faults::BudgetExceeded,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Schema(m) => write!(f, "schema error: {m}"),
            Error::Object(m) => write!(f, "object error: {m}"),
            Error::View(m) => write!(f, "view error: {m}"),
            Error::Query(m) => write!(f, "query error: {m}"),
            Error::Retriever(m) => write!(f, "retriever error: {m}"),
            Error::Xml(e) => write!(f, "{e}"),
            Error::DeadlineExceeded { rows, cause } => {
                write!(f, "query budget expired ({cause}) after {rows} rows")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Xml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<monetxml::Error> for Error {
    fn from(e: monetxml::Error) -> Self {
        Error::Xml(e)
    }
}

/// Result alias for conceptual-level operations.
pub type Result<T> = std::result::Result<T, Error>;
