//! Web objects: instantiations of schema classes.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::schema::{AttrType, MediaType, WebspaceSchema};

/// A typed attribute value of a web object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttrValue {
    /// String / varchar value.
    Text(String),
    /// Integer value.
    Int(i64),
    /// Float value.
    Float(f64),
    /// A URI.
    Uri(String),
    /// A multimedia item: the media lives *outside* the database; the
    /// value is its location ("the stored meta-data forms an index to
    /// external data").
    Media {
        /// The media type.
        ty: MediaType,
        /// Location (URL) of the raw media.
        location: String,
    },
}

impl AttrValue {
    /// Whether this value conforms to the declared attribute type.
    /// Hypertext attributes accept inline text as well as an external
    /// location — a page's free-text body *is* hypertext content.
    pub fn conforms_to(&self, ty: &AttrType) -> bool {
        match (self, ty) {
            (AttrValue::Text(s), AttrType::Varchar(limit)) => s.len() <= *limit,
            (AttrValue::Text(_), AttrType::Media(MediaType::Hypertext)) => true,
            (AttrValue::Int(_), AttrType::Int) => true,
            (AttrValue::Float(_), AttrType::Float) => true,
            (AttrValue::Uri(_), AttrType::Uri) => true,
            (AttrValue::Media { ty: vt, .. }, AttrType::Media(st)) => vt == st,
            _ => false,
        }
    }

    /// A best-effort textual rendering (for XML views and text search).
    pub fn lexical(&self) -> String {
        match self {
            AttrValue::Text(s) => s.clone(),
            AttrValue::Int(i) => i.to_string(),
            AttrValue::Float(f) => f.to_string(),
            AttrValue::Uri(u) => u.clone(),
            AttrValue::Media { location, .. } => location.clone(),
        }
    }
}

/// An instantiation of a schema class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WebObject {
    /// The class this object instantiates.
    pub class: String,
    /// A collection-unique object identifier (e.g. `player:seles`).
    pub id: String,
    /// Attribute values.
    pub attrs: BTreeMap<String, AttrValue>,
}

impl WebObject {
    /// Creates an object of `class` with identifier `id`.
    pub fn new(class: impl Into<String>, id: impl Into<String>) -> Self {
        WebObject {
            class: class.into(),
            id: id.into(),
            attrs: BTreeMap::new(),
        }
    }

    /// Sets an attribute (builder style).
    pub fn with(mut self, name: impl Into<String>, value: AttrValue) -> Self {
        self.attrs.insert(name.into(), value);
        self
    }

    /// The value of attribute `name`.
    pub fn attr(&self, name: &str) -> Option<&AttrValue> {
        self.attrs.get(name)
    }

    /// Validates the object against the schema: known class, known
    /// attributes, conforming types.
    pub fn validate(&self, schema: &WebspaceSchema) -> Result<()> {
        let class = schema
            .class(&self.class)
            .ok_or_else(|| Error::Object(format!("unknown class `{}`", self.class)))?;
        for (name, value) in &self.attrs {
            let def = class.attr(name).ok_or_else(|| {
                Error::Object(format!(
                    "class `{}` has no attribute `{name}`",
                    self.class
                ))
            })?;
            if !value.conforms_to(&def.ty) {
                return Err(Error::Object(format!(
                    "attribute `{}.{name}` value does not conform to {:?}",
                    self.class, def.ty
                )));
            }
        }
        Ok(())
    }
}

/// An instance of a schema association, linking two objects by id.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Association {
    /// The association name (must exist in the schema).
    pub name: String,
    /// Source object id.
    pub from: String,
    /// Target object id.
    pub to: String,
}

impl Association {
    /// Creates an association instance.
    pub fn new(
        name: impl Into<String>,
        from: impl Into<String>,
        to: impl Into<String>,
    ) -> Self {
        Association {
            name: name.into(),
            from: from.into(),
            to: to.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrDef;

    fn schema() -> WebspaceSchema {
        let mut s = WebspaceSchema::new("w");
        s.add_class(
            "Player",
            vec![
                AttrDef {
                    name: "name".into(),
                    ty: AttrType::Varchar(10),
                },
                AttrDef {
                    name: "video".into(),
                    ty: AttrType::Media(MediaType::Video),
                },
            ],
        )
        .unwrap();
        s
    }

    #[test]
    fn valid_object_passes() {
        let o = WebObject::new("Player", "p1")
            .with("name", AttrValue::Text("Seles".into()))
            .with(
                "video",
                AttrValue::Media {
                    ty: MediaType::Video,
                    location: "http://x/v.mpg".into(),
                },
            );
        o.validate(&schema()).unwrap();
    }

    #[test]
    fn varchar_limit_is_enforced() {
        let o = WebObject::new("Player", "p1")
            .with("name", AttrValue::Text("a name way too long".into()));
        assert!(o.validate(&schema()).is_err());
    }

    #[test]
    fn unknown_class_and_attr_are_rejected() {
        let o = WebObject::new("Ghost", "g");
        assert!(o.validate(&schema()).is_err());
        let o = WebObject::new("Player", "p").with("ghost", AttrValue::Int(1));
        assert!(o.validate(&schema()).is_err());
    }

    #[test]
    fn media_type_mismatch_is_rejected() {
        let o = WebObject::new("Player", "p").with(
            "video",
            AttrValue::Media {
                ty: MediaType::Image,
                location: "x".into(),
            },
        );
        assert!(o.validate(&schema()).is_err());
    }
}
