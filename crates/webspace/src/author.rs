//! The webspace authoring tool.
//!
//! "When a webspace is setup from scratch the author will create the
//! documents using a specialized webspace authoring tool. The tool
//! guides the author through the entire design process." The guided
//! design is captured by [`DocumentDesign`] rules: which class gets its
//! own documents, and which associated objects are *inlined* into those
//! documents (creating the cross-document concept overlap that makes
//! webspace queries work).

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::object::{Association, WebObject};
use crate::schema::WebspaceSchema;
use crate::view::MaterializedView;

/// One document-design rule: objects of `class` each get a document,
/// inlining the targets of the listed associations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DocumentDesign {
    /// The class whose instances become documents.
    pub class: String,
    /// Associations (starting at `class`) whose targets are inlined.
    pub include: Vec<String>,
}

/// The authoring tool: a schema plus document designs.
#[derive(Debug, Clone)]
pub struct Author {
    schema: WebspaceSchema,
    designs: Vec<DocumentDesign>,
}

impl Author {
    /// A tool for `schema` with no designs yet.
    pub fn new(schema: WebspaceSchema) -> Self {
        Author {
            schema,
            designs: Vec::new(),
        }
    }

    /// Adds a document design (builder style). The design is validated
    /// against the schema.
    pub fn design(mut self, design: DocumentDesign) -> Result<Self> {
        if self.schema.class(&design.class).is_none() {
            return Err(Error::Schema(format!(
                "document design for unknown class `{}`",
                design.class
            )));
        }
        for assoc in &design.include {
            let def = self
                .schema
                .association(assoc)
                .ok_or_else(|| Error::Schema(format!("unknown association `{assoc}`")))?;
            if def.from != design.class {
                return Err(Error::Schema(format!(
                    "association `{assoc}` starts at `{}`, not `{}`",
                    def.from, design.class
                )));
            }
        }
        self.designs.push(design);
        Ok(self)
    }

    /// Authors the webspace: one materialized view per object of each
    /// designed class, with the designated associated objects inlined.
    /// Every produced view validates against the schema.
    pub fn author(
        &self,
        objects: &[WebObject],
        associations: &[Association],
    ) -> Result<Vec<MaterializedView>> {
        for object in objects {
            object.validate(&self.schema)?;
        }
        let mut views = Vec::new();
        for design in &self.designs {
            for object in objects.iter().filter(|o| o.class == design.class) {
                let name = format!("{}.xml", object.id.replace(':', "/"));
                let mut view = MaterializedView::new(name, self.schema.name());
                view.objects.push(object.clone());
                for assoc_name in &design.include {
                    for assoc in associations
                        .iter()
                        .filter(|a| a.name == *assoc_name && a.from == object.id)
                    {
                        if let Some(target) = objects.iter().find(|o| o.id == assoc.to) {
                            if !view.objects.contains(target) {
                                view.objects.push(target.clone());
                            }
                            view.associations.push(assoc.clone());
                        }
                    }
                }
                view.validate(&self.schema)?;
                views.push(view);
            }
        }
        Ok(views)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::AttrValue;
    use crate::paper::ausopen_schema;
    use crate::query::WebspaceIndex;
    use crate::schema::MediaType;

    fn sample_objects() -> (Vec<WebObject>, Vec<Association>) {
        let objects = vec![
            WebObject::new("Player", "player:seles")
                .with("name", AttrValue::Text("Monica Seles".into())),
            WebObject::new("Profile", "profile:seles").with(
                "video",
                AttrValue::Media {
                    ty: MediaType::Video,
                    location: "http://x/v.mpg".into(),
                },
            ),
            WebObject::new("Article", "article:day1")
                .with("title", AttrValue::Text("Seles wins".into())),
        ];
        let associations = vec![
            Association::new("Is_covered_in", "player:seles", "profile:seles"),
            Association::new("About", "article:day1", "player:seles"),
        ];
        (objects, associations)
    }

    #[test]
    fn authoring_produces_valid_views_per_design() {
        let (objects, associations) = sample_objects();
        let author = Author::new(ausopen_schema())
            .design(DocumentDesign {
                class: "Player".into(),
                include: vec!["Is_covered_in".into()],
            })
            .unwrap()
            .design(DocumentDesign {
                class: "Article".into(),
                include: vec!["About".into()],
            })
            .unwrap();
        let views = author.author(&objects, &associations).unwrap();
        assert_eq!(views.len(), 2);
        // The player document inlines the profile (overlap!).
        let player_view = &views[0];
        assert_eq!(player_view.objects.len(), 2);
        assert_eq!(player_view.associations.len(), 1);
        // Authored views feed the index exactly like crawled ones.
        let mut index = WebspaceIndex::new(ausopen_schema());
        for v in &views {
            index.add_view(v).unwrap();
        }
        assert_eq!(index.object_count(), 3);
        assert_eq!(index.targets("player:seles", "Is_covered_in").len(), 1);
    }

    #[test]
    fn authored_views_round_trip_through_xml() {
        let (objects, associations) = sample_objects();
        let author = Author::new(ausopen_schema())
            .design(DocumentDesign {
                class: "Player".into(),
                include: vec!["Is_covered_in".into()],
            })
            .unwrap();
        for view in author.author(&objects, &associations).unwrap() {
            let xml = monetxml::to_xml(&view.to_document());
            let doc = monetxml::parse_document(&xml).unwrap();
            assert_eq!(MaterializedView::from_document(&doc).unwrap(), view);
        }
    }

    #[test]
    fn bad_designs_are_rejected() {
        let author = Author::new(ausopen_schema());
        assert!(author
            .clone()
            .design(DocumentDesign {
                class: "Ghost".into(),
                include: vec![],
            })
            .is_err());
        assert!(author
            .clone()
            .design(DocumentDesign {
                class: "Player".into(),
                include: vec!["About".into()], // starts at Article
            })
            .is_err());
    }

    #[test]
    fn invalid_objects_are_rejected_at_authoring_time() {
        let author = Author::new(ausopen_schema())
            .design(DocumentDesign {
                class: "Player".into(),
                include: vec![],
            })
            .unwrap();
        let bad = vec![WebObject::new("Player", "p").with("ghost_attr", AttrValue::Int(1))];
        assert!(author.author(&bad, &[]).is_err());
    }
}
