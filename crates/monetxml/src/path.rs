//! Label paths.
//!
//! The paper writes `a/b` for "b is a child element of a" and `a[b]` for
//! "b is an attribute of a", and names every relation after the full path
//! from the root: `R(image/colors/histogram)`, `R(image[key])`,
//! `R(image[rank])`. A [`Path`] is that sequence of steps; its `Display`
//! form is exactly the relation-naming convention, so a path *is* a
//! relation name.

use std::fmt;

use serde::{Deserialize, Serialize};

/// One step in a path.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Step {
    /// A child-element step (`/label`). Cdata nodes use label `PCDATA`.
    Child(String),
    /// An attribute step (`[name]`) — always terminal.
    Attr(String),
}

impl Step {
    /// The step's label text.
    pub fn label(&self) -> &str {
        match self {
            Step::Child(s) | Step::Attr(s) => s,
        }
    }
}

/// A root-to-node label path; doubles as the relation name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Path {
    steps: Vec<Step>,
}

impl Path {
    /// The empty path (the document collection itself).
    pub fn empty() -> Self {
        Path { steps: Vec::new() }
    }

    /// A single-element path for the document root label.
    pub fn root(label: impl Into<String>) -> Self {
        Path {
            steps: vec![Step::Child(label.into())],
        }
    }

    /// Extends with a child step.
    pub fn child(&self, label: impl Into<String>) -> Self {
        let mut steps = self.steps.clone();
        steps.push(Step::Child(label.into()));
        Path { steps }
    }

    /// Extends with an attribute step.
    pub fn attr(&self, name: impl Into<String>) -> Self {
        let mut steps = self.steps.clone();
        steps.push(Step::Attr(name.into()));
        Path { steps }
    }

    /// The steps.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the path has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The parent path (everything but the last step), if any.
    pub fn parent(&self) -> Option<Path> {
        if self.steps.is_empty() {
            None
        } else {
            Some(Path {
                steps: self.steps[..self.steps.len() - 1].to_vec(),
            })
        }
    }

    /// The last step, if any.
    pub fn last(&self) -> Option<&Step> {
        self.steps.last()
    }

    /// Whether the path ends in an attribute step.
    pub fn is_attr(&self) -> bool {
        matches!(self.steps.last(), Some(Step::Attr(_)))
    }

    /// Parses the textual form produced by `Display`:
    /// `image/colors/histogram`, `image[key]`, `image/date/PCDATA`.
    ///
    /// Returns `None` for malformed text (attribute step not last,
    /// unbalanced brackets, empty labels).
    pub fn parse(text: &str) -> Option<Path> {
        let text = text.trim().trim_start_matches('/');
        if text.is_empty() {
            return Some(Path::empty());
        }
        let mut path = Path::empty();
        for (i, seg) in text.split('/').enumerate() {
            let _ = i;
            if path.is_attr() {
                return None; // attribute steps are terminal
            }
            if let Some(open) = seg.find('[') {
                let label = &seg[..open];
                let rest = &seg[open + 1..];
                let close = rest.find(']')?;
                if close != rest.len() - 1 {
                    return None;
                }
                let attr = &rest[..close];
                if label.is_empty() || attr.is_empty() {
                    return None;
                }
                path = path.child(label).attr(attr);
            } else {
                if seg.is_empty() {
                    return None;
                }
                path = path.child(seg);
            }
        }
        Some(path)
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for step in &self.steps {
            match step {
                Step::Child(label) => {
                    if !first {
                        f.write_str("/")?;
                    }
                    f.write_str(label)?;
                }
                Step::Attr(name) => write!(f, "[{name}]")?,
            }
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        let p = Path::root("image").child("colors").child("histogram");
        assert_eq!(p.to_string(), "image/colors/histogram");
        let a = Path::root("image").attr("key");
        assert_eq!(a.to_string(), "image[key]");
        let r = Path::root("image").child("date").attr("rank");
        assert_eq!(r.to_string(), "image/date[rank]");
    }

    #[test]
    fn parse_round_trips_display() {
        for text in [
            "image",
            "image[key]",
            "image/colors/histogram",
            "image/date/PCDATA",
            "image/date[rank]",
        ] {
            let p = Path::parse(text).unwrap();
            assert_eq!(p.to_string(), text);
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(Path::parse("a[x]/b").is_none()); // attr not terminal
        assert!(Path::parse("a[[x]]").is_none());
        assert!(Path::parse("a[]").is_none());
        assert!(Path::parse("a//b").is_none());
        assert!(Path::parse("[x]").is_none());
    }

    #[test]
    fn parent_peels_one_step() {
        let p = Path::root("a").child("b").attr("k");
        assert_eq!(p.parent().unwrap().to_string(), "a/b");
        assert_eq!(Path::empty().parent(), None);
    }

    #[test]
    fn empty_path_parses_from_blank() {
        assert_eq!(Path::parse(""), Some(Path::empty()));
        assert_eq!(Path::parse("/"), Some(Path::empty()));
    }
}
