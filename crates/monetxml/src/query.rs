//! Path-expression evaluation over the store.
//!
//! "The main rationale for the path-centric storage of documents is to
//! evaluate the ubiquitous XML path expressions efficiently": because a
//! relation holds *all* nodes with the same ancestry, evaluating
//! `image/colors/histogram` is a single scan of one relation — no
//! per-level joins. The functions here expose that, plus upward
//! navigation through the parent accelerator.
//!
//! The module also contains the **edge-table baseline**: documents stored
//! as one generic edge/label heap, evaluated node-at-a-time. The paper
//! argues its path-centric clustering beats this ("a significantly higher
//! degree of semantic clustering than implied by plain data guides");
//! experiment E2 measures exactly that comparison.

use monet::{ColumnKind, Db, Oid};

use crate::doc::{Document, NodeId, NodeKind};
use crate::error::{Error, Result};
use crate::path::Path;
use crate::store::XmlStore;
use crate::transform::{PARENT_RELATION, SYS_RELATION};

/// All node oids at element path `path` — a single relation scan.
pub fn nodes_at(store: &mut XmlStore, path: &Path) -> Result<Vec<Oid>> {
    nodes_at_budgeted(store, path, &faults::Budget::unlimited())
}

/// [`nodes_at`] under a caller budget: the relation scan pays one work
/// unit per tuple, so even the physical level cancels cooperatively
/// with a typed [`Error::DeadlineExceeded`].
pub fn nodes_at_budgeted(
    store: &mut XmlStore,
    path: &Path,
    budget: &faults::Budget,
) -> Result<Vec<Oid>> {
    if path.is_attr() {
        return Err(Error::Store(format!(
            "nodes_at expects an element path, got {path}"
        )));
    }
    if let Some(m) = store.metrics() {
        m.path_scans.inc();
    }
    if path.len() == 1 {
        // Root paths live in `sys`.
        let label = path.steps()[0].label().to_owned();
        return match store.db().get(SYS_RELATION) {
            Ok(bat) => {
                let out = bat
                    .select_str_eq_budgeted(&label, budget)
                    .map_err(|cause| Error::DeadlineExceeded { nodes: 0, cause })?;
                if let Some(m) = store.metrics() {
                    m.scan_rows.add(out.len() as u64);
                }
                Ok(out)
            }
            Err(_) => Ok(Vec::new()),
        };
    }
    let rel = path.to_string();
    match store.db().get(&rel) {
        Ok(bat) => {
            let mut out = Vec::new();
            for (_, v) in bat.iter() {
                budget.consume(1).map_err(|cause| Error::DeadlineExceeded {
                    nodes: out.len(),
                    cause,
                })?;
                if let Some(oid) = v.as_oid() {
                    out.push(oid);
                }
            }
            if let Some(m) = store.metrics() {
                m.scan_rows.add(out.len() as u64);
            }
            Ok(out)
        }
        Err(_) => Ok(Vec::new()),
    }
}

/// `(parent, child)` pairs at element path `path` (len ≥ 2).
pub fn edges_at(store: &XmlStore, path: &Path) -> Result<Vec<(Oid, Oid)>> {
    let rel = path.to_string();
    match store.db().get(&rel) {
        Ok(bat) => Ok(bat
            .iter()
            .filter_map(|(h, v)| v.as_oid().map(|c| (h, c)))
            .collect()),
        Err(_) => Ok(Vec::new()),
    }
}

/// `(node, value)` pairs for attribute `name` on nodes at element path
/// `path`.
pub fn attr_values(store: &XmlStore, path: &Path, name: &str) -> Result<Vec<(Oid, String)>> {
    let rel = path.attr(name).to_string();
    match store.db().get(&rel) {
        Ok(bat) => Ok(bat
            .iter()
            .filter_map(|(h, v)| v.as_str().map(|s| (h, s.to_owned())))
            .collect()),
        Err(_) => Ok(Vec::new()),
    }
}

/// `(element, text)` pairs: the direct text content of every node at
/// element path `path` (concatenating multiple PCDATA children).
pub fn text_values(store: &mut XmlStore, path: &Path) -> Result<Vec<(Oid, String)>> {
    text_values_budgeted(store, path, &faults::Budget::unlimited())
}

/// [`text_values`] under a caller budget: the node scan is budgeted and
/// every text fetch pays one further work unit.
pub fn text_values_budgeted(
    store: &mut XmlStore,
    path: &Path,
    budget: &faults::Budget,
) -> Result<Vec<(Oid, String)>> {
    let Some(sum) = store.summary().resolve(path) else {
        return Ok(Vec::new());
    };
    let nodes = nodes_at_budgeted(store, path, budget)?;
    let mut out = Vec::with_capacity(nodes.len());
    for n in nodes {
        budget.consume(1).map_err(|cause| Error::DeadlineExceeded {
            nodes: out.len(),
            cause,
        })?;
        let text = store.direct_text(sum, n)?;
        if !text.is_empty() {
            out.push((n, text));
        }
    }
    Ok(out)
}

/// The attribute value of `name` on a specific node at `path`.
pub fn attr_of(store: &mut XmlStore, path: &Path, node: Oid, name: &str) -> Option<String> {
    let rel = path.attr(name).to_string();
    store
        .db_mut()
        .get_mut(&rel)
        .ok()?
        .first_tail_of(node)
        .and_then(|v| v.as_str().map(str::to_owned))
}

/// Child oids of `node` (at element path `path`) reached via child label
/// `label`, in storage order.
pub fn children_of(store: &mut XmlStore, path: &Path, node: Oid, label: &str) -> Vec<Oid> {
    let rel = path.child(label).to_string();
    match store.db_mut().get_mut(&rel) {
        Ok(bat) => bat
            .tails_of(node)
            .into_iter()
            .filter_map(|v| v.as_oid())
            .collect(),
        Err(_) => Vec::new(),
    }
}

/// Walks the parent accelerator up to the document root.
pub fn root_of(store: &mut XmlStore, node: Oid) -> Result<Oid> {
    let mut cur = node;
    for _ in 0..64 {
        let parent = store
            .db_mut()
            .get_mut(PARENT_RELATION)
            .ok()
            .and_then(|bat| bat.first_tail_of(cur))
            .and_then(|v| v.as_oid());
        match parent {
            Some(p) => cur = p,
            None => return Ok(cur),
        }
    }
    Err(Error::Store(format!(
        "parent chain from {node} exceeds depth 64 (cycle?)"
    )))
}

/// The recorded extent `(start, end)` of an element node, when the
/// document was loaded with extent recording. Extents nest exactly like
/// elements, so `contains(a, b)` ⇔ a is an ancestor of b — the basis of
/// structural joins.
pub fn extent_of(store: &mut XmlStore, path: &Path, node: Oid) -> Option<(i64, i64)> {
    let start_rel = path
        .attr(crate::transform::EXTENT_START_ATTR)
        .to_string();
    let end_rel = path.attr(crate::transform::EXTENT_END_ATTR).to_string();
    let start = store
        .db_mut()
        .get_mut(&start_rel)
        .ok()?
        .first_tail_of(node)?
        .as_int()?;
    let end = store
        .db_mut()
        .get_mut(&end_rel)
        .ok()?
        .first_tail_of(node)?
        .as_int()?;
    Some((start, end))
}

/// Whether extent `outer` strictly contains extent `inner`.
pub fn extent_contains(outer: (i64, i64), inner: (i64, i64)) -> bool {
    outer.0 < inner.0 && inner.1 < outer.1
}

// ---------------------------------------------------------------------
// Edge-table baseline ("plain data guide" storage).
// ---------------------------------------------------------------------

/// Generic edge relation of the baseline store: parent → child.
pub const EDGE_RELATION: &str = "#e_edge";
/// Generic label relation of the baseline store: node → tag label.
pub const LABEL_RELATION: &str = "#e_label";

/// Loads `doc` into the generic edge/label heap (baseline storage mode).
/// Returns the root oid.
pub fn insert_document_edges(db: &mut Db, doc: &Document) -> Result<Oid> {
    fn walk(db: &mut Db, doc: &Document, node: NodeId, parent: Option<Oid>) -> Result<Oid> {
        let oid = db.mint();
        let label = match doc.kind(node) {
            NodeKind::Element(t) => t.clone(),
            NodeKind::Cdata(_) => "PCDATA".to_owned(),
        };
        db.get_or_create(LABEL_RELATION, ColumnKind::Str)
            .append_str(oid, label)?;
        if let Some(p) = parent {
            db.get_or_create(EDGE_RELATION, ColumnKind::Oid)
                .append_oid(p, oid)?;
        }
        for child in doc.children(node) {
            walk(db, doc, *child, Some(oid))?;
        }
        Ok(oid)
    }
    walk(db, doc, doc.root(), None)
}

/// Evaluates a label path over the edge/label heap **node-at-a-time**:
/// start from all nodes with the first label, then for every frontier
/// node fetch its children and filter by the next label. This touches
/// every intermediate node individually — the cost profile the paper's
/// clustering avoids.
pub fn nodes_at_edges(db: &mut Db, labels: &[&str]) -> Result<Vec<Oid>> {
    let Some((first, rest)) = labels.split_first() else {
        return Ok(Vec::new());
    };
    // All nodes with the first label that are roots (no parent edge).
    let candidates = db
        .get(LABEL_RELATION)
        .map(|bat| bat.select_str_eq(first))
        .unwrap_or_default();
    let mut frontier: Vec<Oid> = Vec::new();
    for c in candidates {
        let has_parent = db
            .get(EDGE_RELATION)
            .map(|bat| !bat.select_oid_eq(c).is_empty())
            .unwrap_or(false);
        if !has_parent {
            frontier.push(c);
        }
    }
    for label in rest {
        let mut next = Vec::new();
        for node in frontier {
            let children: Vec<Oid> = db
                .get_mut(EDGE_RELATION)
                .map(|bat| {
                    bat.tails_of(node)
                        .into_iter()
                        .filter_map(|v| v.as_oid())
                        .collect()
                })
                .unwrap_or_default();
            for child in children {
                let matches = db
                    .get_mut(LABEL_RELATION)
                    .ok()
                    .and_then(|bat| bat.first_tail_of(child))
                    .and_then(|v| v.as_str().map(|s| s == *label))
                    .unwrap_or(false);
                if matches {
                    next.push(child);
                }
            }
        }
        frontier = next;
    }
    Ok(frontier)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{figure9, FIGURE9_XML};

    fn loaded() -> (XmlStore, Oid) {
        let mut store = XmlStore::new();
        let root = store.bulkload_str("s.xml", FIGURE9_XML).unwrap();
        (store, root)
    }

    #[test]
    fn nodes_at_root_path_uses_sys() {
        let (mut store, root) = loaded();
        assert_eq!(
            nodes_at(&mut store, &Path::root("image")).unwrap(),
            vec![root]
        );
        assert!(nodes_at(&mut store, &Path::root("nothing"))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn nodes_at_deep_path_is_single_scan() {
        let (mut store, _) = loaded();
        let hist = nodes_at(
            &mut store,
            &Path::root("image").child("colors").child("histogram"),
        )
        .unwrap();
        assert_eq!(hist.len(), 1);
    }

    #[test]
    fn attr_values_reads_attribute_relation() {
        let (store, root) = loaded();
        let vals = attr_values(&store, &Path::root("image"), "key").unwrap();
        assert_eq!(vals, vec![(root, "18934".to_owned())]);
    }

    #[test]
    fn text_values_concatenates_pcdata() {
        let (mut store, _) = loaded();
        let p = Path::root("image").child("colors").child("saturation");
        let vals = text_values(&mut store, &p).unwrap();
        assert_eq!(vals.len(), 1);
        assert_eq!(vals[0].1, "0.390");
    }

    #[test]
    fn root_of_walks_to_document_root() {
        let (mut store, root) = loaded();
        let p = Path::root("image").child("colors").child("histogram");
        let hist = nodes_at(&mut store, &p).unwrap()[0];
        assert_eq!(root_of(&mut store, hist).unwrap(), root);
        assert_eq!(root_of(&mut store, root).unwrap(), root);
    }

    #[test]
    fn attr_of_reads_single_node() {
        let (mut store, root) = loaded();
        assert_eq!(
            attr_of(&mut store, &Path::root("image"), root, "source"),
            Some("http://.../seles.jpg".to_owned())
        );
        assert_eq!(attr_of(&mut store, &Path::root("image"), root, "nope"), None);
    }

    #[test]
    fn children_of_follows_labelled_edges() {
        let (mut store, root) = loaded();
        let colors = children_of(&mut store, &Path::root("image"), root, "colors");
        assert_eq!(colors.len(), 1);
        let kids = children_of(
            &mut store,
            &Path::root("image").child("colors"),
            colors[0],
            "histogram",
        );
        assert_eq!(kids.len(), 1);
    }

    #[test]
    fn edge_baseline_agrees_with_path_store_on_node_counts() {
        let mut db = Db::new();
        insert_document_edges(&mut db, &figure9()).unwrap();
        insert_document_edges(&mut db, &figure9()).unwrap();
        let via_edges = nodes_at_edges(&mut db, &["image", "colors", "histogram"]).unwrap();

        let mut store = XmlStore::new();
        store.bulkload_str("a.xml", FIGURE9_XML).unwrap();
        store.bulkload_str("b.xml", FIGURE9_XML).unwrap();
        let via_paths = nodes_at(
            &mut store,
            &Path::root("image").child("colors").child("histogram"),
        )
        .unwrap();
        assert_eq!(via_edges.len(), via_paths.len());
        assert_eq!(via_edges.len(), 2);
    }

    #[test]
    fn extents_mirror_ancestry() {
        let mut store = XmlStore::new();
        let root = store
            .bulkload_str_with_extents("s.xml", FIGURE9_XML)
            .unwrap();
        let image_p = Path::root("image");
        let colors_p = image_p.child("colors");
        let hist_p = colors_p.child("histogram");
        let date_p = image_p.child("date");

        let image_ext = extent_of(&mut store, &image_p, root).unwrap();
        let colors = nodes_at(&mut store, &colors_p).unwrap()[0];
        let colors_ext = extent_of(&mut store, &colors_p, colors).unwrap();
        let hist = nodes_at(&mut store, &hist_p).unwrap()[0];
        let hist_ext = extent_of(&mut store, &hist_p, hist).unwrap();
        let date = nodes_at(&mut store, &date_p).unwrap()[0];
        let date_ext = extent_of(&mut store, &date_p, date).unwrap();

        // Ancestors strictly contain descendants…
        assert!(extent_contains(image_ext, colors_ext));
        assert!(extent_contains(image_ext, hist_ext));
        assert!(extent_contains(colors_ext, hist_ext));
        // …and siblings do not contain each other.
        assert!(!extent_contains(date_ext, colors_ext));
        assert!(!extent_contains(colors_ext, date_ext));
        // Extent-loaded documents still reconstruct isomorphically.
        assert_eq!(store.reconstruct(root).unwrap(), figure9());
    }

    #[test]
    fn plain_loads_record_no_extents() {
        let mut store = XmlStore::new();
        let root = store.bulkload_str("s.xml", FIGURE9_XML).unwrap();
        assert_eq!(extent_of(&mut store, &Path::root("image"), root), None);
    }

    #[test]
    fn budgeted_scans_and_reconstruction_are_cancellable() {
        let (mut store, root) = loaded();
        let p = Path::root("image").child("colors").child("saturation");
        let full = text_values(&mut store, &p).unwrap();
        assert_eq!(
            text_values_budgeted(&mut store, &p, &faults::Budget::unlimited()).unwrap(),
            full
        );
        match text_values_budgeted(&mut store, &p, &faults::Budget::with_work(0)) {
            Err(Error::DeadlineExceeded { cause, .. }) => {
                assert_eq!(cause, faults::BudgetExceeded::Work);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        // Reconstruction under a tiny budget fails typed; a generous
        // one rebuilds the document unchanged.
        match store.reconstruct_budgeted(root, &faults::Budget::with_work(2)) {
            Err(Error::DeadlineExceeded { nodes, .. }) => assert!(nodes >= 1),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert_eq!(
            store
                .reconstruct_budgeted(root, &faults::Budget::with_work(10_000))
                .unwrap(),
            figure9()
        );
    }

    #[test]
    fn nodes_at_rejects_attribute_paths() {
        let (mut store, _) = loaded();
        assert!(nodes_at(&mut store, &Path::root("image").attr("key")).is_err());
    }
}
