//! The document model.
//!
//! The paper defines an XML document as a rooted tree
//! `d = (V, E, r, labelE, labelA, rank)`: element nodes with string
//! labels, attribute name/value pairs per node, character data modelled as
//! a special attribute of dedicated *cdata* nodes, and a `rank` function
//! ordering siblings. [`Document`] is that structure in arena form: nodes
//! live in a `Vec` and refer to each other by [`NodeId`], so trees are
//! cheap to build and compare.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Index of a node within its [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a node is: an element with a tag label, or a cdata node carrying
/// text (the paper's "special attribute of cdata nodes").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// An element node labelled with its tag name.
    Element(String),
    /// A character-data node; the string is the text content.
    Cdata(String),
}

impl NodeKind {
    /// The label used in paths: the tag for elements, `PCDATA` for cdata
    /// nodes (matching Figure 12's schema tree).
    pub fn path_label(&self) -> &str {
        match self {
            NodeKind::Element(tag) => tag,
            NodeKind::Cdata(_) => "PCDATA",
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct Node {
    pub(crate) kind: NodeKind,
    /// Attribute name/value pairs, in document order. Only meaningful for
    /// element nodes.
    pub(crate) attrs: Vec<(String, String)>,
    pub(crate) children: Vec<NodeId>,
    pub(crate) parent: Option<NodeId>,
}

/// A rooted, ordered, labelled XML tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Document {
    nodes: Vec<Node>,
    root: NodeId,
}

impl Document {
    /// Creates a document with a single root element.
    pub fn new(root_tag: impl Into<String>) -> Self {
        Document {
            nodes: vec![Node {
                kind: NodeKind::Element(root_tag.into()),
                attrs: Vec::new(),
                children: Vec::new(),
                parent: None,
            }],
            root: NodeId(0),
        }
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Total number of nodes (elements + cdata).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The kind of `id`.
    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.node(id).kind
    }

    /// The element tag of `id`, if it is an element.
    pub fn tag(&self, id: NodeId) -> Option<&str> {
        match &self.node(id).kind {
            NodeKind::Element(t) => Some(t),
            NodeKind::Cdata(_) => None,
        }
    }

    /// The text of `id`, if it is a cdata node.
    pub fn text(&self, id: NodeId) -> Option<&str> {
        match &self.node(id).kind {
            NodeKind::Cdata(s) => Some(s),
            NodeKind::Element(_) => None,
        }
    }

    /// The parent of `id` (`None` for the root).
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent
    }

    /// Children of `id`, in rank order.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.node(id).children
    }

    /// Attributes of `id`, in document order.
    pub fn attrs(&self, id: NodeId) -> &[(String, String)] {
        &self.node(id).attrs
    }

    /// The value of attribute `name` on `id`, if present.
    pub fn attr(&self, id: NodeId, name: &str) -> Option<&str> {
        self.node(id)
            .attrs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Appends a fresh element child under `parent` and returns its id.
    pub fn add_element(&mut self, parent: NodeId, tag: impl Into<String>) -> NodeId {
        self.push_node(
            parent,
            Node {
                kind: NodeKind::Element(tag.into()),
                attrs: Vec::new(),
                children: Vec::new(),
                parent: Some(parent),
            },
        )
    }

    /// Appends a cdata child under `parent` and returns its id.
    ///
    /// Adjacent cdata siblings are merged (DOM `normalize()` semantics):
    /// XML serialisation cannot represent two adjacent text nodes, so the
    /// model never holds them. If the last child of `parent` is already a
    /// cdata node, `text` is appended to it and that node's id returned.
    pub fn add_cdata(&mut self, parent: NodeId, text: impl Into<String>) -> NodeId {
        if let Some(&last) = self.node(parent).children.last() {
            if let NodeKind::Cdata(existing) = &mut self.nodes[last.index()].kind {
                existing.push_str(&text.into());
                return last;
            }
        }
        self.push_node(
            parent,
            Node {
                kind: NodeKind::Cdata(text.into()),
                attrs: Vec::new(),
                children: Vec::new(),
                parent: Some(parent),
            },
        )
    }

    fn push_node(&mut self, parent: NodeId, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Sets attribute `name` to `value` on `id` (replacing any existing
    /// value, preserving attribute order).
    pub fn set_attr(&mut self, id: NodeId, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        let value = value.into();
        let node = &mut self.nodes[id.index()];
        if let Some(pair) = node.attrs.iter_mut().find(|(n, _)| *n == name) {
            pair.1 = value;
        } else {
            node.attrs.push((name, value));
        }
    }

    /// Depth-first pre-order traversal of all nodes.
    pub fn iter_preorder(&self) -> PreOrder<'_> {
        PreOrder {
            doc: self,
            stack: vec![self.root],
        }
    }

    /// The 1-based rank of `id` among its siblings (the paper's `rank`
    /// function). The root has rank 1.
    pub fn rank(&self, id: NodeId) -> usize {
        match self.parent(id) {
            None => 1,
            Some(p) => {
                self.children(p)
                    .iter()
                    .position(|c| *c == id)
                    .expect("child listed under its parent")
                    + 1
            }
        }
    }

    /// The height of the tree (root-only tree has height 1). Governs the
    /// bulkloader's memory bound.
    pub fn height(&self) -> usize {
        fn depth(doc: &Document, id: NodeId) -> usize {
            1 + doc
                .children(id)
                .iter()
                .map(|c| depth(doc, *c))
                .max()
                .unwrap_or(0)
        }
        depth(self, self.root)
    }

    /// Concatenated text of all cdata descendants of `id`, in document
    /// order — the "body of text" view a full-text indexer sees.
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        let mut stack = vec![id];
        let mut ordered = Vec::new();
        while let Some(n) = stack.pop() {
            ordered.push(n);
            for c in self.children(n).iter().rev() {
                stack.push(*c);
            }
        }
        for n in ordered {
            if let Some(t) = self.text(n) {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(t);
            }
        }
        out
    }

    /// First child element of `id` with tag `tag`.
    pub fn child_by_tag(&self, id: NodeId, tag: &str) -> Option<NodeId> {
        self.children(id)
            .iter()
            .copied()
            .find(|c| self.tag(*c) == Some(tag))
    }

    /// All child elements of `id` with tag `tag`.
    pub fn children_by_tag<'a>(
        &'a self,
        id: NodeId,
        tag: &'a str,
    ) -> impl Iterator<Item = NodeId> + 'a {
        self.children(id)
            .iter()
            .copied()
            .filter(move |c| self.tag(*c) == Some(tag))
    }
}

/// Pre-order traversal iterator; see [`Document::iter_preorder`].
pub struct PreOrder<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
}

impl Iterator for PreOrder<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        for c in self.doc.children(id).iter().rev() {
            self.stack.push(*c);
        }
        Some(id)
    }
}

/// Structural equality: same labels, attributes, text and sibling order —
/// "isomorphic" in the paper's sense (node identities are irrelevant).
/// Attribute *order* is insignificant, per the XML specification.
impl PartialEq for Document {
    fn eq(&self, other: &Self) -> bool {
        fn sorted_attrs(doc: &Document, n: NodeId) -> Vec<(String, String)> {
            let mut v = doc.attrs(n).to_vec();
            v.sort();
            v
        }
        fn eq_at(a: &Document, an: NodeId, b: &Document, bn: NodeId) -> bool {
            if a.kind(an) != b.kind(bn) || sorted_attrs(a, an) != sorted_attrs(b, bn) {
                return false;
            }
            let (ac, bc) = (a.children(an), b.children(bn));
            ac.len() == bc.len()
                && ac
                    .iter()
                    .zip(bc)
                    .all(|(x, y)| eq_at(a, *x, b, *y))
        }
        eq_at(self, self.root, other, other.root)
    }
}

impl Eq for Document {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::figure9;

    #[test]
    fn figure9_shape_matches_figure10_syntax_tree() {
        let d = figure9();
        let root = d.root();
        assert_eq!(d.tag(root), Some("image"));
        assert_eq!(d.attr(root, "key"), Some("18934"));
        assert_eq!(d.attr(root, "source"), Some("http://.../seles.jpg"));
        let kids: Vec<_> = d.children(root).iter().map(|c| d.kind(*c).path_label().to_owned()).collect();
        assert_eq!(kids, vec!["date", "colors"]);
        let colors = d.child_by_tag(root, "colors").unwrap();
        let ckids: Vec<_> = d.children(colors).iter().map(|c| d.tag(*c).unwrap().to_owned()).collect();
        assert_eq!(ckids, vec!["histogram", "saturation", "version"]);
        // 1 image + 1 date + 1 cdata + 1 colors + 3 elements + 3 cdata = 10
        assert_eq!(d.node_count(), 10);
        assert_eq!(d.height(), 4); // image/colors/histogram/PCDATA
    }

    #[test]
    fn rank_orders_siblings() {
        let d = figure9();
        let root = d.root();
        let date = d.child_by_tag(root, "date").unwrap();
        let colors = d.child_by_tag(root, "colors").unwrap();
        assert_eq!(d.rank(date), 1);
        assert_eq!(d.rank(colors), 2);
        assert_eq!(d.rank(root), 1);
    }

    #[test]
    fn set_attr_replaces_in_place() {
        let mut d = Document::new("a");
        d.set_attr(d.root(), "k", "1");
        d.set_attr(d.root(), "j", "2");
        d.set_attr(d.root(), "k", "3");
        assert_eq!(
            d.attrs(d.root()),
            &[("k".to_owned(), "3".to_owned()), ("j".to_owned(), "2".to_owned())]
        );
    }

    #[test]
    fn structural_equality_ignores_build_order_of_arena() {
        // Same tree built in different arena orders compares equal.
        let a = figure9();
        let mut b = Document::new("image");
        let root = b.root();
        b.set_attr(root, "key", "18934");
        b.set_attr(root, "source", "http://.../seles.jpg");
        // Build colors subtree content later than in figure9().
        let date = b.add_element(root, "date");
        let colors = b.add_element(root, "colors");
        b.add_cdata(date, "999010530");
        let histogram = b.add_element(colors, "histogram");
        let saturation = b.add_element(colors, "saturation");
        let version = b.add_element(colors, "version");
        b.add_cdata(histogram, "0.399 0.277 0.344");
        b.add_cdata(saturation, "0.390");
        b.add_cdata(version, "0.8");
        assert_eq!(a, b);
    }

    #[test]
    fn structural_inequality_on_attr_change() {
        let a = figure9();
        let mut b = figure9();
        b.set_attr(b.root(), "key", "other");
        assert_ne!(a, b);
    }

    #[test]
    fn structural_inequality_on_extra_child() {
        let a = figure9();
        let mut b = figure9();
        b.add_element(b.root(), "extra");
        assert_ne!(a, b);
    }

    #[test]
    fn preorder_visits_every_node_once() {
        let d = figure9();
        let visited: Vec<_> = d.iter_preorder().collect();
        assert_eq!(visited.len(), d.node_count());
        let mut uniq = visited.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), visited.len());
        assert_eq!(visited[0], d.root());
    }

    #[test]
    fn text_content_concatenates_in_document_order() {
        let d = figure9();
        assert_eq!(
            d.text_content(d.root()),
            "999010530 0.399 0.277 0.344 0.390 0.8"
        );
    }

    #[test]
    fn height_of_single_node_is_one() {
        assert_eq!(Document::new("x").height(), 1);
    }
}
