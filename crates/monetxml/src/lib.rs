//! Monet XML — the paper's physical level.
//!
//! XML documents (produced by the conceptual level's web-object retriever
//! and by the logical level's Feature Detector Engine) are stored
//! *path-centrically*: one binary relation per root-to-node label path
//! ("the Monet transform", Definition 1 in the paper). The mapping is
//! **DTD-less** (no schema required up front) and **document-dependent**
//! (the database schema grows with new paths), which is exactly what the
//! dynamic nature of feature grammars needs.
//!
//! The crate provides:
//!
//! * [`doc`] — the rooted, ranked, labelled document tree of the paper's
//!   formal definition,
//! * [`parse`] — a from-scratch SAX-style XML parser (plus a DOM builder),
//! * [`ser`] — the serializer used by the inverse mapping,
//! * [`path`] — label paths `a/b`, attribute steps `a[k]` and the PCDATA
//!   step,
//! * [`summary`] — the *path summary* organised as the schema tree of
//!   Figure 12, mapping paths to relations,
//! * [`transform`] — the Monet transform `Mt(d)` and its inverse,
//! * [`store`] — [`XmlStore`]: catalog + summary + document registry with
//!   the O(height) SAX bulkloader of the paper, a naive full-path-hashing
//!   loader (the paper's strawman, kept as a benchmark baseline), and
//!   incremental insert/delete,
//! * [`query`] — path-expression scans over the store.
//!
//! # Quickstart
//!
//! ```
//! use monetxml::{parse_document, XmlStore};
//!
//! let doc = parse_document(r#"<image key="18934"><date>999010530</date></image>"#).unwrap();
//! let mut store = XmlStore::new();
//! let root = store.insert_document("seles.xml", &doc).unwrap();
//! // Relations are named by path, as in the paper:
//! assert!(store.db().contains("image/date"));
//! // ...and the stored document reconstructs isomorphically:
//! let back = store.reconstruct(root).unwrap();
//! assert_eq!(back, doc);
//! ```

#![warn(missing_docs)]

pub mod doc;
pub mod error;
#[cfg(test)]
pub(crate) mod testutil;
pub mod parse;
pub mod path;
pub mod query;
pub mod ser;
pub mod store;
pub mod summary;
pub mod transform;

pub use doc::{Document, NodeId, NodeKind};
pub use error::{Error, Result};
pub use parse::{parse_document, parse_sax, SaxEvent, SaxHandler};
pub use path::{Path, Step};
pub use ser::to_xml;
pub use store::XmlStore;
pub use summary::PathSummary;
