//! The path summary, organised as the paper's *schema tree* (Figure 12).
//!
//! "The set of all paths in a document is called its Path Summary, which
//! plays a central role in our query engine." The bulkloader keeps a
//! cursor into this tree so that resolving the relation for the next
//! start tag is a single child lookup on the current context node —
//! instead of hashing the whole path, the optimisation the paper
//! describes ("we can do away with much of the hashing if we keep track
//! of the context").

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::path::{Path, Step};

/// Index of a node in the schema tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SumId(u32);

impl SumId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct SumNode {
    label: String,
    parent: Option<SumId>,
    children: HashMap<String, SumId>,
    /// attribute name → relation name (`path[name]`).
    attrs: HashMap<String, String>,
    /// Cached full path of this node.
    path: Path,
    /// Cached relation name (= `path.to_string()`); empty for the virtual
    /// root ("All Documents" in Figure 12).
    relation: String,
    /// Creation ordinal, 1-based — the `R1..R12` numbering of Figure 12.
    ordinal: u32,
}

/// The schema tree: every distinct element path and attribute path that
/// has ever entered the database, each mapped to its relation name.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PathSummary {
    nodes: Vec<SumNode>,
    /// Next `R<n>` ordinal to assign (element and attribute paths share
    /// the numbering, as in Figure 12).
    next_ordinal: u32,
}

impl PathSummary {
    /// A summary containing only the virtual "All Documents" root.
    pub fn new() -> Self {
        PathSummary {
            nodes: vec![SumNode {
                label: String::new(),
                parent: None,
                children: HashMap::new(),
                attrs: HashMap::new(),
                path: Path::empty(),
                relation: String::new(),
                ordinal: 0,
            }],
            next_ordinal: 1,
        }
    }

    /// The virtual root.
    pub fn root(&self) -> SumId {
        SumId(0)
    }

    /// The child of `node` labelled `label`, if it exists.
    pub fn child(&self, node: SumId, label: &str) -> Option<SumId> {
        self.nodes[node.index()].children.get(label).copied()
    }

    /// The child of `node` labelled `label`, created if missing.
    /// Returns the id and whether it was freshly created (a fresh node
    /// means a fresh relation in the database).
    pub fn ensure_child(&mut self, node: SumId, label: &str) -> (SumId, bool) {
        if let Some(existing) = self.child(node, label) {
            return (existing, false);
        }
        let path = self.nodes[node.index()].path.child(label);
        let relation = path.to_string();
        let ordinal = self.next_ordinal;
        self.next_ordinal += 1;
        let id = SumId(self.nodes.len() as u32);
        self.nodes.push(SumNode {
            label: label.to_owned(),
            parent: Some(node),
            children: HashMap::new(),
            attrs: HashMap::new(),
            path,
            relation,
            ordinal,
        });
        self.nodes[node.index()]
            .children
            .insert(label.to_owned(), id);
        (id, true)
    }

    /// The relation name for attribute `name` on `node`, created if
    /// missing. Returns the name and whether it was freshly created.
    pub fn ensure_attr(&mut self, node: SumId, name: &str) -> (String, bool) {
        if let Some(existing) = self.nodes[node.index()].attrs.get(name) {
            return (existing.clone(), false);
        }
        let relation = self.nodes[node.index()].path.attr(name).to_string();
        self.next_ordinal += 1;
        self.nodes[node.index()]
            .attrs
            .insert(name.to_owned(), relation.clone());
        (relation, true)
    }

    /// The relation name for attribute `name` on `node`, if registered.
    pub fn attr_relation(&self, node: SumId, name: &str) -> Option<&str> {
        self.nodes[node.index()].attrs.get(name).map(String::as_str)
    }

    /// Attribute names registered on `node`, sorted.
    pub fn attr_names(&self, node: SumId) -> Vec<&str> {
        let mut names: Vec<&str> = self.nodes[node.index()].attrs.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// The element label of `node`.
    pub fn label(&self, node: SumId) -> &str {
        &self.nodes[node.index()].label
    }

    /// The full path of `node`.
    pub fn path(&self, node: SumId) -> &Path {
        &self.nodes[node.index()].path
    }

    /// The relation name of `node` (its path rendered as text).
    pub fn relation(&self, node: SumId) -> &str {
        &self.nodes[node.index()].relation
    }

    /// The parent of `node`.
    pub fn parent(&self, node: SumId) -> Option<SumId> {
        self.nodes[node.index()].parent
    }

    /// Child ids of `node`, sorted by label for determinism.
    pub fn children(&self, node: SumId) -> Vec<SumId> {
        let mut kids: Vec<(&String, SumId)> = self.nodes[node.index()]
            .children
            .iter()
            .map(|(l, id)| (l, *id))
            .collect();
        kids.sort_by(|a, b| a.0.cmp(b.0));
        kids.into_iter().map(|(_, id)| id).collect()
    }

    /// Resolves a [`Path`] to a schema-tree node (element paths only; for
    /// attribute paths resolve the parent and use [`Self::attr_relation`]).
    pub fn resolve(&self, path: &Path) -> Option<SumId> {
        let mut cur = self.root();
        for step in path.steps() {
            match step {
                Step::Child(label) => cur = self.child(cur, label)?,
                Step::Attr(_) => return None,
            }
        }
        Some(cur)
    }

    /// All element paths in the summary, in creation (ordinal) order.
    pub fn element_paths(&self) -> Vec<Path> {
        let mut with_ord: Vec<(&SumNode, u32)> = self
            .nodes
            .iter()
            .skip(1) // virtual root
            .map(|n| (n, n.ordinal))
            .collect();
        with_ord.sort_by_key(|(_, o)| *o);
        with_ord.into_iter().map(|(n, _)| n.path.clone()).collect()
    }

    /// All relation names — element and attribute paths — sorted.
    pub fn all_relations(&self) -> Vec<String> {
        let mut out = Vec::new();
        for node in self.nodes.iter().skip(1) {
            out.push(node.relation.clone());
        }
        for node in &self.nodes {
            out.extend(node.attrs.values().cloned());
        }
        out.sort();
        out
    }

    /// Number of distinct paths (element + attribute) — the "schema size"
    /// a document-dependent mapping grows.
    pub fn path_count(&self) -> usize {
        self.nodes.len() - 1 + self.nodes.iter().map(|n| n.attrs.len()).sum::<usize>()
    }

    /// The `R<n>` ordinal of `node` (1-based creation order).
    pub fn ordinal(&self, node: SumId) -> u32 {
        self.nodes[node.index()].ordinal
    }
}

impl Default for PathSummary {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_child_is_idempotent() {
        let mut s = PathSummary::new();
        let (image, fresh1) = s.ensure_child(s.root(), "image");
        let (again, fresh2) = s.ensure_child(s.root(), "image");
        assert_eq!(image, again);
        assert!(fresh1);
        assert!(!fresh2);
        assert_eq!(s.relation(image), "image");
    }

    #[test]
    fn attr_relations_use_bracket_notation() {
        let mut s = PathSummary::new();
        let (image, _) = s.ensure_child(s.root(), "image");
        let (rel, fresh) = s.ensure_attr(image, "key");
        assert_eq!(rel, "image[key]");
        assert!(fresh);
        assert_eq!(s.attr_relation(image, "key"), Some("image[key]"));
    }

    #[test]
    fn resolve_walks_element_paths_only() {
        let mut s = PathSummary::new();
        let (image, _) = s.ensure_child(s.root(), "image");
        let (colors, _) = s.ensure_child(image, "colors");
        let p = Path::root("image").child("colors");
        assert_eq!(s.resolve(&p), Some(colors));
        assert_eq!(s.resolve(&Path::root("image").attr("key")), None);
        assert_eq!(s.resolve(&Path::root("nothing")), None);
    }

    #[test]
    fn path_count_counts_elements_and_attrs() {
        let mut s = PathSummary::new();
        let (image, _) = s.ensure_child(s.root(), "image");
        s.ensure_attr(image, "key");
        s.ensure_child(image, "date");
        assert_eq!(s.path_count(), 3);
    }

    #[test]
    fn ordinals_follow_creation_order() {
        let mut s = PathSummary::new();
        let (a, _) = s.ensure_child(s.root(), "a");
        let (b, _) = s.ensure_child(a, "b");
        assert_eq!(s.ordinal(a), 1);
        assert_eq!(s.ordinal(b), 2);
    }
}
