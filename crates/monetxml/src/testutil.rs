//! Shared fixtures for unit tests: the paper's example document.

use crate::doc::Document;

/// Builds the paper's Figure 9 example document by hand.
pub(crate) fn figure9() -> Document {
    let mut d = Document::new("image");
    let root = d.root();
    d.set_attr(root, "key", "18934");
    d.set_attr(root, "source", "http://.../seles.jpg");
    let date = d.add_element(root, "date");
    d.add_cdata(date, "999010530");
    let colors = d.add_element(root, "colors");
    let histogram = d.add_element(colors, "histogram");
    d.add_cdata(histogram, "0.399 0.277 0.344");
    let saturation = d.add_element(colors, "saturation");
    d.add_cdata(saturation, "0.390");
    let version = d.add_element(colors, "version");
    d.add_cdata(version, "0.8");
    d
}

/// The Figure 9 document as XML text (whitespace-normalised).
pub(crate) const FIGURE9_XML: &str = concat!(
    r#"<image key="18934" source="http://.../seles.jpg">"#,
    "<date>999010530</date>",
    "<colors>",
    "<histogram>0.399 0.277 0.344</histogram>",
    "<saturation>0.390</saturation>",
    "<version>0.8</version>",
    "</colors>",
    "</image>"
);
