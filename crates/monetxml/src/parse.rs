//! A from-scratch XML parser.
//!
//! The paper contrasts two access styles: the low-level event-based SAX
//! interface ("minimal resources") and the high-level DOM interface
//! ("memory linear in document size"). Both exist here:
//!
//! * [`parse_sax`] streams [`SaxEvent`]s to a [`SaxHandler`] — the
//!   bulkloader consumes this, keeping only a stack of open elements,
//! * [`parse_document`] materialises a [`Document`] (the DOM view) on top
//!   of the same tokenizer.
//!
//! Supported: elements, attributes (quoted with `"` or `'`),
//! self-closing tags, character data, `<![CDATA[...]]>` sections,
//! comments, processing instructions and the XML declaration (both
//! skipped), `DOCTYPE` (skipped, no internal-subset parsing), and the five
//! predefined entities plus decimal/hex character references.
//! Whitespace-only text between elements is dropped (the paper's documents
//! are data-centric); text with content keeps its internal spacing but is
//! trimmed at the edges.

use crate::doc::Document;
use crate::error::{Error, Result};

/// Events produced by the streaming parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SaxEvent<'a> {
    /// `<tag attr="v" …>` — attributes are (name, decoded value) pairs.
    StartElement {
        /// Tag name.
        tag: &'a str,
        /// Decoded attribute pairs in document order.
        attrs: Vec<(&'a str, String)>,
    },
    /// `</tag>` (also synthesised for self-closing tags).
    EndElement {
        /// Tag name.
        tag: &'a str,
    },
    /// Decoded character data (never whitespace-only).
    Characters(String),
}

/// Receiver of SAX events. The default method bodies ignore events, so
/// handlers only override what they need — mirroring "user supplied
/// functions are called on encountering each type of token".
pub trait SaxHandler {
    /// Called for each start tag (and before the matching `end_element`
    /// of a self-closing tag).
    fn start_element(&mut self, _tag: &str, _attrs: &[(&str, String)]) -> Result<()> {
        Ok(())
    }
    /// Called for each end tag.
    fn end_element(&mut self, _tag: &str) -> Result<()> {
        Ok(())
    }
    /// Called for each non-whitespace text run.
    fn characters(&mut self, _text: &str) -> Result<()> {
        Ok(())
    }
}

/// Streams `input` through `handler`. Checks well-formedness (matching
/// tags, single root, no text outside the root).
pub fn parse_sax(input: &str, handler: &mut dyn SaxHandler) -> Result<()> {
    let mut p = Parser::new(input);
    p.run(handler)
}

/// Parses `input` into a [`Document`].
pub fn parse_document(input: &str) -> Result<Document> {
    struct DomBuilder {
        doc: Option<Document>,
        stack: Vec<crate::doc::NodeId>,
    }
    impl SaxHandler for DomBuilder {
        fn start_element(&mut self, tag: &str, attrs: &[(&str, String)]) -> Result<()> {
            match (&mut self.doc, self.stack.last().copied()) {
                (None, _) => {
                    let mut doc = Document::new(tag);
                    let root = doc.root();
                    for (n, v) in attrs {
                        doc.set_attr(root, *n, v.clone());
                    }
                    self.stack.push(root);
                    self.doc = Some(doc);
                }
                (Some(doc), Some(parent)) => {
                    let id = doc.add_element(parent, tag);
                    for (n, v) in attrs {
                        doc.set_attr(id, *n, v.clone());
                    }
                    self.stack.push(id);
                }
                (Some(_), None) => {
                    return Err(Error::Parse {
                        offset: 0,
                        message: "multiple root elements".into(),
                    })
                }
            }
            Ok(())
        }
        fn end_element(&mut self, _tag: &str) -> Result<()> {
            self.stack.pop();
            Ok(())
        }
        fn characters(&mut self, text: &str) -> Result<()> {
            let parent = *self.stack.last().ok_or_else(|| Error::Parse {
                offset: 0,
                message: "text outside root element".into(),
            })?;
            self.doc
                .as_mut()
                .expect("doc exists when stack is non-empty")
                .add_cdata(parent, text);
            Ok(())
        }
    }

    let mut b = DomBuilder {
        doc: None,
        stack: Vec::new(),
    };
    parse_sax(input, &mut b)?;
    b.doc.ok_or_else(|| Error::Parse {
        offset: input.len(),
        message: "no root element".into(),
    })
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> Error {
        Error::Parse {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn skip(&mut self, n: usize) {
        self.pos += n;
    }

    /// Advances past `needle`, returning the text before it.
    fn take_until(&mut self, needle: &str) -> Result<&'a str> {
        match self.input[self.pos..].find(needle) {
            Some(rel) => {
                let s = &self.input[self.pos..self.pos + rel];
                self.pos += rel + needle.len();
                Ok(s)
            }
            None => Err(self.err(format!("unterminated construct, expected `{needle}`"))),
        }
    }

    fn run(&mut self, handler: &mut dyn SaxHandler) -> Result<()> {
        let mut open: Vec<&'a str> = Vec::new();
        let mut seen_root = false;

        while self.pos < self.bytes.len() {
            if self.peek() == Some(b'<') {
                if self.starts_with("<!--") {
                    self.skip(4);
                    self.take_until("-->")?;
                } else if self.starts_with("<![CDATA[") {
                    self.skip(9);
                    let text = self.take_until("]]>")?;
                    if open.is_empty() {
                        return Err(self.err("CDATA outside root element"));
                    }
                    if !text.is_empty() {
                        handler.characters(text)?;
                    }
                } else if self.starts_with("<!DOCTYPE") || self.starts_with("<!doctype") {
                    self.skip(9);
                    // Skip to the closing '>' of the declaration; internal
                    // subsets in brackets are consumed greedily.
                    let mut depth = 1usize;
                    while depth > 0 {
                        match self.peek() {
                            Some(b'<') => {
                                depth += 1;
                                self.skip(1);
                            }
                            Some(b'>') => {
                                depth -= 1;
                                self.skip(1);
                            }
                            Some(_) => self.skip(1),
                            None => return Err(self.err("unterminated DOCTYPE")),
                        }
                    }
                } else if self.starts_with("<?") {
                    self.skip(2);
                    self.take_until("?>")?;
                } else if self.starts_with("</") {
                    self.skip(2);
                    let inner = self.take_until(">")?;
                    let tag = inner.trim();
                    match open.pop() {
                        Some(expected) if expected == tag => handler.end_element(tag)?,
                        Some(expected) => {
                            return Err(
                                self.err(format!("mismatched end tag: </{tag}>, expected </{expected}>"))
                            )
                        }
                        None => return Err(self.err(format!("unmatched end tag </{tag}>"))),
                    }
                } else {
                    // Start tag.
                    self.skip(1);
                    let (tag, attrs, self_closing) = self.parse_start_tag()?;
                    if open.is_empty() {
                        if seen_root {
                            return Err(self.err("multiple root elements"));
                        }
                        seen_root = true;
                    }
                    handler.start_element(tag, &attrs)?;
                    if self_closing {
                        handler.end_element(tag)?;
                    } else {
                        open.push(tag);
                    }
                }
            } else {
                // Character data run up to the next '<' (or EOF).
                let rel = self.input[self.pos..]
                    .find('<')
                    .unwrap_or(self.input.len() - self.pos);
                let raw = &self.input[self.pos..self.pos + rel];
                self.pos += rel;
                let decoded = decode_entities(raw, self.pos)?;
                let trimmed = decoded.trim();
                if !trimmed.is_empty() {
                    if open.is_empty() {
                        return Err(self.err("text outside root element"));
                    }
                    handler.characters(trimmed)?;
                }
            }
        }

        if let Some(tag) = open.last() {
            return Err(self.err(format!("unclosed element <{tag}>")));
        }
        if !seen_root {
            return Err(self.err("no root element"));
        }
        Ok(())
    }

    /// Parses after the '<' of a start tag. Returns (tag, attrs, self_closing).
    #[allow(clippy::type_complexity)]
    fn parse_start_tag(&mut self) -> Result<(&'a str, Vec<(&'a str, String)>, bool)> {
        let tag = self.parse_name()?;
        let mut attrs = Vec::new();
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'>') => {
                    self.skip(1);
                    return Ok((tag, attrs, false));
                }
                Some(b'/') => {
                    self.skip(1);
                    if self.peek() == Some(b'>') {
                        self.skip(1);
                        return Ok((tag, attrs, true));
                    }
                    return Err(self.err("expected '>' after '/'"));
                }
                Some(_) => {
                    let name = self.parse_name()?;
                    self.skip_whitespace();
                    if self.peek() != Some(b'=') {
                        return Err(self.err(format!("expected '=' after attribute `{name}`")));
                    }
                    self.skip(1);
                    self.skip_whitespace();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => return Err(self.err("expected quoted attribute value")),
                    };
                    self.skip(1);
                    let raw = self.take_until(if quote == b'"' { "\"" } else { "'" })?;
                    let value = decode_entities(raw, self.pos)?;
                    attrs.push((name, value));
                }
                None => return Err(self.err("unterminated start tag")),
            }
        }
    }

    fn parse_name(&mut self) -> Result<&'a str> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.skip(1);
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(&self.input[start..self.pos])
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.skip(1);
        }
    }
}

/// Decodes the predefined entities and numeric character references.
fn decode_entities(raw: &str, offset: usize) -> Result<String> {
    if !raw.contains('&') {
        return Ok(raw.to_owned());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        let semi = rest.find(';').ok_or(Error::Parse {
            offset,
            message: "unterminated entity reference".into(),
        })?;
        let entity = &rest[1..semi];
        match entity {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with('#') => {
                let code = if let Some(hex) = entity.strip_prefix("#x") {
                    u32::from_str_radix(hex, 16)
                } else {
                    entity[1..].parse::<u32>()
                }
                .map_err(|_| Error::Parse {
                    offset,
                    message: format!("bad character reference &{entity};"),
                })?;
                out.push(char::from_u32(code).ok_or(Error::Parse {
                    offset,
                    message: format!("invalid code point in &{entity};"),
                })?);
            }
            _ => {
                return Err(Error::Parse {
                    offset,
                    message: format!("unknown entity &{entity};"),
                })
            }
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{figure9, FIGURE9_XML};

    #[test]
    fn figure9_xml_parses_to_figure9_tree() {
        let doc = parse_document(FIGURE9_XML).unwrap();
        assert_eq!(doc, figure9());
    }

    #[test]
    fn whitespace_between_elements_is_dropped() {
        let doc = parse_document("<a>\n  <b>text</b>\n</a>").unwrap();
        let root = doc.root();
        assert_eq!(doc.children(root).len(), 1);
        let b = doc.children(root)[0];
        assert_eq!(doc.text(doc.children(b)[0]), Some("text"));
    }

    #[test]
    fn self_closing_and_explicit_empty_are_equal() {
        let a = parse_document("<a><b/></a>").unwrap();
        let b = parse_document("<a><b></b></a>").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn attributes_with_both_quote_styles() {
        let doc = parse_document(r#"<a x="1" y='2'/>"#).unwrap();
        assert_eq!(doc.attr(doc.root(), "x"), Some("1"));
        assert_eq!(doc.attr(doc.root(), "y"), Some("2"));
    }

    #[test]
    fn entities_decode_in_text_and_attrs() {
        let doc = parse_document(r#"<a m="&lt;&amp;&gt;">x &amp; y &#65;&#x42;</a>"#).unwrap();
        assert_eq!(doc.attr(doc.root(), "m"), Some("<&>"));
        assert_eq!(doc.text(doc.children(doc.root())[0]), Some("x & y AB"));
    }

    #[test]
    fn cdata_section_preserves_markup_characters() {
        let doc = parse_document("<a><![CDATA[<not> & a tag]]></a>").unwrap();
        assert_eq!(
            doc.text(doc.children(doc.root())[0]),
            Some("<not> & a tag")
        );
    }

    #[test]
    fn comments_pis_and_declaration_are_skipped() {
        let doc = parse_document(
            "<?xml version=\"1.0\"?><!-- hi --><a><!-- in --><b/><?pi data?></a>",
        )
        .unwrap();
        assert_eq!(doc.children(doc.root()).len(), 1);
    }

    #[test]
    fn doctype_is_skipped() {
        let doc = parse_document("<!DOCTYPE a [<!ELEMENT a EMPTY>]><a/>").unwrap();
        assert_eq!(doc.tag(doc.root()), Some("a"));
    }

    #[test]
    fn mismatched_tags_error() {
        let err = parse_document("<a><b></a></b>").unwrap_err();
        assert!(matches!(err, Error::Parse { .. }), "{err}");
        assert!(err.to_string().contains("mismatched"));
    }

    #[test]
    fn unclosed_element_errors() {
        assert!(parse_document("<a><b>").is_err());
    }

    #[test]
    fn multiple_roots_error() {
        assert!(parse_document("<a/><b/>").is_err());
    }

    #[test]
    fn text_outside_root_errors() {
        assert!(parse_document("hello <a/>").is_err());
        assert!(parse_document("<a/> trailing").is_err());
    }

    #[test]
    fn empty_input_errors() {
        assert!(parse_document("").is_err());
        assert!(parse_document("   ").is_err());
    }

    #[test]
    fn unknown_entity_errors() {
        assert!(parse_document("<a>&nope;</a>").is_err());
    }

    #[test]
    fn sax_event_order_is_document_order() {
        struct Trace(Vec<String>);
        impl SaxHandler for Trace {
            fn start_element(&mut self, tag: &str, _: &[(&str, String)]) -> Result<()> {
                self.0.push(format!("+{tag}"));
                Ok(())
            }
            fn end_element(&mut self, tag: &str) -> Result<()> {
                self.0.push(format!("-{tag}"));
                Ok(())
            }
            fn characters(&mut self, text: &str) -> Result<()> {
                self.0.push(format!("\"{text}\""));
                Ok(())
            }
        }
        let mut t = Trace(Vec::new());
        parse_sax("<a><b>x</b><c/></a>", &mut t).unwrap();
        assert_eq!(
            t.0,
            vec!["+a", "+b", "\"x\"", "-b", "+c", "-c", "-a"]
        );
    }

    #[test]
    fn deeply_nested_document_parses() {
        let mut s = String::new();
        for _ in 0..200 {
            s.push_str("<d>");
        }
        s.push('x');
        for _ in 0..200 {
            s.push_str("</d>");
        }
        let doc = parse_document(&s).unwrap();
        assert_eq!(doc.height(), 201);
    }
}
