//! The Monet transform `Mt(d)` and its inverse.
//!
//! Definition 1 in the paper maps a document to three families of binary
//! relations: `E` (parent→child edges, named `R(path/label)`), `A`
//! (attribute values, named `R(path[name])`) and `T` (sibling ranks,
//! named `R(path[rank])`). Character data becomes a `PCDATA` child node
//! whose text is the special attribute `cdata` — giving relations like
//! `R(image/date/PCDATA[cdata])`.
//!
//! Two auxiliary relations implement the paper's object-oriented
//! perspective ("DOM-like traversals"): [`SYS_RELATION`] registers every
//! document root (`insert(sys, ⟨o1, image⟩)` in the paper's example) and
//! [`PARENT_RELATION`] maps child→parent so upward navigation is indexed.
//! The paper explicitly allows such hooks: "for specific query types …
//! specific accelerators can be hooked in".
//!
//! [`Loader`] is the event-driven core shared by the SAX bulkloader and
//! the document-tree walker: it keeps only a stack of open elements (one
//! entry per ancestor), which is what bounds memory by document *height*
//! rather than document *size*.

use monet::{ColumnKind, Db, Oid, Value};

use crate::doc::{Document, NodeId, NodeKind};
use crate::error::{Error, Result};
use crate::summary::{PathSummary, SumId};

/// Relation registering document roots: `oid × str` (root oid → root tag).
pub const SYS_RELATION: &str = "sys";
/// Relation mapping root oid → source name (URL) of the document.
pub const SOURCE_RELATION: &str = "sys[source]";
/// Accelerator: child oid → parent oid.
pub const PARENT_RELATION: &str = "#parent";
/// The attribute name under which cdata text is stored.
pub const CDATA_ATTR: &str = "cdata";
/// The path label of cdata nodes (Figure 12 uses `PCDATA`).
pub const PCDATA_LABEL: &str = "PCDATA";

/// Statistics of one load, reported so the experiments can verify the
/// paper's resource claims.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadStats {
    /// Nodes (elements + cdata) inserted.
    pub nodes: usize,
    /// Attributes inserted (excluding rank/cdata bookkeeping).
    pub attrs: usize,
    /// Maximum open-element stack depth — the loader's live state, which
    /// the paper bounds by O(height of document).
    pub max_depth: usize,
    /// Relations created because a path was seen for the first time.
    pub new_relations: usize,
}

struct Frame {
    sum: SumId,
    oid: Oid,
    /// Rank to assign to the next child.
    next_rank: i64,
}

/// Attribute name of the extent-start relation (`path[xstart]`).
pub const EXTENT_START_ATTR: &str = "xstart";
/// Attribute name of the extent-end relation (`path[xend]`).
pub const EXTENT_END_ATTR: &str = "xend";

/// Event-driven loader implementing the Monet transform.
///
/// Feed it `start_element` / `characters` / `end_element` in document
/// order (exactly the SAX protocol); it maintains the schema-tree cursor
/// and writes associations straight into the database.
pub struct Loader<'a> {
    db: &'a mut Db,
    summary: &'a mut PathSummary,
    stack: Vec<Frame>,
    root_oid: Option<Oid>,
    source: String,
    stats: LoadStats,
    /// When set, element extents are recorded ("we can easily extend the
    /// bulkload procedure to record extents of elements, i.e. the
    /// textual position of a start tag and its corresponding end tag").
    record_extents: bool,
    /// Running token position (start tags, end tags and text runs each
    /// advance it by one).
    token_pos: i64,
}

impl<'a> Loader<'a> {
    /// Starts a load of one document from `source` into `db`.
    pub fn new(db: &'a mut Db, summary: &'a mut PathSummary, source: &str) -> Self {
        Loader {
            db,
            summary,
            stack: Vec::new(),
            root_oid: None,
            source: source.to_owned(),
            stats: LoadStats::default(),
            record_extents: false,
            token_pos: 0,
        }
    }

    /// Like [`Loader::new`], additionally recording element extents in
    /// `R(path[xstart])` / `R(path[xend])` relations.
    pub fn with_extents(db: &'a mut Db, summary: &'a mut PathSummary, source: &str) -> Self {
        let mut loader = Loader::new(db, summary, source);
        loader.record_extents = true;
        loader
    }

    /// Handles a start tag with its attributes.
    pub fn start_element(&mut self, tag: &str, attrs: &[(&str, String)]) -> Result<()> {
        let parent_sum = self
            .stack
            .last()
            .map(|f| f.sum)
            .unwrap_or_else(|| self.summary.root());
        let (sum, fresh) = self.summary.ensure_child(parent_sum, tag);
        if fresh {
            self.stats.new_relations += 1;
        }
        let oid = self.db.mint();
        let relation = self.summary.relation(sum).to_owned();

        if let Some(parent) = self.stack.last_mut() {
            let rank = parent.next_rank;
            parent.next_rank += 1;
            let parent_oid = parent.oid;
            self.db
                .get_or_create(&relation, ColumnKind::Oid)
                .append_oid(parent_oid, oid)?;
            self.append_rank(sum, oid, rank)?;
            self.db
                .get_or_create(PARENT_RELATION, ColumnKind::Oid)
                .append_oid(oid, parent_oid)?;
        } else {
            // Root element: register in sys, as in the paper's example
            // `insert(sys, ⟨o1, image⟩)`.
            if self.root_oid.is_some() {
                return Err(Error::Store("loader fed multiple roots".into()));
            }
            self.root_oid = Some(oid);
            self.db
                .get_or_create(SYS_RELATION, ColumnKind::Str)
                .append_str(oid, tag)?;
            self.db
                .get_or_create(SOURCE_RELATION, ColumnKind::Str)
                .append_str(oid, self.source.clone())?;
            self.append_rank(sum, oid, 1)?;
        }

        for (name, value) in attrs {
            let (attr_rel, fresh) = self.summary.ensure_attr(sum, name);
            if fresh {
                self.stats.new_relations += 1;
            }
            self.db
                .get_or_create(&attr_rel, ColumnKind::Str)
                .append_str(oid, value.clone())?;
            self.stats.attrs += 1;
        }

        if self.record_extents {
            self.token_pos += 1;
            let (rel, fresh) = self.summary.ensure_attr(sum, EXTENT_START_ATTR);
            if fresh {
                self.stats.new_relations += 1;
            }
            self.db
                .get_or_create(&rel, ColumnKind::Int)
                .append_int(oid, self.token_pos)?;
        }

        self.stack.push(Frame {
            sum,
            oid,
            next_rank: 1,
        });
        self.stats.nodes += 1;
        self.stats.max_depth = self.stats.max_depth.max(self.stack.len());
        Ok(())
    }

    /// Handles a character-data run: a `PCDATA` child with the text in
    /// its `cdata` attribute.
    pub fn characters(&mut self, text: &str) -> Result<()> {
        if self.record_extents {
            self.token_pos += 1;
        }
        let parent = self
            .stack
            .last_mut()
            .ok_or_else(|| Error::Store("characters outside any element".into()))?;
        let rank = parent.next_rank;
        parent.next_rank += 1;
        let (parent_sum, parent_oid) = (parent.sum, parent.oid);

        let (sum, fresh_edge) = self.summary.ensure_child(parent_sum, PCDATA_LABEL);
        let (cdata_rel, fresh_cdata) = self.summary.ensure_attr(sum, CDATA_ATTR);
        self.stats.new_relations += usize::from(fresh_edge) + usize::from(fresh_cdata);

        let oid = self.db.mint();
        let relation = self.summary.relation(sum).to_owned();
        self.db
            .get_or_create(&relation, ColumnKind::Oid)
            .append_oid(parent_oid, oid)?;
        self.append_rank(sum, oid, rank)?;
        self.db
            .get_or_create(PARENT_RELATION, ColumnKind::Oid)
            .append_oid(oid, parent_oid)?;
        self.db
            .get_or_create(&cdata_rel, ColumnKind::Str)
            .append_str(oid, text)?;
        self.stats.nodes += 1;
        Ok(())
    }

    /// Handles an end tag.
    pub fn end_element(&mut self) -> Result<()> {
        let frame = self
            .stack
            .pop()
            .ok_or_else(|| Error::Store("unbalanced end element".into()))?;
        if self.record_extents {
            self.token_pos += 1;
            let (rel, fresh) = self.summary.ensure_attr(frame.sum, EXTENT_END_ATTR);
            if fresh {
                self.stats.new_relations += 1;
            }
            self.db
                .get_or_create(&rel, ColumnKind::Int)
                .append_int(frame.oid, self.token_pos)?;
        }
        Ok(())
    }

    fn append_rank(&mut self, sum: SumId, oid: Oid, rank: i64) -> Result<()> {
        let (rank_rel, fresh) = self.summary.ensure_attr(sum, "rank");
        if fresh {
            self.stats.new_relations += 1;
        }
        self.db
            .get_or_create(&rank_rel, ColumnKind::Int)
            .append_int(oid, rank)?;
        Ok(())
    }

    /// Finishes the load, returning the root oid and statistics.
    pub fn finish(self) -> Result<(Oid, LoadStats)> {
        if !self.stack.is_empty() {
            return Err(Error::Store("loader finished with open elements".into()));
        }
        let root = self
            .root_oid
            .ok_or_else(|| Error::Store("loader saw no root element".into()))?;
        Ok((root, self.stats))
    }

    /// Current live state size (open-element frames); exposed for the
    /// memory-bound experiment E1.
    pub fn live_frames(&self) -> usize {
        self.stack.len()
    }
}

/// Walks an in-memory [`Document`] through a [`Loader`] — the DOM-side
/// entry point used when upper levels hand over already-built trees.
pub fn load_document(
    db: &mut Db,
    summary: &mut PathSummary,
    source: &str,
    doc: &Document,
) -> Result<(Oid, LoadStats)> {
    let mut loader = Loader::new(db, summary, source);
    walk(&mut loader, doc, doc.root())?;
    loader.finish()
}

fn walk(loader: &mut Loader<'_>, doc: &Document, node: NodeId) -> Result<()> {
    match doc.kind(node) {
        NodeKind::Cdata(text) => loader.characters(text),
        NodeKind::Element(tag) => {
            let attrs: Vec<(&str, String)> = doc
                .attrs(node)
                .iter()
                .map(|(n, v)| (n.as_str(), v.clone()))
                .collect();
            loader.start_element(tag, &attrs)?;
            for child in doc.children(node) {
                walk(loader, doc, *child)?;
            }
            loader.end_element()
        }
    }
}

/// Reconstructs the document rooted at `root` — the inverse mapping
/// `M⁻¹ₜ`; the result is isomorphic to the originally loaded document.
pub fn reconstruct(db: &mut Db, summary: &PathSummary, root: Oid) -> Result<Document> {
    reconstruct_budgeted(db, summary, root, &faults::Budget::unlimited())
}

/// [`reconstruct`] under a caller budget: one work unit per rebuilt
/// node, so reconstructing a pathological document is cancellable at
/// node granularity with a typed [`Error::DeadlineExceeded`].
pub fn reconstruct_budgeted(
    db: &mut Db,
    summary: &PathSummary,
    root: Oid,
    budget: &faults::Budget,
) -> Result<Document> {
    let root_tag = db
        .get_mut(SYS_RELATION)
        .map_err(Error::from)?
        .first_tail_of(root)
        .and_then(|v| v.as_str().map(str::to_owned))
        .ok_or_else(|| Error::Store(format!("oid {root} is not a document root")))?;
    let sum = summary
        .child(summary.root(), &root_tag)
        .ok_or_else(|| Error::Store(format!("no schema node for root tag {root_tag}")))?;

    let mut built = 0usize;
    budget
        .consume(1)
        .map_err(|cause| Error::DeadlineExceeded { nodes: built, cause })?;
    built += 1;
    let mut doc = Document::new(root_tag);
    let doc_root = doc.root();
    fill_attrs(db, summary, sum, root, &mut doc, doc_root)?;
    fill_children(db, summary, sum, root, &mut doc, doc_root, budget, &mut built)?;
    Ok(doc)
}

fn fill_attrs(
    db: &mut Db,
    summary: &PathSummary,
    sum: SumId,
    oid: Oid,
    doc: &mut Document,
    node: NodeId,
) -> Result<()> {
    for name in summary.attr_names(sum) {
        if name == "rank" || name == CDATA_ATTR || name == EXTENT_START_ATTR
            || name == EXTENT_END_ATTR
        {
            continue;
        }
        let rel = summary
            .attr_relation(sum, name)
            .expect("name from attr_names")
            .to_owned();
        if let Ok(bat) = db.get_mut(&rel) {
            if let Some(Value::Str(v)) = bat.first_tail_of(oid) {
                doc.set_attr(node, name, v);
            }
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn fill_children(
    db: &mut Db,
    summary: &PathSummary,
    sum: SumId,
    oid: Oid,
    doc: &mut Document,
    node: NodeId,
    budget: &faults::Budget,
    built: &mut usize,
) -> Result<()> {
    // Gather children across all child path relations, with their ranks,
    // then rebuild sibling order by sorting on rank.
    let mut kids: Vec<(i64, SumId, Oid)> = Vec::new();
    for child_sum in summary.children(sum) {
        let rel = summary.relation(child_sum).to_owned();
        let Ok(bat) = db.get_mut(&rel) else { continue };
        let child_oids: Vec<Oid> = bat
            .tails_of(oid)
            .into_iter()
            .filter_map(|v| v.as_oid())
            .collect();
        if child_oids.is_empty() {
            continue;
        }
        let rank_rel = summary
            .attr_relation(child_sum, "rank")
            .ok_or_else(|| Error::Store(format!("missing rank relation for {rel}")))?
            .to_owned();
        for child in child_oids {
            let rank = db
                .get_mut(&rank_rel)
                .map_err(Error::from)?
                .first_tail_of(child)
                .and_then(|v| v.as_int())
                .ok_or_else(|| Error::Store(format!("missing rank for {child}")))?;
            kids.push((rank, child_sum, child));
        }
    }
    kids.sort_unstable_by_key(|(rank, _, _)| *rank);

    for (_, child_sum, child_oid) in kids {
        budget.consume(1).map_err(|cause| Error::DeadlineExceeded {
            nodes: *built,
            cause,
        })?;
        *built += 1;
        if summary.label(child_sum) == PCDATA_LABEL {
            let cdata_rel = summary
                .attr_relation(child_sum, CDATA_ATTR)
                .ok_or_else(|| Error::Store("PCDATA node without cdata relation".into()))?
                .to_owned();
            let text = db
                .get_mut(&cdata_rel)
                .map_err(Error::from)?
                .first_tail_of(child_oid)
                .and_then(|v| v.as_str().map(str::to_owned))
                .ok_or_else(|| Error::Store(format!("missing cdata for {child_oid}")))?;
            doc.add_cdata(node, text);
        } else {
            let child_node = doc.add_element(node, summary.label(child_sum));
            fill_attrs(db, summary, child_sum, child_oid, doc, child_node)?;
            fill_children(db, summary, child_sum, child_oid, doc, child_node, budget, built)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::figure9;

    #[test]
    fn figure9_load_creates_paper_relations() {
        let mut db = Db::new();
        let mut summary = PathSummary::new();
        let doc = figure9();
        let (root, stats) = load_document(&mut db, &mut summary, "seles.xml", &doc).unwrap();
        assert_eq!(stats.nodes, 10);
        assert_eq!(stats.attrs, 2);
        assert_eq!(stats.max_depth, 3); // image/colors/histogram (cdata is not a frame)
        // Naive-example relations from the paper exist:
        assert!(db.contains("sys"));
        assert!(db.contains("image[key]"));
        assert!(db.contains("image[source]"));
        assert!(db.contains("image/date"));
        assert!(db.contains("image/date/PCDATA"));
        assert!(db.contains("image/colors/histogram"));
        // And sys registered the root.
        assert_eq!(
            db.get_mut("sys").unwrap().first_tail_of(root),
            Some(Value::Str("image".into()))
        );
    }

    #[test]
    fn reconstruct_is_inverse_of_load() {
        let mut db = Db::new();
        let mut summary = PathSummary::new();
        let doc = figure9();
        let (root, _) = load_document(&mut db, &mut summary, "seles.xml", &doc).unwrap();
        let back = reconstruct(&mut db, &summary, root).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn two_documents_share_relations() {
        let mut db = Db::new();
        let mut summary = PathSummary::new();
        let (r1, s1) = load_document(&mut db, &mut summary, "a.xml", &figure9()).unwrap();
        let (r2, s2) = load_document(&mut db, &mut summary, "b.xml", &figure9()).unwrap();
        assert_ne!(r1, r2);
        assert!(s1.new_relations > 0);
        assert_eq!(s2.new_relations, 0, "same paths, no new relations");
        // Both reconstruct independently.
        assert_eq!(reconstruct(&mut db, &summary, r1).unwrap(), figure9());
        assert_eq!(reconstruct(&mut db, &summary, r2).unwrap(), figure9());
    }

    #[test]
    fn reconstruct_unknown_oid_errors() {
        let mut db = Db::new();
        let mut summary = PathSummary::new();
        load_document(&mut db, &mut summary, "a.xml", &figure9()).unwrap();
        let bogus = Oid::from_raw(9999);
        assert!(reconstruct(&mut db, &summary, bogus).is_err());
    }

    #[test]
    fn sibling_order_with_repeated_tags_survives() {
        let mut doc = Document::new("list");
        let root = doc.root();
        for i in 0..5 {
            let item = doc.add_element(root, "item");
            doc.add_cdata(item, format!("v{i}"));
        }
        let mut db = Db::new();
        let mut summary = PathSummary::new();
        let (r, _) = load_document(&mut db, &mut summary, "l.xml", &doc).unwrap();
        assert_eq!(reconstruct(&mut db, &summary, r).unwrap(), doc);
    }

    #[test]
    fn mixed_content_order_survives() {
        let mut doc = Document::new("p");
        let root = doc.root();
        doc.add_cdata(root, "before");
        doc.add_element(root, "b");
        doc.add_cdata(root, "after");
        let mut db = Db::new();
        let mut summary = PathSummary::new();
        let (r, _) = load_document(&mut db, &mut summary, "m.xml", &doc).unwrap();
        assert_eq!(reconstruct(&mut db, &summary, r).unwrap(), doc);
    }
}
