//! Serialising documents back to XML text.
//!
//! Used by the inverse Monet mapping (`M⁻¹ₜ`) and by the FDE when it
//! "dumps the parse tree as an XML document".

use std::fmt::Write as _;

use crate::doc::{Document, NodeId, NodeKind};

/// Serialises `doc` to a compact XML string (no insignificant whitespace,
/// entities escaped). Parsing the output with
/// [`parse_document`](crate::parse_document) yields a tree structurally
/// equal to `doc`.
pub fn to_xml(doc: &Document) -> String {
    let mut out = String::with_capacity(doc.node_count() * 16);
    write_node(doc, doc.root(), &mut out);
    out
}

/// Serialises `doc` with two-space indentation, for human consumption.
pub fn to_xml_pretty(doc: &Document) -> String {
    let mut out = String::new();
    write_node_pretty(doc, doc.root(), 0, &mut out);
    out
}

fn write_node(doc: &Document, id: NodeId, out: &mut String) {
    match doc.kind(id) {
        NodeKind::Cdata(text) => out.push_str(&escape_text(text)),
        NodeKind::Element(tag) => {
            out.push('<');
            out.push_str(tag);
            for (name, value) in doc.attrs(id) {
                let _ = write!(out, " {}=\"{}\"", name, escape_attr(value));
            }
            let children = doc.children(id);
            if children.is_empty() {
                out.push_str("/>");
            } else {
                out.push('>');
                for c in children {
                    write_node(doc, *c, out);
                }
                let _ = write!(out, "</{tag}>");
            }
        }
    }
}

fn write_node_pretty(doc: &Document, id: NodeId, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    match doc.kind(id) {
        NodeKind::Cdata(text) => {
            let _ = writeln!(out, "{indent}{}", escape_text(text));
        }
        NodeKind::Element(tag) => {
            out.push_str(&indent);
            out.push('<');
            out.push_str(tag);
            for (name, value) in doc.attrs(id) {
                let _ = write!(out, " {}=\"{}\"", name, escape_attr(value));
            }
            let children = doc.children(id);
            if children.is_empty() {
                out.push_str("/>\n");
            } else if children.len() == 1 && doc.text(children[0]).is_some() {
                // Inline a lone text child: <date>999010530</date>
                let _ = writeln!(
                    out,
                    ">{}</{tag}>",
                    escape_text(doc.text(children[0]).expect("checked"))
                );
            } else {
                out.push_str(">\n");
                for c in children {
                    write_node_pretty(doc, *c, depth + 1, out);
                }
                let _ = writeln!(out, "{indent}</{tag}>");
            }
        }
    }
}

/// Escapes `&`, `<` and `>` in character data.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes `&`, `<`, `>` and `"` in attribute values.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_document;
    use crate::testutil::figure9;

    #[test]
    fn serialise_then_parse_is_identity_on_figure9() {
        let d = figure9();
        let xml = to_xml(&d);
        assert_eq!(parse_document(&xml).unwrap(), d);
    }

    #[test]
    fn escaping_round_trips() {
        let mut d = Document::new("a");
        d.set_attr(d.root(), "q", "x\"<&>y");
        d.add_cdata(d.root(), "1 < 2 & 3 > 2");
        let xml = to_xml(&d);
        assert_eq!(parse_document(&xml).unwrap(), d);
    }

    #[test]
    fn empty_element_serialises_self_closing() {
        let mut d = Document::new("a");
        d.add_element(d.root(), "b");
        assert_eq!(to_xml(&d), "<a><b/></a>");
    }

    #[test]
    fn pretty_output_reparses_equal() {
        let d = figure9();
        let pretty = to_xml_pretty(&d);
        assert!(pretty.contains('\n'));
        assert_eq!(parse_document(&pretty).unwrap(), d);
    }
}
