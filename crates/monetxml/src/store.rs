//! The XML storage manager: catalog + path summary + document registry.
//!
//! [`XmlStore`] is the public face of the physical level. It supports the
//! paper's three access patterns:
//!
//! * **bulkload / incremental insert** — [`XmlStore::bulkload_str`]
//!   streams XML text through the SAX parser straight into relations,
//!   with memory bounded by document height;
//!   [`XmlStore::insert_document`] walks an already-built tree,
//! * **retrieval** — [`XmlStore::reconstruct`] runs the inverse mapping,
//!   and [`crate::query`] evaluates path expressions,
//! * **update** — [`XmlStore::delete_document`] removes a stored document
//!   so the maintenance machinery (FDS) can replace invalidated trees.
//!
//! Two deliberately *worse* code paths are kept as benchmark baselines,
//! mirroring the paper's own strawmen: [`XmlStore::bulkload_str_naive`]
//! (hash the full path string for every single insert — the "first naïve
//! approach" of the bulkload section) and the edge-table storage mode in
//! [`crate::query::nodes_at_edges`] (node-at-a-time traversal, the
//! "plain data guides" competitor).

use monet::wal::WalHandle;
use monet::{ColumnKind, Db, Oid, Value};

use crate::doc::Document;
use crate::error::{Error, Result};
use crate::parse::{self, SaxHandler};
use crate::summary::PathSummary;
use crate::transform::{
    self, LoadStats, Loader, CDATA_ATTR, PARENT_RELATION, PCDATA_LABEL, SOURCE_RELATION,
    SYS_RELATION,
};

/// The physical level's storage manager.
#[derive(Debug)]
pub struct XmlStore {
    db: Db,
    summary: PathSummary,
    /// Roots of stored documents, in insertion order.
    roots: Vec<Oid>,
    /// Cumulative stats of the most recent load.
    last_stats: LoadStats,
    /// Bumped on every insert or delete; anything derived from the
    /// store can be cached while the epoch holds still.
    epoch: u64,
    /// When attached, every insert/delete is logged here *before* the
    /// catalog mutates, so a crash mid-operation replays cleanly.
    wal: Option<WalHandle>,
    /// Pre-registered metric handles; `None` when observability is off.
    metrics: Option<StoreMetrics>,
}

/// Metric handles for the physical level (loads, scans, reconstructs).
#[derive(Debug, Clone)]
pub(crate) struct StoreMetrics {
    loads: obs::Counter,
    nodes_loaded: obs::Counter,
    deletes: obs::Counter,
    reconstructions: obs::Counter,
    pub(crate) path_scans: obs::Counter,
    pub(crate) scan_rows: obs::Counter,
}

impl StoreMetrics {
    fn register(registry: &obs::Registry) -> StoreMetrics {
        StoreMetrics {
            loads: registry.counter(
                "monetxml_loads_total",
                "Documents loaded (bulkload or tree insert)",
            ),
            nodes_loaded: registry.counter(
                "monetxml_nodes_loaded_total",
                "Nodes inserted into path relations",
            ),
            deletes: registry.counter("monetxml_deletes_total", "Documents deleted"),
            reconstructions: registry.counter(
                "monetxml_reconstructions_total",
                "Documents reconstructed from relations",
            ),
            path_scans: registry.counter(
                "monetxml_path_scans_total",
                "Path-expression relation scans",
            ),
            scan_rows: registry.counter(
                "monetxml_scan_rows_total",
                "Tuples returned by path-expression scans",
            ),
        }
    }
}

/// WAL op tag: insert a document (`fields = [source, xml]`).
pub const WAL_OP_INSERT: u8 = 0;
/// WAL op tag: delete a document (`fields = [source]`).
pub const WAL_OP_DELETE: u8 = 1;

impl XmlStore {
    /// An empty store.
    pub fn new() -> Self {
        XmlStore {
            db: Db::new(),
            summary: PathSummary::new(),
            roots: Vec::new(),
            last_stats: LoadStats::default(),
            epoch: 0,
            wal: None,
            metrics: None,
        }
    }

    /// Connects the store to an observability handle: loads, deletes,
    /// scans and reconstructions feed the `monetxml_*` counters. A
    /// disabled handle disconnects.
    pub fn set_obs(&mut self, o: &obs::Obs) {
        self.metrics = o.registry().map(StoreMetrics::register);
    }

    pub(crate) fn metrics(&self) -> Option<&StoreMetrics> {
        self.metrics.as_ref()
    }

    fn note_load(&self, stats: &LoadStats) {
        if let Some(m) = &self.metrics {
            m.loads.inc();
            m.nodes_loaded.add(stats.nodes as u64);
        }
    }

    /// A counter that advances on every insert or delete. Equal epochs
    /// guarantee the stored documents have not changed in between.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Resumes the epoch counter from a persisted value, so cache keys
    /// derived from epochs stay monotone across restarts.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Attaches a write-ahead-log handle: from now on every insert and
    /// delete is logged before the catalog mutates.
    pub fn set_wal(&mut self, wal: WalHandle) {
        self.wal = Some(wal);
    }

    /// Detaches the log (used during replay so replayed operations are
    /// not re-logged).
    pub fn detach_wal(&mut self) -> Option<WalHandle> {
        self.wal.take()
    }

    fn log_insert(&self, source: &str, xml: &str) -> Result<()> {
        if let Some(wal) = &self.wal {
            wal.log(WAL_OP_INSERT, &[source.as_bytes(), xml.as_bytes()])?;
        }
        Ok(())
    }

    /// The underlying BAT catalog (immutable).
    pub fn db(&self) -> &Db {
        &self.db
    }

    /// The underlying BAT catalog (mutable — lookups build indexes).
    pub fn db_mut(&mut self) -> &mut Db {
        &mut self.db
    }

    /// The path summary.
    pub fn summary(&self) -> &PathSummary {
        &self.summary
    }

    /// Roots of all stored documents, in insertion order.
    pub fn roots(&self) -> &[Oid] {
        &self.roots
    }

    /// Number of stored documents.
    pub fn document_count(&self) -> usize {
        self.roots.len()
    }

    /// Stats of the most recent load.
    pub fn last_stats(&self) -> LoadStats {
        self.last_stats
    }

    /// Inserts an in-memory document; returns its root oid. With a WAL
    /// attached the document is logged (as serialised XML) first, and
    /// nothing mutates if the log append fails.
    pub fn insert_document(&mut self, source: &str, doc: &Document) -> Result<Oid> {
        if self.wal.is_some() {
            let xml = crate::ser::to_xml(doc);
            self.log_insert(source, &xml)?;
        }
        let (root, stats) = transform::load_document(&mut self.db, &mut self.summary, source, doc)?;
        self.roots.push(root);
        self.note_load(&stats);
        self.last_stats = stats;
        self.epoch += 1;
        Ok(root)
    }

    /// Inserts a batch of `(source, document)` pairs in order — the bulk
    /// entry point the ingestion writer uses to land one merge batch in a
    /// single call. [`XmlStore::last_stats`] afterwards holds the *sum*
    /// over the batch. Returns the root oids in input order.
    ///
    /// With a WAL attached the whole batch is logged with a **single**
    /// lock acquisition ([`WalHandle::log_batch`]) before any relation
    /// mutates — per-record logging was the dominant merge cost at
    /// 10^5-document scale. Replaying the log reproduces the same
    /// per-document insert sequence.
    pub fn insert_documents<'a, I>(&mut self, docs: I) -> Result<Vec<Oid>>
    where
        I: IntoIterator<Item = (&'a str, &'a Document)>,
    {
        let docs: Vec<(&str, &Document)> = docs.into_iter().collect();
        if let Some(wal) = &self.wal {
            let xmls: Vec<(usize, String)> = docs
                .iter()
                .enumerate()
                .map(|(i, (_, doc))| (i, crate::ser::to_xml(doc)))
                .collect();
            let groups: Vec<Vec<&[u8]>> = xmls
                .iter()
                .map(|(i, xml)| vec![docs[*i].0.as_bytes(), xml.as_bytes()])
                .collect();
            wal.log_batch(WAL_OP_INSERT, &groups)?;
        }
        // Already logged above; detach so the per-document path does not
        // log each insert a second time.
        let wal = self.wal.take();
        let mut total = LoadStats::default();
        let mut insert_all = || -> Result<Vec<Oid>> {
            let mut roots = Vec::new();
            for (source, doc) in &docs {
                roots.push(self.insert_document(source, doc)?);
                let stats = self.last_stats;
                total.nodes += stats.nodes;
                total.attrs += stats.attrs;
                total.new_relations += stats.new_relations;
                total.max_depth = total.max_depth.max(stats.max_depth);
            }
            Ok(roots)
        };
        let result = insert_all();
        self.wal = wal;
        let roots = result?;
        self.last_stats = total;
        Ok(roots)
    }

    /// Streams XML text into the store with O(height) live memory — the
    /// paper's bulkload method. Returns the root oid. Logged to the WAL
    /// (when attached) before any relation mutates.
    pub fn bulkload_str(&mut self, source: &str, xml: &str) -> Result<Oid> {
        self.log_insert(source, xml)?;
        struct Sax<'a, 'b>(&'a mut Loader<'b>);
        impl SaxHandler for Sax<'_, '_> {
            fn start_element(&mut self, tag: &str, attrs: &[(&str, String)]) -> Result<()> {
                self.0.start_element(tag, attrs)
            }
            fn end_element(&mut self, _tag: &str) -> Result<()> {
                self.0.end_element()
            }
            fn characters(&mut self, text: &str) -> Result<()> {
                self.0.characters(text)
            }
        }

        let mut loader = Loader::new(&mut self.db, &mut self.summary, source);
        parse::parse_sax(xml, &mut Sax(&mut loader))?;
        let (root, stats) = loader.finish()?;
        self.roots.push(root);
        self.note_load(&stats);
        self.last_stats = stats;
        self.epoch += 1;
        Ok(root)
    }

    /// Like [`XmlStore::bulkload_str`], additionally recording element
    /// extents (`path[xstart]` / `path[xend]` relations) — the paper's
    /// multi-attribute extension hook.
    pub fn bulkload_str_with_extents(&mut self, source: &str, xml: &str) -> Result<Oid> {
        struct Sax<'a, 'b>(&'a mut Loader<'b>);
        impl SaxHandler for Sax<'_, '_> {
            fn start_element(&mut self, tag: &str, attrs: &[(&str, String)]) -> Result<()> {
                self.0.start_element(tag, attrs)
            }
            fn end_element(&mut self, _tag: &str) -> Result<()> {
                self.0.end_element()
            }
            fn characters(&mut self, text: &str) -> Result<()> {
                self.0.characters(text)
            }
        }
        let mut loader = Loader::with_extents(&mut self.db, &mut self.summary, source);
        parse::parse_sax(xml, &mut Sax(&mut loader))?;
        let (root, stats) = loader.finish()?;
        self.roots.push(root);
        self.note_load(&stats);
        self.last_stats = stats;
        self.epoch += 1;
        Ok(root)
    }

    /// The paper's strawman loader: identical output, but instead of
    /// keeping a schema-tree cursor it rebuilds and hashes the **full
    /// path string** for every node and attribute — "a first naïve
    /// approach would thus result in the following sequence of insert
    /// statements … requires us to hash the complete path to a relation
    /// name". Exists only as the baseline for experiment E2.
    pub fn bulkload_str_naive(&mut self, source: &str, xml: &str) -> Result<Oid> {
        struct Naive<'a> {
            db: &'a mut Db,
            summary: &'a mut PathSummary,
            /// (label, oid, next_rank) per open element.
            stack: Vec<(String, Oid, i64)>,
            root: Option<Oid>,
            source: String,
        }
        impl Naive<'_> {
            fn full_path(&self) -> String {
                // Deliberately rebuilds the string every time.
                self.stack
                    .iter()
                    .map(|(l, _, _)| l.as_str())
                    .collect::<Vec<_>>()
                    .join("/")
            }
            /// Resolve a path string through the summary *by reparsing and
            /// re-walking it from the root* — the repeated hashing work the
            /// schema-tree cursor avoids.
            fn resolve_slow(&mut self, path: &str) -> crate::summary::SumId {
                let mut cur = self.summary.root();
                for seg in path.split('/').filter(|s| !s.is_empty()) {
                    cur = self.summary.ensure_child(cur, seg).0;
                }
                cur
            }
        }
        impl SaxHandler for Naive<'_> {
            fn start_element(&mut self, tag: &str, attrs: &[(&str, String)]) -> Result<()> {
                let oid = self.db.mint();
                let parent = self.stack.last().map(|(_, o, _)| *o);
                let rank = match self.stack.last_mut() {
                    Some((_, _, r)) => {
                        let rank = *r;
                        *r += 1;
                        rank
                    }
                    None => 1,
                };
                self.stack.push((tag.to_owned(), oid, 1));
                let path = self.full_path();
                let sum = self.resolve_slow(&path);
                let relation = self.summary.relation(sum).to_owned();
                match parent {
                    Some(p) => {
                        self.db
                            .get_or_create(&relation, ColumnKind::Oid)
                            .append_oid(p, oid)?;
                        self.db
                            .get_or_create(PARENT_RELATION, ColumnKind::Oid)
                            .append_oid(oid, p)?;
                    }
                    None => {
                        if self.root.is_some() {
                            return Err(Error::Store("multiple roots".into()));
                        }
                        self.root = Some(oid);
                        self.db
                            .get_or_create(SYS_RELATION, ColumnKind::Str)
                            .append_str(oid, tag)?;
                        self.db
                            .get_or_create(SOURCE_RELATION, ColumnKind::Str)
                            .append_str(oid, self.source.clone())?;
                    }
                }
                let (rank_rel, _) = self.summary.ensure_attr(sum, "rank");
                self.db
                    .get_or_create(&rank_rel, ColumnKind::Int)
                    .append_int(oid, rank)?;
                for (name, value) in attrs {
                    let (attr_rel, _) = self.summary.ensure_attr(sum, name);
                    self.db
                        .get_or_create(&attr_rel, ColumnKind::Str)
                        .append_str(oid, value.clone())?;
                }
                Ok(())
            }
            fn end_element(&mut self, _tag: &str) -> Result<()> {
                self.stack.pop();
                Ok(())
            }
            fn characters(&mut self, text: &str) -> Result<()> {
                let (parent, rank) = match self.stack.last_mut() {
                    Some((_, o, r)) => {
                        let rank = *r;
                        *r += 1;
                        (*o, rank)
                    }
                    None => return Err(Error::Store("text outside root".into())),
                };
                self.stack.push((PCDATA_LABEL.to_owned(), Oid::from_raw(0), 0));
                let path = self.full_path();
                self.stack.pop();
                let sum = self.resolve_slow(&path);
                let relation = self.summary.relation(sum).to_owned();
                let oid = self.db.mint();
                self.db
                    .get_or_create(&relation, ColumnKind::Oid)
                    .append_oid(parent, oid)?;
                self.db
                    .get_or_create(PARENT_RELATION, ColumnKind::Oid)
                    .append_oid(oid, parent)?;
                let (rank_rel, _) = self.summary.ensure_attr(sum, "rank");
                self.db
                    .get_or_create(&rank_rel, ColumnKind::Int)
                    .append_int(oid, rank)?;
                let (cdata_rel, _) = self.summary.ensure_attr(sum, CDATA_ATTR);
                self.db
                    .get_or_create(&cdata_rel, ColumnKind::Str)
                    .append_str(oid, text)?;
                Ok(())
            }
        }

        let mut handler = Naive {
            db: &mut self.db,
            summary: &mut self.summary,
            stack: Vec::new(),
            root: None,
            source: source.to_owned(),
        };
        parse::parse_sax(xml, &mut handler)?;
        let root = handler
            .root
            .ok_or_else(|| Error::Store("no root element".into()))?;
        self.roots.push(root);
        self.epoch += 1;
        Ok(root)
    }

    /// Reconstructs the document rooted at `root` (the inverse mapping).
    pub fn reconstruct(&mut self, root: Oid) -> Result<Document> {
        if let Some(m) = &self.metrics {
            m.reconstructions.inc();
        }
        transform::reconstruct(&mut self.db, &self.summary, root)
    }

    /// Reconstructs under a caller budget (one work unit per node),
    /// failing with a typed [`Error::DeadlineExceeded`] when it runs
    /// out.
    pub fn reconstruct_budgeted(
        &mut self,
        root: Oid,
        budget: &faults::Budget,
    ) -> Result<Document> {
        if let Some(m) = &self.metrics {
            m.reconstructions.inc();
        }
        transform::reconstruct_budgeted(&mut self.db, &self.summary, root, budget)
    }

    /// The source name a document was loaded from.
    pub fn source_of(&mut self, root: Oid) -> Option<String> {
        self.db
            .get_mut(SOURCE_RELATION)
            .ok()?
            .first_tail_of(root)
            .and_then(|v| v.as_str().map(str::to_owned))
    }

    /// The root oid of the document loaded from `source`, if any.
    pub fn root_for_source(&self, source: &str) -> Option<Oid> {
        self.db
            .get(SOURCE_RELATION)
            .ok()?
            .select_str_eq(source)
            .first()
            .copied()
    }

    /// Deletes the document rooted at `root`, removing every node it
    /// contributed from every relation. Returns the number of nodes
    /// removed. Used by the FDS when a stored parse tree is invalidated.
    pub fn delete_document(&mut self, root: Oid) -> Result<usize> {
        let root_tag = self
            .db
            .get_mut(SYS_RELATION)?
            .first_tail_of(root)
            .and_then(|v| v.as_str().map(str::to_owned))
            .ok_or_else(|| Error::Store(format!("oid {root} is not a document root")))?;
        // Log the delete (keyed by source, which survives restarts —
        // oids do not) before any relation mutates.
        if self.wal.is_some() {
            let source = self
                .source_of(root)
                .ok_or_else(|| Error::Store(format!("oid {root} has no source entry")))?;
            if let Some(wal) = &self.wal {
                wal.log(WAL_OP_DELETE, &[source.as_bytes()])?;
            }
        }
        let sum = self
            .summary
            .child(self.summary.root(), &root_tag)
            .ok_or_else(|| Error::Store(format!("no schema node for {root_tag}")))?;

        // Two phases: walk the stored tree collecting, per relation, the
        // set of heads to drop, then bulk-delete each relation in a
        // single pass. (Per-node deletion would rebuild each relation's
        // lookup index once per node — quadratic in document size.)
        let mut per_relation: std::collections::HashMap<
            String,
            std::collections::HashSet<Oid>,
        > = std::collections::HashMap::new();
        let removed = self.collect_subtree(sum, root, &mut per_relation)?;
        for (rel, heads) in per_relation {
            if let Ok(bat) = self.db.get_mut(&rel) {
                bat.delete_heads(&heads);
            }
        }
        self.db.get_mut(SYS_RELATION)?.delete_head(root);
        self.db.get_mut(SOURCE_RELATION)?.delete_head(root);
        self.roots.retain(|r| *r != root);
        self.epoch += 1;
        if let Some(m) = &self.metrics {
            m.deletes.inc();
        }
        Ok(removed)
    }

    /// Walks the stored subtree of `oid`, recording every association to
    /// drop in `per_relation`. Returns the number of nodes visited.
    fn collect_subtree(
        &mut self,
        sum: crate::summary::SumId,
        oid: Oid,
        per_relation: &mut std::collections::HashMap<String, std::collections::HashSet<Oid>>,
    ) -> Result<usize> {
        let mut removed = 1;
        for child_sum in self.summary.children(sum) {
            let rel = self.summary.relation(child_sum).to_owned();
            let child_oids: Vec<Oid> = match self.db.get_mut(&rel) {
                Ok(bat) => bat
                    .tails_of(oid)
                    .into_iter()
                    .filter_map(|v| v.as_oid())
                    .collect(),
                Err(_) => continue,
            };
            for child in child_oids {
                removed += self.collect_subtree(child_sum, child, per_relation)?;
                per_relation
                    .entry(PARENT_RELATION.to_owned())
                    .or_default()
                    .insert(child);
            }
            // The edges from this parent.
            per_relation.entry(rel).or_default().insert(oid);
        }
        // This node's attribute/rank/cdata entries.
        for name in self.summary.attr_names(sum) {
            let rel = self
                .summary
                .attr_relation(sum, name)
                .expect("name from attr_names")
                .to_owned();
            per_relation.entry(rel).or_default().insert(oid);
        }
        Ok(removed)
    }

    /// Counts `rejected` attribute markers across all stored documents,
    /// grouped by the owning element's label — read straight off the
    /// per-(path, attribute) relations, without reconstructing a single
    /// document. This is the heal backlog the maintenance layer reports
    /// per detector; because it only touches the (tiny) `rejected`
    /// attribute relations it is cheap enough for metrics-scrape time
    /// even on a lazily-opened store.
    pub fn rejected_counts(&mut self) -> std::collections::BTreeMap<String, usize> {
        let mut out = std::collections::BTreeMap::new();
        let mut stack = vec![self.summary.root()];
        while let Some(sum) = stack.pop() {
            stack.extend(self.summary.children(sum));
            let Some(rel) = self.summary.attr_relation(sum, "rejected") else {
                continue;
            };
            let rel = rel.to_owned();
            let label = self.summary.label(sum).to_owned();
            if let Ok(bat) = self.db.get_mut(&rel) {
                let n = bat.len();
                if n > 0 {
                    *out.entry(label).or_insert(0) += n;
                }
            }
        }
        out
    }

    /// Serialises the whole store to bytes (the catalog snapshot; the
    /// path summary and document registry are *derived* state, rebuilt
    /// on restore from the relation names and the `sys` relations —
    /// which is exactly why the paper's document-dependent mapping can
    /// afford a DTD-less catalog).
    pub fn snapshot(&self) -> Result<Vec<u8>> {
        Ok(monet::persist::snapshot(&self.db)?)
    }

    /// Restores a store from a [`Self::snapshot`], decoding every
    /// relation eagerly.
    pub fn restore(bytes: &[u8]) -> Result<XmlStore> {
        Self::from_db(monet::persist::restore(bytes)?)
    }

    /// Restores a store from a [`Self::snapshot`] **lazily**: relations
    /// decode on first access. The schema tree needs only the relation
    /// *names* (in the snapshot directory) and the document registry
    /// materializes just the `sys` relation, so opening a large snapshot
    /// touches a tiny fraction of its payload bytes.
    pub fn restore_lazy(bytes: Vec<u8>) -> Result<XmlStore> {
        Self::from_db(monet::persist::restore_lazy(bytes)?)
    }

    /// Rebuilds the derived state (schema tree, document registry) from a
    /// restored catalog. Only the `sys` relation is materialized.
    fn from_db(mut db: Db) -> Result<XmlStore> {
        // Rebuild the schema tree from the relation names.
        let mut summary = PathSummary::new();
        let names: Vec<String> = db.relation_names().map(str::to_owned).collect();
        for name in names {
            if name.starts_with('#') || name == SYS_RELATION || name.starts_with("sys[") {
                continue;
            }
            let Some(path) = crate::path::Path::parse(&name) else {
                continue;
            };
            let mut node = summary.root();
            for step in path.steps() {
                match step {
                    crate::path::Step::Child(label) => {
                        node = summary.ensure_child(node, label).0;
                    }
                    crate::path::Step::Attr(attr) => {
                        summary.ensure_attr(node, attr);
                    }
                }
            }
        }
        // Rebuild the document registry from sys, in oid order (the
        // insertion order of the original store).
        let mut roots: Vec<Oid> = match db.get_mut(SYS_RELATION) {
            Ok(bat) => bat.heads().collect(),
            Err(_) => Vec::new(),
        };
        roots.sort();
        Ok(XmlStore {
            db,
            summary,
            roots,
            last_stats: LoadStats::default(),
            epoch: 0,
            wal: None,
            metrics: None,
        })
    }

    /// Text content of an element node: concatenation of the `cdata` of
    /// its direct `PCDATA` children, in rank order.
    pub fn direct_text(&mut self, sum: crate::summary::SumId, oid: Oid) -> Result<String> {
        let Some(pcdata_sum) = self.summary.child(sum, PCDATA_LABEL) else {
            return Ok(String::new());
        };
        let rel = self.summary.relation(pcdata_sum).to_owned();
        let Ok(bat) = self.db.get_mut(&rel) else {
            return Ok(String::new());
        };
        let kids: Vec<Oid> = bat
            .tails_of(oid)
            .into_iter()
            .filter_map(|v| v.as_oid())
            .collect();
        let cdata_rel = match self.summary.attr_relation(pcdata_sum, CDATA_ATTR) {
            Some(r) => r.to_owned(),
            None => return Ok(String::new()),
        };
        let mut parts = Vec::new();
        for k in kids {
            if let Some(Value::Str(text)) = self.db.get_mut(&cdata_rel)?.first_tail_of(k) {
                parts.push(text);
            }
        }
        Ok(parts.join(" "))
    }
}

impl Default for XmlStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{figure9, FIGURE9_XML};

    #[test]
    fn bulkload_and_document_walk_agree() {
        let mut a = XmlStore::new();
        let ra = a.bulkload_str("s.xml", FIGURE9_XML).unwrap();
        let mut b = XmlStore::new();
        let rb = b.insert_document("s.xml", &figure9()).unwrap();
        assert_eq!(a.reconstruct(ra).unwrap(), b.reconstruct(rb).unwrap());
        assert_eq!(
            a.db().relation_count(),
            b.db().relation_count(),
            "same relations either way"
        );
    }

    #[test]
    fn naive_loader_produces_identical_database() {
        let mut fast = XmlStore::new();
        fast.bulkload_str("s.xml", FIGURE9_XML).unwrap();
        let mut naive = XmlStore::new();
        let r = naive.bulkload_str_naive("s.xml", FIGURE9_XML).unwrap();
        assert_eq!(
            fast.db().relation_count(),
            naive.db().relation_count()
        );
        assert_eq!(naive.reconstruct(r).unwrap(), figure9());
    }

    #[test]
    fn figure12_schema_tree_has_exactly_twelve_element_paths_plus_attrs() {
        // Figure 12 numbers 12 relations for the example document:
        // /image, /image[key], /image[source], /image/date,
        // /image/date/PCDATA, /image/colors, /image/colors/histogram,
        // + PCDATA, /image/colors/saturation, + PCDATA,
        // /image/colors/version, + PCDATA.
        let mut store = XmlStore::new();
        store.bulkload_str("s.xml", FIGURE9_XML).unwrap();
        let element_paths: Vec<String> = store
            .summary()
            .element_paths()
            .iter()
            .map(|p| p.to_string())
            .collect();
        assert_eq!(
            element_paths,
            vec![
                "image",
                "image/date",
                "image/date/PCDATA",
                "image/colors",
                "image/colors/histogram",
                "image/colors/histogram/PCDATA",
                "image/colors/saturation",
                "image/colors/saturation/PCDATA",
                "image/colors/version",
                "image/colors/version/PCDATA",
            ]
        );
        let all = store.summary().all_relations();
        assert!(all.contains(&"image[key]".to_owned()));
        assert!(all.contains(&"image[source]".to_owned()));
        // The 12 relations of Figure 12 = 10 element paths + 2 attributes.
        let figure12: Vec<&String> = all
            .iter()
            .filter(|r| !r.ends_with("[rank]") && !r.ends_with("[cdata]"))
            .collect();
        assert_eq!(figure12.len(), 12);
    }

    #[test]
    fn delete_document_removes_every_trace() {
        let mut store = XmlStore::new();
        let keep = store.bulkload_str("keep.xml", FIGURE9_XML).unwrap();
        let kill = store.bulkload_str("kill.xml", FIGURE9_XML).unwrap();
        let before = store.db().association_count();
        let removed = store.delete_document(kill).unwrap();
        assert_eq!(removed, 10);
        // Exactly half of the document-payload associations are gone.
        let after = store.db().association_count();
        assert!(after < before);
        assert_eq!(store.document_count(), 1);
        assert!(store.reconstruct(kill).is_err());
        assert_eq!(store.reconstruct(keep).unwrap(), figure9());
        // Re-deleting errors.
        assert!(store.delete_document(kill).is_err());
    }

    #[test]
    fn delete_then_reinsert_round_trips() {
        let mut store = XmlStore::new();
        let r1 = store.bulkload_str("a.xml", FIGURE9_XML).unwrap();
        store.delete_document(r1).unwrap();
        let r2 = store.bulkload_str("a.xml", FIGURE9_XML).unwrap();
        assert_eq!(store.reconstruct(r2).unwrap(), figure9());
        assert_eq!(store.document_count(), 1);
    }

    #[test]
    fn source_registry_round_trips() {
        let mut store = XmlStore::new();
        let r = store.bulkload_str("http://ausopen.org/seles.xml", FIGURE9_XML).unwrap();
        assert_eq!(
            store.source_of(r),
            Some("http://ausopen.org/seles.xml".to_owned())
        );
        assert_eq!(store.root_for_source("http://ausopen.org/seles.xml"), Some(r));
        assert_eq!(store.root_for_source("nope"), None);
    }

    #[test]
    fn snapshot_restore_round_trips_documents_and_summary() {
        let mut store = XmlStore::new();
        let r1 = store.bulkload_str("a.xml", FIGURE9_XML).unwrap();
        let r2 = store.bulkload_str("b.xml", FIGURE9_XML).unwrap();
        let bytes = store.snapshot().unwrap();
        let mut back = XmlStore::restore(&bytes).unwrap();
        assert_eq!(back.document_count(), 2);
        assert_eq!(back.reconstruct(r1).unwrap(), figure9());
        assert_eq!(back.reconstruct(r2).unwrap(), figure9());
        assert_eq!(
            back.summary().all_relations(),
            store.summary().all_relations()
        );
        // The restored store keeps working: insert another document.
        let r3 = back.bulkload_str("c.xml", FIGURE9_XML).unwrap();
        assert_eq!(back.reconstruct(r3).unwrap(), figure9());
        // …and old documents can still be deleted.
        back.delete_document(r1).unwrap();
        assert!(back.reconstruct(r1).is_err());
    }

    #[test]
    fn lazy_restore_matches_eager_restore() {
        let mut store = XmlStore::new();
        let r1 = store.bulkload_str("a.xml", FIGURE9_XML).unwrap();
        let r2 = store.bulkload_str("b.xml", FIGURE9_XML).unwrap();
        let bytes = store.snapshot().unwrap();
        let mut lazy = XmlStore::restore_lazy(bytes.clone()).unwrap();
        // Opening lazily only materializes the `sys` document registry.
        assert_eq!(lazy.db().materialized_count(), 1);
        assert_eq!(lazy.document_count(), 2);
        assert_eq!(
            lazy.summary().all_relations(),
            store.summary().all_relations()
        );
        // First touch decodes; content matches the eager path.
        let mut eager = XmlStore::restore(&bytes).unwrap();
        assert_eq!(
            lazy.reconstruct(r1).unwrap(),
            eager.reconstruct(r1).unwrap()
        );
        assert_eq!(lazy.reconstruct(r2).unwrap(), figure9());
        assert!(lazy.db().materialized_count() > 1);
    }

    #[test]
    fn batched_insert_logs_one_wal_record_per_document() {
        use monet::storage::FsBackend;
        use monet::wal::{open_shared, WalHandle};

        let dir = std::env::temp_dir().join(format!(
            "monetxml_store_batch_{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let wal = open_shared(FsBackend::shared(), &dir).unwrap();
        let mut store = XmlStore::new();
        store.set_wal(WalHandle::new(wal.clone(), 7));

        let doc = figure9();
        let batch = vec![("a.xml", &doc), ("b.xml", &doc), ("c.xml", &doc)];
        let roots = store.insert_documents(batch).unwrap();
        assert_eq!(roots.len(), 3);
        assert_eq!(store.document_count(), 3);

        // One frame per document, each replayable as a plain insert.
        {
            let mut guard = wal.lock().unwrap();
            guard.flush().unwrap();
        }
        let records = wal.lock().unwrap().replay_from(0).unwrap();
        assert_eq!(records.len(), 3);
        let mut replayed = XmlStore::new();
        for rec in &records {
            let (_store_tag, op, fields) =
                monet::wal::decode_payload(&rec.payload).unwrap();
            assert_eq!(op, WAL_OP_INSERT);
            let source = String::from_utf8(fields[0].clone()).unwrap();
            let xml = String::from_utf8(fields[1].clone()).unwrap();
            replayed.bulkload_str(&source, &xml).unwrap();
        }
        assert_eq!(replayed.document_count(), 3);
        assert_eq!(
            replayed.db().association_count(),
            store.db().association_count()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn direct_text_reads_pcdata_children() {
        let mut store = XmlStore::new();
        let root = store.bulkload_str("s.xml", FIGURE9_XML).unwrap();
        let image_sum = store
            .summary()
            .resolve(&crate::path::Path::root("image"))
            .unwrap();
        // image has no direct text
        assert_eq!(store.direct_text(image_sum, root).unwrap(), "");
        let date_sum = store
            .summary()
            .resolve(&crate::path::Path::root("image").child("date"))
            .unwrap();
        let date_rel = store.summary().relation(date_sum).to_owned();
        let date_oid = store
            .db_mut()
            .get_mut(&date_rel)
            .unwrap()
            .first_tail_of(root)
            .unwrap()
            .as_oid()
            .unwrap();
        assert_eq!(store.direct_text(date_sum, date_oid).unwrap(), "999010530");
    }
}
