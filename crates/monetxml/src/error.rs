//! Error type for the XML level.

use std::fmt;

/// Errors raised while parsing, storing or reconstructing XML.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Malformed XML input; carries a byte offset and a message.
    Parse {
        /// Byte offset into the input where the problem was detected.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// The store refused an operation (unknown oid, missing relation, …).
    Store(String),
    /// An underlying BAT-store error.
    Monet(monet::Error),
    /// The caller's query budget expired mid-scan or mid-reconstruction.
    DeadlineExceeded {
        /// Nodes processed before expiry.
        nodes: usize,
        /// Which budget dimension expired.
        cause: faults::BudgetExceeded,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { offset, message } => {
                write!(f, "XML parse error at byte {offset}: {message}")
            }
            Error::Store(msg) => write!(f, "store error: {msg}"),
            Error::Monet(e) => write!(f, "monet error: {e}"),
            Error::DeadlineExceeded { nodes, cause } => {
                write!(f, "query budget expired ({cause}) after {nodes} nodes")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Monet(e) => Some(e),
            _ => None,
        }
    }
}

impl From<monet::Error> for Error {
    fn from(e: monet::Error) -> Self {
        Error::Monet(e)
    }
}

/// Result alias for XML-level operations.
pub type Result<T> = std::result::Result<T, Error>;
