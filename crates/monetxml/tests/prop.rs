//! Property tests for the XML level: the serializer/parser pair and the
//! Monet transform/inverse pair are both identities on arbitrary trees.

use monetxml::{parse_document, to_xml, Document, XmlStore};
use proptest::prelude::*;

/// A recursive strategy for arbitrary documents. Labels are drawn from a
/// small alphabet so paths collide across documents (exercising relation
/// sharing); text and attribute values include XML-hostile characters.
fn arb_document() -> impl Strategy<Value = Document> {
    let label = prop_oneof![
        Just("a".to_owned()),
        Just("b".to_owned()),
        Just("item".to_owned()),
        Just("colors".to_owned()),
    ];
    let attr_name = prop_oneof![Just("k".to_owned()), Just("src".to_owned())];
    let text = "[ -~]{1,12}".prop_filter("non-blank", |s: &String| !s.trim().is_empty());

    // Children described as a tree of (label, attrs, kids | text).
    #[derive(Debug, Clone)]
    enum Spec {
        Element(String, Vec<(String, String)>, Vec<Spec>),
        Text(String),
    }

    let leaf = prop_oneof![
        text.clone().prop_map(Spec::Text),
        (label.clone(), prop::collection::vec((attr_name.clone(), text.clone()), 0..3))
            .prop_map(|(l, a)| Spec::Element(l, dedup_attrs(a), vec![])),
    ];
    let tree = {
        let label = label.clone();
        let attr_name = attr_name.clone();
        let text = text.clone();
        leaf.prop_recursive(4, 32, 4, move |inner| {
            (
                label.clone(),
                prop::collection::vec((attr_name.clone(), text.clone()), 0..3),
                prop::collection::vec(inner, 0..4),
            )
                .prop_map(|(l, a, kids)| Spec::Element(l, dedup_attrs(a), kids))
        })
    };

    fn dedup_attrs(attrs: Vec<(String, String)>) -> Vec<(String, String)> {
        let mut seen = std::collections::HashSet::new();
        attrs
            .into_iter()
            .filter(|(n, _)| seen.insert(n.clone()))
            .collect()
    }

    fn build(doc: &mut Document, parent: monetxml::NodeId, spec: &Spec) {
        match spec {
            Spec::Text(t) => {
                doc.add_cdata(parent, t.trim());
            }
            Spec::Element(l, attrs, kids) => {
                let id = doc.add_element(parent, l.clone());
                for (n, v) in attrs {
                    doc.set_attr(id, n.clone(), v.trim().to_owned());
                }
                for k in kids {
                    build(doc, id, k);
                }
            }
        }
    }

    (
        label,
        prop::collection::vec((attr_name, text.clone()), 0..3),
        prop::collection::vec(tree, 0..4),
    )
        .prop_map(|(root_label, attrs, kids)| {
            let mut doc = Document::new(root_label);
            let root = doc.root();
            for (n, v) in dedup_attrs(attrs) {
                doc.set_attr(root, n, v.trim().to_owned());
            }
            for k in &kids {
                build(&mut doc, root, k);
            }
            doc
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn serialize_parse_round_trip(doc in arb_document()) {
        let xml = to_xml(&doc);
        let back = parse_document(&xml).unwrap();
        prop_assert_eq!(back, doc);
    }

    #[test]
    fn store_reconstruct_round_trip(doc in arb_document()) {
        let mut store = XmlStore::new();
        let root = store.insert_document("prop.xml", &doc).unwrap();
        let back = store.reconstruct(root).unwrap();
        prop_assert_eq!(back, doc);
    }

    #[test]
    fn bulkload_matches_tree_walk(doc in arb_document()) {
        let xml = to_xml(&doc);
        let mut via_sax = XmlStore::new();
        let r1 = via_sax.bulkload_str("p.xml", &xml).unwrap();
        let mut via_walk = XmlStore::new();
        let r2 = via_walk.insert_document("p.xml", &doc).unwrap();
        prop_assert_eq!(via_sax.reconstruct(r1).unwrap(), via_walk.reconstruct(r2).unwrap());
        prop_assert_eq!(via_sax.db().relation_count(), via_walk.db().relation_count());
        prop_assert_eq!(via_sax.db().association_count(), via_walk.db().association_count());
    }

    #[test]
    fn delete_restores_clean_slate(doc in arb_document()) {
        let mut store = XmlStore::new();
        let baseline_doc = {
            // One sentinel document that must survive deletions intact.
            let mut d = Document::new("sentinel");
            d.add_cdata(d.root(), "stay");
            d
        };
        let sentinel = store.insert_document("sentinel.xml", &baseline_doc).unwrap();
        let after_sentinel = store.db().association_count();
        let victim = store.insert_document("victim.xml", &doc).unwrap();
        store.delete_document(victim).unwrap();
        prop_assert_eq!(store.db().association_count(), after_sentinel);
        prop_assert_eq!(store.reconstruct(sentinel).unwrap(), baseline_doc);
    }

    #[test]
    fn load_stats_count_nodes(doc in arb_document()) {
        let mut store = XmlStore::new();
        store.insert_document("p.xml", &doc).unwrap();
        prop_assert_eq!(store.last_stats().nodes, doc.node_count());
        // The loader's live state never exceeds the element height.
        prop_assert!(store.last_stats().max_depth <= doc.height());
    }
}
