//! Structured spans, trace trees, and the slow-query log.
//!
//! [`Obs`] is the handle every subsystem holds. Disabled it is a single
//! `None` pointer and every call is a no-op (not even a clock read), so
//! uninstrumented behaviour is byte-identical. Enabled, each span costs
//! two clock reads and one histogram observation; the trace-assembly
//! mutex is touched only while a trace is actively being collected
//! ([`Obs::begin_trace`] … [`Obs::take_trace`]).

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::clock::{Clock, MonotonicClock};
use crate::flight::{FlightEvent, FlightRing};
use crate::metrics::{Histogram, Registry, DEFAULT_TIME_BUCKETS};

/// How a span (phase) ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Outcome {
    /// Completed normally.
    #[default]
    Ok,
    /// Completed with reduced quality (brownout, partial shards, …).
    Degraded,
    /// Refused before doing the work (admission, breaker, budget).
    Rejected,
    /// Gave up because a deadline expired mid-work.
    Deadline,
}

impl Outcome {
    /// Stable lower-case name, used in metric labels and trace text.
    pub fn as_str(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Degraded => "degraded",
            Outcome::Rejected => "rejected",
            Outcome::Deadline => "deadline",
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One node of an EXPLAIN-ANALYZE trace tree.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceNode {
    /// Span name (`"query"`, `"text"`, `"shard-3"`, …).
    pub name: String,
    /// Wall time in nanoseconds, as read through the injected clock.
    pub elapsed_ns: u64,
    /// Work units the span reported (rows, hits, bytes — span-defined).
    pub work: u64,
    /// How the phase ended.
    pub outcome: Outcome,
    /// Free-form annotations (`"cache=hit"`, `"brownout=reduced"`, …).
    pub notes: Vec<String>,
    /// Child phases, in completion order.
    pub children: Vec<TraceNode>,
}

impl TraceNode {
    /// Sum of direct children's elapsed time, for the sum-criterion
    /// check (children of a sequential phase must fit in the parent).
    pub fn child_elapsed_ns(&self) -> u64 {
        self.children.iter().map(|c| c.elapsed_ns).sum()
    }

    /// Renders the tree as indented text, one line per span:
    /// `name [outcome] elapsed=… work=… (notes)`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&format!(
            "{} [{}] elapsed={} work={}",
            self.name,
            self.outcome,
            format_ns(self.elapsed_ns),
            self.work
        ));
        if !self.notes.is_empty() {
            out.push_str(&format!(" ({})", self.notes.join("; ")));
        }
        out.push('\n');
        for child in &self.children {
            child.render_into(out, depth + 1);
        }
    }
}

/// Human-readable nanosecond formatting (deterministic).
fn format_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{}.{:03}us", ns / 1_000, ns % 1_000)
    } else if ns < 1_000_000_000 {
        format!("{}.{:03}ms", ns / 1_000_000, (ns / 1_000) % 1_000)
    } else {
        format!("{}.{:03}s", ns / 1_000_000_000, (ns / 1_000_000) % 1_000)
    }
}

/// One retained slow query: the label, its total time, and the trace.
#[derive(Clone, Debug)]
pub struct SlowEntry {
    /// What ran (typically the query text).
    pub label: String,
    /// Root elapsed in nanoseconds.
    pub total_ns: u64,
    /// Arrival order (monotonic across all offers ever accepted);
    /// breaks total_ns ties so eviction is deterministic.
    pub seq: u64,
    /// The full trace tree.
    pub trace: TraceNode,
}

/// In-progress bookkeeping for one span on the trace stack.
struct Pending {
    notes: Vec<String>,
    children: Vec<TraceNode>,
}

impl Pending {
    fn new() -> Pending {
        Pending {
            notes: Vec::new(),
            // Most spans have a handful of children (shards, phases);
            // pre-size so the common case never reallocates.
            children: Vec::with_capacity(4),
        }
    }
}

#[derive(Default)]
struct TraceState {
    collecting: bool,
    stack: Vec<Pending>,
    roots: Vec<TraceNode>,
}

struct SlowLog {
    threshold_ns: u64,
    capacity: usize,
    next_seq: u64,
    entries: Vec<SlowEntry>,
}

impl Default for SlowLog {
    fn default() -> Self {
        SlowLog {
            // 10ms default threshold; tune with `set_slow_threshold_ns`.
            threshold_ns: 10_000_000,
            capacity: 16,
            next_seq: 0,
            entries: Vec::new(),
        }
    }
}

struct ObsInner {
    clock: Box<dyn Clock>,
    registry: Registry,
    /// Mirrors `trace.collecting`; lets the span hot path skip the
    /// trace mutex entirely when no trace is being assembled.
    collecting: AtomicBool,
    trace: Mutex<TraceState>,
    slow: Mutex<SlowLog>,
    /// Cached `obs_span_seconds{span=…}` handles, keyed by the
    /// `&'static str` span name, so closing a span is one atomic
    /// observe instead of a label-format + registry lookup per drop.
    span_hists: Mutex<Vec<(&'static str, Histogram)>>,
    flight: Mutex<FlightRing>,
}

impl ObsInner {
    /// The cached histogram for a span name (small linear scan — the
    /// system has ~a dozen distinct span names, all `'static`).
    fn span_histogram(&self, name: &'static str) -> Histogram {
        let mut cache = lock(&self.span_hists);
        if let Some((_, h)) = cache.iter().find(|(n, _)| std::ptr::eq(*n, name) || *n == name) {
            return h.clone();
        }
        let h = self.registry.labeled_histogram(
            "obs_span_seconds",
            "Wall time per span",
            DEFAULT_TIME_BUCKETS,
            "span",
            name,
        );
        cache.push((name, h.clone()));
        h
    }
}

/// The observability handle. Cheap to clone; `Obs::disabled()` is a
/// single `None` and every operation on it is a no-op.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

// `dyn Clock` has no `Debug`, so spell the impl out.
impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Obs {
    /// The no-op handle: no clock, no registry, zero overhead.
    pub fn disabled() -> Obs {
        Obs { inner: None }
    }

    /// An enabled handle backed by real monotonic time.
    pub fn enabled() -> Obs {
        Obs::with_clock(Box::new(MonotonicClock::new()))
    }

    /// An enabled handle with an injected clock ([`crate::NoopClock`]
    /// for byte-identity checks, [`crate::ManualClock`] for
    /// deterministic trace tests).
    pub fn with_clock(clock: Box<dyn Clock>) -> Obs {
        Obs {
            inner: Some(Arc::new(ObsInner {
                clock,
                registry: Registry::new(),
                collecting: AtomicBool::new(false),
                trace: Mutex::new(TraceState::default()),
                slow: Mutex::new(SlowLog::default()),
                span_hists: Mutex::new(Vec::new()),
                flight: Mutex::new(FlightRing::default()),
            })),
        }
    }

    /// Whether this handle records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The metrics registry, when enabled.
    pub fn registry(&self) -> Option<&Registry> {
        self.inner.as_deref().map(|i| &i.registry)
    }

    /// Opens a span. Record work/outcome on the guard; dropping it
    /// closes the span, feeds the `obs_span_seconds{span=…}` histogram,
    /// and (while a trace is collecting) attaches it to the tree.
    pub fn span(&self, name: &'static str) -> Span {
        let Some(inner) = self.inner.as_ref() else {
            return Span { state: None };
        };
        let start_ns = inner.clock.now_ns();
        // The atomic mirror lets untraced spans (the steady-state hot
        // path) skip the trace mutex entirely.
        let pushed = if inner.collecting.load(Ordering::Relaxed) {
            let mut trace = lock(&inner.trace);
            if trace.collecting {
                trace.stack.push(Pending::new());
                true
            } else {
                false
            }
        } else {
            false
        };
        Span {
            state: Some(SpanState {
                obs: Arc::clone(inner),
                name,
                start_ns,
                work: 0,
                outcome: Outcome::Ok,
                notes: Vec::new(),
                pushed,
            }),
        }
    }

    /// Starts collecting the next spans into a trace tree.
    pub fn begin_trace(&self) {
        if let Some(inner) = self.inner.as_ref() {
            let mut trace = lock(&inner.trace);
            trace.collecting = true;
            trace.stack.clear();
            trace.roots.clear();
            inner.collecting.store(true, Ordering::Relaxed);
        }
    }

    /// Stops collecting and returns the assembled tree (the single
    /// root, or a synthetic `trace` node if several spans completed at
    /// top level). `None` when disabled or nothing was recorded.
    pub fn take_trace(&self) -> Option<TraceNode> {
        let inner = self.inner.as_ref()?;
        let mut trace = lock(&inner.trace);
        trace.collecting = false;
        inner.collecting.store(false, Ordering::Relaxed);
        trace.stack.clear();
        let mut roots = std::mem::take(&mut trace.roots);
        match roots.len() {
            0 => None,
            1 => roots.pop(),
            _ => Some(TraceNode {
                name: "trace".to_owned(),
                elapsed_ns: roots.iter().map(|r| r.elapsed_ns).sum(),
                work: 0,
                outcome: Outcome::Ok,
                notes: Vec::new(),
                children: roots,
            }),
        }
    }

    /// Attaches a completed child (measured elsewhere — e.g. a shard
    /// thread) to the span currently on top of the trace stack.
    pub fn record_child(
        &self,
        name: impl Into<String>,
        elapsed_ns: u64,
        work: u64,
        outcome: Outcome,
    ) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        if !inner.collecting.load(Ordering::Relaxed) {
            return;
        }
        let mut trace = lock(&inner.trace);
        if !trace.collecting {
            return;
        }
        let node = TraceNode {
            name: name.into(),
            elapsed_ns,
            work,
            outcome,
            notes: Vec::new(),
            children: Vec::new(),
        };
        match trace.stack.last_mut() {
            Some(top) => top.children.push(node),
            None => trace.roots.push(node),
        }
    }

    /// Attaches a note to the innermost open span, without needing the
    /// span guard in scope (e.g. the cache layer marking `cache=hit`).
    /// The closure runs only when a trace is actively collecting.
    pub fn annotate(&self, f: impl FnOnce() -> String) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        if !inner.collecting.load(Ordering::Relaxed) {
            return;
        }
        let mut trace = lock(&inner.trace);
        if !trace.collecting {
            return;
        }
        let note = f();
        if let Some(top) = trace.stack.last_mut() {
            top.notes.push(note);
        }
    }

    /// Sets the slow-query threshold (traces at or above it are kept).
    pub fn set_slow_threshold_ns(&self, ns: u64) {
        if let Some(inner) = self.inner.as_ref() {
            lock(&inner.slow).threshold_ns = ns;
        }
    }

    /// Sets how many slow traces the ring retains.
    pub fn set_slow_capacity(&self, cap: usize) {
        if let Some(inner) = self.inner.as_ref() {
            let mut slow = lock(&inner.slow);
            slow.capacity = cap;
            slow.entries.truncate(cap);
        }
    }

    /// Offers a finished trace to the slow log; kept only if its root
    /// elapsed meets the threshold, evicting the fastest entry when the
    /// ring is full.
    pub fn offer_slow(&self, label: impl Into<String>, trace: &TraceNode) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        let label = label.into();
        {
            let mut slow = lock(&inner.slow);
            if trace.elapsed_ns < slow.threshold_ns || slow.capacity == 0 {
                return;
            }
            slow.next_seq += 1;
            let seq = slow.next_seq;
            slow.entries.push(SlowEntry {
                label: label.clone(),
                total_ns: trace.elapsed_ns,
                seq,
                trace: trace.clone(),
            });
            // Slowest first; the arrival seq breaks wall-time ties so
            // eviction under equal times is deterministic (earliest
            // arrivals survive).
            slow.entries
                .sort_by_key(|e| (std::cmp::Reverse(e.total_ns), e.seq));
            let cap = slow.capacity;
            slow.entries.truncate(cap);
        }
        let elapsed_ns = trace.elapsed_ns;
        self.record_event("slow_query", || format!("{label} total_ns={elapsed_ns}"));
    }

    /// Snapshot of the slow-query log, slowest first.
    pub fn slow_queries(&self) -> Vec<SlowEntry> {
        match self.inner.as_ref() {
            Some(inner) => lock(&inner.slow).entries.clone(),
            None => Vec::new(),
        }
    }

    /// Appends an event to the flight recorder. The detail closure
    /// runs only on an enabled handle, so disabled runs pay nothing.
    pub fn record_event(&self, kind: &'static str, detail: impl FnOnce() -> String) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        let at_ns = inner.clock.now_ns();
        let detail = detail();
        lock(&inner.flight).push(at_ns, kind, detail);
    }

    /// Snapshot of the flight-recorder ring, oldest first.
    pub fn flight_events(&self) -> Vec<FlightEvent> {
        match self.inner.as_ref() {
            Some(inner) => lock(&inner.flight).snapshot(),
            None => Vec::new(),
        }
    }

    /// Total events ever recorded (including ones the ring evicted).
    pub fn flight_total_recorded(&self) -> u64 {
        match self.inner.as_ref() {
            Some(inner) => lock(&inner.flight).total_recorded(),
            None => 0,
        }
    }

    /// Resizes the flight-recorder ring (default 256 events).
    pub fn set_flight_capacity(&self, cap: usize) {
        if let Some(inner) = self.inner.as_ref() {
            lock(&inner.flight).set_capacity(cap);
        }
    }

    /// The injected clock's current reading (0 when disabled).
    pub fn now_ns(&self) -> u64 {
        match self.inner.as_ref() {
            Some(inner) => inner.clock.now_ns(),
            None => 0,
        }
    }
}

struct SpanState {
    obs: Arc<ObsInner>,
    name: &'static str,
    start_ns: u64,
    work: u64,
    outcome: Outcome,
    notes: Vec<String>,
    /// Whether this span pushed a pending frame onto the trace stack.
    pushed: bool,
}

/// An open span; closes (and records) on drop.
pub struct Span {
    state: Option<SpanState>,
}

impl Span {
    /// Adds `n` work units (rows, hits, bytes — whatever the span
    /// measures).
    pub fn add_work(&mut self, n: u64) {
        if let Some(s) = self.state.as_mut() {
            s.work = s.work.saturating_add(n);
        }
    }

    /// Sets how the phase ended (defaults to [`Outcome::Ok`]).
    pub fn set_outcome(&mut self, outcome: Outcome) {
        if let Some(s) = self.state.as_mut() {
            s.outcome = outcome;
        }
    }

    /// Attaches a note. The closure runs only when the span is live,
    /// so disabled runs pay nothing for the formatting.
    pub fn note(&mut self, f: impl FnOnce() -> String) {
        if let Some(s) = self.state.as_mut() {
            s.notes.push(f());
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(s) = self.state.take() else {
            return;
        };
        let end_ns = s.obs.clock.now_ns();
        let elapsed_ns = end_ns.saturating_sub(s.start_ns);
        s.obs.span_histogram(s.name).observe_ns(elapsed_ns);
        if s.outcome != Outcome::Ok {
            s.obs
                .registry
                .labeled_counter(
                    "obs_span_abnormal_total",
                    "Spans that ended degraded/rejected/deadline",
                    "span",
                    &format!("{}:{}", s.name, s.outcome),
                )
                .inc();
        }
        if s.pushed {
            let mut trace = lock(&s.obs.trace);
            if let Some(pending) = trace.stack.pop() {
                let mut notes = pending.notes;
                notes.extend(s.notes);
                let node = TraceNode {
                    name: s.name.to_owned(),
                    elapsed_ns,
                    work: s.work,
                    outcome: s.outcome,
                    notes,
                    children: pending.children,
                };
                match trace.stack.last_mut() {
                    Some(parent) => parent.children.push(node),
                    None => trace.roots.push(node),
                }
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn manual() -> (Obs, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let shared = Arc::clone(&clock);
        struct Shared(Arc<ManualClock>);
        impl Clock for Shared {
            fn now_ns(&self) -> u64 {
                self.0.now_ns()
            }
        }
        (Obs::with_clock(Box::new(Shared(shared))), clock)
    }

    #[test]
    fn disabled_obs_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        assert!(obs.registry().is_none());
        obs.begin_trace();
        let mut span = obs.span("query");
        span.add_work(5);
        drop(span);
        assert!(obs.take_trace().is_none());
        assert!(obs.slow_queries().is_empty());
    }

    #[test]
    fn nested_spans_assemble_a_tree() {
        let (obs, clock) = manual();
        obs.begin_trace();
        {
            let mut root = obs.span("query");
            root.add_work(10);
            {
                let mut child = obs.span("text");
                clock.advance_ns(400);
                child.add_work(7);
                child.set_outcome(Outcome::Degraded);
                child.note(|| "shards_failed=1".to_owned());
            }
            clock.advance_ns(100);
        }
        let trace = obs.take_trace().unwrap();
        assert_eq!(trace.name, "query");
        assert_eq!(trace.elapsed_ns, 500);
        assert_eq!(trace.work, 10);
        assert_eq!(trace.children.len(), 1);
        let child = &trace.children[0];
        assert_eq!(child.name, "text");
        assert_eq!(child.elapsed_ns, 400);
        assert_eq!(child.outcome, Outcome::Degraded);
        assert_eq!(child.notes, vec!["shards_failed=1".to_owned()]);
        assert!(trace.child_elapsed_ns() <= trace.elapsed_ns);
        let text = trace.render();
        assert!(text.contains("query [ok] elapsed=500ns work=10"), "{text}");
        assert!(
            text.contains("  text [degraded] elapsed=400ns work=7 (shards_failed=1)"),
            "{text}"
        );
    }

    #[test]
    fn record_child_and_annotate_attach_to_open_span() {
        let (obs, _clock) = manual();
        obs.begin_trace();
        {
            let _root = obs.span("query");
            obs.record_child("shard-0", 120, 4, Outcome::Ok);
            obs.record_child("shard-1", 90, 2, Outcome::Deadline);
            obs.annotate(|| "cache=miss".to_owned());
        }
        let trace = obs.take_trace().unwrap();
        assert_eq!(trace.children.len(), 2);
        assert_eq!(trace.children[1].outcome, Outcome::Deadline);
        assert_eq!(trace.notes, vec!["cache=miss".to_owned()]);
    }

    #[test]
    fn spans_outside_a_trace_still_feed_metrics() {
        let (obs, clock) = manual();
        {
            let _s = obs.span("text");
            clock.advance_ns(1_000);
        }
        assert!(obs.take_trace().is_none());
        let text = obs.registry().unwrap().render_text();
        assert!(text.contains("obs_span_seconds_count{span=\"text\"} 1"), "{text}");
    }

    #[test]
    fn slow_log_keeps_slowest_and_respects_capacity() {
        let (obs, _clock) = manual();
        obs.set_slow_threshold_ns(100);
        obs.set_slow_capacity(2);
        let node = |ns: u64| TraceNode {
            name: "query".to_owned(),
            elapsed_ns: ns,
            work: 0,
            outcome: Outcome::Ok,
            notes: Vec::new(),
            children: Vec::new(),
        };
        obs.offer_slow("fast", &node(50)); // below threshold: dropped
        obs.offer_slow("a", &node(200));
        obs.offer_slow("b", &node(400));
        obs.offer_slow("c", &node(300));
        let slow = obs.slow_queries();
        assert_eq!(slow.len(), 2);
        assert_eq!(slow[0].label, "b");
        assert_eq!(slow[1].label, "c");
    }

    #[test]
    fn slow_log_breaks_ties_by_arrival_order() {
        let (obs, _clock) = manual();
        obs.set_slow_threshold_ns(100);
        obs.set_slow_capacity(2);
        let node = |ns: u64| TraceNode {
            name: "query".to_owned(),
            elapsed_ns: ns,
            work: 0,
            outcome: Outcome::Ok,
            notes: Vec::new(),
            children: Vec::new(),
        };
        obs.offer_slow("first", &node(300));
        obs.offer_slow("second", &node(300));
        obs.offer_slow("third", &node(300));
        let slow = obs.slow_queries();
        assert_eq!(slow.len(), 2);
        // All equal: the earliest arrivals survive, in arrival order.
        assert_eq!(slow[0].label, "first");
        assert_eq!(slow[1].label, "second");
        assert!(slow[0].seq < slow[1].seq);
        // A genuinely slower trace still wins over the tie group.
        obs.offer_slow("slowest", &node(500));
        let slow = obs.slow_queries();
        assert_eq!(slow[0].label, "slowest");
        assert_eq!(slow[1].label, "first");
    }

    #[test]
    fn retained_slow_queries_leave_a_flight_event() {
        let (obs, _clock) = manual();
        obs.set_slow_threshold_ns(100);
        let node = |ns: u64| TraceNode {
            name: "query".to_owned(),
            elapsed_ns: ns,
            work: 0,
            outcome: Outcome::Ok,
            notes: Vec::new(),
            children: Vec::new(),
        };
        obs.offer_slow("fast", &node(50)); // below threshold: no event
        obs.offer_slow("slow", &node(250));
        let events = obs.flight_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "slow_query");
        assert!(events[0].detail.contains("slow"), "{}", events[0].detail);
        assert!(events[0].detail.contains("total_ns=250"), "{}", events[0].detail);
    }

    #[test]
    fn flight_recorder_is_bounded_and_inert_when_disabled() {
        let disabled = Obs::disabled();
        disabled.record_event("test", || unreachable!("closure must not run"));
        assert!(disabled.flight_events().is_empty());
        assert_eq!(disabled.now_ns(), 0);

        let (obs, clock) = manual();
        obs.set_flight_capacity(3);
        clock.advance_ns(5);
        for i in 0..5u32 {
            obs.record_event("admission", move || format!("step={i}"));
        }
        let events = obs.flight_events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].detail, "step=2");
        assert_eq!(events[2].detail, "step=4");
        assert_eq!(events[2].seq, 5);
        assert_eq!(events[2].at_ns, 5);
        assert_eq!(obs.flight_total_recorded(), 5);
    }

    #[test]
    fn untraced_spans_skip_the_trace_stack_but_feed_metrics() {
        let (obs, clock) = manual();
        {
            let _s = obs.span("query");
            clock.advance_ns(42);
        }
        // No begin_trace: nothing pending, nothing collected.
        assert!(obs.take_trace().is_none());
        let text = obs.registry().unwrap().render_text();
        assert!(text.contains("obs_span_seconds_count{span=\"query\"} 1"), "{text}");
    }

    #[test]
    fn format_ns_is_stable() {
        assert_eq!(format_ns(0), "0ns");
        assert_eq!(format_ns(999), "999ns");
        assert_eq!(format_ns(1_500), "1.500us");
        assert_eq!(format_ns(2_030_000), "2.030ms");
        assert_eq!(format_ns(3_004_000_000), "3.004s");
    }
}
