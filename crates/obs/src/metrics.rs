//! The metrics registry: counters, gauges, fixed-bucket histograms.
//!
//! Registration goes through a mutex once; the returned handles are
//! `Arc`'d atomics, so the hot path (a query incrementing a counter, a
//! span observing a histogram) is a single atomic operation — no lock,
//! no allocation, no formatting. Formatting happens only at exposition
//! time ([`Registry::render_text`] / [`Registry::render_json`]).
//!
//! # Naming scheme
//!
//! `<crate>_<subsystem>_<what>[_total|_seconds]`, e.g.
//! `ir_shard_answers_total` or `monet_wal_flush_seconds`. One optional
//! label per family (`acoi_breaker_state{detector="segment"}`) keeps
//! the exposition Prometheus-parsable without dragging in a label
//! combinatorics engine.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Default latency buckets (seconds): 1µs … 10s.
pub const DEFAULT_TIME_BUCKETS: &[f64] = &[
    1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 10.0,
];

/// Default work-unit buckets: 1 … 100k units.
pub const WORK_BUCKETS: &[f64] = &[
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0, 10_000.0, 100_000.0,
];

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// A detached counter (not attached to any registry). Recording
    /// into it is harmless; it is what disabled call sites hold.
    pub fn detached() -> Counter {
        Counter::default()
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// A detached gauge (not attached to any registry).
    pub fn detached() -> Gauge {
        Gauge::default()
    }

    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    bounds: &'static [f64],
    /// One count per bound, plus the +Inf bucket at the end.
    counts: Vec<AtomicU64>,
    /// Sum of observations, in micro-units (1e-6 of the observed unit),
    /// so the sum accumulates atomically without a float CAS loop.
    sum_micro: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram. Buckets are chosen at registration and
/// never change, so observation is bucket search + two atomic adds.
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    fn with_bounds(bounds: &'static [f64]) -> Histogram {
        Histogram {
            inner: Arc::new(HistogramInner {
                bounds,
                counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                sum_micro: AtomicU64::new(0),
                count: AtomicU64::new(0),
            }),
        }
    }

    /// A detached histogram (default time buckets, no registry).
    pub fn detached() -> Histogram {
        Histogram::with_bounds(DEFAULT_TIME_BUCKETS)
    }

    /// Records one observation (in the unit the bounds are in).
    pub fn observe(&self, v: f64) {
        let idx = self
            .inner
            .bounds
            .iter()
            .position(|b| v <= *b)
            .unwrap_or(self.inner.bounds.len());
        if let Some(slot) = self.inner.counts.get(idx) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
        let micro = (v * 1e6).max(0.0);
        let micro = if micro >= u64::MAX as f64 {
            u64::MAX
        } else {
            micro as u64
        };
        self.inner.sum_micro.fetch_add(micro, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds against second-unit bounds.
    pub fn observe_ns(&self, ns: u64) {
        self.observe(ns as f64 * 1e-9);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of observations (in the bound unit).
    pub fn sum(&self) -> f64 {
        self.inner.sum_micro.load(Ordering::Relaxed) as f64 * 1e-6
    }

    fn bucket_counts(&self) -> Vec<u64> {
        self.inner
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Point-in-time structured snapshot: per-bucket (non-cumulative)
    /// counts, the +Inf bucket last, plus sum and count. This is what
    /// the time-series recorder diffs to reconstruct windowed
    /// quantiles ([`crate::timeseries`]).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.inner.bounds.to_vec(),
            buckets: self.bucket_counts(),
            sum: self.sum(),
            count: self.count(),
        }
    }
}

/// A self-contained copy of one histogram series at one instant.
/// `buckets` are **non-cumulative** per-bucket counts with the +Inf
/// bucket last (`buckets.len() == bounds.len() + 1`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bounds of the finite buckets, ascending.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (not cumulative), +Inf last.
    pub buckets: Vec<u64>,
    /// Sum of all observations, in the bound unit.
    pub sum: f64,
    /// Total observation count.
    pub count: u64,
}

/// A structured point-in-time copy of every series in a [`Registry`],
/// keyed exactly like [`Registry::render_json`]: `name` for unlabelled
/// series, `name{key="value"}` for labelled ones.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter values by series key.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by series key.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by series key.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Registration-time metadata of one metric family, for hygiene
/// audits: the self-test over naming conventions and help text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FamilyMeta {
    /// Family name (`ir_queries_total`, `obs_span_seconds`, …).
    pub name: &'static str,
    /// Help text given at first registration.
    pub help: &'static str,
    /// `"counter"`, `"gauge"` or `"histogram"`.
    pub kind: &'static str,
    /// The label key, for labelled families.
    pub label_key: Option<&'static str>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Clone, Debug)]
enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Family {
    help: &'static str,
    kind: Kind,
    /// Label key, for labelled families; `None` means the family has
    /// exactly one unlabelled series (under the `""` key).
    label_key: Option<&'static str>,
    series: BTreeMap<String, Series>,
}

#[derive(Debug, Default)]
struct Inner {
    families: BTreeMap<&'static str, Family>,
}

/// The metric registry: the single pane of glass every subsystem
/// registers into. Shareable (`Arc<Registry>` or embedded in
/// [`crate::Obs`]); registration locks, recording does not.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A panic while holding the registration lock cannot corrupt
        // the map (all mutations are single inserts); keep serving.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn series(
        &self,
        name: &'static str,
        help: &'static str,
        kind: Kind,
        label: Option<(&'static str, &str)>,
        make: impl FnOnce() -> Series,
    ) -> Series {
        let mut inner = self.lock();
        let family = inner.families.entry(name).or_insert_with(|| Family {
            help,
            kind,
            label_key: label.map(|(k, _)| k),
            series: BTreeMap::new(),
        });
        // Re-fetching an existing family with the same shape is the
        // normal handle-sharing idiom; re-registering the *name* with a
        // different shape is a bug that would silently cross wires, so
        // it fails loudly (registry hygiene contract).
        assert!(
            family.kind == kind,
            "metric family `{name}` is already registered as a {}; \
             refusing duplicate registration as a {}",
            family.kind.as_str(),
            kind.as_str()
        );
        let label_key = label.map(|(k, _)| k);
        assert!(
            family.label_key == label_key,
            "metric family `{name}` is already registered with label key {:?}; \
             refusing duplicate registration with label key {:?}",
            family.label_key,
            label_key
        );
        let key = label.map(|(_, v)| v.to_owned()).unwrap_or_default();
        family.series.entry(key).or_insert_with(make).clone()
    }

    /// Registers (or re-fetches) an unlabelled counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Counter {
        match self.series(name, help, Kind::Counter, None, || {
            Series::Counter(Counter::default())
        }) {
            Series::Counter(c) => c,
            _ => Counter::detached(),
        }
    }

    /// Registers (or re-fetches) a counter series under a label.
    pub fn labeled_counter(
        &self,
        name: &'static str,
        help: &'static str,
        label_key: &'static str,
        label: &str,
    ) -> Counter {
        match self.series(name, help, Kind::Counter, Some((label_key, label)), || {
            Series::Counter(Counter::default())
        }) {
            Series::Counter(c) => c,
            _ => Counter::detached(),
        }
    }

    /// Registers (or re-fetches) an unlabelled gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Gauge {
        match self.series(name, help, Kind::Gauge, None, || {
            Series::Gauge(Gauge::default())
        }) {
            Series::Gauge(g) => g,
            _ => Gauge::detached(),
        }
    }

    /// Registers (or re-fetches) a gauge series under a label.
    pub fn labeled_gauge(
        &self,
        name: &'static str,
        help: &'static str,
        label_key: &'static str,
        label: &str,
    ) -> Gauge {
        match self.series(name, help, Kind::Gauge, Some((label_key, label)), || {
            Series::Gauge(Gauge::default())
        }) {
            Series::Gauge(g) => g,
            _ => Gauge::detached(),
        }
    }

    /// Registers (or re-fetches) an unlabelled fixed-bucket histogram.
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        bounds: &'static [f64],
    ) -> Histogram {
        match self.series(name, help, Kind::Histogram, None, || {
            Series::Histogram(Histogram::with_bounds(bounds))
        }) {
            Series::Histogram(h) => {
                assert_bounds(name, &h, bounds);
                h
            }
            _ => Histogram::detached(),
        }
    }

    /// Registers (or re-fetches) a histogram series under a label.
    pub fn labeled_histogram(
        &self,
        name: &'static str,
        help: &'static str,
        bounds: &'static [f64],
        label_key: &'static str,
        label: &str,
    ) -> Histogram {
        match self.series(
            name,
            help,
            Kind::Histogram,
            Some((label_key, label)),
            || Series::Histogram(Histogram::with_bounds(bounds)),
        ) {
            Series::Histogram(h) => {
                assert_bounds(name, &h, bounds);
                h
            }
            _ => Histogram::detached(),
        }
    }

    /// Every registered family name, sorted.
    pub fn family_names(&self) -> Vec<&'static str> {
        self.lock().families.keys().copied().collect()
    }

    /// Registration metadata of every family (name, help, kind, label
    /// key), sorted by name — the input to registry hygiene audits.
    pub fn family_metas(&self) -> Vec<FamilyMeta> {
        self.lock()
            .families
            .iter()
            .map(|(name, family)| FamilyMeta {
                name,
                help: family.help,
                kind: family.kind.as_str(),
                label_key: family.label_key,
            })
            .collect()
    }

    /// A structured point-in-time copy of every series: counters and
    /// gauges by value, histograms with per-bucket counts. One pass
    /// under the registration lock reading relaxed atomics — cheap
    /// enough for a periodic sampler tick, and the returned value is
    /// fully detached from the live registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        let mut snap = MetricsSnapshot::default();
        for (name, family) in &inner.families {
            for (label_value, series) in &family.series {
                let key = match family.label_key {
                    Some(k) => format!("{name}{{{k}=\"{label_value}\"}}"),
                    None => (*name).to_owned(),
                };
                match series {
                    Series::Counter(c) => {
                        snap.counters.insert(key, c.get());
                    }
                    Series::Gauge(g) => {
                        snap.gauges.insert(key, g.get());
                    }
                    Series::Histogram(h) => {
                        snap.histograms.insert(key, h.snapshot());
                    }
                }
            }
        }
        snap
    }

    /// Prometheus-style text exposition: `# HELP` / `# TYPE` headers
    /// followed by one line per series (histograms expand into
    /// `_bucket`/`_sum`/`_count`).
    pub fn render_text(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        for (name, family) in &inner.families {
            out.push_str(&format!("# HELP {name} {}\n", family.help));
            out.push_str(&format!("# TYPE {name} {}\n", family.kind.as_str()));
            for (label_value, series) in &family.series {
                let label = match family.label_key {
                    Some(key) => format!("{{{key}=\"{label_value}\"}}"),
                    None => String::new(),
                };
                match series {
                    Series::Counter(c) => {
                        out.push_str(&format!("{name}{label} {}\n", c.get()));
                    }
                    Series::Gauge(g) => {
                        out.push_str(&format!("{name}{label} {}\n", g.get()));
                    }
                    Series::Histogram(h) => {
                        let counts = h.bucket_counts();
                        let mut cumulative = 0u64;
                        for (i, bound) in h.inner.bounds.iter().enumerate() {
                            cumulative += counts.get(i).copied().unwrap_or(0);
                            let le = bucket_label(family.label_key, label_value, *bound);
                            out.push_str(&format!("{name}_bucket{le} {cumulative}\n"));
                        }
                        cumulative += counts.last().copied().unwrap_or(0);
                        let le = inf_label(family.label_key, label_value);
                        out.push_str(&format!("{name}_bucket{le} {cumulative}\n"));
                        out.push_str(&format!("{name}_sum{label} {}\n", fmt_f64(h.sum())));
                        out.push_str(&format!("{name}_count{label} {}\n", h.count()));
                    }
                }
            }
        }
        out
    }

    /// JSON dump of every series, for benches and machine diffing:
    /// `{"name": 3, "labelled{k=\"v\"}": 7, "hist": {"sum": …}}`.
    pub fn render_json(&self) -> crate::report::Json {
        use crate::report::Json;
        let inner = self.lock();
        let mut entries = Vec::new();
        for (name, family) in &inner.families {
            for (label_value, series) in &family.series {
                let key = match family.label_key {
                    Some(k) => format!("{name}{{{k}=\"{label_value}\"}}"),
                    None => (*name).to_owned(),
                };
                let value = match series {
                    Series::Counter(c) => Json::Int(c.get() as i64),
                    Series::Gauge(g) => Json::Int(g.get()),
                    Series::Histogram(h) => Json::Obj(vec![
                        ("count".to_owned(), Json::Int(h.count() as i64)),
                        ("sum".to_owned(), Json::Num(h.sum())),
                    ]),
                };
                entries.push((key, value));
            }
        }
        Json::Obj(entries)
    }
}

/// Re-registering a histogram family must keep its bucket layout:
/// silently returning a handle with *different* bounds would make the
/// recorded distribution unreadable.
fn assert_bounds(name: &str, h: &Histogram, bounds: &'static [f64]) {
    assert!(
        h.inner.bounds == bounds,
        "histogram family `{name}` is already registered with buckets {:?}; \
         refusing duplicate registration with buckets {bounds:?}",
        h.inner.bounds
    );
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

fn bucket_label(label_key: Option<&str>, label_value: &str, bound: f64) -> String {
    match label_key {
        Some(key) => format!("{{{key}=\"{label_value}\",le=\"{bound}\"}}"),
        None => format!("{{le=\"{bound}\"}}"),
    }
}

fn inf_label(label_key: Option<&str>, label_value: &str) -> String {
    match label_key {
        Some(key) => format!("{{{key}=\"{label_value}\",le=\"+Inf\"}}"),
        None => "{le=\"+Inf\"}".to_owned(),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_state_across_handles() {
        let r = Registry::new();
        let a = r.counter("test_total", "help");
        let b = r.counter("test_total", "help");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(b.get(), 3);
    }

    #[test]
    fn gauges_move_both_ways() {
        let r = Registry::new();
        let g = r.gauge("depth", "queue depth");
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_text() {
        let r = Registry::new();
        let h = r.histogram("lat_seconds", "latency", &[0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(5.0);
        let text = r.render_text();
        assert!(text.contains("lat_seconds_bucket{le=\"0.1\"} 1"), "{text}");
        assert!(text.contains("lat_seconds_bucket{le=\"1\"} 2"), "{text}");
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("lat_seconds_count 3"), "{text}");
        assert!((h.sum() - 5.55).abs() < 1e-6);
    }

    #[test]
    fn labelled_series_render_with_their_label() {
        let r = Registry::new();
        let a = r.labeled_gauge("breaker_state", "state", "detector", "segment");
        let b = r.labeled_gauge("breaker_state", "state", "detector", "tennis");
        a.set(2);
        b.set(0);
        let text = r.render_text();
        assert!(text.contains("breaker_state{detector=\"segment\"} 2"), "{text}");
        assert!(text.contains("breaker_state{detector=\"tennis\"} 0"), "{text}");
        // One HELP/TYPE header per family, not per series.
        assert_eq!(text.matches("# TYPE breaker_state gauge").count(), 1);
    }

    #[test]
    fn every_family_appears_in_text_and_names() {
        let r = Registry::new();
        r.counter("a_total", "a");
        r.gauge("b_now", "b");
        r.histogram("c_seconds", "c", DEFAULT_TIME_BUCKETS);
        let names = r.family_names();
        assert_eq!(names, vec!["a_total", "b_now", "c_seconds"]);
        let text = r.render_text();
        for n in names {
            assert!(text.contains(&format!("# TYPE {n} ")), "{n} missing");
        }
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn duplicate_registration_under_another_kind_panics() {
        let r = Registry::new();
        r.counter("dup_total", "first");
        r.gauge("dup_total", "second");
    }

    #[test]
    #[should_panic(expected = "already registered with label key")]
    fn duplicate_registration_with_another_label_key_panics() {
        let r = Registry::new();
        r.labeled_counter("dup_l_total", "first", "shard", "0");
        r.counter("dup_l_total", "second");
    }

    #[test]
    #[should_panic(expected = "refusing duplicate registration with buckets")]
    fn duplicate_histogram_with_other_buckets_panics() {
        let r = Registry::new();
        r.histogram("dup_seconds", "first", DEFAULT_TIME_BUCKETS);
        r.histogram("dup_seconds", "second", WORK_BUCKETS);
    }

    #[test]
    fn family_metas_expose_help_kind_and_label_key() {
        let r = Registry::new();
        r.counter("a_total", "counts a");
        r.labeled_gauge("b_now", "gauges b", "shard", "0");
        let metas = r.family_metas();
        assert_eq!(metas.len(), 2);
        assert_eq!(metas[0].name, "a_total");
        assert_eq!(metas[0].kind, "counter");
        assert_eq!(metas[0].help, "counts a");
        assert_eq!(metas[0].label_key, None);
        assert_eq!(metas[1].kind, "gauge");
        assert_eq!(metas[1].label_key, Some("shard"));
    }

    #[test]
    fn snapshot_copies_every_series_with_bucket_counts() {
        let r = Registry::new();
        r.counter("c_total", "c").add(3);
        r.labeled_gauge("g_now", "g", "k", "v").set(-7);
        let h = r.histogram("h_seconds", "h", &[0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(9.0);
        let snap = r.snapshot();
        assert_eq!(snap.counters.get("c_total"), Some(&3));
        assert_eq!(snap.gauges.get("g_now{k=\"v\"}"), Some(&-7));
        let hs = snap.histograms.get("h_seconds").unwrap();
        assert_eq!(hs.bounds, vec![0.1, 1.0]);
        assert_eq!(hs.buckets, vec![1, 1, 1]);
        assert_eq!(hs.count, 3);
        assert!((hs.sum - 9.55).abs() < 1e-6);
        // The snapshot is detached: further observations do not move it.
        h.observe(0.5);
        assert_eq!(hs.count, 3);
    }

    #[test]
    fn json_dump_contains_every_series() {
        let r = Registry::new();
        r.counter("a_total", "a").add(4);
        r.labeled_gauge("g", "g", "k", "v").set(-2);
        let json = r.render_json().render();
        assert!(json.contains("\"a_total\": 4"), "{json}");
        assert!(json.contains("\"g{k=\\\"v\\\"}\": -2"), "{json}");
    }
}
