//! The black-box flight recorder: a bounded ring of operational
//! events, fed from the system's existing choke points (admission
//! ladder transitions, control-plane decisions, maintenance
//! commit/abort, replica failovers, slow queries, SLO alerts).
//!
//! The ring answers the question a metrics scrape cannot: *what
//! happened just before things went wrong*. It keeps the most recent
//! `capacity` events; [`crate::Obs::record_event`] appends (a no-op on
//! a disabled handle — the detail closure never runs), and
//! [`crate::Obs::flight_events`] snapshots the ring for an incident
//! report.

use crate::report::Json;

/// Default number of events the ring retains.
pub(crate) const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// One recorded operational event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotonic event counter (survives ring eviction).
    pub seq: u64,
    /// Clock reading at record time (0 under a [`crate::NoopClock`]).
    pub at_ns: u64,
    /// Event category: `"admission"`, `"control"`, `"maintenance"`,
    /// `"failover"`, `"slow_query"`, `"slo"`, `"incident"`, …
    pub kind: &'static str,
    /// Free-form description of what happened.
    pub detail: String,
}

impl FlightEvent {
    /// The event as a JSON object, for incident reports.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("seq".to_owned(), Json::Int(self.seq as i64)),
            ("at_ns".to_owned(), Json::Int(self.at_ns as i64)),
            ("kind".to_owned(), Json::str(self.kind)),
            ("detail".to_owned(), Json::str(self.detail.clone())),
        ])
    }
}

/// The bounded ring behind [`crate::Obs`]'s flight recorder.
#[derive(Debug)]
pub(crate) struct FlightRing {
    capacity: usize,
    next_seq: u64,
    events: std::collections::VecDeque<FlightEvent>,
}

impl Default for FlightRing {
    fn default() -> Self {
        FlightRing {
            capacity: DEFAULT_FLIGHT_CAPACITY,
            next_seq: 0,
            events: std::collections::VecDeque::new(),
        }
    }
}

impl FlightRing {
    pub(crate) fn push(&mut self, at_ns: u64, kind: &'static str, detail: String) {
        if self.capacity == 0 {
            return;
        }
        self.next_seq += 1;
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(FlightEvent {
            seq: self.next_seq,
            at_ns,
            kind,
            detail,
        });
    }

    pub(crate) fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.events.len() > capacity {
            self.events.pop_front();
        }
    }

    pub(crate) fn snapshot(&self) -> Vec<FlightEvent> {
        self.events.iter().cloned().collect()
    }

    pub(crate) fn total_recorded(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_seq_survives_eviction() {
        let mut ring = FlightRing::default();
        ring.set_capacity(2);
        ring.push(1, "a", "one".to_owned());
        ring.push(2, "b", "two".to_owned());
        ring.push(3, "c", "three".to_owned());
        let events = ring.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 2);
        assert_eq!(events[1].seq, 3);
        assert_eq!(events[1].kind, "c");
        assert_eq!(ring.total_recorded(), 3);
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let mut ring = FlightRing::default();
        ring.set_capacity(0);
        ring.push(1, "a", "one".to_owned());
        assert!(ring.snapshot().is_empty());
        assert_eq!(ring.total_recorded(), 0);
    }

    #[test]
    fn event_json_shape_is_stable() {
        let e = FlightEvent {
            seq: 7,
            at_ns: 42,
            kind: "control",
            detail: "split".to_owned(),
        };
        let text = e.to_json().render();
        assert!(text.contains("\"seq\": 7"), "{text}");
        assert!(text.contains("\"kind\": \"control\""), "{text}");
        assert!(text.contains("\"detail\": \"split\""), "{text}");
    }
}
