//! Telemetry history: a ring-buffer recorder that samples the shared
//! [`Registry`] on a tick and serves **windowed** aggregates.
//!
//! A metrics scrape answers "what is the counter now"; operations
//! questions are about *windows* — "what was the p99 over the last 8
//! ticks", "what fraction of queries were rejected in the last
//! minute". The [`Recorder`] keeps the last `capacity` full
//! [`MetricsSnapshot`]s and reconstructs windowed deltas from them:
//! counter deltas (reset-aware, so a restarted process never produces
//! a negative rate), delta rates per second, and windowed quantiles
//! rebuilt from histogram-bucket deltas.
//!
//! The recorder is driven by the same caller loop that drives
//! `ControlPlane::tick`; it holds no background thread and costs
//! nothing unless [`Recorder::record`] is called.

use std::collections::VecDeque;

use crate::metrics::{HistogramSnapshot, MetricsSnapshot, Registry};

/// One recorded sample: the whole registry at one tick.
#[derive(Clone, Debug)]
pub struct TickSample {
    /// Monotonic tick number (1-based; survives ring eviction).
    pub tick: u64,
    /// Clock reading when the sample was taken.
    pub at_ns: u64,
    /// Every counter, gauge, and histogram at that instant.
    pub metrics: MetricsSnapshot,
}

/// Ring-buffer recorder over registry snapshots.
#[derive(Debug)]
pub struct Recorder {
    capacity: usize,
    tick: u64,
    evicted: bool,
    samples: VecDeque<TickSample>,
}

impl Recorder {
    /// A recorder retaining the last `capacity` ticks.
    pub fn new(capacity: usize) -> Recorder {
        Recorder {
            capacity: capacity.max(1),
            tick: 0,
            evicted: false,
            samples: VecDeque::new(),
        }
    }

    /// Samples the registry. Counts itself in
    /// `obs_timeseries_ticks_total` (before snapshotting, so the
    /// sample always contains its own tick). Returns the tick number.
    pub fn record(&mut self, registry: &Registry, at_ns: u64) -> u64 {
        registry
            .counter("obs_timeseries_ticks_total", "Telemetry recorder ticks taken")
            .inc();
        self.tick += 1;
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
            self.evicted = true;
        }
        self.samples.push_back(TickSample {
            tick: self.tick,
            at_ns,
            metrics: registry.snapshot(),
        });
        self.tick
    }

    /// The current tick number (0 before the first [`Recorder::record`]).
    pub fn current_tick(&self) -> u64 {
        self.tick
    }

    /// How many samples are currently retained.
    pub fn history_len(&self) -> usize {
        self.samples.len()
    }

    /// The newest sample, if any.
    pub fn latest(&self) -> Option<&TickSample> {
        self.samples.back()
    }

    /// The baseline sample for a `window`-tick lookback, or `None`
    /// when the window reaches past the start of (unevicted) history —
    /// in which case deltas fall back to an implicit all-zero baseline
    /// ("since process start").
    fn baseline_sample(&self, window: usize) -> Option<&TickSample> {
        let len = self.samples.len();
        if len == 0 {
            return None;
        }
        if window < len {
            self.samples.get(len - 1 - window)
        } else if self.evicted {
            // History was trimmed: clamp to the oldest retained sample.
            self.samples.front()
        } else {
            // Everything since start is retained: the true baseline is
            // the zero state before the first sample.
            None
        }
    }

    /// Counter increase over the last `window` ticks. Reset-aware: if
    /// the current value is below the baseline (process restart), the
    /// delta is the current value itself, never negative.
    pub fn counter_delta(&self, key: &str, window: usize) -> u64 {
        let Some(newest) = self.samples.back() else {
            return 0;
        };
        let cur = newest.metrics.counters.get(key).copied().unwrap_or(0);
        let base = self
            .baseline_sample(window)
            .and_then(|s| s.metrics.counters.get(key).copied())
            .unwrap_or(0);
        if cur < base {
            cur
        } else {
            cur - base
        }
    }

    /// Counter rate per second over the last `window` ticks. `None`
    /// when fewer than two samples span the window or the clock did
    /// not advance (e.g. under a `NoopClock`).
    pub fn windowed_rate(&self, key: &str, window: usize) -> Option<f64> {
        let newest = self.samples.back()?;
        let base = self.baseline_sample(window).or_else(|| self.samples.front())?;
        if std::ptr::eq(newest, base) {
            return None;
        }
        let elapsed_ns = newest.at_ns.saturating_sub(base.at_ns);
        if elapsed_ns == 0 {
            return None;
        }
        Some(self.counter_delta(key, window) as f64 / (elapsed_ns as f64 / 1e9))
    }

    /// Histogram delta over the last `window` ticks: per-bucket count
    /// increases, with the same bounds as the live histogram. Detects
    /// counter resets (current total count below baseline) and falls
    /// back to the zero baseline. `None` when the series is absent.
    pub fn histogram_delta(&self, key: &str, window: usize) -> Option<HistogramSnapshot> {
        let newest = self.samples.back()?;
        let cur = newest.metrics.histograms.get(key)?;
        let base = self
            .baseline_sample(window)
            .and_then(|s| s.metrics.histograms.get(key))
            // Reset or bucket-layout change: ignore the baseline.
            .filter(|b| b.count <= cur.count && b.buckets.len() == cur.buckets.len());
        let buckets = match base {
            Some(b) => cur
                .buckets
                .iter()
                .zip(&b.buckets)
                .map(|(c, b)| c.saturating_sub(*b))
                .collect(),
            None => cur.buckets.clone(),
        };
        Some(HistogramSnapshot {
            bounds: cur.bounds.clone(),
            buckets,
            sum: (cur.sum - base.map_or(0.0, |b| b.sum)).max(0.0),
            count: cur.count - base.map_or(0, |b| b.count),
        })
    }

    /// Windowed quantile (`q` in `[0,1]`) reconstructed from histogram
    /// bucket deltas, Prometheus-style: find the bucket holding the
    /// rank-`⌈q·n⌉` observation and interpolate linearly inside it.
    /// Observations in the overflow (+Inf) bucket report the highest
    /// finite bound. `None` when the window holds no observations.
    pub fn windowed_quantile(&self, key: &str, q: f64, window: usize) -> Option<f64> {
        let delta = self.histogram_delta(key, window)?;
        let total: u64 = delta.buckets.iter().sum();
        if total == 0 || delta.bounds.is_empty() {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut before = 0u64;
        for (i, &in_bucket) in delta.buckets.iter().enumerate() {
            if in_bucket > 0 && before + in_bucket >= rank {
                if i >= delta.bounds.len() {
                    // +Inf bucket: no finite upper edge to interpolate to.
                    return delta.bounds.last().copied();
                }
                let lower = if i == 0 { 0.0 } else { delta.bounds[i - 1] };
                let upper = delta.bounds[i];
                let frac = (rank - before) as f64 / in_bucket as f64;
                return Some(lower + (upper - lower) * frac);
            }
            before += in_bucket;
        }
        None
    }

    /// Ratio of summed `bad` counter deltas to summed `total` counter
    /// deltas over the window. `None` when the denominator delta is
    /// zero (no traffic in the window — no evidence either way).
    pub fn windowed_ratio(&self, bad: &[&str], total: &[&str], window: usize) -> Option<f64> {
        let bad_sum: u64 = bad.iter().map(|k| self.counter_delta(k, window)).sum();
        let total_sum: u64 = total.iter().map(|k| self.counter_delta(k, window)).sum();
        if total_sum == 0 {
            None
        } else {
            Some(bad_sum as f64 / total_sum as f64)
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    const BOUNDS: &[f64] = &[0.001, 0.01, 0.1, 1.0];

    fn registry_with(counter: u64, observations: &[f64]) -> Registry {
        let reg = Registry::new();
        let c = reg.counter("t_events_total", "test events");
        c.add(counter);
        let h = reg.histogram("t_lat_seconds", "test latency", BOUNDS);
        for &v in observations {
            h.observe(v);
        }
        reg
    }

    #[test]
    fn counter_delta_uses_implicit_zero_baseline_before_history_fills() {
        let mut rec = Recorder::new(8);
        rec.record(&registry_with(5, &[]), 1);
        // Window larger than history, nothing evicted: delta since start.
        assert_eq!(rec.counter_delta("t_events_total", 4), 5);
        assert_eq!(rec.counter_delta("missing_total", 4), 0);
    }

    #[test]
    fn counter_delta_windows_and_clamps_to_oldest_after_eviction() {
        let mut rec = Recorder::new(2);
        rec.record(&registry_with(10, &[]), 1);
        rec.record(&registry_with(25, &[]), 2);
        rec.record(&registry_with(40, &[]), 3); // evicts the first
        assert_eq!(rec.history_len(), 2);
        assert_eq!(rec.counter_delta("t_events_total", 1), 15);
        // Window 5 reaches past trimmed history: clamps to oldest (25).
        assert_eq!(rec.counter_delta("t_events_total", 5), 15);
    }

    #[test]
    fn counter_reset_yields_current_value_not_negative() {
        let mut rec = Recorder::new(8);
        rec.record(&registry_with(100, &[]), 1);
        rec.record(&registry_with(7, &[]), 2); // "restart": counter fell
        assert_eq!(rec.counter_delta("t_events_total", 1), 7);
    }

    #[test]
    fn windowed_rate_needs_advancing_clock() {
        let mut rec = Recorder::new(8);
        rec.record(&registry_with(0, &[]), 1_000_000_000);
        rec.record(&registry_with(30, &[]), 4_000_000_000);
        let rate = rec.windowed_rate("t_events_total", 1).unwrap();
        assert!((rate - 10.0).abs() < 1e-9, "{rate}");
        // Single sample: no window to rate over.
        let mut one = Recorder::new(8);
        one.record(&registry_with(5, &[]), 1);
        assert!(one.windowed_rate("t_events_total", 1).is_none());
        // Frozen clock (NoopClock): no rate.
        let mut frozen = Recorder::new(8);
        frozen.record(&registry_with(0, &[]), 0);
        frozen.record(&registry_with(5, &[]), 0);
        assert!(frozen.windowed_rate("t_events_total", 1).is_none());
    }

    #[test]
    fn histogram_delta_isolates_the_window() {
        let reg = registry_with(0, &[0.0005, 0.05]);
        let mut rec = Recorder::new(8);
        rec.record(&reg, 1);
        reg.histogram("t_lat_seconds", "", BOUNDS).observe(0.5);
        rec.record(&reg, 2);
        let delta = rec.histogram_delta("t_lat_seconds", 1).unwrap();
        // Only the 0.5s observation landed inside the window.
        assert_eq!(delta.count, 1);
        assert_eq!(delta.buckets, vec![0, 0, 0, 1, 0]);
        assert!((delta.sum - 0.5).abs() < 1e-6, "{}", delta.sum);
    }

    #[test]
    fn histogram_delta_detects_counter_reset() {
        let mut rec = Recorder::new(8);
        rec.record(&registry_with(0, &[0.05, 0.05, 0.05]), 1);
        // New registry = restarted process: fewer total observations.
        rec.record(&registry_with(0, &[0.5]), 2);
        let delta = rec.histogram_delta("t_lat_seconds", 1).unwrap();
        assert_eq!(delta.count, 1);
        assert_eq!(delta.buckets, vec![0, 0, 0, 1, 0]);
    }

    #[test]
    fn windowed_quantile_interpolates_within_the_bucket() {
        let reg = registry_with(0, &[]);
        let mut rec = Recorder::new(8);
        rec.record(&reg, 1);
        let h = reg.histogram("t_lat_seconds", "", BOUNDS);
        // 90 fast (≤1ms), 10 slow (≤100ms) → p99 lands in the 3rd bucket.
        for _ in 0..90 {
            h.observe(0.0005);
        }
        for _ in 0..10 {
            h.observe(0.05);
        }
        rec.record(&reg, 2);
        let p99 = rec.windowed_quantile("t_lat_seconds", 0.99, 1).unwrap();
        // rank 99 is the 9th of 10 observations in (0.01, 0.1]:
        // 0.01 + 0.09 * 9/10 = 0.091.
        assert!((p99 - 0.091).abs() < 1e-9, "{p99}");
        let p50 = rec.windowed_quantile("t_lat_seconds", 0.50, 1).unwrap();
        assert!(p50 <= 0.001, "{p50}");
    }

    #[test]
    fn windowed_quantile_empty_window_is_none() {
        let reg = registry_with(0, &[0.05]);
        let mut rec = Recorder::new(8);
        rec.record(&reg, 1);
        rec.record(&reg, 2); // nothing new between the two ticks
        assert!(rec.windowed_quantile("t_lat_seconds", 0.99, 1).is_none());
        assert!(rec.windowed_quantile("absent_seconds", 0.99, 1).is_none());
    }

    #[test]
    fn windowed_quantile_overflow_bucket_reports_highest_finite_bound() {
        let reg = registry_with(0, &[]);
        let mut rec = Recorder::new(8);
        rec.record(&reg, 1);
        reg.histogram("t_lat_seconds", "", BOUNDS).observe(50.0); // beyond 1.0
        rec.record(&reg, 2);
        let p99 = rec.windowed_quantile("t_lat_seconds", 0.99, 1).unwrap();
        assert!((p99 - 1.0).abs() < 1e-9, "{p99}");
    }

    #[test]
    fn windowed_ratio_is_none_without_traffic() {
        let mut rec = Recorder::new(8);
        let reg = Registry::new();
        reg.counter("t_bad_total", "").add(0);
        reg.counter("t_all_total", "").add(0);
        rec.record(&reg, 1);
        assert!(rec.windowed_ratio(&["t_bad_total"], &["t_all_total"], 1).is_none());
        reg.counter("t_bad_total", "").add(1);
        reg.counter("t_all_total", "").add(4);
        rec.record(&reg, 2);
        let ratio = rec.windowed_ratio(&["t_bad_total"], &["t_all_total"], 1).unwrap();
        assert!((ratio - 0.25).abs() < 1e-9, "{ratio}");
    }

    #[test]
    fn recorder_counts_its_own_ticks() {
        let reg = Registry::new();
        let mut rec = Recorder::new(4);
        rec.record(&reg, 1);
        let tick = rec.record(&reg, 2);
        assert_eq!(tick, 2);
        assert_eq!(rec.current_tick(), 2);
        let latest = rec.latest().unwrap();
        assert_eq!(
            latest.metrics.counters.get("obs_timeseries_ticks_total"),
            Some(&2)
        );
    }
}
