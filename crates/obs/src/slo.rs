//! Declarative SLOs evaluated as multi-window burn rates.
//!
//! Each [`SloSpec`] names an objective (a target good-fraction such as
//! 99.9% availability) and a signal — either an error-ratio over
//! counter families or a latency threshold over a histogram family.
//! On every telemetry tick the [`SloEngine`] computes the bad
//! fraction over a **fast** and a **slow** window from the
//! [`Recorder`]'s history, converts each to a *burn rate* (bad
//! fraction divided by the error budget `1 − objective`; burn 1.0
//! means exactly exhausting the budget), and derives a typed
//! [`AlertState`]: **Page** when *both* windows burn at or above
//! `page_burn` (the fast window reacts, the slow window confirms it
//! is not a blip), **Warn** analogously at `warn_burn`, else **Ok**.
//!
//! State changes are appended to a bounded transition ring, exported
//! as metric families (`obs_slo_state{slo=…}`, burn gauges in
//! permille) and recorded in the flight recorder under kind `"slo"`.

use std::collections::VecDeque;
use std::fmt;

use crate::span::Obs;
use crate::timeseries::Recorder;

/// Alert severity for one SLO.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum AlertState {
    /// Burning within budget.
    #[default]
    Ok,
    /// Sustained burn above the warn threshold.
    Warn,
    /// Sustained burn above the page threshold — wake someone up.
    Page,
}

impl AlertState {
    /// Stable lower-case name for labels and logs.
    pub fn as_str(self) -> &'static str {
        match self {
            AlertState::Ok => "ok",
            AlertState::Warn => "warn",
            AlertState::Page => "page",
        }
    }

    /// Numeric severity for gauge export (0, 1, 2).
    pub fn severity(self) -> i64 {
        match self {
            AlertState::Ok => 0,
            AlertState::Warn => 1,
            AlertState::Page => 2,
        }
    }
}

impl fmt::Display for AlertState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What an SLO measures.
#[derive(Clone, Debug)]
pub enum SloSignal {
    /// Bad fraction = Σ delta(`bad`) / Σ delta(`total`) over the
    /// window. Series keys as rendered by the registry (including the
    /// `{label="…"}` suffix for labelled families).
    ErrorRatio {
        /// Counter series counting the bad events.
        bad: Vec<String>,
        /// Counter series counting all events.
        total: Vec<String>,
    },
    /// Bad fraction = share of windowed histogram observations above
    /// `threshold_seconds` (bucket-resolution: an observation counts
    /// as good when its bucket's upper bound is ≤ the threshold).
    LatencyAbove {
        /// Histogram series key.
        histogram: String,
        /// Latency objective boundary, in seconds.
        threshold_seconds: f64,
    },
}

/// One declarative service-level objective.
#[derive(Clone, Debug)]
pub struct SloSpec {
    /// Stable identifier, used as the metric label.
    pub name: &'static str,
    /// Target good-fraction in `(0,1)`, e.g. `0.999`.
    pub objective: f64,
    /// The measured signal.
    pub signal: SloSignal,
    /// Fast (detection) window, in ticks.
    pub fast_window: usize,
    /// Slow (confirmation) window, in ticks.
    pub slow_window: usize,
    /// Burn rate at/above which both windows trigger a page.
    pub page_burn: f64,
    /// Burn rate at/above which both windows trigger a warning.
    pub warn_burn: f64,
}

/// The evaluated state of one SLO at the latest tick.
#[derive(Clone, Debug, PartialEq)]
pub struct SloStatus {
    /// The spec's name.
    pub name: &'static str,
    /// Current alert state.
    pub state: AlertState,
    /// Burn rate over the fast window (0 when the window is silent).
    pub fast_burn: f64,
    /// Burn rate over the slow window.
    pub slow_burn: f64,
}

/// One recorded alert-state change.
#[derive(Clone, Debug, PartialEq)]
pub struct SloTransition {
    /// Monotonic transition counter across all SLOs.
    pub seq: u64,
    /// Recorder tick at which the transition happened.
    pub tick: u64,
    /// Which SLO changed.
    pub slo: &'static str,
    /// Previous state.
    pub from: AlertState,
    /// New state.
    pub to: AlertState,
    /// Fast-window burn at transition time.
    pub fast_burn: f64,
    /// Slow-window burn at transition time.
    pub slow_burn: f64,
}

/// How many transitions the ring retains.
const TRANSITION_CAPACITY: usize = 64;

/// Evaluates a set of SLOs against recorder history.
#[derive(Debug)]
pub struct SloEngine {
    specs: Vec<SloSpec>,
    states: Vec<AlertState>,
    statuses: Vec<SloStatus>,
    transitions: VecDeque<SloTransition>,
    next_seq: u64,
}

impl SloEngine {
    /// An engine over the given specs, all starting at [`AlertState::Ok`].
    pub fn new(specs: Vec<SloSpec>) -> SloEngine {
        let states = vec![AlertState::Ok; specs.len()];
        let statuses = specs
            .iter()
            .map(|s| SloStatus {
                name: s.name,
                state: AlertState::Ok,
                fast_burn: 0.0,
                slow_burn: 0.0,
            })
            .collect();
        SloEngine {
            specs,
            states,
            statuses,
            transitions: VecDeque::new(),
            next_seq: 0,
        }
    }

    /// The configured specs.
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    /// The statuses from the most recent [`SloEngine::evaluate`].
    pub fn statuses(&self) -> Vec<SloStatus> {
        self.statuses.clone()
    }

    /// Recorded transitions, oldest first (bounded ring).
    pub fn transitions(&self) -> Vec<SloTransition> {
        self.transitions.iter().cloned().collect()
    }

    /// Evaluates every SLO against the recorder's current history,
    /// updates alert states, exports gauges/counters through `obs`'s
    /// registry, and records flight events for transitions. Returns
    /// the transitions that happened this tick.
    pub fn evaluate(&mut self, rec: &Recorder, obs: &Obs) -> Vec<SloTransition> {
        let tick = rec.current_tick();
        let mut fired = Vec::new();
        for i in 0..self.specs.len() {
            let spec = &self.specs[i];
            let budget = (1.0 - spec.objective).max(1e-9);
            let fast_burn = bad_fraction(rec, &spec.signal, spec.fast_window) / budget;
            let slow_burn = bad_fraction(rec, &spec.signal, spec.slow_window) / budget;
            let state = if fast_burn >= spec.page_burn && slow_burn >= spec.page_burn {
                AlertState::Page
            } else if fast_burn >= spec.warn_burn && slow_burn >= spec.warn_burn {
                AlertState::Warn
            } else {
                AlertState::Ok
            };
            let prev = self.states[i];
            if state != prev {
                self.next_seq += 1;
                let t = SloTransition {
                    seq: self.next_seq,
                    tick,
                    slo: spec.name,
                    from: prev,
                    to: state,
                    fast_burn,
                    slow_burn,
                };
                if self.transitions.len() == TRANSITION_CAPACITY {
                    self.transitions.pop_front();
                }
                self.transitions.push_back(t.clone());
                if let Some(reg) = obs.registry() {
                    reg.labeled_counter(
                        "obs_slo_transitions_total",
                        "SLO alert-state transitions",
                        "slo",
                        spec.name,
                    )
                    .inc();
                }
                obs.record_event("slo", || {
                    format!(
                        "{} {}->{} fast_burn={:.2} slow_burn={:.2} tick={}",
                        t.slo, t.from, t.to, t.fast_burn, t.slow_burn, t.tick
                    )
                });
                fired.push(t);
                self.states[i] = state;
            }
            if let Some(reg) = obs.registry() {
                reg.labeled_gauge(
                    "obs_slo_state",
                    "SLO alert state (0=ok 1=warn 2=page)",
                    "slo",
                    spec.name,
                )
                .set(state.severity());
                reg.labeled_gauge(
                    "obs_slo_burn_fast_permille",
                    "Fast-window burn rate, thousandths",
                    "slo",
                    spec.name,
                )
                .set(permille(fast_burn));
                reg.labeled_gauge(
                    "obs_slo_burn_slow_permille",
                    "Slow-window burn rate, thousandths",
                    "slo",
                    spec.name,
                )
                .set(permille(slow_burn));
            }
            self.statuses[i] = SloStatus {
                name: spec.name,
                state,
                fast_burn,
                slow_burn,
            };
        }
        fired
    }
}

/// Burn × 1000 as an integer gauge value, saturating.
fn permille(burn: f64) -> i64 {
    if !burn.is_finite() {
        return i64::MAX;
    }
    (burn * 1000.0).round().clamp(0.0, 9.0e18) as i64
}

/// The bad fraction of a signal over the window. Silent windows (no
/// traffic, no observations) report 0 — no evidence of burn.
fn bad_fraction(rec: &Recorder, signal: &SloSignal, window: usize) -> f64 {
    match signal {
        SloSignal::ErrorRatio { bad, total } => {
            let bad: Vec<&str> = bad.iter().map(String::as_str).collect();
            let total: Vec<&str> = total.iter().map(String::as_str).collect();
            rec.windowed_ratio(&bad, &total, window).unwrap_or(0.0)
        }
        SloSignal::LatencyAbove {
            histogram,
            threshold_seconds,
        } => {
            let Some(delta) = rec.histogram_delta(histogram, window) else {
                return 0.0;
            };
            let total: u64 = delta.buckets.iter().sum();
            if total == 0 {
                return 0.0;
            }
            let good: u64 = delta
                .buckets
                .iter()
                .take(delta.bounds.len())
                .zip(&delta.bounds)
                .filter(|(_, bound)| **bound <= *threshold_seconds + 1e-12)
                .map(|(count, _)| *count)
                .sum();
            (total - good) as f64 / total as f64
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn availability_spec() -> SloSpec {
        SloSpec {
            name: "availability",
            objective: 0.9,
            signal: SloSignal::ErrorRatio {
                bad: vec!["t_rejected_total".to_owned()],
                total: vec!["t_admitted_total".to_owned(), "t_rejected_total".to_owned()],
            },
            fast_window: 2,
            slow_window: 6,
            page_burn: 4.0,
            warn_burn: 1.5,
        }
    }

    fn push(reg: &Registry, rec: &mut Recorder, admitted: u64, rejected: u64, at_ns: u64) {
        reg.counter("t_admitted_total", "admitted").add(admitted);
        reg.counter("t_rejected_total", "rejected").add(rejected);
        rec.record(reg, at_ns);
    }

    #[test]
    fn healthy_traffic_stays_ok() {
        let reg = Registry::new();
        let mut rec = Recorder::new(16);
        let obs = Obs::with_clock(Box::new(crate::clock::NoopClock));
        let mut engine = SloEngine::new(vec![availability_spec()]);
        for i in 0..6 {
            push(&reg, &mut rec, 100, 1, i);
            let fired = engine.evaluate(&rec, &obs);
            assert!(fired.is_empty(), "tick {i}: {fired:?}");
        }
        let status = &engine.statuses()[0];
        assert_eq!(status.state, AlertState::Ok);
        assert!(status.fast_burn < 1.0, "{}", status.fast_burn);
    }

    #[test]
    fn sustained_errors_page_and_recovery_returns_to_ok() {
        let reg = Registry::new();
        let mut rec = Recorder::new(16);
        let obs = Obs::with_clock(Box::new(crate::clock::NoopClock));
        let mut engine = SloEngine::new(vec![availability_spec()]);
        // 100% rejections: bad fraction 1.0, burn 10× budget ⇒ Page
        // (both windows see only bad traffic from the start).
        push(&reg, &mut rec, 0, 50, 1);
        let fired = engine.evaluate(&rec, &obs);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].to, AlertState::Page);
        assert!(fired[0].fast_burn >= 4.0);
        // Flight recorder saw it.
        let events = obs.flight_events();
        assert!(events.iter().any(|e| e.kind == "slo" && e.detail.contains("ok->page")),
            "{events:?}");
        // Long healthy stretch: windows drain, state returns to Ok.
        for i in 0..8 {
            push(&reg, &mut rec, 500, 0, 2 + i);
            engine.evaluate(&rec, &obs);
        }
        assert_eq!(engine.statuses()[0].state, AlertState::Ok);
        let transitions = engine.transitions();
        assert_eq!(transitions.last().unwrap().to, AlertState::Ok);
        // Exported metric families reflect the final state.
        let text = obs.registry().unwrap().render_text();
        assert!(text.contains("obs_slo_state{slo=\"availability\"} 0"), "{text}");
        assert!(text.contains("obs_slo_transitions_total{slo=\"availability\"} 2"), "{text}");
    }

    #[test]
    fn slow_window_vetoes_a_short_blip() {
        let reg = Registry::new();
        let mut rec = Recorder::new(16);
        let obs = Obs::with_clock(Box::new(crate::clock::NoopClock));
        // Long healthy history first, so the slow window has context.
        let mut engine = SloEngine::new(vec![availability_spec()]);
        for i in 0..6 {
            push(&reg, &mut rec, 100, 0, i);
            engine.evaluate(&rec, &obs);
        }
        // One bad tick: fast window burns hot, slow window stays cool.
        push(&reg, &mut rec, 0, 150, 6);
        engine.evaluate(&rec, &obs);
        let status = &engine.statuses()[0];
        assert!(status.fast_burn >= 4.0, "{}", status.fast_burn);
        assert!(status.slow_burn < 4.0, "{}", status.slow_burn);
        assert_ne!(status.state, AlertState::Page);
    }

    #[test]
    fn latency_signal_counts_share_above_threshold() {
        let reg = Registry::new();
        let mut rec = Recorder::new(16);
        let obs = Obs::with_clock(Box::new(crate::clock::NoopClock));
        let spec = SloSpec {
            name: "latency",
            objective: 0.9,
            signal: SloSignal::LatencyAbove {
                histogram: "t_lat_seconds".to_owned(),
                threshold_seconds: 0.01,
            },
            fast_window: 2,
            slow_window: 4,
            page_burn: 4.0,
            warn_burn: 1.5,
        };
        let mut engine = SloEngine::new(vec![spec]);
        let bounds: &[f64] = &[0.001, 0.01, 0.1, 1.0];
        let h = reg.histogram("t_lat_seconds", "latency", bounds);
        // All observations slow: bad fraction 1.0 ⇒ burn 10 ⇒ Page.
        for _ in 0..20 {
            h.observe(0.05);
        }
        rec.record(&reg, 1);
        let fired = engine.evaluate(&rec, &obs);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].to, AlertState::Page);
        // All observations fast: recovers.
        for i in 0..6 {
            for _ in 0..50 {
                h.observe(0.0005);
            }
            rec.record(&reg, 2 + i);
            engine.evaluate(&rec, &obs);
        }
        assert_eq!(engine.statuses()[0].state, AlertState::Ok);
    }

    #[test]
    fn silent_windows_do_not_burn() {
        let reg = Registry::new();
        let mut rec = Recorder::new(16);
        let obs = Obs::with_clock(Box::new(crate::clock::NoopClock));
        let mut engine = SloEngine::new(vec![availability_spec()]);
        rec.record(&reg, 1); // no traffic at all
        let fired = engine.evaluate(&rec, &obs);
        assert!(fired.is_empty());
        let status = &engine.statuses()[0];
        assert_eq!(status.state, AlertState::Ok);
        assert_eq!(status.fast_burn, 0.0);
    }

    #[test]
    fn permille_saturates() {
        assert_eq!(permille(0.0), 0);
        assert_eq!(permille(1.5), 1500);
        assert_eq!(permille(f64::INFINITY), i64::MAX);
        assert_eq!(permille(f64::NAN), i64::MAX);
    }
}
