//! `obs` — the unified observability layer.
//!
//! Every subsystem of the engine (conceptual joins, distributed text
//! scatter-gather, physical path scans, detector supervision, WAL
//! flushes, admission control) answers the same two questions through
//! this crate: *where does the time go* and *where do the failures go*.
//!
//! * **Metrics** — a [`Registry`] of lock-cheap counters, gauges and
//!   fixed-bucket histograms addressed by static keys. Handles are
//!   `Arc`'d atomics: recording an event is one atomic op, no lock, no
//!   allocation. Prometheus-style text exposition via
//!   [`Registry::render_text`], a JSON dump via
//!   [`Registry::render_json`].
//! * **Spans** — [`Obs::span`] opens a structured span recording wall
//!   time (through an injectable [`Clock`], so a [`NoopClock`] makes
//!   instrumented runs byte-identical to uninstrumented ones), work
//!   units and an [`Outcome`]. While a trace is collecting
//!   ([`Obs::begin_trace`]), properly nested spans assemble into a
//!   [`TraceNode`] tree — the engine's EXPLAIN-ANALYZE output.
//! * **Slow-query log** — a bounded ring keeping the slowest N traces
//!   over a threshold ([`Obs::record_slow`] / [`Obs::slow_queries`]).
//! * **Bench reports** — [`report::BenchReport`] is the one JSON schema
//!   every `BENCH_*.json` file shares (`schema_version` stamped).
//! * **Telemetry history** — [`timeseries::Recorder`] samples the
//!   registry on a tick into a bounded ring and serves windowed
//!   aggregates: reset-aware counter deltas, rates, and p50/p99
//!   reconstructed from histogram-bucket deltas.
//! * **SLOs** — [`slo::SloEngine`] evaluates declarative objectives
//!   with fast/slow multi-window burn rates into typed
//!   Ok→Warn→Page [`AlertState`] transitions, exported as metrics.
//! * **Flight recorder** — a bounded [`FlightEvent`] ring fed from the
//!   system's choke points ([`Obs::record_event`]), snapshotted into
//!   incident reports when an SLO pages or the gate starts shedding.
//!
//! The whole crate is infallible by construction: a disabled [`Obs`] is
//! a `None` behind one pointer, every recording call on it is a no-op,
//! and nothing in here ever panics on the serving path.

#![warn(missing_docs)]

mod clock;
mod flight;
mod metrics;
pub mod report;
pub mod slo;
mod span;
pub mod timeseries;

pub use clock::{Clock, ManualClock, MonotonicClock, NoopClock};
pub use flight::FlightEvent;
pub use metrics::{
    Counter, FamilyMeta, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry,
    DEFAULT_TIME_BUCKETS, WORK_BUCKETS,
};
pub use slo::{AlertState, SloEngine, SloSignal, SloSpec, SloStatus, SloTransition};
pub use span::{Obs, Outcome, SlowEntry, Span, TraceNode};
pub use timeseries::{Recorder, TickSample};
